"""Tuning an IBLT with Algorithm 1 (paper section 4.1).

Finds the optimally small IBLT for recovering j = 40 items at a 1/240
decode failure rate -- first the shipped table's answer, then a live
run of the search -- and contrasts both with the naive static
parameterization (k = 4, tau = 1.5) whose failure rate Fig. 7 shows is
badly off target.

Run:  python examples/iblt_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.pds.param_search import measure_decode_rate, optimal_parameters
from repro.pds.param_table import default_param_table

J = 40
DENOM = 240
TRIALS = 4000


def main() -> None:
    target = 1.0 - 1.0 / DENOM
    print(f"goal: decode j={J} items with failure rate <= 1/{DENOM}\n")

    # 1. The shipped table (generated once with Algorithm 1).
    table = default_param_table(DENOM)
    shipped = table.params_for(J)
    rate = measure_decode_rate(J, shipped.k, shipped.cells, TRIALS)
    print(f"  shipped table : k={shipped.k} c={shipped.cells:4d} "
          f"(tau={shipped.cells / J:.2f})  failure={1 - rate:.4%}")

    # 2. A live Algorithm 1 run (hypergraph Monte Carlo + binary search).
    result = optimal_parameters(J, target,
                                rng=np.random.default_rng(0),
                                max_trials=3000)
    rate = measure_decode_rate(J, result.k, result.cells, TRIALS)
    print(f"  live search   : k={result.k} c={result.cells:4d} "
          f"(tau={result.tau:.2f})  failure={1 - rate:.4%}")

    # 3. The static strawman of Fig. 7.
    static_c = int(J * 1.5)
    rate = measure_decode_rate(J, 4, static_c, TRIALS)
    print(f"  static k=4 t=1.5: k=4 c={static_c:4d} "
          f"(tau=1.50)  failure={1 - rate:.4%}  <-- misses the target")

    print("\nThe static shape under-allocates at small j; Algorithm 1 "
          "finds the smallest shape that still meets the decode rate.")


if __name__ == "__main__":
    main()
