"""Fork-rate analysis: turning smaller encodings into bigger blocks.

The paper's introduction argues that efficient relay lets a chain raise
its block size: propagation delay drives the fork rate, and forks cap
safe throughput.  This example measures propagation delay per protocol
in the packaged network simulator, converts delays to fork
probabilities with the Decker-Wattenhofer model (1 - e^(-D/T)), and
reports the largest block each protocol can afford under a 0.5% fork
budget.

Run:  python examples/fork_rate_analysis.py
"""

from __future__ import annotations

from repro.analysis.forks import (
    delay_for_fork_budget,
    fork_rate_curve,
    max_block_size_for_budget,
)
from repro.net.node import RelayProtocol

NET = dict(nodes=8, degree=3, bandwidth=120_000.0, latency=0.05, seed=11)
BLOCK_SIZES = (200, 1000, 4000)
BUDGET = 0.005  # one fork per 200 blocks


def main() -> None:
    print("fork probability by block size "
          "(8-node network, ~1 Mbit/s links, T = 600 s):\n")
    print(f"  {'txns':>6}", end="")
    protocols = (RelayProtocol.GRAPHENE, RelayProtocol.COMPACT_BLOCKS,
                 RelayProtocol.FULL_BLOCK)
    curves = {}
    for protocol in protocols:
        curves[protocol] = {
            row["n"]: row for row in fork_rate_curve(
                protocol, block_sizes=BLOCK_SIZES, **NET)}
        print(f"  {protocol.value:>16}", end="")
    print()
    for n in BLOCK_SIZES:
        print(f"  {n:>6}", end="")
        for protocol in protocols:
            print(f"  {curves[protocol][n]['fork_probability']:>16.5%}",
                  end="")
        print()

    print(f"\nallowed propagation delay at a {BUDGET:.1%} fork budget: "
          f"{delay_for_fork_budget(BUDGET):.1f} s")
    print("largest admissible block under that budget:")
    for protocol in protocols:
        best = max_block_size_for_budget(
            protocol, BUDGET, candidates=(500, 1000, 2000, 4000, 8000),
            **NET)
        print(f"  {protocol.value:<16} {best:>6,} txns")


if __name__ == "__main__":
    main()
