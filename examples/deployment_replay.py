"""Longitudinal deployment replay: the shape of the paper's Fig. 12.

The paper's headline deployment plot comes from one Bitcoin Cash node
relaying months of real blocks.  This example replays a synthetic
"day": a stream of blocks with realistically skewed sizes (many small,
few large), mempool conditions drifting block to block, and the
occasional under-synchronized receiver.  It prints the binned
average-encoding-size curve and the observed failure count -- the same
two quantities Fig. 12 reports (deployment: 46 failures in 15,647
blocks).

Run:  python examples/deployment_replay.py
"""

from __future__ import annotations

import random

from repro import BlockRelaySession, make_block_scenario
from repro.baselines.xthin import xthin_star_bytes

BLOCKS = 120
BINS = ((0, 100), (100, 500), (500, 1500), (1500, 3000), (3000, 5001))


def main() -> None:
    rng = random.Random(20190819)
    session = BlockRelaySession()
    samples = []
    p2_count = 0
    failures = 0

    for i in range(BLOCKS):
        # Log-skewed block sizes: mostly small, occasionally thousands.
        n = max(1, int(rng.lognormvariate(5.5, 1.1)))
        n = min(n, 5000)
        # Mempool drift: extra txns between 0.5x and 3x the block.
        extra = int(n * rng.uniform(0.5, 3.0))
        # 5% of receivers lag transaction gossip a little.
        fraction = 1.0 if rng.random() > 0.05 else rng.uniform(0.97, 1.0)
        scenario = make_block_scenario(n=n, extra=extra, fraction=fraction,
                                       seed=rng.getrandbits(30))
        outcome = session.relay(scenario.block, scenario.receiver_mempool)
        samples.append((n, outcome.cost.total()))
        if outcome.protocol_used == 2:
            p2_count += 1
        if not outcome.success:
            failures += 1

    print(f"replayed {BLOCKS} blocks "
          f"(protocol 2 used {p2_count}x, failures {failures})\n")
    print(f"  {'block size':>14}  {'blocks':>6}  {'graphene avg':>12}  "
          f"{'xthin* avg':>10}")
    for low, high in BINS:
        in_bin = [(n, size) for n, size in samples if low <= n < high]
        if not in_bin:
            continue
        mean_n = sum(n for n, _ in in_bin) / len(in_bin)
        mean_size = sum(size for _, size in in_bin) / len(in_bin)
        print(f"  {f'{low}-{high - 1}':>14}  {len(in_bin):>6}  "
              f"{mean_size:>10,.0f} B  {xthin_star_bytes(int(mean_n)):>8,} B")
    print("\nLike Fig. 12: XThin* climbs ~8 B/txn while Graphene's curve "
          "stays nearly flat.")


if __name__ == "__main__":
    main()
