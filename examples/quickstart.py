"""Quickstart: relay one block with Graphene and compare baselines.

Builds a 2000-transaction block (the average Bitcoin block of the
paper's evaluation), gives the receiver a mempool twice that size, and
relays it with Graphene Protocol 1, Compact Blocks, XThin and a full
block, printing the bytes each protocol puts on the wire.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BlockRelaySession, make_block_scenario
from repro.baselines.compact_blocks import CompactBlocksRelay
from repro.baselines.full_block import FullBlockRelay
from repro.baselines.xthin import XThinRelay


def main() -> None:
    scenario = make_block_scenario(n=2000, extra=2000, fraction=1.0, seed=7)
    print(f"block: {scenario.n} txns; receiver mempool: {scenario.m} txns\n")

    graphene = BlockRelaySession().relay(scenario.block,
                                         scenario.receiver_mempool)
    assert graphene.success
    cb = CompactBlocksRelay().relay(scenario.block,
                                    scenario.receiver_mempool)
    xthin = XThinRelay().relay(scenario.block, scenario.receiver_mempool)
    full = FullBlockRelay().relay(scenario.block)

    rows = [
        ("Graphene (Protocol 1)", graphene.total_bytes,
         f"{graphene.roundtrips} RTT"),
        ("Compact Blocks", cb.total_bytes, f"{cb.roundtrips} RTT"),
        ("XThin", xthin.total_bytes, f"{xthin.roundtrips} RTT"),
        ("Full block", full.total_bytes, f"{full.roundtrips} RTT"),
    ]
    width = max(len(name) for name, _, _ in rows)
    for name, size, rtt in rows:
        ratio = size / full.total_bytes
        print(f"  {name:<{width}}  {size:>9,} bytes  {rtt:>8}  "
              f"({ratio:6.2%} of full block)")

    print("\nGraphene cost breakdown:")
    for part, size in graphene.cost.as_dict().items():
        if size:
            print(f"  {part:<16} {size:>7,} bytes")


if __name__ == "__main__":
    main()
