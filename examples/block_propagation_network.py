"""Block propagation across a simulated p2p network.

The paper's motivation: smaller block encodings reach the whole network
faster, so miners converge sooner and fork less.  This example builds a
16-node random 4-regular network with 2 Mbit/s links and 50 ms latency,
mines one 1000-transaction block, and measures when every node has it --
once per relay protocol.

Run:  python examples/block_propagation_network.py
"""

from __future__ import annotations

import random

from repro import Block, TransactionGenerator
from repro.net import (
    Node,
    RelayProtocol,
    Simulator,
    connect_random_regular,
)

NODES = 16
DEGREE = 4
BLOCK_TXNS = 1000
EXTRA_MEMPOOL = 1000
BANDWIDTH = 250_000  # bytes/sec ~ 2 Mbit/s
LATENCY = 0.05


def propagate(protocol: RelayProtocol) -> tuple[float, int]:
    """Return (time for full coverage, total bytes sent network-wide)."""
    sim = Simulator()
    nodes = [Node(f"n{i}", sim, protocol=protocol) for i in range(NODES)]
    connect_random_regular(nodes, degree=DEGREE, latency=LATENCY,
                           bandwidth=BANDWIDTH, rng=random.Random(99))

    gen = TransactionGenerator(seed=5)
    block_txs = gen.make_batch(BLOCK_TXNS)
    extras = gen.make_batch(EXTRA_MEMPOOL)
    for node in nodes:
        node.mempool.add_many(block_txs)
        node.mempool.add_many(extras)

    block = Block.assemble(block_txs)
    nodes[0].mine_block(block)
    sim.run()

    root = block.header.merkle_root
    assert all(root in node.blocks for node in nodes), "propagation failed"
    coverage = max(node.block_arrival[root] for node in nodes)
    traffic = sum(node.total_bytes_sent() for node in nodes)
    return coverage, traffic


def main() -> None:
    print(f"{NODES}-node random {DEGREE}-regular network, "
          f"{BLOCK_TXNS}-txn block, {BANDWIDTH * 8 // 1000} kbit/s links\n")
    baseline_time = None
    for protocol in (RelayProtocol.GRAPHENE, RelayProtocol.COMPACT_BLOCKS,
                     RelayProtocol.XTHIN, RelayProtocol.FULL_BLOCK):
        coverage, traffic = propagate(protocol)
        if baseline_time is None:
            baseline_time = coverage
        print(f"  {protocol.value:<16} full coverage in {coverage:7.3f} s, "
              f"{traffic:>10,} bytes total")
    print("\nSmaller encodings finish propagating sooner; that headroom is "
          "what lets a chain raise its block size (paper section 1).")


if __name__ == "__main__":
    main()
