"""Mempool synchronization between two peers (paper 3.2.1).

Two nodes see different transaction streams (e.g. either side of a slow
intercontinental route).  Every round, fresh transactions arrive at
each, partially overlapping; the peers then reconcile with Graphene so
both hold the union.  The demo prints per-round reconciliation costs
against the naive alternative of shipping all transaction IDs.

Run:  python examples/mempool_sync_demo.py
"""

from __future__ import annotations

import random

from repro import Mempool, TransactionGenerator, synchronize_mempools

ROUNDS = 6
NEW_PER_ROUND = 400
SHARED_FRACTION = 0.7  # of each round's traffic reaches both peers


def main() -> None:
    gen = TransactionGenerator(seed=2)
    rng = random.Random(3)
    alice, bob = Mempool(), Mempool()

    print(f"{ROUNDS} rounds, {NEW_PER_ROUND} new txns/round, "
          f"{SHARED_FRACTION:.0%} seen by both\n")
    total_graphene = total_naive = 0
    for round_no in range(1, ROUNDS + 1):
        fresh = gen.make_batch(NEW_PER_ROUND)
        for tx in fresh:
            roll = rng.random()
            if roll < SHARED_FRACTION:
                alice.add(tx)
                bob.add(tx)
            elif roll < SHARED_FRACTION + (1 - SHARED_FRACTION) / 2:
                alice.add(tx)
            else:
                bob.add(tx)

        # The smaller mempool should act as sender (paper 3.2.1).
        sender, receiver = ((alice, bob) if len(alice) <= len(bob)
                            else (bob, alice))
        before_diff = len({t.txid for t in sender}
                          ^ {t.txid for t in receiver})
        result = synchronize_mempools(sender, receiver)
        assert result.success and result.synchronized

        naive = 32 * len(sender)  # ship every full txid
        total_graphene += result.cost.total()
        total_naive += naive
        print(f"  round {round_no}: diff={before_diff:4d} txns   "
              f"graphene={result.cost.total():7,} B "
              f"(protocol {result.protocol_used}, "
              f"{result.roundtrips} RTT)   naive-ids={naive:9,} B")

    print(f"\ntotals: graphene={total_graphene:,} B, "
          f"naive={total_naive:,} B "
          f"({total_graphene / total_naive:.1%} of naive)")
    assert {t.txid for t in alice} == {t.txid for t in bob}
    print(f"final synchronized mempool: {len(alice):,} transactions")


if __name__ == "__main__":
    main()
