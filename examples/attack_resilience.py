"""Attack resilience (paper section 6.1).

Two adversarial plays against block relay, and how each protocol fares:

1. A malformed IBLT crafted to trap naive decoders in an endless peel
   loop -- our decoder detects the double decode and raises.
2. Manufactured short-ID collisions: the block holds t1, the receiver
   holds a colliding t2.  XThin and Compact Blocks always fail;
   SipHash-keyed Compact Blocks and Graphene survive (Graphene fails
   only with probability f_S * f_R).

Run:  python examples/attack_resilience.py
"""

from __future__ import annotations

from repro.errors import MalformedIBLTError
from repro.security import make_malformed_iblt, run_collision_attack

TRIALS = 40


def demo_malformed_iblt() -> None:
    print("1. malformed IBLT (item inserted into only k-1 cells)")
    iblt = make_malformed_iblt(cells=60, k=4, honest_keys=range(100, 110))
    try:
        iblt.decode()
        print("   !! decoder looped or silently accepted the poison")
    except MalformedIBLTError as exc:
        print(f"   decoder halted safely: {exc}")


def demo_collision_attack() -> None:
    print(f"\n2. short-ID collision attack ({TRIALS} trials)")
    tallies = {"xthin": 0, "compact blocks": 0,
               "compact blocks + siphash": 0, "graphene": 0}
    fs_fr = 0.0
    for seed in range(TRIALS):
        result = run_collision_attack(n=200, extra=200, seed=seed)
        tallies["xthin"] += result.xthin_failed
        tallies["compact blocks"] += result.compact_blocks_failed
        tallies["compact blocks + siphash"] += (
            result.compact_blocks_siphash_failed)
        tallies["graphene"] += result.graphene_failed
        fs_fr += result.graphene_failure_probability
    for name, failed in tallies.items():
        print(f"   {name:<26} failed {failed:>3}/{TRIALS}")
    print(f"   graphene analytic failure rate f_S*f_R ~ "
          f"{fs_fr / TRIALS:.5f}")


def main() -> None:
    demo_malformed_iblt()
    demo_collision_attack()


if __name__ == "__main__":
    main()
