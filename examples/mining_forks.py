"""Empirical fork rates: mine real chains under each relay protocol.

Four miners with equal hash rate race over slow links.  Every block is
assembled from a live mempool, relayed with the chosen protocol
(Graphene's relay runs its genuine multi-message exchange), and lands
in each node's block tree -- so fork races, stale blocks and reorgs
emerge naturally instead of from a formula.

Run:  python examples/mining_forks.py
"""

from __future__ import annotations

from repro.net.mining import run_mining_experiment
from repro.net.node import RelayProtocol

SETTINGS = dict(blocks=40, miners=4, block_interval=20.0, block_txns=400,
                latency=0.3, bandwidth=15_000.0, seed=7)


def main() -> None:
    print("4 miners, 20 s block interval, 400-txn blocks, "
          "~120 kbit/s links\n")
    print(f"  {'protocol':<16} {'mined':>6} {'stale':>6} "
          f"{'fork rate':>10} {'reorgs':>7} {'height':>7}")
    for protocol in (RelayProtocol.GRAPHENE, RelayProtocol.COMPACT_BLOCKS,
                     RelayProtocol.XTHIN, RelayProtocol.FULL_BLOCK):
        report = run_mining_experiment(protocol, **SETTINGS)
        print(f"  {protocol.value:<16} {report.blocks_mined:>6} "
              f"{report.stale_blocks:>6} {report.fork_rate:>10.1%} "
              f"{report.reorgs:>7} {report.main_chain_height:>7}")
    print("\nStale blocks are mining income thrown away; the smaller the "
          "relay encoding, the rarer they get (paper section 1).")


if __name__ == "__main__":
    main()
