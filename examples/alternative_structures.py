"""Swapping Graphene's data structures (paper 2.1 and 3.3.1).

The paper notes that "any alternative can be used if Eqs. 2, 3, 4 and 5
are updated appropriately" (for the Bloom filter) and that IBLT
alternatives trade CPU for size.  This example measures those swaps on
one concrete reconciliation task:

* filter S:  Bloom  vs  Golomb-coded set  vs  cuckoo filter
* the IBLT:  IBLT   vs  CPISync (characteristic polynomials)

Run:  python examples/alternative_structures.py
"""

from __future__ import annotations

import random
import time

from repro.core.params import GrapheneConfig, optimize_a
from repro.pds.bloom import bloom_size_bytes
from repro.pds.cpisync import cpisync_size_bytes, make_digest, reconcile
from repro.pds.cuckoo import cuckoo_size_bytes
from repro.pds.gcs import gcs_size_bytes
from repro.pds.iblt import IBLT
from repro.pds.param_table import default_param_table

N, M = 2000, 4000
DIFF = 40


def filter_comparison() -> None:
    plan = optimize_a(N, M, GrapheneConfig())
    print(f"filter S for a {N}-txn block at f_S = {plan.fpr:.4f} "
          f"(the Eq. 3 optimum):")
    rows = [
        ("Bloom filter", bloom_size_bytes(N, plan.fpr) + 9,
         "O(1) queries, the paper's choice"),
        ("Golomb-coded set", gcs_size_bytes(N, plan.fpr),
         "~30% smaller, full decode per query"),
        ("Cuckoo filter", cuckoo_size_bytes(N, plan.fpr),
         "supports deletion, wins at low FPR"),
    ]
    for name, size, note in rows:
        print(f"  {name:<18} {size:>7,} B   {note}")


def reconciler_comparison() -> None:
    rng = random.Random(1)
    shared = [rng.getrandbits(64) for _ in range(500)]
    mine = [rng.getrandbits(64) for _ in range(DIFF // 2)]
    theirs = [rng.getrandbits(64) for _ in range(DIFF - DIFF // 2)]

    print(f"\nreconciling a {DIFF}-item symmetric difference:")
    params = default_param_table(240).params_for(DIFF)
    start = time.perf_counter()
    a = IBLT(params.cells, k=params.k, seed=2)
    b = IBLT(params.cells, k=params.k, seed=2)
    a.update(shared + mine)
    b.update(shared + theirs)
    result = (a - b).decode()
    iblt_time = time.perf_counter() - start
    assert result.complete
    print(f"  {'IBLT':<18} {12 + params.cells * 12:>7,} B   "
          f"{iblt_time * 1000:7.1f} ms   (1/240-certified shape)")

    start = time.perf_counter()
    digest = make_digest(shared + mine, mbar=DIFF)
    remote, local = reconcile(digest, shared + theirs)
    cpi_time = time.perf_counter() - start
    assert remote == frozenset(mine) and local == frozenset(theirs)
    print(f"  {'CPISync':<18} {cpisync_size_bytes(DIFF):>7,} B   "
          f"{cpi_time * 1000:7.1f} ms   (near-optimal bytes, more CPU)")

    print("\nThe paper's balance: IBLTs pay a constant-factor byte "
          "premium for decode speed\nthat holds up at blockchain scale "
          "(section 2.1).")


def main() -> None:
    filter_comparison()
    reconciler_comparison()


if __name__ == "__main__":
    main()
