# Entry points for the Graphene reproduction. `make ci` is the gate a
# commit must pass: the tier-1 test suite, the PDS perf guard, the
# relay-throughput perf guard (baseline compare + profile budget), the
# network-scale perf guard (100/1000-node propagation vs BENCH_NET),
# the Protocol 3 byte-accounting guard (head-to-head vs BENCH_P3),
# the end-to-end network smoke test plus its run-report invariants,
# the two-process socket relay smoke (byte parity with loopback), the
# four-process mesh smoke (3 servers, failover, N:1 run-report
# invariants), the fixed-seed fuzz smoke, and the executable-docs
# check.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf perf-check perf-update perf-relay perf-relay-update \
	perf-net perf-net-update perf-p3 perf-p3-update profile-relay \
	bench smoke smoke-socket smoke-mesh report-check fuzz-smoke fuzz \
	docs-check ci

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) scripts/smoke_net.py

smoke-socket:
	$(PYTHON) scripts/smoke_socket.py

smoke-mesh:
	$(PYTHON) scripts/smoke_mesh.py
	$(PYTHON) scripts/check_run_report.py --profile mesh \
		--report results/mesh_report.json

report-check: smoke
	$(PYTHON) scripts/check_run_report.py

docs-check:
	$(PYTHON) scripts/check_docs_snippets.py

fuzz-smoke:
	$(PYTHON) scripts/fuzz_smoke.py

fuzz:
	$(PYTHON) -m repro fuzz --seed 0 --cases 2000

perf:
	$(PYTHON) -m pytest benchmarks/bench_perf_pds.py --benchmark-only -q

perf-check:
	$(PYTHON) scripts/check_perf.py

perf-update:
	$(PYTHON) scripts/check_perf.py --update

perf-relay:
	$(PYTHON) scripts/check_perf.py --suite relay
	$(PYTHON) benchmarks/profile_relay.py --check

perf-relay-update:
	$(PYTHON) scripts/check_perf.py --suite relay --update

perf-net:
	$(PYTHON) scripts/check_perf.py --suite net

perf-net-update:
	$(PYTHON) scripts/check_perf.py --suite net --update

perf-p3:
	$(PYTHON) scripts/check_perf.py --suite p3

perf-p3-update:
	$(PYTHON) scripts/check_perf.py --suite p3 --update

profile-relay:
	$(PYTHON) benchmarks/profile_relay.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

ci: test perf-check perf-relay perf-net perf-p3 report-check smoke-socket \
	smoke-mesh fuzz-smoke docs-check
