# Entry points for the Graphene reproduction. `make ci` is the gate a
# commit must pass: the tier-1 test suite, the PDS perf guard, and the
# end-to-end network smoke test.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf perf-check perf-update bench smoke ci

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) scripts/smoke_net.py

perf:
	$(PYTHON) -m pytest benchmarks/bench_perf_pds.py --benchmark-only -q

perf-check:
	$(PYTHON) scripts/check_perf.py

perf-update:
	$(PYTHON) scripts/check_perf.py --update

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

ci: test perf-check smoke
