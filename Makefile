# Entry points for the Graphene reproduction. `make ci` is the gate a
# commit must pass: the tier-1 test suite plus the PDS perf guard.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test perf perf-check perf-update bench ci

test:
	$(PYTHON) -m pytest -x -q

perf:
	$(PYTHON) -m pytest benchmarks/bench_perf_pds.py --benchmark-only -q

perf-check:
	$(PYTHON) scripts/check_perf.py

perf-update:
	$(PYTHON) scripts/check_perf.py --update

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

ci: test perf-check
