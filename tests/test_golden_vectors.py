"""Golden wire-format vectors: freeze the encodings docs/PROTOCOL.md specs.

If any of these change, independently written peers stop
interoperating; a failing test here means either an intentional format
revision (update the spec AND these vectors together) or an accidental
format break (fix the code).
"""

from __future__ import annotations

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.transaction import Transaction
from repro.codec import (
    decode_transaction,
    encode_bloom,
    encode_iblt,
    encode_transaction,
)
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT
from repro.pds.reference import (
    ReferenceBloomFilter,
    ReferenceIBLT,
    encode_reference_bloom,
    encode_reference_iblt,
)
from repro.utils.hashing import DerivedHasher, sha256
from repro.utils.siphash import siphash24


class TestBloomGolden:
    def _filter(self):
        bloom = BloomFilter.from_fpr(8, 0.05, seed=42)
        for i in range(8):
            bloom.insert(sha256(b"item" + bytes([i])))
        return bloom

    def test_encoding_digest(self):
        blob = encode_bloom(self._filter())
        assert len(blob) == 16
        assert hashlib.sha256(blob).hexdigest() == (
            "6c381a2fe7b50ee1c0adc0b8b59175"
            "7744ad0fc81fc13888617af9394884c2ad")

    def test_shape_is_stable(self):
        bloom = self._filter()
        assert (bloom.nbits, bloom.k) == (50, 4)


class TestIBLTGolden:
    def _iblt(self):
        iblt = IBLT(12, k=4, seed=7)
        for key in (1, 2, 0xDEADBEEF, 2**63):
            iblt.insert(key)
        return iblt

    def test_encoding_digest(self):
        blob = encode_iblt(self._iblt())
        assert len(blob) == 156
        assert hashlib.sha256(blob).hexdigest() == (
            "3acf571d37399e5ce486178a8c8b30"
            "7a738b95f6e8930f54a5667852fd6129ba")

    def test_decode_of_golden_content(self):
        result = self._iblt().decode()
        assert result.complete
        assert result.local == {1, 2, 0xDEADBEEF, 2**63}


class TestTransactionGolden:
    GOLDEN_HEX = ("000102030405060708090a0b0c0d0e0f10111213141516171819"
                  "1a1b1c1d1e1ffa0000000000c03f01")

    def test_encoding(self):
        tx = Transaction(txid=bytes(range(32)), size=250, fee_rate=1.5,
                         is_coinbase=True)
        assert encode_transaction(tx).hex() == self.GOLDEN_HEX

    def test_decoding(self):
        tx, offset = decode_transaction(bytes.fromhex(self.GOLDEN_HEX))
        assert offset == 41
        assert tx.txid == bytes(range(32))
        assert tx.size == 250
        assert tx.is_coinbase


class TestHashFamilyGolden:
    def test_partitioned_indices(self):
        hasher = DerivedHasher(4, seed=9)
        assert hasher.partitioned_indices(12345, 40) == [7, 17, 24, 38]

    def test_checksum(self):
        assert DerivedHasher(4, seed=9).checksum(12345) == 43417

    def test_siphash_reference(self):
        # Already covered in test_siphash; repeated here as the spec's
        # single canonical anchor.
        assert siphash24(bytes(range(16)), b"") == 0x726FDB47DD0E0E31


class TestSeedEquivalence:
    """The columnar/cached PDS layer must be wire-identical to the seed.

    :mod:`repro.pds.reference` preserves the pre-optimization
    implementations; these property tests pin the optimized structures to
    them -- byte-for-byte on the wire, set-for-set on decode -- for
    randomized inputs, so independently written peers (and old recorded
    vectors) keep interoperating.
    """

    @given(st.sets(st.integers(min_value=0, max_value=2**64 - 1),
                   max_size=60),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_iblt_serialization_matches_seed(self, keys, seed):
        new = IBLT.from_keys(keys, 120, k=4, seed=seed)
        ref = ReferenceIBLT.from_keys(keys, 120, k=4, seed=seed)
        assert encode_iblt(new) == encode_reference_iblt(ref)

    @given(st.sets(st.integers(min_value=0, max_value=2**64 - 1),
                   max_size=40),
           st.sets(st.integers(min_value=0, max_value=2**64 - 1),
                   max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_iblt_decode_matches_seed(self, xs, ys):
        new = IBLT.from_keys(xs, 400, seed=3).subtract(
            IBLT.from_keys(ys, 400, seed=3)).decode()
        ref = ReferenceIBLT.from_keys(xs, 400, seed=3).subtract(
            ReferenceIBLT.from_keys(ys, 400, seed=3)).decode()
        assert new.complete == ref.complete
        assert new.local == ref.local
        assert new.remote == ref.remote

    @given(st.lists(st.binary(min_size=32, max_size=32), max_size=50,
                    unique=True),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bloom_serialization_matches_seed(self, items, seed):
        n = max(1, len(items))
        new = BloomFilter.from_fpr(n, 0.02, seed=seed)
        ref = ReferenceBloomFilter.from_fpr(n, 0.02, seed=seed)
        new.update(items)
        for item in items:
            ref.insert(item)
        assert encode_bloom(new) == encode_reference_bloom(ref)
        probes = items + [sha256(b"probe" + bytes([i])) for i in range(8)]
        assert new.contains_many(probes) == [p in ref for p in probes]
