"""Tests for the baseline relay protocols."""

from __future__ import annotations

import pytest

from repro.baselines.bloom_only import (
    BloomOnlyRelay,
    bloom_only_bytes,
    bloom_only_fpr,
)
from repro.baselines.compact_blocks import (
    CompactBlocksRelay,
    compact_blocks_bytes,
    index_width,
)
from repro.baselines.difference_digest import (
    DifferenceDigestRelay,
    StrataEstimator,
)
from repro.baselines.full_block import FullBlockRelay, full_block_bytes
from repro.baselines.xthin import XThinRelay, xthin_bytes, xthin_star_bytes
from repro.chain.scenarios import make_block_scenario


class TestFullBlock:
    def test_size_is_header_plus_payloads(self, small_scenario):
        assert full_block_bytes(small_scenario.block) == (
            80 + sum(tx.size for tx in small_scenario.block.txs))

    def test_relay_always_succeeds(self, small_scenario):
        outcome = FullBlockRelay().relay(small_scenario.block)
        assert outcome.success
        assert outcome.total_bytes > full_block_bytes(small_scenario.block)


class TestCompactBlocks:
    def test_index_width_boundary(self):
        assert index_width(255) == 1
        assert index_width(256) == 3

    def test_analytic_size_scales_with_n(self):
        # Both counts use 3-byte CompactSizes, so the delta is pure IDs.
        assert compact_blocks_bytes(2000) - compact_blocks_bytes(1000) == 8000

    def test_six_byte_variant(self):
        assert compact_blocks_bytes(100, short_id_bytes=6) < \
            compact_blocks_bytes(100, short_id_bytes=8)

    def test_missing_adds_index_cost(self):
        base = compact_blocks_bytes(1000)
        with_missing = compact_blocks_bytes(1000, missing=50)
        assert with_missing == base + 24 + 1 + 3 * 50

    def test_synced_receiver_one_roundtrip(self, small_scenario):
        outcome = CompactBlocksRelay().relay(small_scenario.block,
                                             small_scenario.receiver_mempool)
        assert outcome.success
        assert outcome.roundtrips == 1.5
        assert outcome.missing_count == 0

    def test_missing_txs_repaired(self, missing_scenario):
        outcome = CompactBlocksRelay().relay(
            missing_scenario.block, missing_scenario.receiver_mempool)
        assert outcome.success
        assert outcome.missing_count == len(missing_scenario.missing)
        assert outcome.roundtrips == 2.5
        assert outcome.repair_tx_bytes == sum(
            tx.size for tx in missing_scenario.missing)

    def test_siphash_keys_differ_per_relay(self, small_scenario):
        a = CompactBlocksRelay(use_siphash=True)
        b = CompactBlocksRelay(use_siphash=True)
        assert a.siphash_key != b.siphash_key  # fresh per connection

    def test_total_include_txs(self, missing_scenario):
        outcome = CompactBlocksRelay().relay(
            missing_scenario.block, missing_scenario.receiver_mempool)
        assert outcome.total(include_txs=True) == (
            outcome.total_bytes + outcome.repair_tx_bytes)


class TestXThin:
    def test_star_is_8_bytes_per_txn(self):
        assert xthin_star_bytes(1000) == 80 + 3 + 8000

    def test_full_cost_includes_mempool_bloom(self):
        assert xthin_bytes(1000, 10_000) > xthin_star_bytes(1000)

    def test_synced_relay_succeeds(self, small_scenario):
        outcome = XThinRelay().relay(small_scenario.block,
                                     small_scenario.receiver_mempool)
        assert outcome.success
        assert outcome.pushed_count == 0

    def test_missing_txs_pushed_proactively(self, missing_scenario):
        outcome = XThinRelay().relay(missing_scenario.block,
                                     missing_scenario.receiver_mempool)
        assert outcome.success
        assert outcome.roundtrips == 1.5  # no extra roundtrip, unlike CB
        assert outcome.pushed_count >= len(missing_scenario.missing)

    def test_bloom_grows_with_mempool(self):
        small = make_block_scenario(n=100, extra=100, fraction=1.0, seed=61)
        large = make_block_scenario(n=100, extra=2000, fraction=1.0, seed=62)
        out_small = XThinRelay().relay(small.block, small.receiver_mempool)
        out_large = XThinRelay().relay(large.block, large.receiver_mempool)
        assert out_large.bloom_bytes > out_small.bloom_bytes


class TestBloomOnly:
    def test_fpr_budget(self):
        assert bloom_only_fpr(m=1144, n=1000) == pytest.approx(1 / (144 * 144))

    def test_fpr_degenerate_when_m_not_larger(self):
        assert bloom_only_fpr(m=100, n=100) == 1.0

    def test_analytic_size_smaller_than_compact_blocks(self):
        # Paper section 3: smaller whenever m < 71,982,340 + n.
        n, m = 2000, 6000
        assert bloom_only_bytes(n, m) < compact_blocks_bytes(n,
                                                             short_id_bytes=6)

    def test_relay_usually_succeeds(self):
        ok = 0
        for t in range(20):
            sc = make_block_scenario(n=100, extra=100, fraction=1.0,
                                     seed=700 + t)
            if BloomOnlyRelay().relay(sc.block, sc.receiver_mempool).success:
                ok += 1
        assert ok >= 18  # failure budget is 1/144 per relay

    def test_graphene_smaller_for_large_blocks(self):
        from repro.analysis.theory import graphene_protocol1_bytes
        n, m = 5000, 10_000
        assert graphene_protocol1_bytes(n, m) < bloom_only_bytes(n, m)


class TestStrataEstimator:
    def test_estimate_order_of_magnitude(self, rng):
        shared = [rng.getrandbits(64) for _ in range(800)]
        only_a = [rng.getrandbits(64) for _ in range(100)]
        a = StrataEstimator(12, seed=5)
        b = StrataEstimator(12, seed=5)
        a.insert_all(shared + only_a)
        b.insert_all(shared)
        estimate = a.estimate_difference(b)
        assert 25 <= estimate <= 800  # coarse, like the original

    def test_identical_sets_estimate_small(self, rng):
        keys = [rng.getrandbits(64) for _ in range(500)]
        a = StrataEstimator(10, seed=6)
        b = StrataEstimator(10, seed=6)
        a.insert_all(keys)
        b.insert_all(keys)
        assert a.estimate_difference(b) <= 4

    def test_size_accounts_all_strata(self):
        est = StrataEstimator(8, seed=0)
        assert est.serialized_size() == 8 * est.strata[0].serialized_size()


class TestDifferenceDigest:
    def test_succeeds_on_moderate_difference(self):
        sc = make_block_scenario(n=500, extra=500, fraction=0.95, seed=63)
        outcome = DifferenceDigestRelay().relay(sc.block,
                                                sc.receiver_mempool)
        assert outcome.success
        assert outcome.estimate >= 1

    def test_more_expensive_than_graphene(self):
        # The section 5.3.2 claim.
        from repro.core.session import BlockRelaySession
        sc = make_block_scenario(n=2000, extra=2000, fraction=0.95, seed=64)
        digest = DifferenceDigestRelay().relay(sc.block, sc.receiver_mempool)
        graphene = BlockRelaySession().relay(sc.block, sc.receiver_mempool)
        assert graphene.success
        assert digest.total_bytes > graphene.total_bytes

    def test_strata_bytes_dominated_by_log_m(self):
        sc = make_block_scenario(n=200, extra=3000, fraction=1.0, seed=65)
        outcome = DifferenceDigestRelay().relay(sc.block,
                                                sc.receiver_mempool)
        assert outcome.strata_bytes >= 10 * 80 * 12  # >= 10 strata of 80 cells
