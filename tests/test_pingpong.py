"""Tests for ping-pong decoding (paper 4.2)."""

from __future__ import annotations

import random

import pytest

from repro.pds.iblt import IBLT
from repro.pds.param_table import default_param_table
from repro.pds.pingpong import pingpong_decode


def _difference_pair(items, cells_a, cells_b, k_a=4, k_b=4):
    """Two subtracted IBLTs over the same one-sided difference."""
    a1 = IBLT(cells_a, k=k_a, seed=101)
    a2 = IBLT(cells_a, k=k_a, seed=101)
    b1 = IBLT(cells_b, k=k_b, seed=202)
    b2 = IBLT(cells_b, k=k_b, seed=202)
    for key in items:
        a1.insert(key)
        b1.insert(key)
    return a1.subtract(a2), b1.subtract(b2)


class TestPingPong:
    def test_both_decodable_trivially_completes(self, rng):
        items = [rng.getrandbits(64) for _ in range(10)]
        first, second = _difference_pair(items, 60, 60)
        result = pingpong_decode(first, second)
        assert result.complete
        assert result.local == set(items)

    def test_rescues_undersized_primary(self, rng):
        # Primary too small to decode alone; sibling unlocks it.
        items = [rng.getrandbits(64) for _ in range(40)]
        first, second = _difference_pair(items, 44, 80)
        assert not first.decode().complete
        result = pingpong_decode(first, second)
        assert result.complete
        assert result.local == set(items)

    def test_order_does_not_matter(self, rng):
        items = [rng.getrandbits(64) for _ in range(40)]
        first, second = _difference_pair(items, 44, 80)
        assert pingpong_decode(second, first).complete

    def test_two_sided_difference(self, rng):
        xs = {rng.getrandbits(64) for _ in range(15)}
        ys = {rng.getrandbits(64) for _ in range(15)}
        a1 = IBLT(48, seed=1)
        a2 = IBLT(48, seed=1)
        b1 = IBLT(120, seed=2)
        b2 = IBLT(120, seed=2)
        for key in xs:
            a1.insert(key)
            b1.insert(key)
        for key in ys:
            a2.insert(key)
            b2.insert(key)
        result = pingpong_decode(a1.subtract(a2), b1.subtract(b2))
        assert result.complete
        assert result.local == xs
        assert result.remote == ys

    def test_hopeless_pair_reports_partial(self, rng):
        # Both structures far too small: no progress possible.
        items = [rng.getrandbits(64) for _ in range(200)]
        first, second = _difference_pair(items, 8, 8)
        result = pingpong_decode(first, second)
        assert not result.complete
        assert result.local <= set(items)

    def test_improves_failure_rate_statistically(self):
        # Fig. 11's headline: sibling at i == j lowers failure to ~(1-p)^2.
        rng = random.Random(9)
        table = default_param_table(240)
        j = 30
        params = table.params_for(j)
        single_fail = pair_fail = 0
        trials = 150
        for _ in range(trials):
            items = [rng.getrandbits(64) for _ in range(j)]
            first = IBLT(params.cells, k=params.k, seed=rng.getrandbits(30))
            second = IBLT(params.cells, k=params.k,
                          seed=rng.getrandbits(30) | 1)
            empty1 = IBLT(first.cells, k=first.k, seed=first.seed)
            empty2 = IBLT(second.cells, k=second.k, seed=second.seed)
            first.update(items)
            second.update(items)
            if not first.subtract(empty1).decode().complete:
                single_fail += 1
            if not pingpong_decode(first.subtract(empty1),
                                   second.subtract(empty2)).complete:
                pair_fail += 1
        assert pair_fail <= single_fail

    def test_result_sets_are_frozensets(self, rng):
        items = [rng.getrandbits(64) for _ in range(5)]
        first, second = _difference_pair(items, 40, 40)
        result = pingpong_decode(first, second)
        assert isinstance(result.local, frozenset)
        assert isinstance(result.remote, frozenset)


class TestPingPongMany:
    """The multi-neighbor extension at the end of paper 4.2."""

    def _diffs(self, items, shapes):
        from repro.pds.iblt import IBLT
        diffs = []
        for seed, cells in shapes:
            full = IBLT(cells, seed=seed)
            empty = IBLT(cells, seed=seed)
            full.update(items)
            diffs.append(full.subtract(empty))
        return diffs

    def test_three_undersized_iblts_jointly_decode(self, rng):
        from repro.pds.pingpong import pingpong_decode_many
        items = [rng.getrandbits(64) for _ in range(60)]
        # Each alone is too small for 60 items (tau = 1.0).
        diffs = self._diffs(items, [(1, 60), (2, 60), (3, 60)])
        assert not diffs[0].decode().complete
        result = pingpong_decode_many(diffs)
        assert result.complete
        assert result.local == set(items)

    def test_single_iblt_degenerates_to_plain_decode(self, rng):
        from repro.pds.pingpong import pingpong_decode_many
        items = [rng.getrandbits(64) for _ in range(10)]
        diffs = self._diffs(items, [(1, 60)])
        result = pingpong_decode_many(diffs)
        assert result.complete and result.local == set(items)

    def test_empty_input_rejected(self):
        import pytest as _pytest
        from repro.errors import ParameterError
        from repro.pds.pingpong import pingpong_decode_many
        with _pytest.raises(ParameterError):
            pingpong_decode_many([])

    def test_hopeless_ensemble_reports_partial(self, rng):
        from repro.pds.pingpong import pingpong_decode_many
        items = [rng.getrandbits(64) for _ in range(300)]
        diffs = self._diffs(items, [(1, 12), (2, 12), (3, 12)])
        result = pingpong_decode_many(diffs)
        assert not result.complete

    def test_more_neighbors_help_statistically(self):
        import random as _random
        from repro.pds.pingpong import pingpong_decode_many
        rng = _random.Random(4)
        j, cells = 50, 56  # tau ~ 1.12: often undecodable alone
        solo_fail = trio_fail = 0
        for _ in range(60):
            items = [rng.getrandbits(64) for _ in range(j)]
            diffs = self._diffs(
                items, [(rng.getrandbits(20), cells) for _ in range(3)])
            if not diffs[0].decode().complete:
                solo_fail += 1
            if not pingpong_decode_many(diffs).complete:
                trio_fail += 1
        assert trio_fail < solo_fail
