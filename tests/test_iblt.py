"""Tests for the from-scratch IBLT."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MalformedIBLTError, ParameterError
from repro.pds.iblt import DEFAULT_CELL_BYTES, IBLT, IBLT_HEADER_BYTES
from repro.pds.reference import ReferenceIBLT

KEYS = st.sets(st.integers(min_value=0, max_value=2**64 - 1), max_size=40)


def _keys(count, seed=0):
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(count)]


class TestConstruction:
    def test_cells_rounded_to_multiple_of_k(self):
        assert IBLT(10, k=4).cells == 12

    def test_rejects_negative_cells(self):
        with pytest.raises(ParameterError):
            IBLT(-1)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            IBLT(12, k=1)

    def test_rejects_bad_cell_bytes(self):
        with pytest.raises(ParameterError):
            IBLT(12, cell_bytes=0)

    def test_serialized_size(self):
        iblt = IBLT(24, k=4)
        assert iblt.serialized_size() == IBLT_HEADER_BYTES + 24 * DEFAULT_CELL_BYTES

    def test_from_keys(self):
        keys = _keys(10)
        iblt = IBLT.from_keys(keys, 60)
        assert len(iblt) == 10


class TestInsertEraseDecode:
    def test_decode_empty(self):
        result = IBLT(12).decode()
        assert result.complete
        assert not result.local and not result.remote

    def test_single_item_roundtrip(self):
        iblt = IBLT(12)
        iblt.insert(0xABCD)
        result = iblt.decode()
        assert result.complete
        assert result.local == {0xABCD}

    def test_many_items_roundtrip(self):
        keys = set(_keys(50, seed=1))
        iblt = IBLT.from_keys(keys, 120)
        result = iblt.decode()
        assert result.complete
        assert result.local == keys

    def test_erase_cancels_insert(self):
        iblt = IBLT(12)
        iblt.insert(7)
        iblt.erase(7)
        result = iblt.decode()
        assert result.complete
        assert not result.local

    def test_erase_without_insert_decodes_negative(self):
        iblt = IBLT(12)
        iblt.erase(7)
        result = iblt.decode()
        assert result.complete
        assert result.remote == {7}

    def test_decode_is_nondestructive(self):
        iblt = IBLT.from_keys(_keys(5), 24)
        first = iblt.decode()
        second = iblt.decode()
        assert first.local == second.local

    def test_overfull_decode_fails(self):
        # 12 cells cannot decode 100 items.
        iblt = IBLT.from_keys(_keys(100, seed=3), 12)
        assert not iblt.decode().complete

    def test_decode_result_unpacks(self):
        complete, local, remote = IBLT.from_keys([5], 12).decode()
        assert complete and local == {5} and remote == frozenset()


class TestSubtract:
    def test_symmetric_difference(self):
        shared = _keys(30, seed=4)
        only_a = _keys(10, seed=5)
        only_b = _keys(12, seed=6)
        a = IBLT.from_keys(shared + only_a, 120, seed=9)
        b = IBLT.from_keys(shared + only_b, 120, seed=9)
        result = a.subtract(b).decode()
        assert result.complete
        assert result.local == set(only_a)
        assert result.remote == set(only_b)

    def test_sub_operator(self):
        a = IBLT.from_keys([1, 2], 24, seed=1)
        b = IBLT.from_keys([2, 3], 24, seed=1)
        result = (a - b).decode()
        assert result.local == {1} and result.remote == {3}

    def test_identical_sets_cancel(self):
        keys = _keys(20, seed=7)
        a = IBLT.from_keys(keys, 60, seed=2)
        b = IBLT.from_keys(keys, 60, seed=2)
        diff = a.subtract(b)
        result = diff.decode()
        assert result.complete
        assert not result.local and not result.remote

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ParameterError):
            IBLT(24, k=4).subtract(IBLT(24, k=3, seed=0))

    def test_incompatible_seeds_rejected(self):
        with pytest.raises(ParameterError):
            IBLT(24, seed=1).subtract(IBLT(24, seed=2))

    def test_count_tracks_difference(self):
        a = IBLT.from_keys(_keys(5), 24)
        b = IBLT.from_keys(_keys(3, seed=9), 24)
        assert a.subtract(b).count == 2


class TestPeel:
    def test_peel_reduces_difference(self):
        only_a = _keys(3, seed=10)
        a = IBLT.from_keys(only_a, 24, seed=3)
        b = IBLT(24, seed=3)
        diff = a.subtract(b)
        diff.peel(only_a[0], +1)
        result = diff.decode()
        assert result.complete
        assert result.local == set(only_a[1:])

    def test_peel_remote_side(self):
        b_key = 12345
        a = IBLT(24, seed=3)
        b = IBLT.from_keys([b_key], 24, seed=3)
        diff = a.subtract(b)
        diff.peel(b_key, -1)
        result = diff.decode()
        assert result.complete and not result.remote

    def test_peel_rejects_bad_sign(self):
        with pytest.raises(ParameterError):
            IBLT(24).peel(1, 0)

    def test_peel_local_key_empties_table(self):
        # A +1 key (local side of a difference) peels to a fully empty
        # table: peel(key, +1) must apply delta -1 to every touched cell.
        diff = IBLT.from_keys([0xAB], 24, seed=5).subtract(IBLT(24, seed=5))
        diff.peel(0xAB, +1)
        assert diff.is_empty()

    def test_peel_remote_key_empties_table(self):
        # A -1 key (remote side) peels with delta +1, also to empty.
        diff = IBLT(24, seed=5).subtract(IBLT.from_keys([0xCD], 24, seed=5))
        diff.peel(0xCD, -1)
        assert diff.is_empty()


class TestMalformedGuard:
    def test_decode_twice_raises(self):
        # Insert a key into only k-1 cells: peeling oscillates forever
        # without the paper's 6.1 guard.
        iblt = IBLT(24, k=4, seed=0)
        key = 0xFEED
        for idx in iblt.hasher.partitioned_indices(key, iblt.cells)[:-1]:
            iblt.xor_cell(idx, key, +1)
        with pytest.raises(MalformedIBLTError):
            iblt.decode()


class TestCopy:
    def test_copy_is_deep(self):
        a = IBLT.from_keys([1, 2, 3], 24)
        b = a.copy()
        b.insert(4)
        assert len(a) == 3 and len(b) == 4
        assert a.decode().local == {1, 2, 3}


class TestPropertyBased:
    @given(KEYS, KEYS)
    @settings(max_examples=40, deadline=None)
    def test_subtract_recovers_difference_when_capacity_allows(self, xs, ys):
        a = IBLT.from_keys(xs, 400, seed=11)
        b = IBLT.from_keys(ys, 400, seed=11)
        result = a.subtract(b).decode()
        # 400 cells vastly exceed any 80-item difference: must decode.
        assert result.complete
        assert result.local == xs - ys
        assert result.remote == ys - xs

    @given(KEYS)
    @settings(max_examples=40, deadline=None)
    def test_insert_then_erase_all_is_empty(self, keys):
        iblt = IBLT(48, k=4)
        for key in keys:
            iblt.insert(key)
        for key in keys:
            iblt.erase(key)
        assert iblt.is_empty()
        assert all(iblt.cell_at(i).is_empty() for i in range(iblt.cells))

    @given(KEYS, KEYS)
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_implementation(self, xs, ys):
        # The columnar table and cached hasher must reproduce the seed
        # implementation exactly: same decode outcome, same sets.
        a = IBLT.from_keys(xs, 96, seed=13)
        b = IBLT.from_keys(ys, 96, seed=13)
        got = a.subtract(b).decode()
        ra = ReferenceIBLT.from_keys(xs, 96, seed=13)
        rb = ReferenceIBLT.from_keys(ys, 96, seed=13)
        want = ra.subtract(rb).decode()
        assert (got.complete, got.local, got.remote) \
            == (want.complete, want.local, want.remote)

    @given(KEYS)
    @settings(max_examples=25, deadline=None)
    def test_batch_update_matches_single_inserts(self, keys):
        batched = IBLT(48, k=4, seed=21)
        batched.update(keys)
        single = IBLT(48, k=4, seed=21)
        for key in keys:
            single.insert(key)
        assert batched._counts == single._counts
        assert batched._key_sums == single._key_sums
        assert batched._check_sums == single._check_sums
        assert batched.count == single.count

    def test_large_batch_update_matches_single_inserts(self):
        # Large enough to force the vectorized path (hypothesis sets
        # above rarely clear the batch threshold).
        keys = _keys(300, seed=5)
        batched = IBLT(96, k=4, seed=33)
        batched.update(keys)
        single = IBLT(96, k=4, seed=33)
        for key in keys:
            single.insert(key)
        assert batched._counts == single._counts
        assert batched._key_sums == single._key_sums
        assert batched._check_sums == single._check_sums
        assert batched.count == single.count

    def test_large_batch_matches_reference_decode(self):
        shared = _keys(220, seed=6)
        xs = shared + _keys(30, seed=7)
        ys = shared + _keys(25, seed=8)
        got = IBLT.from_keys(xs, 400, seed=17).subtract(
            IBLT.from_keys(ys, 400, seed=17)).decode()
        want = ReferenceIBLT.from_keys(xs, 400, seed=17).subtract(
            ReferenceIBLT.from_keys(ys, 400, seed=17)).decode()
        assert (got.complete, got.local, got.remote) \
            == (want.complete, want.local, want.remote)


class TestDegenerateTables:
    """0-cell and all-zero tables fail *cleanly* (never raise or return
    a silently-complete decode), on both the numpy and pure paths."""

    @pytest.fixture(params=[True, False], ids=["fast", "pure"])
    def _fastpath(self, request):
        from repro.fastpath import fastpath_enabled, set_fastpath
        saved = fastpath_enabled()
        set_fastpath(request.param)
        yield
        set_fastpath(saved)

    def test_zero_cells_constructs(self, _fastpath):
        iblt = IBLT(0)
        assert iblt.cells == 0
        assert iblt.is_empty()

    def test_zero_cells_decode_is_clean_failure(self, _fastpath):
        decode = IBLT(0).decode()
        assert not decode.complete
        assert decode.local == frozenset() and decode.remote == frozenset()

    def test_zero_cells_subtract_then_decode(self, _fastpath):
        diff = IBLT(0).subtract(IBLT(0))
        assert not diff.decode().complete

    def test_zero_cells_rejects_keys(self, _fastpath):
        with pytest.raises(ParameterError):
            IBLT(0).insert(1)
        with pytest.raises(ParameterError):
            IBLT(0).update(_keys(64))

    def test_all_zero_nonempty_expectation_protocol1(self, _fastpath):
        """A subtracted IBLT that is all-zero while transactions are
        provably in flight must report decode failure, not an empty
        'complete' difference (the replayed-I' attack)."""
        from repro.chain.scenarios import make_block_scenario
        from repro.core.params import GrapheneConfig
        from repro.core.protocol1 import build_protocol1, receive_protocol1

        sc = make_block_scenario(n=60, extra=30, fraction=0.8, seed=41)
        config = GrapheneConfig()
        payload = build_protocol1(list(sc.block.txs),
                                  len(sc.receiver_mempool), config)
        # Forge I := I' by rebuilding the sender IBLT over the
        # *receiver's* candidate set, so the subtract cancels exactly.
        candidates = {tx.txid: tx for tx in payload.prefilled}
        pool = [tx for tx in sc.receiver_mempool
                if tx.txid not in candidates]
        for tx, hit in zip(pool, payload.bloom_s.contains_many(
                [tx.txid for tx in pool])):
            if hit:
                candidates[tx.txid] = tx
        sids = [tx.short_id(config.short_id_bytes)
                for tx in candidates.values()]
        forged_iblt = IBLT(payload.iblt_i.cells, k=payload.iblt_i.k,
                           seed=payload.iblt_i.seed)
        forged_iblt.update(sids)
        forged = type(payload)(n=payload.n, bloom_s=payload.bloom_s,
                               iblt_i=forged_iblt, plan=payload.plan,
                               recover=payload.recover,
                               prefilled=payload.prefilled)
        result = receive_protocol1(forged, sc.receiver_mempool, config)
        assert not result.success
        assert not result.decode_complete
