"""Tests for the from-scratch IBLT."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MalformedIBLTError, ParameterError
from repro.pds.iblt import DEFAULT_CELL_BYTES, IBLT, IBLT_HEADER_BYTES
from repro.pds.reference import ReferenceIBLT

KEYS = st.sets(st.integers(min_value=0, max_value=2**64 - 1), max_size=40)


def _keys(count, seed=0):
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(count)]


class TestConstruction:
    def test_cells_rounded_to_multiple_of_k(self):
        assert IBLT(10, k=4).cells == 12

    def test_rejects_bad_cells(self):
        with pytest.raises(ParameterError):
            IBLT(0)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            IBLT(12, k=1)

    def test_rejects_bad_cell_bytes(self):
        with pytest.raises(ParameterError):
            IBLT(12, cell_bytes=0)

    def test_serialized_size(self):
        iblt = IBLT(24, k=4)
        assert iblt.serialized_size() == IBLT_HEADER_BYTES + 24 * DEFAULT_CELL_BYTES

    def test_from_keys(self):
        keys = _keys(10)
        iblt = IBLT.from_keys(keys, 60)
        assert len(iblt) == 10


class TestInsertEraseDecode:
    def test_decode_empty(self):
        result = IBLT(12).decode()
        assert result.complete
        assert not result.local and not result.remote

    def test_single_item_roundtrip(self):
        iblt = IBLT(12)
        iblt.insert(0xABCD)
        result = iblt.decode()
        assert result.complete
        assert result.local == {0xABCD}

    def test_many_items_roundtrip(self):
        keys = set(_keys(50, seed=1))
        iblt = IBLT.from_keys(keys, 120)
        result = iblt.decode()
        assert result.complete
        assert result.local == keys

    def test_erase_cancels_insert(self):
        iblt = IBLT(12)
        iblt.insert(7)
        iblt.erase(7)
        result = iblt.decode()
        assert result.complete
        assert not result.local

    def test_erase_without_insert_decodes_negative(self):
        iblt = IBLT(12)
        iblt.erase(7)
        result = iblt.decode()
        assert result.complete
        assert result.remote == {7}

    def test_decode_is_nondestructive(self):
        iblt = IBLT.from_keys(_keys(5), 24)
        first = iblt.decode()
        second = iblt.decode()
        assert first.local == second.local

    def test_overfull_decode_fails(self):
        # 12 cells cannot decode 100 items.
        iblt = IBLT.from_keys(_keys(100, seed=3), 12)
        assert not iblt.decode().complete

    def test_decode_result_unpacks(self):
        complete, local, remote = IBLT.from_keys([5], 12).decode()
        assert complete and local == {5} and remote == frozenset()


class TestSubtract:
    def test_symmetric_difference(self):
        shared = _keys(30, seed=4)
        only_a = _keys(10, seed=5)
        only_b = _keys(12, seed=6)
        a = IBLT.from_keys(shared + only_a, 120, seed=9)
        b = IBLT.from_keys(shared + only_b, 120, seed=9)
        result = a.subtract(b).decode()
        assert result.complete
        assert result.local == set(only_a)
        assert result.remote == set(only_b)

    def test_sub_operator(self):
        a = IBLT.from_keys([1, 2], 24, seed=1)
        b = IBLT.from_keys([2, 3], 24, seed=1)
        result = (a - b).decode()
        assert result.local == {1} and result.remote == {3}

    def test_identical_sets_cancel(self):
        keys = _keys(20, seed=7)
        a = IBLT.from_keys(keys, 60, seed=2)
        b = IBLT.from_keys(keys, 60, seed=2)
        diff = a.subtract(b)
        result = diff.decode()
        assert result.complete
        assert not result.local and not result.remote

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ParameterError):
            IBLT(24, k=4).subtract(IBLT(24, k=3, seed=0))

    def test_incompatible_seeds_rejected(self):
        with pytest.raises(ParameterError):
            IBLT(24, seed=1).subtract(IBLT(24, seed=2))

    def test_count_tracks_difference(self):
        a = IBLT.from_keys(_keys(5), 24)
        b = IBLT.from_keys(_keys(3, seed=9), 24)
        assert a.subtract(b).count == 2


class TestPeel:
    def test_peel_reduces_difference(self):
        only_a = _keys(3, seed=10)
        a = IBLT.from_keys(only_a, 24, seed=3)
        b = IBLT(24, seed=3)
        diff = a.subtract(b)
        diff.peel(only_a[0], +1)
        result = diff.decode()
        assert result.complete
        assert result.local == set(only_a[1:])

    def test_peel_remote_side(self):
        b_key = 12345
        a = IBLT(24, seed=3)
        b = IBLT.from_keys([b_key], 24, seed=3)
        diff = a.subtract(b)
        diff.peel(b_key, -1)
        result = diff.decode()
        assert result.complete and not result.remote

    def test_peel_rejects_bad_sign(self):
        with pytest.raises(ParameterError):
            IBLT(24).peel(1, 0)

    def test_peel_local_key_empties_table(self):
        # A +1 key (local side of a difference) peels to a fully empty
        # table: peel(key, +1) must apply delta -1 to every touched cell.
        diff = IBLT.from_keys([0xAB], 24, seed=5).subtract(IBLT(24, seed=5))
        diff.peel(0xAB, +1)
        assert diff.is_empty()

    def test_peel_remote_key_empties_table(self):
        # A -1 key (remote side) peels with delta +1, also to empty.
        diff = IBLT(24, seed=5).subtract(IBLT.from_keys([0xCD], 24, seed=5))
        diff.peel(0xCD, -1)
        assert diff.is_empty()


class TestMalformedGuard:
    def test_decode_twice_raises(self):
        # Insert a key into only k-1 cells: peeling oscillates forever
        # without the paper's 6.1 guard.
        iblt = IBLT(24, k=4, seed=0)
        key = 0xFEED
        for idx in iblt.hasher.partitioned_indices(key, iblt.cells)[:-1]:
            iblt.xor_cell(idx, key, +1)
        with pytest.raises(MalformedIBLTError):
            iblt.decode()


class TestCopy:
    def test_copy_is_deep(self):
        a = IBLT.from_keys([1, 2, 3], 24)
        b = a.copy()
        b.insert(4)
        assert len(a) == 3 and len(b) == 4
        assert a.decode().local == {1, 2, 3}


class TestPropertyBased:
    @given(KEYS, KEYS)
    @settings(max_examples=40, deadline=None)
    def test_subtract_recovers_difference_when_capacity_allows(self, xs, ys):
        a = IBLT.from_keys(xs, 400, seed=11)
        b = IBLT.from_keys(ys, 400, seed=11)
        result = a.subtract(b).decode()
        # 400 cells vastly exceed any 80-item difference: must decode.
        assert result.complete
        assert result.local == xs - ys
        assert result.remote == ys - xs

    @given(KEYS)
    @settings(max_examples=40, deadline=None)
    def test_insert_then_erase_all_is_empty(self, keys):
        iblt = IBLT(48, k=4)
        for key in keys:
            iblt.insert(key)
        for key in keys:
            iblt.erase(key)
        assert iblt.is_empty()
        assert all(iblt.cell_at(i).is_empty() for i in range(iblt.cells))

    @given(KEYS, KEYS)
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_implementation(self, xs, ys):
        # The columnar table and cached hasher must reproduce the seed
        # implementation exactly: same decode outcome, same sets.
        a = IBLT.from_keys(xs, 96, seed=13)
        b = IBLT.from_keys(ys, 96, seed=13)
        got = a.subtract(b).decode()
        ra = ReferenceIBLT.from_keys(xs, 96, seed=13)
        rb = ReferenceIBLT.from_keys(ys, 96, seed=13)
        want = ra.subtract(rb).decode()
        assert (got.complete, got.local, got.remote) \
            == (want.complete, want.local, want.remote)

    @given(KEYS)
    @settings(max_examples=25, deadline=None)
    def test_batch_update_matches_single_inserts(self, keys):
        batched = IBLT(48, k=4, seed=21)
        batched.update(keys)
        single = IBLT(48, k=4, seed=21)
        for key in keys:
            single.insert(key)
        assert batched._counts == single._counts
        assert batched._key_sums == single._key_sums
        assert batched._check_sums == single._check_sums
        assert batched.count == single.count

    def test_large_batch_update_matches_single_inserts(self):
        # Large enough to force the vectorized path (hypothesis sets
        # above rarely clear the batch threshold).
        keys = _keys(300, seed=5)
        batched = IBLT(96, k=4, seed=33)
        batched.update(keys)
        single = IBLT(96, k=4, seed=33)
        for key in keys:
            single.insert(key)
        assert batched._counts == single._counts
        assert batched._key_sums == single._key_sums
        assert batched._check_sums == single._check_sums
        assert batched.count == single.count

    def test_large_batch_matches_reference_decode(self):
        shared = _keys(220, seed=6)
        xs = shared + _keys(30, seed=7)
        ys = shared + _keys(25, seed=8)
        got = IBLT.from_keys(xs, 400, seed=17).subtract(
            IBLT.from_keys(ys, 400, seed=17)).decode()
        want = ReferenceIBLT.from_keys(xs, 400, seed=17).subtract(
            ReferenceIBLT.from_keys(ys, 400, seed=17)).decode()
        assert (got.complete, got.local, got.remote) \
            == (want.complete, want.local, want.remote)
