"""Tests for Graphene mempool synchronization (paper 3.2.1)."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_sync_scenario
from repro.core.mempool_sync import synchronize_mempools


class TestSynchronization:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_both_sides_reach_union(self, fraction):
        sc = make_sync_scenario(n=300, fraction_common=fraction, seed=21)
        expected_union = {tx.txid for tx in sc.sender_mempool} | {
            tx.txid for tx in sc.receiver_mempool}
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool)
        assert result.success
        assert result.synchronized
        assert {tx.txid for tx in sc.sender_mempool} == expected_union
        assert {tx.txid for tx in sc.receiver_mempool} == expected_union

    def test_identical_mempools_use_protocol1(self):
        sc = make_sync_scenario(n=200, fraction_common=1.0, seed=22)
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool)
        assert result.protocol_used == 1
        assert result.receiver_gained == 0
        assert result.sender_gained == 0

    def test_disjoint_mempools_escalate(self):
        sc = make_sync_scenario(n=200, fraction_common=0.0, seed=23)
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool)
        assert result.protocol_used == 2
        assert result.synchronized
        assert result.receiver_gained == 200
        assert result.sender_gained == 200

    def test_gain_counts_match_scenario(self):
        sc = make_sync_scenario(n=400, fraction_common=0.7, seed=24)
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool)
        assert result.receiver_gained == len(sc.sender_only)
        assert result.sender_gained == len(sc.receiver_only)


class TestAccountingMode:
    def test_transfer_disabled_moves_nothing(self):
        sc = make_sync_scenario(n=200, fraction_common=0.5, seed=25)
        before_sender = {tx.txid for tx in sc.sender_mempool}
        before_receiver = {tx.txid for tx in sc.receiver_mempool}
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool,
                                      transfer_missing=False)
        assert result.success
        assert {tx.txid for tx in sc.sender_mempool} == before_sender
        assert {tx.txid for tx in sc.receiver_mempool} == before_receiver
        assert result.cost.pushed_tx_bytes == 0
        assert result.cost.fetched_tx_bytes == 0

    def test_encoding_cost_beats_compact_blocks_for_large_pools(self):
        from repro.baselines.compact_blocks import compact_blocks_bytes
        sc = make_sync_scenario(n=2000, fraction_common=0.8, seed=26)
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool,
                                      transfer_missing=False)
        assert result.success
        missing = len(sc.sender_only)
        assert result.cost.total() < compact_blocks_bytes(2000,
                                                          missing=missing)

    def test_cost_breakdown_populated_for_protocol2(self):
        sc = make_sync_scenario(n=300, fraction_common=0.3, seed=27)
        result = synchronize_mempools(sc.sender_mempool, sc.receiver_mempool,
                                      transfer_missing=False)
        assert result.protocol_used == 2
        assert result.cost.bloom_r > 0
        assert result.cost.iblt_j > 0
