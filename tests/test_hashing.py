"""Tests for repro.utils.hashing."""

from __future__ import annotations

import pytest

from repro.utils.hashing import DerivedHasher, sha256, short_id, split_digest


class TestSha256:
    def test_known_digest(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad")

    def test_empty_input(self):
        assert sha256(b"").hex().startswith("e3b0c44298fc1c14")

    def test_length(self):
        assert len(sha256(b"anything")) == 32


class TestShortId:
    def test_truncates_to_8_bytes(self):
        txid = bytes(range(32))
        sid = short_id(txid, 8)
        assert sid == int.from_bytes(bytes(range(8)), "little")

    def test_width_changes_value_range(self):
        txid = sha256(b"x")
        assert short_id(txid, 1) < 256
        assert short_id(txid, 2) < 65536

    def test_shared_prefix_collides(self):
        a = bytes(8) + sha256(b"a")[:24]
        b = bytes(8) + sha256(b"b")[:24]
        assert a != b
        assert short_id(a) == short_id(b)

    @pytest.mark.parametrize("bad", [0, -1, 33])
    def test_rejects_bad_width(self, bad):
        with pytest.raises(ValueError):
            short_id(bytes(32), bad)


class TestSplitDigest:
    def test_yields_k_values(self):
        digest = sha256(b"tx")
        assert len(list(split_digest(digest, 5, 1000))) == 5

    def test_values_within_modulus(self):
        digest = sha256(b"tx")
        assert all(0 <= v < 97 for v in split_digest(digest, 8, 97))

    def test_deterministic(self):
        digest = sha256(b"tx")
        assert (list(split_digest(digest, 6, 500))
                == list(split_digest(digest, 6, 500)))

    def test_extends_beyond_digest_words(self):
        digest = sha256(b"tx")
        values = list(split_digest(digest, 12, 10_000))
        assert len(values) == 12
        assert all(0 <= v < 10_000 for v in values)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            list(split_digest(sha256(b"t"), 0, 10))

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            list(split_digest(sha256(b"t"), 3, 0))

    def test_spread_over_modulus(self):
        # With many digests, every cell of a small modulus gets hit.
        seen = set()
        for i in range(200):
            seen.update(split_digest(sha256(bytes([i])), 4, 16))
        assert seen == set(range(16))


class TestDerivedHasher:
    def test_partitioned_indices_stay_in_partition(self):
        hasher = DerivedHasher(4, seed=1)
        cells = 40
        for key in range(100):
            idx = hasher.partitioned_indices(key, cells)
            for partition, value in enumerate(idx):
                assert partition * 10 <= value < (partition + 1) * 10

    def test_partitioned_requires_divisibility(self):
        hasher = DerivedHasher(4, seed=1)
        with pytest.raises(ValueError):
            hasher.partitioned_indices(1, 42)

    def test_different_seeds_differ(self):
        a = DerivedHasher(4, seed=1).partitioned_indices(42, 40)
        b = DerivedHasher(4, seed=2).partitioned_indices(42, 40)
        assert a != b

    def test_deterministic(self):
        h = DerivedHasher(6, seed=7)
        assert h.indices(99, 1000) == h.indices(99, 1000)

    def test_checksum_bits(self):
        h = DerivedHasher(3, seed=0)
        assert 0 <= h.checksum(12345, bits=16) < (1 << 16)

    def test_checksum_distinguishes_keys(self):
        h = DerivedHasher(3, seed=0)
        sums = {h.checksum(k) for k in range(1000)}
        # 16-bit checksums over 1000 keys: expect very few collisions.
        assert len(sums) > 980

    def test_indices_not_arithmetic_progression(self):
        # Regression: h1 + i*h2 index derivation collapses the IBLT edge
        # space and creates spurious 2-cores (birthday collisions).
        h = DerivedHasher(4, seed=3)
        progressions = 0
        for key in range(500):
            a, b, c, d = h.indices(key, 10_000)
            if b - a == c - b == d - c:
                progressions += 1
        assert progressions <= 1

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            DerivedHasher(0)

    def test_large_k_supported(self):
        h = DerivedHasher(12, seed=5)
        idx = h.partitioned_indices(7, 120)
        assert len(idx) == 12
        assert len(set(idx)) == 12  # one per partition, all distinct
