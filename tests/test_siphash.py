"""Tests for the from-scratch SipHash-2-4 against the reference vectors."""

from __future__ import annotations

import pytest

from repro.utils.siphash import siphash24

#: Reference test vectors from Aumasson & Bernstein's SipHash paper:
#: key = 00 01 ... 0f, message = first ``i`` bytes of 00 01 02 ...
REFERENCE_KEY = bytes(range(16))
REFERENCE_VECTORS = {
    0: 0x726FDB47DD0E0E31,
    1: 0x74F839C593DC67FD,
    8: 0x93F5F5799A932462,
    15: 0xA129CA6149BE45E5,
}


class TestSipHashVectors:
    @pytest.mark.parametrize("length,expected",
                             sorted(REFERENCE_VECTORS.items()))
    def test_reference_vector(self, length, expected):
        assert siphash24(REFERENCE_KEY, bytes(range(length))) == expected


class TestSipHashBehaviour:
    def test_key_sensitivity(self):
        data = b"transaction-id-bytes-here-123456"
        assert (siphash24(bytes(16), data)
                != siphash24(bytes([1]) + bytes(15), data))

    def test_message_sensitivity(self):
        key = REFERENCE_KEY
        assert siphash24(key, b"a") != siphash24(key, b"b")

    def test_output_is_64_bit(self):
        for i in range(64):
            value = siphash24(REFERENCE_KEY, bytes([i] * i))
            assert 0 <= value < (1 << 64)

    def test_all_message_lengths(self):
        # Exercise every tail length of the final block.
        key = REFERENCE_KEY
        outputs = {siphash24(key, bytes(range(i))) for i in range(32)}
        assert len(outputs) == 32

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            siphash24(b"too-short", b"data")

    def test_deterministic(self):
        assert (siphash24(REFERENCE_KEY, b"deadbeef")
                == siphash24(REFERENCE_KEY, b"deadbeef"))
