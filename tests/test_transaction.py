"""Tests for transactions, generation, and short-ID indexing."""

from __future__ import annotations

import pytest

from repro.chain.transaction import (
    SHORT_ID_BYTES,
    ShortIdIndex,
    Transaction,
    TransactionGenerator,
)
from repro.errors import ParameterError
from repro.utils.hashing import sha256


class TestTransaction:
    def test_rejects_wrong_txid_length(self):
        with pytest.raises(ParameterError):
            Transaction(txid=b"short")

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ParameterError):
            Transaction(txid=bytes(32), size=0)

    def test_short_id_default_width(self):
        tx = Transaction(txid=sha256(b"t"))
        assert tx.short_id() < (1 << (8 * SHORT_ID_BYTES))

    def test_short_id_deterministic(self):
        tx = Transaction(txid=sha256(b"t"))
        assert tx.short_id() == tx.short_id()

    def test_keyed_short_id_depends_on_key(self):
        tx = Transaction(txid=sha256(b"t"))
        assert (tx.keyed_short_id(bytes(16))
                != tx.keyed_short_id(bytes([1]) + bytes(15)))

    def test_keyed_short_id_width(self):
        tx = Transaction(txid=sha256(b"t"))
        assert tx.keyed_short_id(bytes(16), nbytes=6) < (1 << 48)

    def test_hashable_by_txid(self):
        a = Transaction(txid=sha256(b"t"), size=100)
        b = Transaction(txid=sha256(b"t"), size=100)
        assert hash(a) == hash(b)


class TestTransactionGenerator:
    def test_unique_ids(self, txgen):
        txs = txgen.make_batch(500)
        assert len({tx.txid for tx in txs}) == 500

    def test_deterministic_across_instances(self):
        a = TransactionGenerator(seed=5).make_batch(10)
        b = TransactionGenerator(seed=5).make_batch(10)
        assert [t.txid for t in a] == [t.txid for t in b]

    def test_different_seeds_differ(self):
        a = TransactionGenerator(seed=5).make()
        b = TransactionGenerator(seed=6).make()
        assert a.txid != b.txid

    def test_size_distribution_centred_near_mean(self, txgen):
        sizes = [tx.size for tx in txgen.make_batch(2000)]
        mean = sum(sizes) / len(sizes)
        assert 200 <= mean <= 350  # clipped lognormal near 250

    def test_minimum_size_clamped(self, txgen):
        assert all(tx.size >= 100 for tx in txgen.make_batch(500))

    def test_explicit_size_honoured(self, txgen):
        assert txgen.make(size=4242).size == 4242

    def test_rejects_negative_batch(self, txgen):
        with pytest.raises(ParameterError):
            txgen.make_batch(-1)

    def test_rejects_tiny_mean(self):
        with pytest.raises(ParameterError):
            TransactionGenerator(mean_size=10)


class TestShortIdIndex:
    def test_roundtrip(self, txgen):
        index = ShortIdIndex()
        tx = txgen.make()
        index.add(tx)
        assert index.get(tx.short_id()) is tx
        assert tx.short_id() in index

    def test_missing_returns_none(self):
        assert ShortIdIndex().get(12345) is None

    def test_collision_recorded(self):
        t1 = Transaction(txid=bytes(8) + sha256(b"a")[:24])
        t2 = Transaction(txid=bytes(8) + sha256(b"b")[:24])
        index = ShortIdIndex()
        index.add(t1)
        index.add(t2)
        assert t1.short_id() in index.collisions
        assert index.get(t1.short_id()) is t1  # first entry wins

    def test_readding_same_tx_not_a_collision(self, txgen):
        index = ShortIdIndex()
        tx = txgen.make()
        index.add(tx)
        index.add(tx)
        assert not index.collisions
        assert len(index) == 1
