"""Tests for the message-driven Graphene engines."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.core.engine import (
    ActionKind,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
    ReceiverPhase,
)
from repro.errors import ParameterError, ProtocolFailure


def _run_exchange(scenario, config=None):
    """Drive the two engines to completion; return (action, receiver)."""
    sender = GrapheneSenderEngine(scenario.block)
    receiver = GrapheneReceiverEngine(scenario.receiver_mempool)
    action = receiver.start()
    assert action.command == "getdata"
    reply = sender.on_getdata(action.message).message
    action = receiver.on_p1_payload(reply)
    if action.kind is ActionKind.SEND:
        assert action.command == "graphene_p2_request"
        reply = sender.on_p2_request(action.message).message
        action = receiver.on_p2_response(reply)
    if action.kind is ActionKind.SEND:
        assert action.command == "getdata_shortids"
        reply = sender.on_shortid_request(action.message).message
        action = receiver.on_tx_list(reply)
    return action, receiver


class TestHappyPath:
    def test_protocol1_only(self):
        sc = make_block_scenario(n=150, extra=150, fraction=1.0, seed=81)
        action, receiver = _run_exchange(sc)
        assert action.kind is ActionKind.DONE
        assert receiver.phase is ReceiverPhase.DONE
        assert [t.txid for t in action.txs] == sc.block.txids

    def test_protocol2_fallback(self):
        sc = make_block_scenario(n=150, extra=150, fraction=0.9, seed=82)
        action, receiver = _run_exchange(sc)
        assert action.kind is ActionKind.DONE
        assert [t.txid for t in action.txs] == sc.block.txids

    def test_special_case_m_equals_n(self):
        sc = make_block_scenario(n=120, extra=0, fraction=0.6, seed=83)
        action, _ = _run_exchange(sc)
        assert action.kind is ActionKind.DONE
        assert [t.txid for t in action.txs] == sc.block.txids

    def test_many_scenarios_end_to_end(self):
        done = 0
        for t in range(20):
            sc = make_block_scenario(n=100, extra=100,
                                     fraction=0.85 + 0.01 * (t % 10),
                                     seed=8400 + t)
            action, _ = _run_exchange(sc)
            if action.kind is ActionKind.DONE:
                done += 1
                assert [x.txid for x in action.txs] == sc.block.txids
        assert done >= 19  # failures essentially absent

    def test_byte_counters_track_traffic(self):
        sc = make_block_scenario(n=150, extra=150, fraction=0.9, seed=85)
        _, receiver = _run_exchange(sc)
        assert receiver.bytes_sent > 0
        assert receiver.bytes_received > 0


class TestSenderEngine:
    def test_serves_multiple_receivers(self):
        sc1 = make_block_scenario(n=100, extra=100, fraction=1.0, seed=86)
        sender = GrapheneSenderEngine(sc1.block)
        for extra_seed in (1, 2, 3):
            sc = make_block_scenario(n=100, extra=100, fraction=1.0,
                                     seed=86)  # same block content
            receiver = GrapheneReceiverEngine(sc.receiver_mempool)
            action = receiver.start()
            reply = sender.on_getdata(action.message).message
            action = receiver.on_p1_payload(reply)
            assert action.kind is ActionKind.DONE

    def test_rejects_short_getdata(self):
        sc = make_block_scenario(n=10, extra=10, fraction=1.0, seed=87)
        with pytest.raises(ParameterError):
            GrapheneSenderEngine(sc.block).on_getdata(b"\x01")

    def test_shortid_request_roundtrip(self):
        sc = make_block_scenario(n=20, extra=0, fraction=1.0, seed=88)
        sender = GrapheneSenderEngine(sc.block)
        tx = sc.block.txs[3]
        message = tx.short_id().to_bytes(8, "little")
        from repro.net.wire import decode_tx_list
        txs, _ = decode_tx_list(sender.on_shortid_request(message).message)
        assert len(txs) == 1 and txs[0].txid == tx.txid


class TestPhaseDiscipline:
    def test_cannot_start_twice(self):
        sc = make_block_scenario(n=10, extra=10, fraction=1.0, seed=89)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        receiver.start()
        with pytest.raises(ProtocolFailure):
            receiver.start()

    def test_out_of_order_messages_rejected(self):
        sc = make_block_scenario(n=10, extra=10, fraction=1.0, seed=90)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        with pytest.raises(ProtocolFailure):
            receiver.on_p2_response(b"\x00" * 40)
        with pytest.raises(ProtocolFailure):
            receiver.on_tx_list(b"\x00")

    def test_handle_dispatch(self):
        sc = make_block_scenario(n=50, extra=50, fraction=1.0, seed=91)
        sender = GrapheneSenderEngine(sc.block)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        action = receiver.start()
        reply = sender.on_getdata(action.message).message
        action = receiver.handle("graphene_block", reply)
        assert action.kind is ActionKind.DONE

    def test_handle_unknown_command(self):
        sc = make_block_scenario(n=10, extra=10, fraction=1.0, seed=92)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        with pytest.raises(ParameterError):
            receiver.handle("nonsense", b"")


class TestHeaderParsing:
    def test_header_roundtrip(self):
        from repro.chain.block import BlockHeader
        from repro.core.engine import _parse_header
        header = BlockHeader(version=3, prev_hash=bytes(range(32)),
                             merkle_root=bytes(reversed(range(32))),
                             timestamp=12345, bits=0x1D00FFFF, nonce=777)
        parsed = _parse_header(header.serialize())
        assert parsed == header

    def test_wrong_length_rejected(self):
        import pytest as _pytest
        from repro.core.engine import _parse_header
        from repro.errors import ParameterError
        with _pytest.raises(ParameterError):
            _parse_header(b"\x00" * 79)
