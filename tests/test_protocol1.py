"""Tests for Graphene Protocol 1."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.core.protocol1 import (
    SEED_I,
    SEED_S,
    build_protocol1,
    receive_protocol1,
)


class TestBuild:
    def test_payload_parts(self, small_scenario, config):
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config)
        assert payload.n == small_scenario.n
        assert payload.bloom_s.count == small_scenario.n
        assert payload.iblt_i.count == small_scenario.n
        assert payload.recover >= 1

    def test_wire_size_sums_parts(self, small_scenario, config):
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config)
        assert payload.wire_size() >= (payload.bloom_bytes
                                       + payload.iblt_bytes)

    def test_seeds_differ_between_s_and_i(self):
        assert SEED_S != SEED_I

    def test_bloom_contains_all_block_txids(self, small_scenario, config):
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config)
        for tx in small_scenario.block.txs:
            assert tx.txid in payload.bloom_s

    def test_plan_override(self, small_scenario, config):
        from repro.core.params import optimize_a
        plan = optimize_a(small_scenario.n, small_scenario.m, config)
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config, plan=plan)
        assert payload.plan is plan


class TestReceiveHappyPath:
    def test_success_with_synced_mempool(self, small_scenario, config):
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config)
        result = receive_protocol1(payload, small_scenario.receiver_mempool,
                                   config, validate_block=small_scenario.block)
        assert result.success
        assert result.merkle_ok
        assert len(result.txs) == small_scenario.n
        assert [t.txid for t in result.txs] == small_scenario.block.txids

    def test_candidates_cover_block(self, small_scenario, config):
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config)
        result = receive_protocol1(payload, small_scenario.receiver_mempool,
                                   config, validate_block=small_scenario.block)
        # No Bloom false negatives: all block txns must be candidates.
        for txid in small_scenario.block.txid_set():
            assert txid in result.candidates

    def test_mempool_sync_mode_no_merkle(self, small_scenario, config):
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config)
        result = receive_protocol1(payload, small_scenario.receiver_mempool,
                                   config, validate_block=None)
        assert result.success
        assert not result.merkle_ok  # merkle was never checked
        assert {t.txid for t in result.txs} == small_scenario.block.txid_set()

    def test_exact_mempool_equals_block(self, config):
        # m == n: degenerate filter, IBLT-only, must still succeed.
        sc = make_block_scenario(n=120, extra=0, fraction=1.0, seed=31)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        assert payload.bloom_s.is_degenerate
        result = receive_protocol1(payload, sc.receiver_mempool, config,
                                   validate_block=sc.block)
        assert result.success


class TestReceiveFailurePaths:
    def test_missing_txs_flagged(self, missing_scenario, config):
        payload = build_protocol1(missing_scenario.block.txs,
                                  missing_scenario.m, config)
        result = receive_protocol1(payload,
                                   missing_scenario.receiver_mempool,
                                   config,
                                   validate_block=missing_scenario.block)
        assert not result.success
        # Either the IBLT failed outright, or it decoded and identified
        # the missing transactions by short ID.
        if result.decode_complete:
            missing_sids = {tx.short_id() for tx in missing_scenario.missing}
            assert result.missing_short_ids <= missing_sids

    def test_state_preserved_for_protocol2(self, missing_scenario, config):
        payload = build_protocol1(missing_scenario.block.txs,
                                  missing_scenario.m, config)
        result = receive_protocol1(payload,
                                   missing_scenario.receiver_mempool,
                                   config,
                                   validate_block=missing_scenario.block)
        assert result.iblt_diff is not None
        assert result.z == len(result.candidates)

    def test_badly_undersynced_receiver_fails(self, config):
        sc = make_block_scenario(n=200, extra=200, fraction=0.5, seed=32)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        result = receive_protocol1(payload, sc.receiver_mempool, config,
                                   validate_block=sc.block)
        assert not result.success


class TestStatisticalBehaviour:
    def test_decode_rate_meets_beta(self, config):
        # Paper Fig. 15: failure rate well under 1/240 for synced pools.
        failures = 0
        trials = 120
        for t in range(trials):
            sc = make_block_scenario(n=100, extra=100, fraction=1.0,
                                     seed=5000 + t)
            payload = build_protocol1(sc.block.txs, sc.m, config)
            result = receive_protocol1(payload, sc.receiver_mempool, config,
                                       validate_block=sc.block)
            if not result.success:
                failures += 1
        assert failures <= 2

    def test_false_positive_count_near_a(self, config):
        # The candidate set should exceed the block by roughly `a`.
        sc = make_block_scenario(n=500, extra=2500, fraction=1.0, seed=33)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        result = receive_protocol1(payload, sc.receiver_mempool, config,
                                   validate_block=sc.block)
        observed_fps = result.z - sc.n
        assert observed_fps <= payload.recover


class TestPrefill:
    """The step-3 note: send transactions the receiver cannot have."""

    def test_coinbase_auto_prefilled(self, config):
        from repro.chain.block import Block
        from repro.chain.mempool import Mempool
        from repro.chain.transaction import TransactionGenerator
        gen = TransactionGenerator(seed=61)
        txs = gen.make_batch(100)
        coinbase = gen.make_coinbase()
        block = Block.assemble(txs + [coinbase])
        receiver = Mempool(txs)  # receiver has everything BUT the coinbase
        receiver.add_many(gen.make_batch(50))

        payload = build_protocol1(block.txs, len(receiver), config)
        assert any(tx.is_coinbase for tx in payload.prefilled)
        result = receive_protocol1(payload, receiver, config,
                                   validate_block=block)
        # Protocol 1 alone suffices despite the missing coinbase.
        assert result.success

    def test_prefill_disabled_forces_protocol2(self, config):
        from repro.chain.block import Block
        from repro.chain.mempool import Mempool
        from repro.chain.transaction import TransactionGenerator
        gen = TransactionGenerator(seed=62)
        txs = gen.make_batch(100)
        coinbase = gen.make_coinbase()
        block = Block.assemble(txs + [coinbase])
        receiver = Mempool(txs)
        receiver.add_many(gen.make_batch(50))

        payload = build_protocol1(block.txs, len(receiver), config,
                                  auto_prefill_coinbase=False)
        assert not payload.prefilled
        result = receive_protocol1(payload, receiver, config,
                                   validate_block=block)
        assert not result.success  # the coinbase is unrecoverable locally

    def test_prefill_charged_on_the_wire(self, config):
        from repro.chain.transaction import TransactionGenerator
        gen = TransactionGenerator(seed=63)
        txs = gen.make_batch(50) + [gen.make_coinbase(size=120)]
        with_prefill = build_protocol1(txs, 100, config)
        without = build_protocol1(txs, 100, config,
                                  auto_prefill_coinbase=False)
        assert with_prefill.wire_size() >= without.wire_size() + 120

    def test_explicit_prefill_list(self, config, small_scenario):
        extra_push = small_scenario.block.txs[:3]
        payload = build_protocol1(small_scenario.block.txs,
                                  small_scenario.m, config,
                                  prefill=extra_push)
        assert len(payload.prefilled) == 3
        result = receive_protocol1(payload, small_scenario.receiver_mempool,
                                   config,
                                   validate_block=small_scenario.block)
        assert result.success
