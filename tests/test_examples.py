"""Smoke tests for the example scripts.

Each example is importable without side effects (work happens under
``if __name__ == "__main__"``), and the cheapest two run end-to-end.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.stem for path in EXAMPLES}
        assert {"quickstart", "mempool_sync_demo", "iblt_tuning",
                "attack_resilience", "block_propagation_network",
                "fork_rate_analysis", "mining_forks",
                "alternative_structures"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_imports_cleanly(self, path):
        module = _load(path)
        assert callable(module.main)

    def test_quickstart_runs(self, capsys):
        _load(EXAMPLES_DIR / "quickstart.py").main()
        out = capsys.readouterr().out
        assert "Graphene" in out and "Compact Blocks" in out

    def test_attack_resilience_runs(self, capsys):
        _load(EXAMPLES_DIR / "attack_resilience.py").main()
        out = capsys.readouterr().out
        assert "decoder halted safely" in out
