"""Tests for the block tree / fork choice."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.ledger import (
    Blockchain,
    ChainEvent,
    assemble_child,
    block_hash,
)
from repro.chain.transaction import TransactionGenerator


@pytest.fixture
def gen():
    return TransactionGenerator(seed=99)


def _child(parent, gen, count=2):
    return assemble_child(parent, gen.make_batch(count))


class TestLinearGrowth:
    def test_genesis_only(self):
        chain = Blockchain()
        assert chain.height == 0
        assert len(chain) == 1
        assert chain.fork_rate() == 0.0

    def test_extend_tip(self, gen):
        chain = Blockchain()
        b1 = _child(chain.tip, gen)
        assert chain.add_block(b1) is ChainEvent.EXTENDED_TIP
        assert chain.height == 1
        assert chain.tip is b1

    def test_main_chain_order(self, gen):
        chain = Blockchain()
        blocks = []
        for _ in range(5):
            block = _child(chain.tip, gen)
            chain.add_block(block)
            blocks.append(block)
        main = list(chain.main_chain())
        assert main[0] is chain.genesis
        assert main[1:] == blocks

    def test_duplicate_detected(self, gen):
        chain = Blockchain()
        block = _child(chain.tip, gen)
        chain.add_block(block)
        assert chain.add_block(block) is ChainEvent.DUPLICATE


class TestForks:
    def test_equal_height_keeps_first_seen(self, gen):
        chain = Blockchain()
        base = _child(chain.tip, gen)
        chain.add_block(base)
        left = assemble_child(base, gen.make_batch(2))
        right = assemble_child(base, gen.make_batch(2))
        assert chain.add_block(left) is ChainEvent.EXTENDED_TIP
        assert chain.add_block(right) is ChainEvent.CREATED_FORK
        assert chain.tip is left  # first seen wins
        assert len(chain.stale_blocks()) == 1
        assert chain.fork_rate() == pytest.approx(1 / 3)

    def test_longer_branch_reorganizes(self, gen):
        chain = Blockchain()
        base = _child(chain.tip, gen)
        chain.add_block(base)
        left = assemble_child(base, gen.make_batch(2))
        chain.add_block(left)
        right = assemble_child(base, gen.make_batch(2))
        chain.add_block(right)                      # losing fork...
        right2 = assemble_child(right, gen.make_batch(2))
        event = chain.add_block(right2)             # ...now longer
        assert event is ChainEvent.REORGANIZED
        assert chain.tip is right2
        assert len(chain.reorgs) == 1
        info = chain.reorgs[0]
        assert info.depth == 1
        assert info.disconnected == [block_hash(left)]
        assert info.connected == [block_hash(right), block_hash(right2)]

    def test_stale_blocks_after_reorg(self, gen):
        chain = Blockchain()
        base = _child(chain.tip, gen)
        chain.add_block(base)
        left = assemble_child(base, gen.make_batch(2))
        chain.add_block(left)
        right = assemble_child(base, gen.make_batch(2))
        chain.add_block(right)
        chain.add_block(assemble_child(right, gen.make_batch(2)))
        stale = chain.stale_blocks()
        assert len(stale) == 1 and stale[0] is left


class TestOrphans:
    def test_orphan_held_then_adopted(self, gen):
        chain = Blockchain()
        b1 = _child(chain.tip, gen)
        b2 = assemble_child(b1, gen.make_batch(2))
        assert chain.add_block(b2) is ChainEvent.ORPHAN
        assert chain.height == 0
        chain.add_block(b1)
        # b2 auto-connected once its parent arrived.
        assert chain.height == 2
        assert chain.tip is b2

    def test_orphan_chain_of_two(self, gen):
        chain = Blockchain()
        b1 = _child(chain.tip, gen)
        b2 = assemble_child(b1, gen.make_batch(1))
        b3 = assemble_child(b2, gen.make_batch(1))
        chain.add_block(b3)
        chain.add_block(b2)
        assert chain.height == 0
        chain.add_block(b1)
        assert chain.height == 3


class TestHashing:
    def test_block_hash_depends_on_header(self, gen):
        a = Block.assemble(gen.make_batch(2), nonce=1)
        b = Block.assemble(list(a.txs), nonce=2)
        assert a.header.merkle_root == b.header.merkle_root
        assert block_hash(a) != block_hash(b)

    def test_coinbase_differentiates_same_mempool_blocks(self, gen):
        txs = gen.make_batch(5)
        a = Block.assemble(txs + [gen.make_coinbase()])
        b = Block.assemble(txs + [gen.make_coinbase()])
        assert a.header.merkle_root != b.header.merkle_root
