"""Tests for canonical transaction ordering and ordering-cost model."""

from __future__ import annotations

import math

import pytest

from repro.chain.ordering import (
    canonical_order,
    is_canonically_ordered,
    ordering_info_bytes,
)


class TestCanonicalOrder:
    def test_sorted_by_txid(self, txgen):
        txs = txgen.make_batch(30)
        ordered = canonical_order(txs)
        assert [t.txid for t in ordered] == sorted(t.txid for t in txs)

    def test_idempotent(self, txgen):
        txs = canonical_order(txgen.make_batch(10))
        assert canonical_order(txs) == txs

    def test_is_canonically_ordered(self, txgen):
        txs = canonical_order(txgen.make_batch(10))
        assert is_canonically_ordered(txs)
        assert not is_canonically_ordered(list(reversed(txs)))

    def test_empty_and_single(self, txgen):
        assert is_canonically_ordered([])
        assert is_canonically_ordered([txgen.make()])

    def test_does_not_mutate_input(self, txgen):
        txs = txgen.make_batch(5)
        snapshot = list(txs)
        canonical_order(txs)
        assert txs == snapshot


class TestOrderingCost:
    def test_zero_for_tiny(self):
        assert ordering_info_bytes(0) == 0
        assert ordering_info_bytes(1) == 0

    def test_matches_log_factorial(self):
        n = 1000
        expected_bits = math.lgamma(n + 1) / math.log(2)
        assert ordering_info_bytes(n) == math.ceil(expected_bits / 8)

    def test_superlinear_growth(self):
        # n log n growth: per-item cost increases with n.
        per_item_small = ordering_info_bytes(100) / 100
        per_item_large = ordering_info_bytes(10_000) / 10_000
        assert per_item_large > per_item_small

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ordering_info_bytes(-1)

    def test_dominates_graphene_for_large_n(self):
        # Paper 6.2: ordering info exceeds Graphene itself as n grows.
        from repro.analysis.theory import graphene_protocol1_bytes
        n = 10_000
        assert ordering_info_bytes(n) > graphene_protocol1_bytes(n, 2 * n)
