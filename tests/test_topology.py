"""Tests for the generated topologies (scale-free + geo link model)."""

from __future__ import annotations

import math
import random
from collections import deque

import pytest

from repro.errors import ParameterError
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.topology import GeoLinkModel, connect_scale_free


def build(n, m=4, seed=7, link_model=None):
    sim = Simulator()
    nodes = [Node(f"t{i:04d}", sim) for i in range(n)]
    connect_scale_free(nodes, m=m, rng=random.Random(seed),
                       link_model=link_model)
    return nodes


def edge_set(nodes):
    """Undirected edges as frozenset pairs of node ids."""
    return {frozenset((a.node_id, b.node_id))
            for a in nodes for b in a.peers}


class TestScaleFree:
    def test_seeded_reproducibility(self):
        model = GeoLinkModel()
        first = build(80, m=3, seed=42, link_model=model)
        second = build(80, m=3, seed=42, link_model=model)
        assert edge_set(first) == edge_set(second)
        # Link parameters reproduce too, not just the edge set.
        params_a = sorted(
            (a.node_id, b.node_id, link.latency, link.bandwidth)
            for a in first for b, link in a.peers.items())
        params_b = sorted(
            (a.node_id, b.node_id, link.latency, link.bandwidth)
            for a in second for b, link in a.peers.items())
        assert params_a == params_b

    def test_different_seeds_differ(self):
        assert edge_set(build(80, seed=1)) != edge_set(build(80, seed=2))

    def test_degree_distribution_shape(self):
        m = 4
        nodes = build(400, m=m, seed=11)
        degrees = sorted(len(node.peers) for node in nodes)
        # Every node attaches with at least m edges ...
        assert degrees[0] >= m
        # ... the mean approaches 2m (each edge counted twice) ...
        mean = sum(degrees) / len(degrees)
        assert 2 * m * 0.9 <= mean <= 2 * m * 1.1
        # ... and preferential attachment grows hubs far beyond the
        # median -- the power-law tail a uniform graph never shows.
        median = degrees[len(degrees) // 2]
        assert degrees[-1] >= 4 * m
        assert degrees[-1] >= 3 * median
        assert median <= 3 * m

    def test_connectivity_no_isolated_nodes(self):
        nodes = build(200, m=2, seed=5)
        seen = {nodes[0]}
        frontier = deque([nodes[0]])
        while frontier:
            for peer in frontier.popleft().peers:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        assert len(seen) == len(nodes)

    def test_small_network_degenerates_to_clique(self):
        nodes = build(4, m=5, seed=3)
        assert all(len(node.peers) == 3 for node in nodes)

    def test_rejects_bad_m(self):
        sim = Simulator()
        nodes = [Node(f"x{i}", sim) for i in range(4)]
        with pytest.raises(ParameterError):
            connect_scale_free(nodes, m=0)

    def test_uniform_links_without_model(self):
        nodes = build(50, m=3, seed=9)
        for node in nodes:
            for link in node.peers.values():
                assert link.latency == 0.05
                assert link.bandwidth == 1_000_000.0
                assert link.loss_rate == 0.0


class TestGeoLinkModel:
    def test_link_parameter_ranges(self):
        model = GeoLinkModel(loss_rate=0.02)
        nodes = build(120, m=4, seed=13, link_model=model)
        ceiling = model.max_latency()
        floor = model.base_latency * (1 - model.jitter / 2)
        classes = set(model.bandwidth_classes)
        for node in nodes:
            for link in node.peers.values():
                assert floor - 1e-12 <= link.latency <= ceiling + 1e-12
                assert link.bandwidth in classes
                assert link.loss_rate == 0.02

    def test_bandwidth_mix_is_skewed(self):
        model = GeoLinkModel()
        nodes = build(200, m=4, seed=17, link_model=model)
        counts = {bw: 0 for bw in model.bandwidth_classes}
        total = 0
        for node in nodes:
            for link in node.peers.values():
                counts[link.bandwidth] += 1
                total += 1
        # The weighted draw must roughly honour its weights: the
        # heaviest class dominates and the rare class stays rare.
        assert counts[model.bandwidth_classes[0]] > total * 0.35
        assert counts[model.bandwidth_classes[-1]] < total * 0.30

    def test_latency_tracks_distance(self):
        model = GeoLinkModel(jitter=0.0)
        rng = random.Random(0)
        near = model.link((0.1, 0.1), (0.1, 0.2), rng)
        far = model.link((0.0, 0.0), (1.0, 1.0), rng)
        assert far.latency > near.latency
        assert math.isclose(
            far.latency,
            model.base_latency + math.sqrt(2) * model.latency_per_unit)

    def test_validation(self):
        with pytest.raises(ParameterError):
            GeoLinkModel(base_latency=0.0)
        with pytest.raises(ParameterError):
            GeoLinkModel(jitter=2.5)
        with pytest.raises(ParameterError):
            GeoLinkModel(bandwidth_classes=(1.0,),
                         bandwidth_weights=(0.5, 0.5))
