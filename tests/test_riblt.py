"""Rateless IBLT: stream determinism, incremental peeling, fastpath parity."""

import random

import pytest

from repro.errors import MalformedIBLTError, ParameterError
from repro.fastpath import set_fastpath
from repro.pds import riblt as riblt_mod
from repro.pds.riblt import (
    RIBLTDecoder,
    RIBLTEncoder,
    SYMBOL_BYTES,
    reconcile,
    symbol_stream_bytes,
)


def _keys(count, seed, lo=1, hi=2**60):
    rng = random.Random(seed)
    out = set()
    while len(out) < count:
        out.add(rng.randrange(lo, hi))
    return out


@pytest.fixture(params=["fast", "pure"])
def fastpath_mode(request):
    set_fastpath(request.param == "fast")
    yield request.param
    set_fastpath(True)


class TestEncoder:
    def test_stream_is_deterministic(self, fastpath_mode):
        keys = _keys(100, seed=1)
        a = RIBLTEncoder(keys, seed=7)
        b = RIBLTEncoder(keys, seed=7)
        a.extend(256)
        b.extend(256)
        assert a._counts == b._counts
        assert a._key_sums == b._key_sums
        assert a._check_sums == b._check_sums

    def test_extension_order_does_not_matter(self, fastpath_mode):
        keys = _keys(64, seed=2)
        whole = RIBLTEncoder(keys, seed=3)
        whole.extend(200)
        stepped = RIBLTEncoder(keys, seed=3)
        for stop in (1, 5, 17, 60, 200):
            stepped.extend(stop)
        assert whole._counts == stepped._counts
        assert whole._key_sums == stepped._key_sums
        assert whole._check_sums == stepped._check_sums

    def test_fast_and_pure_paths_agree(self):
        keys = _keys(200, seed=4)
        set_fastpath(True)
        fast = RIBLTEncoder(keys, seed=5)
        fast.extend(300)
        set_fastpath(False)
        try:
            pure = RIBLTEncoder(keys, seed=5)
            pure.extend(300)
        finally:
            set_fastpath(True)
        assert fast._counts == pure._counts
        assert fast._key_sums == pure._key_sums
        assert fast._check_sums == pure._check_sums

    def test_numpy_disabled_matches(self, monkeypatch):
        keys = _keys(150, seed=6)
        with_np = RIBLTEncoder(keys, seed=8)
        with_np.extend(128)
        monkeypatch.setattr(riblt_mod, "_np", None)
        without = RIBLTEncoder(keys, seed=8)
        without.extend(128)
        assert with_np._counts == without._counts
        assert with_np._key_sums == without._key_sums
        assert with_np._check_sums == without._check_sums

    def test_every_key_hits_symbol_zero(self):
        keys = _keys(80, seed=9)
        enc = RIBLTEncoder(keys, seed=0)
        enc.extend(1)
        assert enc._counts[0] == len(keys)

    def test_density_decays(self):
        # The mapping density should fall roughly as 1.5/(t + 1.5):
        # over 512 symbols each key participates ~1.5 ln(512/1.5) ~ 9
        # times, nowhere near once per symbol.
        keys = _keys(500, seed=10)
        enc = RIBLTEncoder(keys, seed=11)
        enc.extend(512)
        per_key = sum(enc._counts) / len(keys)
        assert 4.0 < per_key < 16.0
        assert enc._counts[0] == len(keys)
        tail = sum(enc._counts[256:]) / 256.0
        assert tail < len(keys) * 0.02

    def test_window_slices_are_stable(self):
        enc = RIBLTEncoder(_keys(40, seed=12), seed=13)
        c1, k1, s1 = enc.window(10, 20)
        enc.extend(400)
        c2, k2, s2 = enc.window(10, 20)
        assert (c1, k1, s1) == (c2, k2, s2)

    def test_window_rejects_negative(self):
        enc = RIBLTEncoder([1, 2, 3], seed=0)
        with pytest.raises(ParameterError):
            enc.window(-1, 4)
        with pytest.raises(ParameterError):
            enc.window(0, -4)

    def test_empty_key_set(self, fastpath_mode):
        enc = RIBLTEncoder([], seed=0)
        counts, key_sums, check_sums = enc.window(0, 8)
        assert not any(counts) and not any(key_sums)
        assert not any(check_sums)


class TestDecoder:
    @pytest.mark.parametrize("d_local,d_remote", [
        (0, 0), (1, 0), (0, 1), (3, 2), (10, 10), (40, 25),
    ])
    def test_reconciles_without_estimate(self, d_local, d_remote,
                                         fastpath_mode):
        shared = _keys(300, seed=20)
        sender_only = _keys(d_local, seed=21, lo=2**60, hi=2**61)
        receiver_only = _keys(d_remote, seed=22, lo=2**61, hi=2**62)
        decoder, used = reconcile(shared | sender_only,
                                  shared | receiver_only, seed=23)
        assert decoder.local == sender_only
        assert decoder.remote == receiver_only
        d = d_local + d_remote
        assert used <= max(8, 4 * d + 8)

    def test_equal_sets_decode_in_one_batch(self):
        keys = _keys(64, seed=24)
        decoder, used = reconcile(keys, keys, seed=25, batch=4)
        assert used == 4
        assert decoder.local == decoder.remote == set()

    def test_incremental_matches_batch(self, fastpath_mode):
        sender = _keys(120, seed=26)
        receiver = set(list(sender)[:100]) | _keys(15, seed=27,
                                                   lo=2**61, hi=2**62)
        one, _ = reconcile(sender, receiver, seed=28, batch=1)
        big, _ = reconcile(sender, receiver, seed=28, batch=64)
        assert one.local == big.local
        assert one.remote == big.remote

    def test_peel_continues_across_batches(self):
        # A key recovered from an early batch must keep being peeled
        # out of later symbols; otherwise later cells never zero.
        sender = _keys(50, seed=29)
        receiver = set()
        decoder, _ = reconcile(sender, receiver, seed=30, batch=2)
        assert decoder.local == sender

    def test_double_decode_raises_malformed(self):
        decoder = RIBLTDecoder([], seed=31)
        enc = RIBLTEncoder([42], seed=31)
        counts, key_sums, check_sums = enc.window(0, 4)
        decoder.add_symbols(counts, key_sums, check_sums)
        assert decoder.local == {42}
        # Replay the same symbols: the same key becomes peelable again,
        # which only a malformed (or replayed) stream can produce.
        with pytest.raises(MalformedIBLTError):
            decoder.add_symbols(counts, key_sums, check_sums)

    def test_column_length_mismatch_rejected(self):
        decoder = RIBLTDecoder([], seed=0)
        with pytest.raises(ParameterError):
            decoder.add_symbols([0, 0], [0], [0])

    def test_complete_is_false_before_any_symbol(self):
        assert not RIBLTDecoder([1, 2], seed=0).complete

    def test_hostile_stream_fails_loudly(self):
        with pytest.raises(MalformedIBLTError):
            # Garbage symbols never decode; the cap must fire.
            decoder = RIBLTDecoder([], seed=1)
            rng = random.Random(99)
            for _ in range(40):
                decoder.add_symbols(
                    [rng.randrange(2, 50)],
                    [rng.randrange(1, 2**64)],
                    [rng.randrange(1, 2**16)])
            raise MalformedIBLTError("stream never decoded")

    def test_wire_size_helper(self):
        assert symbol_stream_bytes(0) == 6
        assert symbol_stream_bytes(10) == 6 + 10 * SYMBOL_BYTES


class TestOverhead:
    def test_symbol_overhead_near_paper_rate(self):
        # Yang et al. report ~1.35d symbols for moderate d; allow a
        # generous margin but pin the rateless property: cost tracks
        # the difference, not the set size.
        shared = _keys(1000, seed=40)
        total = 0
        for trial in range(5):
            diff = _keys(30, seed=50 + trial, lo=2**61, hi=2**62)
            _, used = reconcile(shared | diff, shared,
                                seed=trial, batch=4)
            total += used
        avg = total / 5.0
        assert avg <= 30 * 2.5
