"""Tests for the throughput-ceiling analysis."""

from __future__ import annotations

import pytest

from repro.analysis.throughput import (
    RELAY_MODELS,
    ThroughputCeiling,
    max_throughput,
    propagation_delay,
    throughput_table,
)
from repro.errors import ParameterError


class TestPropagationDelay:
    def test_formula(self):
        assert propagation_delay(1000, hops=2, latency=0.1,
                                 bandwidth=1000) == pytest.approx(2.2)

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            propagation_delay(100, hops=0)
        with pytest.raises(ParameterError):
            propagation_delay(-1)


class TestModels:
    def test_all_protocols_registered(self):
        assert {"graphene", "compact_blocks", "xthin", "bloom_only",
                "full_block"} <= set(RELAY_MODELS)

    def test_graphene_smallest_at_scale(self):
        n, m = 5000, 10_000
        sizes = {name: model(n, m) for name, model in RELAY_MODELS.items()}
        assert sizes["graphene"] == min(sizes.values())

    def test_full_block_largest(self):
        n, m = 5000, 10_000
        sizes = {name: model(n, m) for name, model in RELAY_MODELS.items()}
        assert sizes["full_block"] == max(sizes.values())


class TestCeilings:
    def test_graphene_admits_most_throughput(self):
        rows = {row["protocol"]: row for row in throughput_table(
            fork_budget=0.01, bandwidth=100_000.0, n_ceiling=200_000)}
        assert (rows["graphene"]["max_tps"]
                >= rows["compact_blocks"]["max_tps"]
                > rows["full_block"]["max_tps"])

    def test_ceiling_respects_budget(self):
        ceiling = max_throughput("compact_blocks", fork_budget=0.005,
                                 bandwidth=100_000.0, n_ceiling=100_000)
        assert ceiling.delay_at_max <= ceiling.allowed_delay
        assert ceiling.max_block_txns >= 1

    def test_tighter_budget_lower_ceiling(self):
        loose = max_throughput("compact_blocks", fork_budget=0.02,
                               bandwidth=50_000.0, n_ceiling=100_000)
        tight = max_throughput("compact_blocks", fork_budget=0.002,
                               bandwidth=50_000.0, n_ceiling=100_000)
        assert tight.max_block_txns <= loose.max_block_txns

    def test_impossible_budget_yields_zero(self):
        ceiling = max_throughput("full_block", fork_budget=1e-7,
                                 latency=10.0, bandwidth=1000.0)
        assert ceiling.max_block_txns == 0
        assert ceiling.max_tps == 0.0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ParameterError):
            max_throughput("carrier-pigeon")

    def test_more_bandwidth_more_throughput(self):
        slow = max_throughput("full_block", bandwidth=50_000.0,
                              n_ceiling=100_000)
        fast = max_throughput("full_block", bandwidth=500_000.0,
                              n_ceiling=100_000)
        assert fast.max_block_txns >= slow.max_block_txns

    def test_result_type(self):
        assert isinstance(max_throughput("graphene", n_ceiling=50_000),
                          ThroughputCeiling)
