"""Tests for Theorems 1-3 (a*, x*, y*)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.bounds import (
    BETA_DEFAULT,
    a_star,
    theorem2_tail,
    x_star,
    y_star,
)
from repro.errors import ParameterError
from repro.utils.stats import binomial_sample


class TestAStar:
    def test_exceeds_mean(self):
        assert a_star(10.0) > 10.0

    def test_matches_closed_form(self):
        # a* = (1 + delta) a with delta = (s + sqrt(s^2 + 8s)) / 2.
        a, beta = 20.0, BETA_DEFAULT
        s = -math.log(1.0 - beta) / a
        delta = 0.5 * (s + math.sqrt(s * s + 8 * s))
        assert a_star(a, beta) == pytest.approx((1 + delta) * a)

    def test_relative_overshoot_shrinks_with_a(self):
        ratios = [a_star(a) / a for a in (1, 10, 100, 1000)]
        assert ratios == sorted(ratios, reverse=True)

    def test_higher_beta_higher_bound(self):
        assert a_star(10, 0.9999) > a_star(10, 0.99)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            a_star(0.0)
        with pytest.raises(ParameterError):
            a_star(10.0, 1.0)

    def test_empirical_coverage(self):
        # Pr[A <= a*] should be at least beta for Binomial false positives.
        rng = random.Random(7)
        m_minus_n, fpr, beta = 4000, 0.01, BETA_DEFAULT
        a = m_minus_n * fpr
        bound = a_star(a, beta)
        trials = 3000
        covered = sum(
            binomial_sample(rng, m_minus_n, fpr) <= bound
            for _ in range(trials))
        assert covered / trials >= beta - 0.01


class TestXStar:
    def test_lower_bounds_truth_typically(self):
        # x = 80 of 100 block txns held, m = 200, f = 0.02.
        rng = random.Random(11)
        m, x, fpr = 200, 80, 0.02
        hold = 0
        trials = 500
        for _ in range(trials):
            y = binomial_sample(rng, m - x, fpr)
            if x_star(x + y, m, fpr, n=100) <= x:
                hold += 1
        assert hold / trials >= BETA_DEFAULT - 0.02

    def test_never_exceeds_z(self):
        assert x_star(z=50, m=1000, fpr=0.1) <= 50

    def test_never_exceeds_n(self):
        assert x_star(z=500, m=1000, fpr=0.001, n=100) <= 100

    def test_zero_z(self):
        assert x_star(z=0, m=100, fpr=0.01) == 0

    def test_tightens_with_smaller_fpr(self):
        # Fewer expected false positives -> more of z must be true.
        loose = x_star(z=100, m=10_000, fpr=0.05)
        tight = x_star(z=100, m=10_000, fpr=0.0001)
        assert tight >= loose

    def test_fpr_one_uninformative(self):
        # Everything passes a degenerate filter: no lower bound.
        assert x_star(z=100, m=100, fpr=1.0) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            x_star(z=10, m=5, fpr=0.1)
        with pytest.raises(ParameterError):
            x_star(z=1, m=5, fpr=0.0)
        with pytest.raises(ParameterError):
            x_star(z=1, m=5, fpr=0.1, beta=1.0)


class TestTheorem2Tail:
    def test_negative_k_is_zero(self):
        assert theorem2_tail(10, 100, 0.1, -1) == 0.0

    def test_monotone_in_k(self):
        values = [theorem2_tail(50, 1000, 0.01, k) for k in (0, 10, 30, 50)]
        assert values == sorted(values)

    def test_capped_at_one(self):
        assert theorem2_tail(100, 100, 1.0, 100) == 1.0


class TestYStar:
    def test_upper_bounds_truth_typically(self):
        rng = random.Random(13)
        m, x, fpr = 400, 150, 0.05
        hold = 0
        trials = 500
        for _ in range(trials):
            y = binomial_sample(rng, m - x, fpr)
            if y_star(x + y, m, fpr, n=200) >= y:
                hold += 1
        assert hold / trials >= BETA_DEFAULT - 0.02

    def test_zero_when_nothing_can_be_false(self):
        # x* == m: no transactions left to be false positives.
        assert y_star(z=10, m=10, fpr=0.5, xstar=10) == 0

    def test_exceeds_expectation(self):
        m, xstar, fpr = 1000, 200, 0.02
        assert y_star(z=300, m=m, fpr=fpr, xstar=xstar) > (m - xstar) * fpr

    def test_explicit_xstar_respected(self):
        a = y_star(z=100, m=1000, fpr=0.05, xstar=0)
        b = y_star(z=100, m=1000, fpr=0.05, xstar=90)
        assert a > b

    def test_rejects_bad_beta(self):
        with pytest.raises(ParameterError):
            y_star(z=10, m=100, fpr=0.1, beta=0.0)
