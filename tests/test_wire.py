"""Tests for the binary wire codecs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.scenarios import make_block_scenario
from repro.chain.transaction import Transaction, TransactionGenerator
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import (
    build_protocol2_request,
    finish_protocol2,
    respond_protocol2,
)
from repro.errors import ParameterError
from repro.net.wire import (
    decode_bloom,
    decode_iblt,
    decode_protocol1_payload,
    decode_protocol2_request,
    decode_protocol2_response,
    decode_transaction,
    decode_tx_list,
    encode_bloom,
    encode_iblt,
    encode_protocol1_payload,
    encode_protocol2_request,
    encode_protocol2_response,
    encode_transaction,
    encode_tx_list,
)
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT
from repro.utils.hashing import sha256


class TestBloomCodec:
    def test_roundtrip_membership(self):
        bloom = BloomFilter.from_fpr(200, 0.01, seed=5)
        items = [sha256(bytes([i])) for i in range(200)]
        bloom.update(items)
        decoded, offset = decode_bloom(encode_bloom(bloom))
        assert offset == bloom.serialized_size()
        assert all(item in decoded for item in items)

    def test_identical_mistakes(self):
        # The decoded filter must make exactly the same false positives.
        bloom = BloomFilter.from_fpr(100, 0.05, seed=9)
        bloom.update(sha256(bytes([i])) for i in range(100))
        decoded, _ = decode_bloom(encode_bloom(bloom))
        probes = [sha256(b"p" + i.to_bytes(2, "little")) for i in range(2000)]
        assert ([p in bloom for p in probes]
                == [p in decoded for p in probes])

    def test_wire_length_matches_size_model(self):
        bloom = BloomFilter.from_fpr(500, 0.001)
        assert len(encode_bloom(bloom)) == bloom.serialized_size()

    def test_degenerate_filter(self):
        bloom = BloomFilter.from_fpr(10, 1.0)
        decoded, _ = decode_bloom(encode_bloom(bloom))
        assert decoded.is_degenerate
        assert sha256(b"x") in decoded

    def test_truncated_buffer_rejected(self):
        bloom = BloomFilter.from_fpr(100, 0.01)
        blob = encode_bloom(bloom)
        with pytest.raises(ParameterError):
            decode_bloom(blob[:-1])
        with pytest.raises(ParameterError):
            decode_bloom(blob[:4])


class TestIBLTCodec:
    def test_roundtrip_decode_equivalence(self, rng):
        keys = [rng.getrandbits(64) for _ in range(40)]
        iblt = IBLT(120, k=4, seed=7)
        iblt.update(keys)
        decoded, offset = decode_iblt(encode_iblt(iblt))
        assert offset == iblt.serialized_size()
        result = decoded.decode()
        assert result.complete
        assert result.local == set(keys)

    def test_wire_length_matches_size_model(self):
        iblt = IBLT(60, k=4)
        assert len(encode_iblt(iblt)) == iblt.serialized_size()

    def test_subtraction_across_the_wire(self, rng):
        # Receiver decodes a wire IBLT and subtracts her own local one.
        shared = [rng.getrandbits(64) for _ in range(30)]
        extra = [rng.getrandbits(64) for _ in range(5)]
        sender = IBLT(96, k=4, seed=3)
        sender.update(shared + extra)
        arrived, _ = decode_iblt(encode_iblt(sender))
        local = IBLT(arrived.cells, k=arrived.k, seed=arrived.seed)
        local.update(shared)
        result = arrived.subtract(local).decode()
        assert result.complete
        assert result.local == set(extra)

    def test_negative_counts_roundtrip(self, rng):
        iblt = IBLT(24, k=4)
        iblt.erase(1234)
        decoded, _ = decode_iblt(encode_iblt(iblt))
        result = decoded.decode()
        assert result.remote == {1234}

    def test_exotic_cell_width_roundtrips_full_fidelity(self):
        # cell_bytes outside 12..18 cannot carry the logical cell in
        # cell_bytes wire bytes; the codec ships whole cells instead
        # (flagged in the header) while serialized_size() keeps the
        # analytic accounting.
        iblt = IBLT(12, cell_bytes=4)
        iblt.insert(4321)
        blob = encode_iblt(iblt)
        assert len(blob) != iblt.serialized_size()
        decoded, _ = decode_iblt(blob)
        assert decoded.cell_bytes == 4
        assert decoded.serialized_size() == iblt.serialized_size()
        assert decoded.decode().local == {4321}

    def test_wide_checksum_cells(self):
        iblt = IBLT(24, k=4, cell_bytes=18)
        iblt.insert(99)
        decoded, _ = decode_iblt(encode_iblt(iblt))
        assert decoded.decode().local == {99}

    def test_truncated_rejected(self, rng):
        iblt = IBLT(24, k=4)
        blob = encode_iblt(iblt)
        with pytest.raises(ParameterError):
            decode_iblt(blob[: len(blob) // 2])


class TestBloomLoadRestore:
    """A wire-decoded filter must not lie about its target FPR or load."""

    def test_decoded_filter_reports_sane_target_fpr(self):
        # Regression: decode_bloom used to leave _target_fpr at the
        # constructor default of 1.0, so any sizing math done on a
        # decoded filter silently treated it as degenerate.
        bloom = BloomFilter.from_fpr(300, 0.02, seed=4)
        decoded, _ = decode_bloom(encode_bloom(bloom))
        assert not decoded.is_degenerate
        assert decoded.target_fpr < 1.0
        # Optimal filters satisfy f = 2^-k, which is all the wire knows.
        assert decoded.target_fpr == 0.5 ** bloom.k

    @pytest.mark.parametrize("n,fpr", [(50, 0.1), (200, 0.01),
                                       (1000, 0.001), (40, 0.0005)])
    def test_restored_load_inverts_the_sizing(self, n, fpr):
        from repro.codec import restore_bloom_load
        bloom = BloomFilter.from_fpr(n, fpr, seed=2)
        decoded, _ = decode_bloom(encode_bloom(bloom))
        restore_bloom_load(decoded, n)
        assert decoded.count == n
        # nbits = ceil(-n ln f / ln^2 2), so inverting recovers f up to
        # the ceil: the estimate lands in (f * exp(-ln^2 2 / n), f].
        assert fpr * 0.59 <= decoded.target_fpr <= fpr * 1.000001

    def test_degenerate_filter_load_not_restored(self):
        from repro.codec import restore_bloom_load
        bloom = BloomFilter.from_fpr(10, 1.0)
        decoded, _ = decode_bloom(encode_bloom(bloom))
        restore_bloom_load(decoded, 10)
        # Inserts into a degenerate filter don't count, so a loopback
        # degenerate filter holds count 0; the wire twin must match.
        assert decoded.count == 0
        assert decoded.actual_fpr() == 1.0


class TestP2RequestLoadParity:
    """The responder must see the same R either side of the wire."""

    def _request(self, config, seed=75):
        sc = make_block_scenario(n=150, extra=100, fraction=0.7, seed=seed)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        assert not p1.success
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        return request, sc

    def test_decoded_request_restores_bloom_load(self, config):
        # Regression: decode_protocol2_request left R's count at 0, so
        # the responder computed actual_fpr() == 0.0 and sized T and J
        # as if R never false-positived.
        request, _ = self._request(config)
        arrived, _ = decode_protocol2_request(
            encode_protocol2_request(request))
        assert arrived.bloom_r.count == request.bloom_r.count == request.z
        assert arrived.bloom_r.actual_fpr() == request.bloom_r.actual_fpr()
        assert arrived.bloom_r.actual_fpr() > 0.0

    def test_wire_and_loopback_responses_are_identical(self, config):
        request, sc = self._request(config)
        arrived, _ = decode_protocol2_request(
            encode_protocol2_request(request))
        loopback = respond_protocol2(request, sc.block.txs, sc.m, config)
        wire = respond_protocol2(arrived, sc.block.txs, sc.m, config)
        assert (encode_protocol2_response(wire)
                == encode_protocol2_response(loopback))


class TestTransactionCodec:
    def test_roundtrip(self, txgen):
        tx = txgen.make()
        decoded, offset = decode_transaction(encode_transaction(tx))
        assert offset == 41
        assert decoded.txid == tx.txid
        assert decoded.size == tx.size

    def test_list_roundtrip(self, txgen):
        txs = txgen.make_batch(7)
        decoded, _ = decode_tx_list(encode_tx_list(txs))
        assert [t.txid for t in decoded] == [t.txid for t in txs]

    def test_empty_list(self):
        decoded, offset = decode_tx_list(encode_tx_list([]))
        assert decoded == [] and offset == 1

    @given(st.binary(min_size=32, max_size=32),
           st.integers(1, 1_000_000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, txid, size):
        tx = Transaction(txid=txid, size=size)
        decoded, _ = decode_transaction(encode_transaction(tx))
        assert decoded.txid == txid and decoded.size == size

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_fee_rate_survives_the_wire_exactly(self, fee_rate):
        # Regression: fee_rate crossed the wire as f32 but the
        # dataclass held the full double, so decode(encode(tx)) != tx
        # whenever the rate wasn't f32-representable -- and a mempool
        # sorted by fee rate could order differently after a hop.
        tx = Transaction(txid=sha256(b"fee"), fee_rate=fee_rate)
        decoded, _ = decode_transaction(encode_transaction(tx))
        assert decoded == tx
        assert decoded.fee_rate == tx.fee_rate

    def test_fee_rate_ordering_stable_across_the_wire(self, rng):
        gen = TransactionGenerator(seed=909)
        txs = gen.make_batch(60)  # expovariate doubles, not f32-exact
        decoded, _ = decode_tx_list(encode_tx_list(txs))
        order = lambda ts: [t.txid for t in  # noqa: E731
                            sorted(ts, key=lambda t: (t.fee_rate, t.txid))]
        assert order(decoded) == order(txs)


class TestProtocolMessageCodecs:
    def test_protocol1_over_the_wire(self, config):
        # Full Protocol 1 where the payload crosses a real byte buffer.
        sc = make_block_scenario(n=150, extra=150, fraction=1.0, seed=71)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        blob = encode_protocol1_payload(payload)
        arrived, offset = decode_protocol1_payload(blob)
        assert offset == len(blob)
        assert arrived.n == payload.n
        result = receive_protocol1(arrived, sc.receiver_mempool, config,
                                   validate_block=sc.block)
        assert result.success

    def test_protocol2_over_the_wire(self, config):
        sc = make_block_scenario(n=150, extra=150, fraction=0.9, seed=72)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        assert not p1.success
        request, state = build_protocol2_request(p1, payload, sc.m, config)
        req_blob = encode_protocol2_request(request)
        arrived_req, off = decode_protocol2_request(req_blob)
        assert off == len(req_blob)
        assert arrived_req.b == request.b
        assert arrived_req.ystar == request.ystar
        response = respond_protocol2(arrived_req, sc.block.txs, sc.m, config)
        resp_blob = encode_protocol2_response(response)
        arrived_resp, off = decode_protocol2_response(resp_blob)
        assert off == len(resp_blob)
        result = finish_protocol2(arrived_resp, state, sc.receiver_mempool,
                                  config, validate_block=sc.block)
        assert result.decode_complete

    def test_special_case_response_carries_f(self, config):
        sc = make_block_scenario(n=120, extra=0, fraction=0.6, seed=73)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        request, state = build_protocol2_request(p1, payload, sc.m, config)
        assert request.special_case
        response = respond_protocol2(request, sc.block.txs, sc.m, config)
        arrived, _ = decode_protocol2_response(
            encode_protocol2_response(response))
        assert arrived.bloom_f is not None

    def test_request_flag_roundtrip(self, config):
        sc = make_block_scenario(n=120, extra=0, fraction=0.6, seed=74)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        arrived, _ = decode_protocol2_request(
            encode_protocol2_request(request))
        assert arrived.special_case == request.special_case
