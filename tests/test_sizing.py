"""Tests for wire-cost accounting."""

from __future__ import annotations

from repro.core.sizing import (
    CostBreakdown,
    getdata_bytes,
    inv_bytes,
    short_id_request_bytes,
)


class TestMessageSizes:
    def test_inv_single_entry(self):
        assert inv_bytes(1) == 24 + 1 + 36

    def test_inv_batches(self):
        assert inv_bytes(10) == 24 + 1 + 360

    def test_getdata_carries_mempool_count(self):
        small = getdata_bytes(10)
        large = getdata_bytes(100_000)
        assert large > small  # CompactSize growth

    def test_short_id_request_zero_is_free(self):
        assert short_id_request_bytes(0) == 0

    def test_short_id_request_scales(self):
        assert short_id_request_bytes(5) == 24 + 1 + 40
        assert short_id_request_bytes(5, id_bytes=6) == 24 + 1 + 30


class TestCostBreakdown:
    def test_total_excludes_txs_by_default(self):
        cost = CostBreakdown(bloom_s=100, iblt_i=50, pushed_tx_bytes=1000)
        assert cost.total() == 150
        assert cost.total(include_txs=True) == 1150

    def test_graphene_core(self):
        cost = CostBreakdown(inv=10, getdata=10, bloom_s=1, iblt_i=2,
                             bloom_r=3, iblt_j=4, bloom_f=5)
        assert cost.graphene_core() == 15

    def test_merge_elementwise(self):
        a = CostBreakdown(bloom_s=1, iblt_i=2)
        b = CostBreakdown(bloom_s=10, iblt_j=5)
        merged = a.merge(b)
        assert merged.bloom_s == 11
        assert merged.iblt_i == 2
        assert merged.iblt_j == 5

    def test_merge_does_not_mutate(self):
        a = CostBreakdown(bloom_s=1)
        b = CostBreakdown(bloom_s=2)
        a.merge(b)
        assert a.bloom_s == 1

    def test_as_dict_covers_all_fields(self):
        cost = CostBreakdown()
        d = cost.as_dict()
        assert "bloom_s" in d and "fetched_tx_bytes" in d
        assert all(v == 0 for v in d.values())
