"""Tests for mempool synchronization over the network simulator."""

from __future__ import annotations

import pytest

from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError
from repro.net.node import Node
from repro.net.simulator import Link, Simulator


def _pair():
    sim = Simulator()
    a = Node("a", sim)
    b = Node("b", sim)
    a.connect(b, Link(latency=0.02, bandwidth=1_000_000))
    return sim, a, b


def _fill(a, b, shared, a_only, b_only, seed=3):
    gen = TransactionGenerator(seed=seed)
    common = gen.make_batch(shared)
    mine = gen.make_batch(a_only)
    theirs = gen.make_batch(b_only)
    a.mempool.add_many(common)
    a.mempool.add_many(mine)
    b.mempool.add_many(common)
    b.mempool.add_many(theirs)
    return common, mine, theirs


class TestSyncOverWire:
    def test_both_sides_reach_union(self):
        sim, a, b = _pair()
        _fill(a, b, 200, 40, 60)
        nonce = a.initiate_mempool_sync(b)
        sim.run()
        state = a.sync_result(nonce)
        assert state.done and state.succeeded
        assert ({t.txid for t in a.mempool}
                == {t.txid for t in b.mempool})
        assert len(a.mempool) == 300

    def test_identical_mempools_cheap(self):
        sim, a, b = _pair()
        _fill(a, b, 200, 0, 0)
        before = 0
        nonce = a.initiate_mempool_sync(b)
        sim.run()
        assert a.sync_result(nonce).succeeded
        # Only the request, P1 digest, and an empty push crossed.
        total = (a.stats[b].bytes_sent + b.stats[a].bytes_sent)
        assert total < 2000

    def test_disjoint_mempools(self):
        sim, a, b = _pair()
        _fill(a, b, 0, 80, 90)
        nonce = a.initiate_mempool_sync(b)
        sim.run()
        state = a.sync_result(nonce)
        assert state.succeeded
        assert len(a.mempool) == len(b.mempool) == 170

    def test_one_sided_divergence(self):
        sim, a, b = _pair()
        _fill(a, b, 150, 0, 50)  # only b has extras
        nonce = a.initiate_mempool_sync(b)
        sim.run()
        assert a.sync_result(nonce).succeeded
        assert len(a.mempool) == 200
        assert len(b.mempool) == 200

    def test_bytes_far_below_naive(self):
        sim, a, b = _pair()
        _fill(a, b, 2000, 50, 50)
        nonce = a.initiate_mempool_sync(b)
        sim.run()
        assert a.sync_result(nonce).succeeded
        naive = 32 * 2050  # shipping every txid one way
        total = a.stats[b].bytes_sent + b.stats[a].bytes_sent
        # Exclude the genuinely-transferred transaction payloads.
        tx_bytes = sum(t.size for t in a.mempool
                       if t.txid not in {x.txid for x in b.mempool})
        assert total - tx_bytes < naive

    def test_requires_peering(self):
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        with pytest.raises(ParameterError):
            a.initiate_mempool_sync(b)

    def test_concurrent_syncs_with_two_peers(self):
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        c = Node("c", sim)
        a.connect(b)
        a.connect(c)
        gen = TransactionGenerator(seed=9)
        common = gen.make_batch(100)
        for node in (a, b, c):
            node.mempool.add_many(common)
        b.mempool.add_many(gen.make_batch(30))
        c.mempool.add_many(gen.make_batch(40))
        n1 = a.initiate_mempool_sync(b)
        n2 = a.initiate_mempool_sync(c)
        sim.run()
        assert a.sync_result(n1).succeeded
        assert a.sync_result(n2).succeeded
        # a holds the union of everything.
        assert len(a.mempool) == 170

    def test_repeated_syncs_converge_network(self):
        # Three nodes in a line; pairwise syncs propagate everything.
        sim = Simulator()
        nodes = [Node(f"n{i}", sim) for i in range(3)]
        nodes[0].connect(nodes[1])
        nodes[1].connect(nodes[2])
        gen = TransactionGenerator(seed=10)
        for node in nodes:
            node.mempool.add_many(gen.make_batch(25))
        nodes[0].initiate_mempool_sync(nodes[1])
        sim.run()
        nodes[1].initiate_mempool_sync(nodes[2])
        sim.run()
        nodes[0].initiate_mempool_sync(nodes[1])
        sim.run()
        sets = [{t.txid for t in node.mempool} for node in nodes]
        assert sets[0] == sets[1] == sets[2]
        assert len(sets[0]) == 75


class TestP1PathWithMissing:
    def test_small_divergence_fetched_via_protocol1(self):
        # Receiver's mempool is a near-superset (extras push m > n), so
        # Protocol 1 decodes and the few missing txs go through the
        # sync_fetch short-ID path rather than Protocol 2.
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        a.connect(b, Link(latency=0.01))
        gen = TransactionGenerator(seed=77)
        common = gen.make_batch(300)
        responder_only = gen.make_batch(3)
        a.mempool.add_many(common)                 # initiator
        a.mempool.add_many(gen.make_batch(100))    # extras -> m > n
        b.mempool.add_many(common)
        b.mempool.add_many(responder_only)         # b is the responder
        nonce = a.initiate_mempool_sync(b)
        sim.run()
        state = a.sync_result(nonce)
        assert state.succeeded
        for tx in responder_only:
            assert tx.txid in a.mempool
        # And b received a's extras via the H push.
        assert len(b.mempool) == len(a.mempool)
