"""Hot-path round 2 safety net.

Three batteries:

* **Golden-vector byte parity** -- the vectorized (numpy) codec bodies
  and the pure-Python reference loops must produce byte-identical wire
  encodings and state-identical decodes, for structures spanning every
  lossless IBLT cell width, the full-cell fallback, degenerate Bloom
  filters, and complete Protocol 1/2 payloads.  The fuzz corpus replays
  under the pure path too, so every artifact in ``tests/corpus/`` pins
  both implementations.
* **memoryview inputs** -- every ``decode_*`` entry point must accept a
  read-only ``memoryview`` (the zero-copy wire path hands engines
  views, never sliced copies) and decode exactly what it decodes from
  ``bytes``.
* **Simulator bookkeeping** -- the O(1) ``Simulator.pending`` counter
  and the read-only ``Link.drops()`` stream resolved at construction.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

import repro.codec as codec
from repro.chain.block import BlockHeader
from repro.chain.scenarios import make_block_scenario
from repro.chain.transaction import TransactionGenerator
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import build_protocol2_request, respond_protocol2
from repro.fastpath import fastpath_enabled, set_fastpath
from repro.fuzz import replay_artifact
from repro.net.simulator import Link, Simulator
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT

CORPUS = Path(__file__).parent / "corpus"
ARTIFACTS = sorted(CORPUS.glob("*.json"))


@pytest.fixture
def pure_python():
    """Force the reference loops for the duration of a test."""
    saved = fastpath_enabled()
    set_fastpath(False)
    yield
    set_fastpath(saved)


def both_paths(fn):
    """Run ``fn`` under both implementations; return the two results."""
    saved = fastpath_enabled()
    try:
        set_fastpath(True)
        fast = fn()
        set_fastpath(False)
        pure = fn()
    finally:
        set_fastpath(saved)
    return fast, pure


def make_iblts() -> list[IBLT]:
    """IBLTs covering every wire-cell shape.

    One per lossless ``cell_bytes`` 12..18 (checksum widths 2..8), plus
    widths below/above the lossless window, which ship as full cells.
    """
    rng = random.Random(1234)
    tables = []
    for cell_bytes in (12, 13, 14, 15, 16, 17, 18, 10, 20):
        iblt = IBLT(24, k=4, seed=77, cell_bytes=cell_bytes)
        for _ in range(17):
            iblt.insert(rng.getrandbits(64))
        iblt.erase(rng.getrandbits(64))  # negative counts on the wire
        tables.append(iblt)
    return tables


def make_blooms() -> list[BloomFilter]:
    rng = random.Random(99)
    loaded = BloomFilter.from_fpr(64, 0.02, seed=5)
    loaded.update(rng.getrandbits(256).to_bytes(32, "little")
                  for _ in range(64))
    degenerate = BloomFilter.from_fpr(10, 1.0, seed=5)
    empty = BloomFilter.from_fpr(32, 0.1, seed=0)
    return [loaded, degenerate, empty]


class TestGoldenVectorParity:
    """Vectorized and pure codec bodies agree byte for byte."""

    def test_iblt_wire_bytes_identical(self):
        for iblt in make_iblts():
            fast, pure = both_paths(lambda i=iblt: codec.encode_iblt(i))
            assert fast == pure, (
                f"cell_bytes={iblt.cell_bytes}: vectorized and pure "
                "encodings differ")

    def test_iblt_decode_state_identical(self):
        for iblt in make_iblts():
            blob = codec.encode_iblt(iblt)
            (fast, off_f), (pure, off_p) = both_paths(
                lambda b=blob: codec.decode_iblt(b))
            assert off_f == off_p == len(blob)
            assert fast._counts == pure._counts
            assert fast._key_sums == pure._key_sums
            assert fast._check_sums == pure._check_sums
            # And both re-encode to the original bytes (fixed point).
            assert codec.encode_iblt(fast) == blob
            assert codec.encode_iblt(pure) == blob

    def test_bloom_wire_bytes_identical(self):
        for bloom in make_blooms():
            fast, pure = both_paths(lambda b=bloom: codec.encode_bloom(b))
            assert fast == pure

    def test_protocol_payloads_identical(self):
        config = GrapheneConfig()
        sc = make_block_scenario(n=120, extra=80, fraction=0.7, seed=75)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        assert not p1.success, "scenario must escalate to Protocol 2"
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        response = respond_protocol2(request, sc.block.txs, sc.m, config)

        for encode, obj in [
            (codec.encode_protocol1_payload, payload),
            (codec.encode_protocol2_request, request),
            (codec.encode_protocol2_response, response),
        ]:
            fast, pure = both_paths(lambda e=encode, o=obj: e(o))
            assert fast == pure, f"{encode.__name__} differs between paths"

    def test_i16_overflow_raises_on_both_paths(self):
        from repro.errors import ParameterError
        iblt = IBLT(4, k=2, seed=0, cell_bytes=12)
        for _ in range(0x8000 // 2 + 1):
            iblt.xor_cell(0, 0, +2)  # drive one cell count past i16
        for enabled in (True, False):
            saved = fastpath_enabled()
            try:
                set_fastpath(enabled)
                with pytest.raises(ParameterError):
                    codec.encode_iblt(iblt)
            finally:
                set_fastpath(saved)


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_corpus_replays_clean_on_pure_path(path, pure_python):
    """Every fuzz artifact also stays green on the reference loops."""
    failure = replay_artifact(path)
    assert failure is None, f"corpus case regressed on pure path: {failure}"


class TestMemoryviewInputs:
    """Each decode_* accepts a read-only memoryview, matching bytes."""

    @pytest.fixture(scope="class")
    def wire(self):
        config = GrapheneConfig()
        sc = make_block_scenario(n=120, extra=80, fraction=0.7, seed=75)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        response = respond_protocol2(request, sc.block.txs, sc.m, config)
        gen = TransactionGenerator(seed=3)
        txs = gen.make_batch(5)
        bloom = make_blooms()[0]
        iblt = make_iblts()[0]
        header = BlockHeader(version=2, prev_hash=bytes(range(32)),
                             merkle_root=bytes(reversed(range(32))),
                             timestamp=7, nonce=9)
        return {
            "bloom": (codec.decode_bloom, codec.encode_bloom(bloom)),
            "iblt": (codec.decode_iblt, codec.encode_iblt(iblt)),
            "block_header": (codec.decode_block_header,
                             codec.encode_block_header(header)),
            "transaction": (codec.decode_transaction,
                            codec.encode_transaction(txs[0])),
            "tx_list": (codec.decode_tx_list, codec.encode_tx_list(txs)),
            "p1": (codec.decode_protocol1_payload,
                   codec.encode_protocol1_payload(payload)),
            "p2_request": (codec.decode_protocol2_request,
                           codec.encode_protocol2_request(request)),
            "p2_response": (codec.decode_protocol2_response,
                            codec.encode_protocol2_response(response)),
        }

    @pytest.mark.parametrize("name", [
        "bloom", "iblt", "block_header", "transaction", "tx_list",
        "p1", "p2_request", "p2_response",
    ])
    def test_decode_from_memoryview(self, wire, name):
        decoder, blob = wire[name]
        from_bytes = decoder(blob)
        from_view = decoder(memoryview(blob))
        # Compare through re-encoding where the decode returns live
        # structures; offsets and scalar fields compare directly.
        assert repr(from_view) == repr(from_bytes)
        if name == "iblt":
            assert codec.encode_iblt(from_view[0]) == \
                codec.encode_iblt(from_bytes[0])
        elif name == "bloom":
            assert codec.encode_bloom(from_view[0]) == \
                codec.encode_bloom(from_bytes[0])
        elif name == "tx_list":
            assert from_view[0] == from_bytes[0]

    @pytest.mark.parametrize("name", [
        "bloom", "iblt", "block_header", "transaction", "tx_list",
        "p1", "p2_request", "p2_response",
    ])
    def test_decode_from_memoryview_pure_path(self, wire, name,
                                              pure_python):
        decoder, blob = wire[name]
        assert repr(decoder(memoryview(blob))) == repr(decoder(blob))


class TestSimulatorPendingCounter:
    """``Simulator.pending`` is an O(1) live counter, not a heap scan."""

    def test_counts_scheduled_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.pending == 5
        sim.run()
        assert sim.pending == 0

    def test_cancel_decrements_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1
        handle.cancel()  # double cancel must not decrement again
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.5, lambda: fired.append(1))
        sim.run()
        assert fired and sim.pending == 0
        handle.cancel()  # the event already left the live count
        assert sim.pending == 0

    def test_run_horizon_keeps_future_events_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.pending == 1


class TestLinkLossStreamIsReadOnly:
    """The loss stream is resolved at construction; drops() never
    mutates configuration."""

    def test_standalone_lossy_link_keeps_seed_field(self):
        link = Link(loss_rate=0.5)
        assert link.loss_seed is None
        before = (link.latency, link.bandwidth, link.loss_rate,
                  link.loss_seed)
        for _ in range(50):
            link.drops()
        assert (link.latency, link.bandwidth, link.loss_rate,
                link.loss_seed) == before

    def test_standalone_fallback_stream_is_deterministic(self):
        a = Link(loss_rate=0.3)
        b = Link(loss_rate=0.3)
        assert [a.drops() for _ in range(64)] == \
            [b.drops() for _ in range(64)]

    def test_explicit_seed_pins_the_stream(self):
        a = Link(loss_rate=0.3, loss_seed=9)
        b = Link(loss_rate=0.3, loss_seed=9)
        assert [a.drops() for _ in range(64)] == \
            [b.drops() for _ in range(64)]

    def test_ensure_loss_seed_respects_explicit_seed(self):
        link = Link(loss_rate=0.3, loss_seed=9)
        link.ensure_loss_seed(1234)
        assert link.loss_seed == 9

    def test_ensure_loss_seed_adopts_wiring_seed(self):
        wired = Link(loss_rate=0.3)
        wired.ensure_loss_seed(9)
        pinned = Link(loss_rate=0.3, loss_seed=9)
        assert wired.loss_seed == 9
        assert [wired.drops() for _ in range(64)] == \
            [pinned.drops() for _ in range(64)]

    def test_lossless_link_never_drops(self):
        link = Link(loss_rate=0.0)
        assert not any(link.drops() for _ in range(16))
