"""Property-based tests over whole-protocol invariants.

Hypothesis drives randomized scenarios through the full stack and
checks the invariants the paper's correctness rests on: a successful
relay always reproduces the block *exactly*; candidate sets shrink only
by removing non-block transactions; reconciliation is symmetric in
what it recovers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.scenarios import make_block_scenario, make_sync_scenario
from repro.core.engine import (
    ActionKind,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
)
from repro.core.params import GrapheneConfig
from repro.core.session import BlockRelaySession
from repro.core.mempool_sync import synchronize_mempools

SCENARIO = st.tuples(
    st.integers(min_value=10, max_value=250),   # n
    st.integers(min_value=0, max_value=300),    # extra
    st.floats(min_value=0.5, max_value=1.0),    # fraction
    st.integers(min_value=0, max_value=10**6),  # seed
)


class TestRelayExactness:
    @given(SCENARIO)
    @settings(max_examples=25, deadline=None)
    def test_successful_relay_is_exact(self, params):
        n, extra, fraction, seed = params
        scenario = make_block_scenario(n=n, extra=extra, fraction=fraction,
                                       seed=seed)
        outcome = BlockRelaySession().relay(scenario.block,
                                            scenario.receiver_mempool)
        if outcome.success:
            assert [t.txid for t in outcome.txs] == scenario.block.txids
        # Success is the overwhelmingly common case; either way the
        # session must never hand back a wrong block.

    @given(SCENARIO)
    @settings(max_examples=15, deadline=None)
    def test_engine_and_session_agree_on_content(self, params):
        n, extra, fraction, seed = params
        scenario = make_block_scenario(n=n, extra=extra, fraction=fraction,
                                       seed=seed)
        sender = GrapheneSenderEngine(scenario.block)
        receiver = GrapheneReceiverEngine(scenario.receiver_mempool)
        action = receiver.start()
        action = receiver.on_p1_payload(sender.on_getdata(action.message).message)
        if action.kind is ActionKind.SEND:
            action = receiver.on_p2_response(
                sender.on_p2_request(action.message).message)
        if action.kind is ActionKind.SEND:
            action = receiver.on_tx_list(
                sender.on_shortid_request(action.message).message)
        if action.kind is ActionKind.DONE:
            assert [t.txid for t in action.txs] == scenario.block.txids
            assert action.block.header.merkle_root == \
                scenario.block.header.merkle_root

    @given(st.integers(min_value=10, max_value=200),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_sync_reaches_union_when_successful(self, n, common, seed):
        scenario = make_sync_scenario(n=n, fraction_common=common, seed=seed)
        union = ({t.txid for t in scenario.sender_mempool}
                 | {t.txid for t in scenario.receiver_mempool})
        result = synchronize_mempools(scenario.sender_mempool,
                                      scenario.receiver_mempool)
        if result.success and result.synchronized:
            assert {t.txid for t in scenario.sender_mempool} == union
            assert {t.txid for t in scenario.receiver_mempool} == union


class TestCostInvariants:
    @given(SCENARIO)
    @settings(max_examples=15, deadline=None)
    def test_costs_are_consistent(self, params):
        n, extra, fraction, seed = params
        scenario = make_block_scenario(n=n, extra=extra, fraction=fraction,
                                       seed=seed)
        outcome = BlockRelaySession().relay(scenario.block,
                                            scenario.receiver_mempool)
        cost = outcome.cost
        assert cost.total() >= 0
        assert cost.total(include_txs=True) >= cost.total()
        # Parts are individually non-negative.
        assert all(v >= 0 for v in cost.as_dict().values())
        if outcome.protocol_used == 1:
            assert cost.bloom_r == cost.iblt_j == cost.bloom_f == 0

    @given(st.integers(min_value=50, max_value=300),
           st.integers(min_value=50, max_value=600),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_graphene_never_bigger_than_shortid_list(self, n, extra, seed):
        # Protocol 1's whole point: beat the 8n-byte short-ID list for
        # synced receivers (modest n can tie; allow small slack).
        scenario = make_block_scenario(n=n, extra=extra, fraction=1.0,
                                       seed=seed)
        outcome = BlockRelaySession().relay(scenario.block,
                                            scenario.receiver_mempool)
        assert outcome.cost.graphene_core() <= 8 * n + 200


class TestConfigMonotonicity:
    @given(st.integers(min_value=100, max_value=400),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_wider_cells_never_shrink_iblt_bytes_per_cell(self, n, seed):
        scenario = make_block_scenario(n=n, extra=n, fraction=1.0, seed=seed)
        narrow = BlockRelaySession(GrapheneConfig(cell_bytes=11)).relay(
            scenario.block, scenario.receiver_mempool)
        wide = BlockRelaySession(GrapheneConfig(cell_bytes=18)).relay(
            scenario.block, scenario.receiver_mempool)
        assert narrow.success and wide.success
