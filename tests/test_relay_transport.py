"""One state machine, two transports: loopback/simulator relay parity.

The relay engines are the only Graphene implementation; the loopback
session and the network simulator merely move their messages.  These
tests pin the consequence: for the same scenario the two transports
produce byte-identical cost breakdowns, and the full fallback chain
(P1 decode failure -> Protocol 2 ping-pong -> short-id fetch ->
FAILED) is reachable and observable through the telemetry stream.
"""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.codec import encode_tx_list
from repro.core.engine import (
    ActionKind,
    EngineAction,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
    ReceiverPhase,
)
from repro.core.session import BlockRelaySession
from repro.core.sizing import CostBreakdown
from repro.core.telemetry import total_wire_bytes
from repro.net import Link, Node, Simulator
from repro.net.node import derive_loss_seed

# A 10%-lossy link pair whose first eight draws all survive: the link
# is genuinely consulted per message, but this particular relay fits
# in the surviving prefix, so the exchange completes without stalling.
_LOSSY = dict(loss_rate=0.1)
_SEED_FWD, _SEED_REV = 10, 11


def _relay_over_simulator(scenario, loss_rate=0.0):
    """Mirror a scenario onto two simulated nodes; return (rx, root)."""
    sim = Simulator()
    alpha = Node("alpha", sim)
    beta = Node("beta", sim)
    alpha.connect(beta,
                  Link(loss_rate=loss_rate, loss_seed=_SEED_FWD),
                  Link(loss_rate=loss_rate, loss_seed=_SEED_REV))
    beta.mempool.add_many(scenario.receiver_mempool.transactions())
    alpha.mine_block(scenario.block)
    sim.run()
    return beta, scenario.block.header.merkle_root


class TestCostParity:
    """Same seed => loopback and simulator account identical bytes."""

    def _assert_parity(self, fraction, seed, loss_rate=0.0):
        sc = make_block_scenario(n=120, extra=120, fraction=fraction,
                                 seed=seed)
        outcome = BlockRelaySession().relay(sc.block, sc.receiver_mempool)
        assert outcome.success

        sc2 = make_block_scenario(n=120, extra=120, fraction=fraction,
                                  seed=seed)
        rx, root = _relay_over_simulator(sc2, loss_rate=loss_rate)
        assert root in rx.blocks
        sim_cost = CostBreakdown.from_events(rx.relay_telemetry[root])
        assert sim_cost.as_dict() == outcome.cost.as_dict()
        assert outcome.total_bytes == sim_cost.total()
        assert outcome.total_bytes == \
            total_wire_bytes(rx.relay_telemetry[root])
        return outcome, rx.relay_telemetry[root]

    def test_protocol1_path(self):
        outcome, events = self._assert_parity(fraction=1.0, seed=7)
        assert outcome.protocol_used == 1
        assert [e.command for e in events] == \
            ["inv", "getdata", "graphene_block"]

    def test_full_fallback_chain_over_lossy_link(self):
        # fraction=0.4 at this seed escalates to Protocol 2, needs
        # ping-pong decoding AND a short-id repair fetch -- the whole
        # chain crosses a lossy (but surviving) simulated link.
        outcome, events = self._assert_parity(fraction=0.4, seed=133,
                                              loss_rate=0.1)
        assert outcome.protocol_used == 2
        assert outcome.p2_used_pingpong
        assert outcome.fetched_count > 0
        commands = [e.command for e in events]
        assert commands == ["inv", "getdata", "graphene_block",
                            "graphene_p2_request", "graphene_p2_response",
                            "getdata_shortids", "block_txs"]
        by_cmd = {e.command: e for e in events}
        assert by_cmd["graphene_block"].outcome == "fallback"
        assert by_cmd["graphene_p2_response"].outcome == "fetch"
        assert by_cmd["block_txs"].outcome == "done"


class TestFallbackChainToFailed:
    """P1 fail -> P2 ping-pong -> fetch -> FAILED, step by step."""

    def test_truncated_repair_fails_validation(self):
        sc = make_block_scenario(n=120, extra=120, fraction=0.4, seed=133)
        sender = GrapheneSenderEngine(sc.block)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)

        action = receiver.start()
        action = receiver.handle(
            "graphene_block",
            sender.handle("getdata", action.message).message)
        assert receiver.p1_decode_failed
        assert receiver.phase is ReceiverPhase.WAIT_P2
        assert action.command == "graphene_p2_request"

        action = receiver.handle(
            "graphene_p2_response",
            sender.handle("graphene_p2_request", action.message).message)
        assert receiver.p2_used_pingpong
        assert receiver.phase is ReceiverPhase.WAIT_TXS
        assert action.command == "getdata_shortids"

        # Serve the repair fetch short one transaction: the candidate
        # block cannot pass Merkle validation and the relay gives up.
        reply = sender.handle("getdata_shortids", action.message)
        from repro.codec import decode_tx_list
        txs, _ = decode_tx_list(reply.message)
        assert len(txs) >= 1
        action = receiver.handle("block_txs", encode_tx_list(txs[:-1]))
        assert action.kind is ActionKind.FAILED
        assert receiver.phase is ReceiverPhase.FAILED
        assert receiver.telemetry[-1].outcome == "failed"

    def test_node_falls_back_to_full_block_on_failure(self):
        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=3)
        sim = Simulator()
        alpha = Node("alpha", sim)
        beta = Node("beta", sim)
        alpha.connect(beta)
        alpha.mine_block(sc.block)
        root = sc.block.header.merkle_root
        # Force the receiver's relay to fail after engine setup: the
        # node must count the failure and refetch the full block.
        sim.run()
        assert root in beta.blocks  # sanity: normal path worked
        beta.blocks.clear()
        beta._seen_inv.clear()
        beta._rx_engines[root] = GrapheneReceiverEngine(beta.mempool)
        beta._dispatch_receiver_action(
            alpha, root, EngineAction(ActionKind.FAILED))
        sim.run()
        assert beta.relay_failures == 1
        assert root in beta.blocks
        assert root not in beta._rx_engines


class TestLossSeedDerivation:
    """Default loss seeds derive from the endpoint pair, not a global."""

    def test_directions_get_distinct_seeds(self):
        sim = Simulator()
        a, b, c = (Node(x, sim) for x in "abc")
        a.connect(b, Link(loss_rate=0.2), Link(loss_rate=0.2))
        a.connect(c, Link(loss_rate=0.2), Link(loss_rate=0.2))
        seeds = {a.peers[b].loss_seed, b.peers[a].loss_seed,
                 a.peers[c].loss_seed, c.peers[a].loss_seed}
        assert len(seeds) == 4
        assert a.peers[b].loss_seed == derive_loss_seed("a", "b")
        assert b.peers[a].loss_seed == derive_loss_seed("b", "a")

    def test_explicit_seed_wins(self):
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.connect(b, Link(loss_rate=0.2, loss_seed=99))
        assert a.peers[b].loss_seed == 99

    def test_lossless_links_still_get_reproducible_seed(self):
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.connect(b)
        assert a.peers[b].loss_seed == derive_loss_seed("a", "b")
        assert not a.peers[b].drops()


class TestSyncNonces:
    """Per-node deterministic nonces (satellite of the relay refactor)."""

    def test_nonces_deterministic_and_distinct_across_nodes(self):
        def fresh_pair():
            sim = Simulator()
            a, b = Node("a", sim), Node("b", sim)
            a.connect(b)
            return a, b

        a1, b1 = fresh_pair()
        a2, b2 = fresh_pair()
        n_a1 = a1.initiate_mempool_sync(b1)
        n_a2 = a2.initiate_mempool_sync(b2)
        assert n_a1 == n_a2  # same node id => same sequence, every run
        n_b1 = b1.initiate_mempool_sync(a1)
        assert n_b1 != n_a1  # different node ids never collide
        assert a1.initiate_mempool_sync(b1) == n_a1 + 1


@pytest.mark.parametrize("fraction,seed", [(0.5, 3), (0.9, 11)])
def test_more_parity_spots(fraction, seed):
    sc = make_block_scenario(n=150, extra=150, fraction=fraction, seed=seed)
    outcome = BlockRelaySession().relay(sc.block, sc.receiver_mempool)
    sc2 = make_block_scenario(n=150, extra=150, fraction=fraction, seed=seed)
    rx, root = _relay_over_simulator(sc2)
    assert root in rx.blocks
    assert CostBreakdown.from_events(rx.relay_telemetry[root]).as_dict() \
        == outcome.cost.as_dict()
