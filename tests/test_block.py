"""Tests for blocks, headers, and Merkle validation of candidates."""

from __future__ import annotations

import pytest

from repro.chain.block import BLOCK_HEADER_BYTES, Block, BlockHeader
from repro.chain.ordering import is_canonically_ordered
from repro.errors import MerkleValidationError, ParameterError


class TestBlockHeader:
    def test_serializes_to_80_bytes(self):
        assert len(BlockHeader().serialize()) == BLOCK_HEADER_BYTES

    def test_rejects_bad_hash_widths(self):
        with pytest.raises(ParameterError):
            BlockHeader(prev_hash=b"x")
        with pytest.raises(ParameterError):
            BlockHeader(merkle_root=b"x")

    def test_fields_survive_serialization_layout(self):
        header = BlockHeader(version=2, timestamp=1234, nonce=99)
        blob = header.serialize()
        assert blob[:4] == (2).to_bytes(4, "little")
        assert blob[-4:] == (99).to_bytes(4, "little")


class TestBlockAssembly:
    def test_assemble_orders_canonically(self, txgen):
        block = Block.assemble(txgen.make_batch(50))
        assert is_canonically_ordered(block.txs)

    def test_n_and_txids(self, txgen):
        txs = txgen.make_batch(10)
        block = Block.assemble(txs)
        assert block.n == 10
        assert set(block.txids) == {tx.txid for tx in txs}

    def test_serialized_size_counts_payloads(self, txgen):
        txs = txgen.make_batch(5)
        block = Block.assemble(txs)
        assert block.serialized_size() == (
            BLOCK_HEADER_BYTES + sum(tx.size for tx in txs))

    def test_same_txs_same_root_regardless_of_input_order(self, txgen):
        txs = txgen.make_batch(20)
        a = Block.assemble(txs)
        b = Block.assemble(list(reversed(txs)))
        assert a.header.merkle_root == b.header.merkle_root


class TestCandidateValidation:
    def test_exact_set_validates(self, txgen):
        txs = txgen.make_batch(20)
        block = Block.assemble(txs)
        assert block.validate_candidate(list(reversed(txs)))

    def test_superset_fails(self, txgen):
        txs = txgen.make_batch(20)
        block = Block.assemble(txs)
        assert not block.validate_candidate(txs + [txgen.make()])

    def test_subset_fails(self, txgen):
        txs = txgen.make_batch(20)
        block = Block.assemble(txs)
        assert not block.validate_candidate(txs[:-1])

    def test_substitution_fails(self, txgen):
        txs = txgen.make_batch(20)
        block = Block.assemble(txs)
        swapped = txs[:-1] + [txgen.make()]
        assert not block.validate_candidate(swapped)

    def test_require_valid_returns_ordered(self, txgen):
        txs = txgen.make_batch(20)
        block = Block.assemble(txs)
        ordered = block.require_valid(list(reversed(txs)))
        assert is_canonically_ordered(ordered)

    def test_require_valid_raises_on_mismatch(self, txgen):
        block = Block.assemble(txgen.make_batch(5))
        with pytest.raises(MerkleValidationError):
            block.require_valid([txgen.make()])

    def test_empty_block_validates_empty(self):
        block = Block.assemble([])
        assert block.validate_candidate([])
