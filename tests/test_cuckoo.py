"""Tests for the cuckoo filter (Bloom alternative, paper 3.3.1)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.pds.bloom import bloom_size_bytes
from repro.pds.cuckoo import (
    CuckooFilter,
    cuckoo_size_bytes,
    fingerprint_bits_for,
)
from repro.utils.hashing import sha256


def _ids(count, tag=b""):
    return [sha256(tag + i.to_bytes(4, "little")) for i in range(count)]


class TestMembership:
    def test_no_false_negatives(self):
        filt = CuckooFilter(600, fpr=0.01)
        items = _ids(500)
        assert filt.update(items) == 500
        assert all(item in filt for item in items)

    def test_fpr_near_target(self):
        target = 0.02
        filt = CuckooFilter(1200, fpr=target)
        filt.update(_ids(1000))
        probes = _ids(20000, tag=b"p")
        observed = sum(1 for p in probes if p in filt) / len(probes)
        assert observed <= 2.5 * target

    def test_empty_matches_nothing(self):
        filt = CuckooFilter(10, fpr=0.01)
        assert sha256(b"x") not in filt


class TestDeletion:
    def test_delete_removes(self):
        filt = CuckooFilter(100, fpr=0.01)
        item = sha256(b"gone")
        filt.insert(item)
        assert filt.delete(item)
        assert item not in filt
        assert len(filt) == 0

    def test_delete_absent_returns_false(self):
        filt = CuckooFilter(100, fpr=0.01)
        assert not filt.delete(sha256(b"never"))

    def test_delete_preserves_others(self):
        filt = CuckooFilter(300, fpr=0.001)
        items = _ids(200)
        filt.update(items)
        filt.delete(items[0])
        assert all(item in filt for item in items[1:])


class TestCapacity:
    def test_fills_to_capacity(self):
        filt = CuckooFilter(1000, fpr=0.01)
        accepted = filt.update(_ids(1000))
        assert accepted == 1000

    def test_gross_overfill_eventually_rejects(self):
        filt = CuckooFilter(50, fpr=0.01)
        accepted = filt.update(_ids(1000))
        assert accepted < 1000  # overflow surfaced, not silent


class TestSizing:
    def test_fingerprint_bits_formula(self):
        # f-bit fingerprints: f = ceil(log2(2b / fpr)), b = 4.
        assert fingerprint_bits_for(1 / 128) == 10

    def test_rejects_bad_fpr(self):
        with pytest.raises(ParameterError):
            fingerprint_bits_for(0.0)

    def test_size_estimate_close_to_actual(self):
        n, fpr = 1000, 0.01
        filt = CuckooFilter(n, fpr=fpr)
        filt.update(_ids(n))
        # Power-of-two bucket rounding inflates the actual structure.
        assert filt.serialized_size() <= 3 * cuckoo_size_bytes(n, fpr)

    def test_beats_bloom_at_low_fpr(self):
        # Cuckoo wins below ~3% FPR (the crossover Fan et al. report).
        n, fpr = 5000, 0.001
        assert cuckoo_size_bytes(n, fpr) < bloom_size_bytes(n, fpr) + 9

    def test_loses_to_bloom_at_high_fpr(self):
        n, fpr = 5000, 0.2
        assert cuckoo_size_bytes(n, fpr) > bloom_size_bytes(n, fpr) + 9

    def test_rejects_bad_capacity(self):
        with pytest.raises(ParameterError):
            CuckooFilter(0)


class TestGrapheneSwap:
    def test_cuckoo_as_filter_s_tradeoff(self, config):
        # At Protocol 1's chosen FPR (usually ~1%), swapping S for a
        # cuckoo filter is a wash-or-win only when f_S is small; the
        # size model lets the optimizer decide.
        from repro.core.params import optimize_a
        plan = optimize_a(2000, 4000, config)
        cuckoo = cuckoo_size_bytes(2000, plan.fpr)
        bloom = plan.bloom_bytes
        assert cuckoo > 0 and bloom > 0
        # Both models agree within a small factor at this regime.
        assert 0.3 < cuckoo / bloom < 3.0
