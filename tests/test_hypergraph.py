"""Tests for the hypergraph model of IBLT decoding."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pds.hypergraph import decode_many, decode_once


class TestDecodeOnce:
    def test_zero_edges_decodes(self, rng):
        assert decode_once(0, 4, 8, rng)

    def test_single_edge_always_decodes(self, rng):
        assert all(decode_once(1, 4, 8, rng) for _ in range(50))

    def test_overloaded_fails(self, rng):
        # 200 edges on 12 vertices: a 2-core is certain.
        assert not any(decode_once(200, 4, 12, rng) for _ in range(10))

    def test_ample_cells_succeed(self, rng):
        assert all(decode_once(10, 4, 200, rng) for _ in range(20))

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ParameterError):
            decode_once(5, 1, 8, rng)
        with pytest.raises(ParameterError):
            decode_once(5, 4, 10, rng)  # not a multiple of k
        with pytest.raises(ParameterError):
            decode_once(-1, 4, 8, rng)


class TestDecodeMany:
    def test_counts_bounded_by_trials(self):
        gen = np.random.default_rng(0)
        assert 0 <= decode_many(20, 4, 40, 50, gen) <= 50

    def test_zero_trials(self):
        gen = np.random.default_rng(0)
        assert decode_many(20, 4, 40, 0, gen) == 0

    def test_zero_edges_all_succeed(self):
        gen = np.random.default_rng(0)
        assert decode_many(0, 4, 8, 25, gen) == 25

    def test_agrees_with_scalar_implementation(self):
        # Same distribution: the batch and scalar success rates must agree.
        j, k, c, trials = 60, 4, 96, 1500
        gen = np.random.default_rng(1)
        batch_rate = decode_many(j, k, c, trials, gen) / trials
        scalar_rng = random.Random(2)
        scalar_rate = sum(
            decode_once(j, k, c, scalar_rng) for _ in range(600)) / 600
        assert batch_rate == pytest.approx(scalar_rate, abs=0.08)

    def test_monotone_in_cells(self):
        # More cells can only help; sampled rates should be ordered
        # (within Monte-Carlo noise) across a wide gap.
        gen = np.random.default_rng(3)
        low = decode_many(100, 4, 120, 400, gen) / 400
        high = decode_many(100, 4, 220, 400, gen) / 400
        assert high >= low

    def test_sharp_threshold_large_j(self):
        # k=4 peeling threshold is c/j ~ 1.295: below fails, above succeeds.
        gen = np.random.default_rng(4)
        below = decode_many(2000, 4, 2480, 50, gen)  # tau = 1.24
        above = decode_many(2000, 4, 2800, 50, gen)  # tau = 1.40
        assert below == 0
        assert above == 50

    def test_rejects_negative_trials(self):
        with pytest.raises(ParameterError):
            decode_many(5, 4, 8, -1, np.random.default_rng(0))
