"""Tests for the Golomb-coded set (Bloom filter alternative, 3.3.1)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.pds.bloom import bloom_size_bytes
from repro.pds.gcs import GolombCodedSet, gcs_size_bytes
from repro.utils.hashing import sha256


def _ids(count, tag=b""):
    return [sha256(tag + i.to_bytes(4, "little")) for i in range(count)]


class TestMembership:
    def test_no_false_negatives(self):
        items = _ids(300)
        gcs = GolombCodedSet(items, fpr=1 / 64)
        assert all(item in gcs for item in items)

    def test_fpr_near_target(self):
        target = 1 / 32
        gcs = GolombCodedSet(_ids(500), fpr=target)
        probes = _ids(6000, tag=b"p")
        observed = sum(1 for p in probes if p in gcs) / len(probes)
        assert observed == pytest.approx(target, rel=0.6)

    def test_empty_set_matches_nothing(self):
        gcs = GolombCodedSet([], fpr=0.01)
        assert sha256(b"x") not in gcs

    def test_degenerate_fpr_matches_everything(self):
        gcs = GolombCodedSet(_ids(5), fpr=1.0)
        assert sha256(b"anything") in gcs

    def test_seed_changes_mistakes(self):
        items = _ids(200)
        probes = _ids(4000, tag=b"q")
        fps = []
        for seed in (1, 2):
            gcs = GolombCodedSet(items, fpr=1 / 16, seed=seed)
            fps.append({p for p in probes if p in gcs})
        assert fps[0] != fps[1]

    def test_rejects_bad_fpr(self):
        with pytest.raises(ParameterError):
            GolombCodedSet([], fpr=0.0)


class TestSize:
    def test_size_estimate_close_to_actual(self):
        n, fpr = 1000, 1 / 256
        gcs = GolombCodedSet(_ids(n), fpr=fpr)
        assert gcs.serialized_size() == pytest.approx(
            gcs_size_bytes(n, fpr), rel=0.1)

    def test_smaller_than_bloom_filter(self):
        # The GCS trades CPU for ~30% fewer bits than a Bloom filter.
        n, fpr = 1000, 1 / 256
        gcs_bytes = GolombCodedSet(_ids(n), fpr=fpr).serialized_size()
        bloom_bytes = bloom_size_bytes(n, fpr) + 9
        assert gcs_bytes < bloom_bytes

    def test_size_grows_with_precision(self):
        assert gcs_size_bytes(100, 1 / 1024) > gcs_size_bytes(100, 1 / 16)

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            gcs_size_bytes(-1, 0.5)
        with pytest.raises(ParameterError):
            gcs_size_bytes(10, 0.0)


class TestProtocolPlugIn:
    def test_gcs_as_filter_s_shrinks_protocol1(self):
        # Re-run the Eq. 2 trade-off with the GCS size model: the sum
        # (GCS + IBLT) at Protocol 1's chosen `a` must beat Bloom + IBLT.
        from repro.core.params import GrapheneConfig, optimize_a
        config = GrapheneConfig()
        n, m = 2000, 4000
        plan = optimize_a(n, m, config)
        gcs_alternative = (gcs_size_bytes(n, plan.fpr)
                           + plan.iblt_bytes)
        assert gcs_alternative < plan.total_bytes
