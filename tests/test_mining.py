"""Tests for the Poisson mining simulation."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.net.mining import MinerNode, run_mining_experiment
from repro.net.node import RelayProtocol
from repro.net.simulator import Simulator


class TestMinerNode:
    def test_rejects_bad_hashrate(self):
        sim = Simulator()
        with pytest.raises(ParameterError):
            MinerNode("m", sim, hashrate_share=1.5)

    def test_cannot_mine_without_hashrate(self):
        sim = Simulator()
        miner = MinerNode("m", sim, hashrate_share=0.0)
        with pytest.raises(ParameterError):
            miner.start_mining()

    def test_solo_miner_builds_linear_chain(self):
        sim = Simulator()
        a = MinerNode("a", sim, hashrate_share=1.0, block_interval=10.0)
        b = MinerNode("b", sim, hashrate_share=0.0)
        # Share a genesis so chains agree.
        b.chain = type(b.chain)(a.chain.genesis)
        a.connect(b)
        a.start_mining(block_budget=5)
        sim.run()
        assert len(a.mined) == 5
        assert a.chain.height == 5
        assert a.chain.fork_rate() == 0.0

    def test_blocks_include_coinbase(self):
        sim = Simulator()
        a = MinerNode("a", sim, hashrate_share=1.0, block_interval=5.0)
        a.start_mining(block_budget=2)
        sim.run()
        for block in a.mined:
            assert any(tx.is_coinbase for tx in block.txs)

    def test_mined_blocks_are_all_distinct(self):
        sim = Simulator()
        a = MinerNode("a", sim, hashrate_share=1.0, block_interval=5.0)
        a.start_mining(block_budget=4)
        sim.run()
        roots = {block.header.merkle_root for block in a.mined}
        assert len(roots) == 4  # coinbase uniqueness


class TestMiningExperiment:
    def test_budget_respected_and_chain_complete(self):
        report = run_mining_experiment(
            RelayProtocol.GRAPHENE, blocks=12, miners=3,
            block_interval=50.0, block_txns=100,
            latency=0.1, bandwidth=200_000.0, seed=5)
        assert report.blocks_mined >= 12
        # Every mined block is accounted for: main chain + stale.
        assert (report.main_chain_height + report.stale_blocks
                >= report.blocks_mined - 2)  # in-flight slack

    def test_work_split_across_miners(self):
        report = run_mining_experiment(
            RelayProtocol.GRAPHENE, blocks=15, miners=3,
            block_interval=30.0, block_txns=50,
            latency=0.05, bandwidth=500_000.0, seed=6)
        contributors = sum(1 for count in report.per_miner_blocks.values()
                           if count > 0)
        assert contributors >= 2

    def test_slow_relay_forks_more(self):
        # Stress: big blocks, slow links, short interval.  Full-block
        # relay must fork visibly more than Graphene.
        kwargs = dict(blocks=30, miners=4, block_interval=20.0,
                      block_txns=400, latency=0.3, bandwidth=15_000.0,
                      seed=7)
        full = run_mining_experiment(RelayProtocol.FULL_BLOCK, **kwargs)
        graphene = run_mining_experiment(RelayProtocol.GRAPHENE, **kwargs)
        assert full.fork_rate > graphene.fork_rate
        assert full.stale_blocks >= 2

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            run_mining_experiment(RelayProtocol.GRAPHENE, blocks=0)
        with pytest.raises(ParameterError):
            run_mining_experiment(RelayProtocol.GRAPHENE, miners=1)
