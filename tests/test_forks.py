"""Tests for the fork-rate analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.forks import (
    delay_for_fork_budget,
    fork_probability,
    fork_rate_curve,
    max_block_size_for_budget,
    measure_propagation_delay,
)
from repro.errors import ParameterError
from repro.net.node import RelayProtocol


class TestForkModel:
    def test_zero_delay_zero_forks(self):
        assert fork_probability(0.0) == 0.0

    def test_matches_closed_form(self):
        assert fork_probability(30.0, 600.0) == pytest.approx(
            1 - math.exp(-0.05))

    def test_monotone_in_delay(self):
        values = [fork_probability(d) for d in (1, 10, 60, 300)]
        assert values == sorted(values)

    def test_inverse_roundtrip(self):
        budget = 0.02
        delay = delay_for_fork_budget(budget)
        assert fork_probability(delay) == pytest.approx(budget)

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            fork_probability(-1.0)
        with pytest.raises(ParameterError):
            fork_probability(1.0, 0.0)
        with pytest.raises(ParameterError):
            delay_for_fork_budget(1.0)


class TestPropagationMeasurement:
    def test_measurement_fields(self):
        measured = measure_propagation_delay(
            RelayProtocol.GRAPHENE, 100, nodes=6, degree=2, seed=1)
        assert measured.coverage_delay > 0
        assert measured.total_bytes > 0
        assert measured.nodes == 6

    def test_graphene_faster_than_full_blocks(self):
        kwargs = dict(nodes=6, degree=2, bandwidth=150_000.0, seed=2)
        graphene = measure_propagation_delay(
            RelayProtocol.GRAPHENE, 400, **kwargs)
        full = measure_propagation_delay(
            RelayProtocol.FULL_BLOCK, 400, **kwargs)
        assert graphene.coverage_delay < full.coverage_delay

    def test_rejects_empty_block(self):
        with pytest.raises(ParameterError):
            measure_propagation_delay(RelayProtocol.GRAPHENE, 0)


class TestForkCurves:
    def test_fork_rate_grows_with_block_size_for_full_blocks(self):
        rows = fork_rate_curve(RelayProtocol.FULL_BLOCK,
                               block_sizes=(100, 1000),
                               nodes=6, degree=2,
                               bandwidth=100_000.0, seed=3)
        assert rows[1]["fork_probability"] > rows[0]["fork_probability"]

    def test_graphene_forks_less_than_full_blocks(self):
        kwargs = dict(nodes=6, degree=2, bandwidth=100_000.0, seed=4)
        graphene = fork_rate_curve(RelayProtocol.GRAPHENE,
                                   block_sizes=(1000,), **kwargs)
        full = fork_rate_curve(RelayProtocol.FULL_BLOCK,
                               block_sizes=(1000,), **kwargs)
        assert (graphene[0]["fork_probability"]
                < full[0]["fork_probability"])

    def test_budget_admits_larger_graphene_blocks(self):
        # The introduction's claim, end to end: under the same fork
        # budget, Graphene admits at least the block size full-block
        # relay admits (and typically much more).
        kwargs = dict(nodes=6, degree=2, bandwidth=60_000.0, seed=5)
        candidates = (500, 1000, 2000, 4000)
        graphene_max = max_block_size_for_budget(
            RelayProtocol.GRAPHENE, 0.005, candidates=candidates, **kwargs)
        full_max = max_block_size_for_budget(
            RelayProtocol.FULL_BLOCK, 0.005, candidates=candidates, **kwargs)
        assert graphene_max >= full_max
        assert graphene_max >= 1000
