"""Tests for the observability subsystem (repro.obs).

Covers the three tentpole claims:

* spans assemble correctly from a recorded, timestamped event stream;
* the metrics fold agrees with ``CostBreakdown.from_events`` over the
  same streams, and the run-report invariants trip on injected
  accounting bugs;
* tracing is a pure observer -- a traced run is byte- and
  clock-identical to an untraced one, lossy or not.
"""

from __future__ import annotations

import json

import pytest

from repro.core.sizing import CostBreakdown
from repro.core.telemetry import MessageEvent
from repro.errors import ParameterError
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    RunReport,
    TraceMark,
    TraceRecord,
    assemble_spans,
    check_cost_parity,
    check_metrics_match_costs,
    check_stream_invariants,
    collect_run_metrics,
    render_byte_table,
    render_outcome_table,
    run_block_relay_scenario,
)


def _event(command="getdata", direction="sent", role="receiver",
           phase="p1", roundtrip=1, parts=None, outcome=""):
    return MessageEvent(command=command, direction=direction, role=role,
                        phase=phase, roundtrip=roundtrip,
                        parts=parts or {"getdata": 64}, outcome=outcome)


def _record(t, seq, event, node="n01", kind="relay", key="abc"):
    return TraceRecord(t=t, seq=seq, node=node, kind=kind, key=key,
                       event=event)


# ---------------------------------------------------------------------------
# Span assembly from a recorded stream
# ---------------------------------------------------------------------------

class TestSpanAssembly:
    def test_one_exchange_groups_into_one_span(self):
        records = [
            _record(1.0, 0, _event("inv", "received", phase="inv",
                                   roundtrip=0, parts={"inv": 61})),
            _record(1.1, 1, _event("getdata", "sent", phase="p1")),
            _record(1.6, 2, _event("graphene_block", "received", phase="p1",
                                   parts={"bloom_s": 500, "iblt_i": 160},
                                   outcome="decoded")),
        ]
        (span,) = assemble_spans(records)
        assert (span.node, span.kind, span.key) == ("n01", "relay", "abc")
        assert span.start == 1.0 and span.end == 1.6
        assert span.messages == 3
        assert span.bytes == 61 + 64 + 660
        assert [p.phase for p in span.phases] == ["inv", "p1"]
        assert span.phases[1].bytes == 724
        assert span.status == "done"          # from the decoded outcome

    def test_distinct_exchanges_make_distinct_spans(self):
        records = [
            _record(1.0, 0, _event(), key="aaa"),
            _record(1.0, 1, _event(), key="bbb"),
            _record(2.0, 2, _event(), node="n02", key="aaa"),
        ]
        spans = assemble_spans(records)
        assert len(spans) == 3
        assert {(s.node, s.key) for s in spans} == {
            ("n01", "aaa"), ("n01", "bbb"), ("n02", "aaa")}

    def test_timeouts_and_retries_are_counted(self):
        records = [
            _record(1.0, 0, _event()),
            _record(3.0, 1, _event(parts={}, outcome="timeout")),
            _record(3.0, 2, _event(outcome="retry")),
        ]
        (span,) = assemble_spans(records)
        assert span.timeouts == 1 and span.retries == 1

    def test_marks_set_status_and_extend_end(self):
        records = [_record(1.0, 0, _event())]
        marks = [TraceMark(t=5.0, seq=1, node="n01", kind="relay",
                           key="abc", name="abandon")]
        (span,) = assemble_spans(records, marks)
        assert span.status == "abandoned"
        assert span.end == 5.0

    def test_mark_precedence_done_beats_event_outcomes(self):
        records = [_record(1.0, 0, _event(outcome="failed"))]
        marks = [TraceMark(t=2.0, seq=1, node="n01", kind="relay",
                           key="abc", name="done")]
        (span,) = assemble_spans(records, marks)
        assert span.status == "done"

    def test_sender_only_stream_reports_served(self):
        records = [_record(1.0, 0, _event("graphene_block", role="sender"))]
        (span,) = assemble_spans(records)
        assert span.status == "served"

    def test_unresolved_receiver_stream_stays_open(self):
        records = [_record(1.0, 0, _event())]
        (span,) = assemble_spans(records)
        assert span.status == "open"

    def test_mark_without_records_is_skipped(self):
        # The miner marks "done" for its own block but never has a
        # receiving telemetry stream; no phantom span may appear.
        marks = [TraceMark(t=1.0, seq=0, node="n00", kind="relay",
                           key="abc", name="done")]
        assert assemble_spans([], marks) == []

    def test_spans_sort_by_start_time(self):
        records = [
            _record(5.0, 0, _event(), key="late"),
            _record(1.0, 1, _event(), key="early"),
        ]
        spans = assemble_spans(records)
        assert [s.key for s in spans] == ["early", "late"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_identity_is_name_plus_labels(self):
        registry = MetricsRegistry()
        registry.counter("bytes", node="a").inc(10)
        registry.counter("bytes", node="a").inc(5)
        registry.counter("bytes", node="b").inc(1)
        assert registry.sum("bytes", node="a") == 15
        assert registry.sum("bytes") == 16

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            Counter().inc(-1)

    def test_series_subset_matching(self):
        registry = MetricsRegistry()
        registry.counter("bytes", node="a", phase="p1").inc(7)
        registry.counter("bytes", node="a", phase="p2").inc(3)
        found = dict()
        for labels, metric in registry.series("bytes", node="a"):
            found[labels["phase"]] = metric.value
        assert found == {"p1": 7, "p2": 3}

    def test_label_values_sorted_distinct(self):
        registry = MetricsRegistry()
        for node in ("b", "a", "b"):
            registry.counter("bytes", node=node).inc()
        assert registry.label_values("bytes", "node") == ["a", "b"]

    def test_histogram_buckets_and_quantile(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.counts == [1, 1, 1, 1]
        assert hist.max_seen == 8.0
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(1.0) == 8.0
        assert hist.as_dict()["buckets"]["+Inf"] == 1

    def test_snapshot_is_deterministic_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("bytes", node="b").inc(2)
        registry.counter("bytes", node="a").inc(1)
        registry.gauge("rate").set(0.5)
        registry.histogram("lat", kind="relay").observe(0.1)
        snap = registry.snapshot()
        assert snap == json.loads(json.dumps(snap))
        assert list(snap["counters"]) == ["bytes{node=a}", "bytes{node=b}"]


# ---------------------------------------------------------------------------
# A shared small lossy run (exercises recovery deterministically)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def lossy_run():
    return run_block_relay_scenario(nodes=8, degree=4, block_size=80,
                                    extra=80, loss=0.05, seed=2024,
                                    until=120.0, sync_rounds=1)


class TestMetricsMatchCosts:
    def test_metrics_equal_costbreakdown_fold(self, lossy_run):
        registry = collect_run_metrics(lossy_run.nodes,
                                       tracer=lossy_run.tracer)
        streams = lossy_run.relay_streams()
        merged = CostBreakdown()
        for events in streams.values():
            merged = merged.merge(CostBreakdown.from_events(events))
        for part, expected in merged.as_dict().items():
            assert registry.sum("relay_part_bytes", part=part) == expected
        assert (registry.sum("relay_bytes")
                == merged.total(include_txs=True))
        inv = check_metrics_match_costs(registry, streams)
        assert inv.ok, inv.detail

    def test_tables_render_every_receiver_and_agree_on_total(self, lossy_run):
        registry = collect_run_metrics(lossy_run.nodes)
        table = render_byte_table(registry)
        for node in lossy_run.nodes[1:]:
            if node.relay_telemetry:
                assert node.node_id in table
        grand = int(registry.sum("relay_bytes"))
        assert str(grand) in table.splitlines()[-1]
        outcomes = render_outcome_table(registry)
        assert "decoded" in outcomes

    def test_exchange_latency_histogram_collected(self, lossy_run):
        registry = collect_run_metrics(lossy_run.nodes,
                                       tracer=lossy_run.tracer)
        series = list(registry.series("exchange_seconds", kind="relay"))
        assert series and series[0][1].count > 0


# ---------------------------------------------------------------------------
# Run-report invariants trip on injected accounting bugs
# ---------------------------------------------------------------------------

class TestReportInvariants:
    def test_clean_streams_pass(self, lossy_run):
        invariants = check_stream_invariants(lossy_run.relay_streams())
        assert all(inv.ok for inv in invariants)

    def test_unknown_part_name_trips_fold_invariant(self):
        bad = [_event(parts={"not_a_costbreakdown_field": 9})]
        invariants = {inv.name: inv
                      for inv in check_stream_invariants({"k": bad})}
        assert not invariants["relay_parts_fold_to_costbreakdown"].ok

    def test_tampered_retry_parts_trip_retry_invariant(self):
        # The retry claims to recharge 999 bytes no earlier send carried:
        # classic double-charging drift.
        stream = [
            _event("getdata", "sent", parts={"getdata": 64}),
            _event("getdata", "sent", parts={"getdata": 999},
                   outcome="retry"),
        ]
        invariants = {inv.name: inv
                      for inv in check_stream_invariants({"k": stream})}
        assert not invariants["relay_retry_bytes_within_total"].ok
        assert "999" in invariants["relay_retry_bytes_within_total"].detail

    def test_honest_retry_passes_retry_invariant(self):
        stream = [
            _event("getdata", "sent", parts={"getdata": 64}),
            _event("getdata", "sent", parts={"getdata": 64},
                   outcome="retry"),
        ]
        invariants = {inv.name: inv
                      for inv in check_stream_invariants({"k": stream})}
        assert invariants["relay_retry_bytes_within_total"].ok

    def test_tampered_counter_trips_metrics_invariant(self, lossy_run):
        registry = collect_run_metrics(lossy_run.nodes)
        registry.counter("relay_part_bytes", node="evil",
                         part="bloom_s").inc(1)
        inv = check_metrics_match_costs(registry,
                                        lossy_run.relay_streams())
        assert not inv.ok and "bloom_s" in inv.detail

    def test_cost_parity_mismatch_names_the_part(self):
        a = CostBreakdown(bloom_s=100)
        b = CostBreakdown(bloom_s=101)
        inv = check_cost_parity("parity", a, b)
        assert not inv.ok and "bloom_s" in inv.detail
        assert check_cost_parity("parity", a, a).ok

    def test_report_roundtrips_through_json(self, tmp_path):
        report = RunReport(name="t", context={"seed": 1})
        report.check("good", True, "fine")
        report.check("bad", False, "drifted")
        assert not report.ok and len(report.failed) == 1
        path = report.write(tmp_path / "sub" / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["ok"] is False
        assert {i["name"] for i in loaded["invariants"]} == {"good", "bad"}


# ---------------------------------------------------------------------------
# Tracing must not perturb the run (no heisenberg effect)
# ---------------------------------------------------------------------------

def _run_fingerprint(run):
    return {
        "now": run.simulator.now,
        "bytes": [n.total_bytes_sent() for n in run.nodes],
        "arrivals": [dict(n.block_arrival) for n in run.nodes],
        "timeouts": [n.relay_timeouts for n in run.nodes],
        "retries": [n.relay_retries for n in run.nodes],
    }


class TestTracerTransparency:
    @pytest.mark.parametrize("loss", [0.0, 0.05])
    def test_traced_run_identical_to_untraced(self, loss):
        kwargs = dict(nodes=8, degree=4, block_size=60, extra=60,
                      loss=loss, seed=2024, until=120.0, sync_rounds=1)
        traced = run_block_relay_scenario(trace=True, **kwargs)
        plain = run_block_relay_scenario(trace=False, **kwargs)
        assert _run_fingerprint(traced) == _run_fingerprint(plain)
        assert plain.tracer is None
        assert traced.tracer.records  # and it actually observed things

    def test_trace_replays_to_identical_jsonl(self):
        kwargs = dict(nodes=6, degree=2, block_size=40, extra=40,
                      loss=0.0, seed=7, until=60.0)
        first = run_block_relay_scenario(**kwargs)
        second = run_block_relay_scenario(**kwargs)
        assert (first.tracer.to_jsonl() == second.tracer.to_jsonl())


class TestTracerExport:
    def test_jsonl_one_valid_object_per_span(self, lossy_run):
        tracer = lossy_run.tracer
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer.spans())
        for line in lines:
            span = json.loads(line)
            assert {"node", "kind", "key", "status", "phases",
                    "events"} <= set(span)

    def test_jsonl_without_events_is_summary_only(self, lossy_run):
        line = lossy_run.tracer.to_jsonl(include_events=False).splitlines()[0]
        assert "events" not in json.loads(line)

    def test_timeline_mentions_spans_and_marks(self, lossy_run):
        text = lossy_run.tracer.timeline()
        assert "relay" in text and "done" in text
        assert "**" in text    # at least one completion mark rendered

    def test_timeline_kind_filter_and_limit(self, lossy_run):
        text = lossy_run.tracer.timeline(events=False, kind="relay",
                                         limit=2)
        assert "more spans" in text
        assert "sync " not in text

    def test_sync_spans_present_after_sync_round(self, lossy_run):
        kinds = {span.kind for span in lossy_run.tracer.spans()}
        assert "sync" in kinds and "serve" in kinds


# ---------------------------------------------------------------------------
# CLI entry points
# ---------------------------------------------------------------------------

class TestCli:
    def test_report_prints_tables_and_passes(self, capsys):
        from repro.cli import main
        assert main(["report", "--nodes", "8", "--block-size", "60",
                     "--seed", "2024"]) == 0
        out = capsys.readouterr().out
        assert "relay bytes by phase" in out
        assert "relay_metrics_match_costbreakdown" in out
        assert "FAIL" not in out

    def test_trace_writes_jsonl(self, capsys, tmp_path):
        from repro.cli import main
        path = tmp_path / "trace.jsonl"
        assert main(["trace", "--nodes", "6", "--block-size", "40",
                     "--loss", "0", "--summary",
                     "--jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        lines = path.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
