"""The peer group: concurrent demux, real-socket failover, GC.

PR 8 proved one socket speaks the wire byte-identically to loopback;
these tests prove the *group* semantics on top of the same frames:

* concurrent exchanges demultiplexed by root key -- two blocks in
  flight on one connection, the same block announced by two peers;
* duplicate-inv suppression: N announcers, one exchange, every
  announcer registered for failover;
* the recovery ladder's rung 3 for real: first announcer blackholed,
  the fetch escalates, fails over to a different TCP connection, and
  the surviving path stays byte-identical to loopback;
* abandon + GC: every announcer dead leaves no state behind, and a
  fresh healthy announcer restarts the fetch from scratch.
"""

from __future__ import annotations

import asyncio
import json

from repro.chain.scenarios import make_block_scenario
from repro.core.session import BlockRelaySession
from repro.net.peer import BlockServer, MeshFetchResult, PeerManager
from repro.net.recovery import RecoveryPolicy
from repro.obs import Tracer, WallClock

#: Small timeouts so ladder tests stall in milliseconds, not seconds.
FAST = dict(timeout_base=0.1, backoff=1.5, max_retries=1)

#: Every request command a server can go dark on: the peer handshakes
#: and hears the inv, then nothing -- the deterministic stand-in for a
#: blackholed announcer.
BLACKHOLE = {command: 10 ** 9
             for command in ("getdata", "graphene_p2_request",
                             "getdata_shortids", "getdata_block")}


def _scenario(seed, fraction=1.0, n=60):
    return make_block_scenario(n=n, extra=n, fraction=fraction, seed=seed)


def _loopback(seed, fraction=1.0, n=60, mempool=None):
    sc = _scenario(seed, fraction, n)
    return BlockRelaySession().relay(
        sc.block, mempool if mempool is not None else sc.receiver_mempool)


def _assert_event_parity(events, loop):
    assert json.dumps([e.as_dict() for e in events]) \
        == json.dumps([e.as_dict() for e in loop.events])


async def _drain(manager, count, timeout=15):
    results = [await manager.fetch_next(timeout=timeout)
               for _ in range(count)]
    return {r.root: r for r in results}


class TestConcurrentDemux:
    def test_two_roots_in_flight_on_one_connection(self):
        """One serving manager announces two blocks on one connection;
        both exchanges complete, each byte-identical to its loopback
        twin run against the same combined mempool."""
        sc1, sc2 = _scenario(11), _scenario(22)
        combined = _scenario(11).receiver_mempool
        combined.add_many(_scenario(22).receiver_mempool.transactions())

        async def run():
            serving = PeerManager(node_id="hub")
            port = await serving.listen()
            fetching = PeerManager(node_id="leaf", mempool=combined,
                                   policy=RecoveryPolicy(**FAST))
            try:
                await fetching.connect("127.0.0.1", port)
                await asyncio.sleep(0.05)  # inbound handshake settles
                serving.serve_block(sc1.block)
                serving.serve_block(sc2.block)
                return await _drain(fetching, 2)
            finally:
                await fetching.close()
                await serving.close()

        by_root = asyncio.run(run())
        assert len(by_root) == 2
        for sc, seed in ((sc1, 11), (sc2, 22)):
            result = by_root[sc.block.header.merkle_root]
            assert result.success and not result.escalated
            loop = _loopback(seed, mempool=_rebuild_combined())
            assert json.dumps(result.cost.as_dict(), sort_keys=True) \
                == json.dumps(loop.cost.as_dict(), sort_keys=True)
            _assert_event_parity(result.events, loop)

    def test_same_root_from_two_peers_is_one_exchange(self):
        """Two servers announce the same block: one exchange runs, the
        second announcer only joins the failover registry.  s1 drops
        one getdata so the exchange is deterministically still open
        when s2's inv lands."""
        sc = _scenario(33)

        async def run():
            s1 = BlockServer(sc.block, node_id="s1",
                             drop={"getdata": 1})
            s2 = BlockServer(sc.block, node_id="s2")
            p1, p2 = await s1.start(), await s2.start()
            manager = PeerManager(node_id="leaf",
                                  mempool=sc.receiver_mempool,
                                  policy=RecoveryPolicy(
                                      timeout_base=0.3, max_retries=2))
            try:
                await manager.connect("127.0.0.1", p1)
                await manager.connect("127.0.0.1", p2)
                result = await manager.fetch_next(timeout=15)
                # Both invs arrived (dedup counts them as distinct
                # announcers, not as duplicates of one connection).
                assert manager.invs_seen == 2
                return result, manager.pending_fetches
            finally:
                await manager.close()
                await s1.close()
                await s2.close()

        result, pending = asyncio.run(run())
        assert result.success and not result.escalated
        assert result.timeouts == 1 and result.retries == 1
        assert result.announcers == ["s1", "s2"]
        assert pending == 0
        # Stripped of the honest timeout/retry events, the stream is
        # the clean loopback exchange.
        loop = _loopback(33)
        _assert_event_parity([e for e in result.events
                              if e.outcome not in ("timeout", "retry")],
                             loop)

    def test_repeat_inv_on_same_connection_is_suppressed(self):
        sc = _scenario(44)

        async def run():
            serving = PeerManager(node_id="hub")
            port = await serving.listen()
            fetching = PeerManager(node_id="leaf",
                                   mempool=sc.receiver_mempool,
                                   policy=RecoveryPolicy(**FAST))
            try:
                await fetching.connect("127.0.0.1", port)
                await asyncio.sleep(0.05)
                serving.serve_block(sc.block)
                result = await fetching.fetch_next(timeout=15)
                # Announce again on the same connection: both the
                # already-fetched root and the repeated source must be
                # suppressed without opening an exchange.
                serving.serve_block(sc.block)
                await asyncio.sleep(0.2)
                return result, fetching
            finally:
                await fetching.close()
                await serving.close()

        result, fetching = asyncio.run(run())
        assert result.success
        assert fetching.inv_duplicates == 1
        assert fetching.pending_fetches == 0


class TestSocketFailover:
    def test_blackholed_announcer_fails_over(self):
        """Rung 3 on real sockets: the first announcer never answers,
        the ladder escalates then fails over to the second connection,
        and the surviving path is byte-identical to loopback."""
        sc = _scenario(55)
        tracer = Tracer(WallClock())

        async def run():
            s1 = BlockServer(sc.block, node_id="dark",
                             drop=dict(BLACKHOLE))
            s2 = BlockServer(sc.block, node_id="bright")
            p1, p2 = await s1.start(), await s2.start()
            manager = PeerManager(node_id="leaf",
                                  mempool=sc.receiver_mempool,
                                  policy=RecoveryPolicy(**FAST),
                                  tracer=tracer)
            try:
                await manager.connect("127.0.0.1", p1)
                await asyncio.sleep(0.05)  # dark's inv arrives first
                await manager.connect("127.0.0.1", p2)
                return await manager.fetch_next(timeout=15)
            finally:
                await manager.close()
                await s1.close()
                await s2.close()

        result = asyncio.run(run())
        assert isinstance(result, MeshFetchResult)
        assert result.success and result.escalated
        assert result.failovers == 1 and not result.via_fullblock
        assert result.announcers == ["dark", "bright"]
        # Same ladder shape as the simulator: escalate, then failover,
        # then completion -- visible as span marks in order.
        assert [m.name for m in tracer.marks] \
            == ["escalate", "failover", "done"]
        assert dict(tracer.marks[0].detail) \
            == {"peer": "dark", "why": "timeout"}
        assert dict(tracer.marks[1].detail) == {"to": "bright"}
        # The surviving attempt re-records inv + getdata (fresh engine,
        # same stream -- the simulator's failover shape), so its slice
        # alone is byte-identical to a clean loopback relay.
        loop = _loopback(55)
        _assert_event_parity(result.surviving_events, loop)
        assert json.dumps(result.surviving_cost.as_dict(), sort_keys=True) \
            == json.dumps(loop.cost.as_dict(), sort_keys=True)
        # The full stream additionally charges the failed attempt's
        # timeouts and retries -- honestly, on top of the clean cost.
        assert result.timeouts >= 4
        assert result.cost.total(include_txs=True) \
            > result.surviving_cost.total(include_txs=True)
        outcomes = [e.outcome for e in result.events if e.outcome
                    in ("timeout", "retry")]
        assert "timeout" in outcomes and "retry" in outcomes

    def test_dead_connection_fails_over_immediately(self):
        """A server killed mid-relay (connection reset, not timeout)
        triggers failover without waiting out the backoff ladder."""
        sc = _scenario(66)
        tracer = Tracer(WallClock())

        async def run():
            s1 = BlockServer(sc.block, node_id="doomed",
                             drop=dict(BLACKHOLE))
            s2 = BlockServer(sc.block, node_id="healthy")
            p1, p2 = await s1.start(), await s2.start()
            manager = PeerManager(node_id="leaf",
                                  mempool=sc.receiver_mempool,
                                  policy=RecoveryPolicy(
                                      timeout_base=30.0, max_retries=1),
                                  tracer=tracer)
            try:
                cid1 = await manager.connect("127.0.0.1", p1)
                await asyncio.sleep(0.05)
                await manager.connect("127.0.0.1", p2)
                await asyncio.sleep(0.1)  # exchange opens against s1
                # Sever the s1 connection mid-relay: the read loop sees
                # EOF and must fail over without waiting for the timer.
                await manager.connections[cid1].conn.close()
                result = await manager.fetch_next(timeout=15)
                return result
            finally:
                await manager.close()
                await s1.close()
                await s2.close()

        result = asyncio.run(run())
        assert result.success
        assert result.failovers == 1
        assert result.timeouts == 0  # the 30 s timer never fired
        assert [m.name for m in tracer.marks] == ["failover", "done"]
        _assert_event_parity(result.surviving_events, _loopback(66))

    def test_fullblock_path_also_fails_over(self):
        """An announcer that answers nothing but also survives its own
        fullblock rung hands the fetch to the next announcer, and the
        block can arrive via the alternate's fullblock rung too."""
        sc = _scenario(77)

        async def run():
            # Both announcers drop engine traffic; the second still
            # serves full blocks, so the fetch completes via rung 2 on
            # the *second* connection.
            s1 = BlockServer(sc.block, node_id="dark",
                             drop=dict(BLACKHOLE))
            s2 = BlockServer(sc.block, node_id="dim",
                             drop={"getdata": 10 ** 9})
            p1, p2 = await s1.start(), await s2.start()
            manager = PeerManager(node_id="leaf",
                                  mempool=sc.receiver_mempool,
                                  policy=RecoveryPolicy(**FAST))
            try:
                await manager.connect("127.0.0.1", p1)
                await asyncio.sleep(0.05)
                await manager.connect("127.0.0.1", p2)
                return await manager.fetch_next(timeout=30)
            finally:
                await manager.close()
                await s1.close()
                await s2.close()

        result = asyncio.run(run())
        assert result.success and result.via_fullblock
        assert result.failovers == 1
        assert [tx.txid for tx in result.txs] \
            == [tx.txid for tx in sc.block.txs]


class TestAbandonAndGC:
    def test_all_announcers_exhausted_abandons_and_gcs(self):
        """Every announcer blackholed: the fetch is abandoned with all
        registries empty -- and a fresh healthy announcer restarts it
        from scratch, exactly like the simulator's re-inv semantics."""
        sc = _scenario(88)
        tracer = Tracer(WallClock())

        async def run():
            s1 = BlockServer(sc.block, node_id="dark1",
                             drop=dict(BLACKHOLE))
            s2 = BlockServer(sc.block, node_id="dark2",
                             drop=dict(BLACKHOLE))
            p1, p2 = await s1.start(), await s2.start()
            manager = PeerManager(node_id="leaf",
                                  mempool=sc.receiver_mempool,
                                  policy=RecoveryPolicy(**FAST),
                                  tracer=tracer)
            try:
                await manager.connect("127.0.0.1", p1)
                await asyncio.sleep(0.05)
                await manager.connect("127.0.0.1", p2)
                result = await manager.fetch_next(timeout=30)
                gc_clean = (manager.pending_fetches == 0
                            and not manager.announced_roots)
                # The ladder ended; a fresh healthy announcer restarts
                # the fetch from nothing.
                s3 = BlockServer(sc.block, node_id="fresh")
                p3 = await s3.start()
                try:
                    await manager.connect("127.0.0.1", p3)
                    retry = await manager.fetch_next(timeout=15)
                finally:
                    # Close the manager first: BlockServer.close()
                    # waits for its handler, which only ends once the
                    # manager's side of the connection is gone.
                    await manager.close()
                    await s3.close()
                return result, gc_clean, retry
            finally:
                await manager.close()
                await s1.close()
                await s2.close()

        result, gc_clean, retry = asyncio.run(run())
        assert not result.success and result.abandoned
        assert result.block is None
        # Both announcers were climbed: escalate + failover + escalate
        # again on the alternate, then abandon.
        assert [m.name for m in tracer.marks][:4] \
            == ["escalate", "failover", "escalate", "abandon"]
        assert result.failovers == 1
        assert gc_clean
        assert retry.success
        assert retry.announcers == ["fresh"]
        _assert_event_parity(retry.surviving_events, _loopback(88))

    def test_close_cancels_inflight_fetch_cleanly(self):
        sc = _scenario(99)

        async def run():
            s1 = BlockServer(sc.block, node_id="dark",
                             drop=dict(BLACKHOLE))
            p1 = await s1.start()
            manager = PeerManager(node_id="leaf",
                                  mempool=sc.receiver_mempool,
                                  policy=RecoveryPolicy(
                                      timeout_base=30.0, max_retries=1))
            try:
                await manager.connect("127.0.0.1", p1)
                await asyncio.sleep(0.1)  # fetch opens, then we bail
                assert manager.pending_fetches == 1
            finally:
                await manager.close()
                await s1.close()
            return manager

        manager = asyncio.run(run())
        assert not manager.connections


class TestMeshRelay:
    def test_listening_fetcher_reserves_fetched_block(self):
        """A ``--listen`` node is a relay: once it fetches the block it
        serves it onward, so a third node can fetch from *it*."""
        sc = _scenario(111)
        downstream_pool = _scenario(111).receiver_mempool

        async def run():
            origin = BlockServer(sc.block, node_id="origin")
            port = await origin.start()
            middle = PeerManager(node_id="middle",
                                 mempool=sc.receiver_mempool,
                                 policy=RecoveryPolicy(**FAST))
            leaf = PeerManager(node_id="leaf", mempool=downstream_pool,
                               policy=RecoveryPolicy(**FAST))
            try:
                middle_port = await middle.listen()
                await leaf.connect("127.0.0.1", middle_port)
                await middle.connect("127.0.0.1", port)
                first = await middle.fetch_next(timeout=15)
                second = await leaf.fetch_next(timeout=15)
                return first, second
            finally:
                await leaf.close()
                await middle.close()
                await origin.close()

        first, second = asyncio.run(run())
        assert first.success and second.success
        assert second.announcers == ["middle"]
        assert second.block.header.merkle_root \
            == sc.block.header.merkle_root
        # The re-relay is a fresh clean exchange: byte-identical to the
        # loopback relay of the same block against the same mempool.
        _assert_event_parity(second.events, _loopback(111))


def _rebuild_combined():
    combined = _scenario(11).receiver_mempool
    combined.add_many(_scenario(22).receiver_mempool.transactions())
    return combined
