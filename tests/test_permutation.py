"""Tests for the transaction-order codec (paper 6.2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.ordering import ordering_info_bytes
from repro.chain.permutation import (
    decode_order,
    encode_order,
    lehmer_decode,
    lehmer_encode,
    log2_factorial,
    ordering_overhead_ratio,
)
from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError


class TestLehmer:
    def test_identity_is_zero(self):
        assert lehmer_encode([0, 1, 2, 3]) == 0

    def test_reverse_is_max(self):
        import math
        n = 5
        assert lehmer_encode(list(range(n - 1, -1, -1))) == \
            math.factorial(n) - 1

    @given(st.permutations(list(range(8))))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, perm):
        perm = list(perm)
        assert lehmer_decode(lehmer_encode(perm), len(perm)) == perm

    def test_distinct_perms_distinct_codes(self):
        import itertools
        codes = {lehmer_encode(list(p))
                 for p in itertools.permutations(range(5))}
        assert len(codes) == 120

    def test_rejects_non_permutation(self):
        with pytest.raises(ParameterError):
            lehmer_encode([0, 0, 1])

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ParameterError):
            lehmer_decode(10**6, 3)


class TestOrderCodec:
    def test_roundtrip_random_order(self, txgen):
        txs = txgen.make_batch(30)
        random.Random(3).shuffle(txs)
        blob = encode_order(txs)
        restored = decode_order(blob, list(reversed(txs)))
        assert [t.txid for t in restored] == [t.txid for t in txs]

    def test_size_is_entropy_floor(self, txgen):
        txs = txgen.make_batch(100)
        assert len(encode_order(txs)) == ordering_info_bytes(100)

    def test_single_tx_free(self, txgen):
        assert encode_order(txgen.make_batch(1)) == b""

    def test_wrong_blob_length_rejected(self, txgen):
        txs = txgen.make_batch(10)
        with pytest.raises(ParameterError):
            decode_order(b"\x00", txs)

    def test_canonical_order_encodes_to_zeros(self, txgen):
        from repro.chain.ordering import canonical_order
        txs = canonical_order(txgen.make_batch(12))
        blob = encode_order(txs)
        assert int.from_bytes(blob, "little") == 0


class TestAnalytics:
    def test_log2_factorial_matches_exact(self):
        import math
        assert log2_factorial(10) == pytest.approx(
            math.log2(math.factorial(10)))

    def test_overhead_ratio_grows(self):
        # Paper 6.2: the order field eventually dwarfs Graphene.
        small = ordering_overhead_ratio(100, 500)
        large = ordering_overhead_ratio(10_000, 15_000)
        assert large > small

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            ordering_overhead_ratio(10, 0)
        with pytest.raises(ParameterError):
            log2_factorial(-1)
