"""Tests for engine-driven Graphene over the network simulator."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.transaction import TransactionGenerator
from repro.net.node import Node, RelayProtocol
from repro.net.simulator import Link, Simulator


def _pair(latency=0.01, bandwidth=10_000_000):
    sim = Simulator()
    a = Node("a", sim, protocol=RelayProtocol.GRAPHENE)
    b = Node("b", sim, protocol=RelayProtocol.GRAPHENE)
    a.connect(b, Link(latency=latency, bandwidth=bandwidth))
    return sim, a, b


class TestWireProtocol1:
    def test_synced_receiver_gets_block(self, txgen):
        sim, a, b = _pair()
        txs = txgen.make_batch(100)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        b.mempool.add_many(txgen.make_batch(100))
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks
        assert b.relay_failures == 0

    def test_single_graphene_message_suffices(self, txgen):
        sim, a, b = _pair()
        txs = txgen.make_batch(100)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        # inv + graphene_block from a; getdata from b: 1.5 roundtrips.
        assert a.stats[b].messages_sent == 2
        assert b.stats[a].messages_sent == 1


class TestWireProtocol2:
    def test_unsynced_receiver_recovers_via_p2(self, txgen):
        sim, a, b = _pair()
        txs = txgen.make_batch(200)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs[:180])           # missing 10% of the block
        b.mempool.add_many(txgen.make_batch(200))
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks
        # The exchange took extra messages beyond inv/getdata/payload.
        assert a.stats[b].messages_sent >= 3

    def test_block_txs_land_in_blocks_not_duplicated(self, txgen):
        sim, a, b = _pair()
        txs = txgen.make_batch(150)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs[:100])
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        arrived = b.blocks[block.header.merkle_root]
        assert arrived.txids == block.txids


class TestMultiHop:
    def test_relay_chains_through_intermediate(self, txgen):
        sim = Simulator()
        nodes = [Node(f"n{i}", sim, protocol=RelayProtocol.GRAPHENE)
                 for i in range(3)]
        nodes[0].connect(nodes[1])
        nodes[1].connect(nodes[2])
        txs = txgen.make_batch(120)
        for node in nodes:
            node.mempool.add_many(txs)
        block = Block.assemble(txs)
        nodes[0].mine_block(block)
        sim.run()
        root = block.header.merkle_root
        assert root in nodes[2].blocks
        # The middle node re-served the block with its own engine.
        assert root in nodes[1]._tx_engines or root in nodes[1].blocks

    def test_arrival_times_increase_along_path(self, txgen):
        sim = Simulator()
        nodes = [Node(f"n{i}", sim, protocol=RelayProtocol.GRAPHENE)
                 for i in range(4)]
        for x, y in zip(nodes, nodes[1:]):
            x.connect(y, Link(latency=0.05))
        txs = txgen.make_batch(80)
        for node in nodes:
            node.mempool.add_many(txs)
        block = Block.assemble(txs)
        nodes[0].mine_block(block)
        sim.run()
        root = block.header.merkle_root
        times = [node.block_arrival[root] for node in nodes]
        assert times == sorted(times)
        assert times[1] > times[0]


class TestFallback:
    def test_empty_mempool_receiver_still_gets_block(self, txgen):
        # Receiver with nothing: Protocol 2's special case (or the
        # full-block fallback) must still deliver the exact block.
        sim, a, b = _pair()
        txs = txgen.make_batch(60)
        a.mempool.add_many(txs)
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks
        arrived = b.blocks[block.header.merkle_root]
        assert arrived.txids == block.txids
