"""Tests for the scaled simulator core and columnar network state."""

from __future__ import annotations

import pytest

from repro.core.telemetry import (
    AggregateRecorder,
    EventRecorder,
    MessageEvent,
    total_wire_bytes,
)
from repro.core.sizing import CostBreakdown
from repro.errors import ParameterError, SimulationBudgetError
from repro.net.node import Node
from repro.net.simulator import FaultInjector, Link, Simulator, _COMPACT_MIN


class TestRunBudget:
    def test_budget_is_per_call_not_cumulative(self):
        # The old bug: max_events compared against the lifetime total,
        # so a second run() inherited a spent budget and did nothing.
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=10)
        assert sim.events_processed == 10
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=10)
        assert sim.events_processed == 20
        assert not sim.truncated

    def test_truncation_sets_flag_and_preserves_queue(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=4)
        assert sim.truncated
        assert sim.pending == 6
        sim.run()
        assert not sim.truncated
        assert sim.pending == 0
        assert sim.events_processed == 10

    def test_truncation_never_clamps_clock_to_horizon(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(until=100.0, max_events=4)
        assert sim.now == 3.0  # not 100.0: the run did not get there

    def test_on_budget_raise(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        with pytest.raises(SimulationBudgetError):
            sim.run(max_events=4, on_budget="raise")
        # The queue survives the raise; a fresh budget drains it.
        assert sim.pending == 6
        sim.run()
        assert sim.pending == 0

    def test_on_budget_validated(self):
        with pytest.raises(ParameterError):
            Simulator().run(on_budget="ignore")


class TestPostFastPath:
    def test_post_orders_with_schedule(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("handle"))
        sim.post(1.0, lambda: order.append("fast"))
        sim.post_at(3.0, lambda: order.append("fast_at"))
        sim.run()
        assert order == ["fast", "handle", "fast_at"]

    def test_post_counts_as_pending(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_post_validation(self):
        sim = Simulator()
        with pytest.raises(ParameterError):
            sim.post(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ParameterError):
            sim.post_at(1.0, lambda: None)

    def test_slots_are_recycled(self):
        sim = Simulator()
        for i in range(100):
            sim.post(float(i), lambda: None)
        sim.run()
        for i in range(100):
            sim.post(float(i), lambda: None)
        sim.run()
        # The pool never grew beyond the first wave's peak.
        assert len(sim._slot_cb) <= 100


class TestHeapCompaction:
    def test_compaction_drops_cancelled_entries(self):
        sim = Simulator()
        handles = [sim.schedule(1000.0 + i, lambda: None)
                   for i in range(2 * _COMPACT_MIN)]
        for handle in handles:
            handle.cancel()
        # Trigger the push-time compaction check.
        sim.post(1.0, lambda: None)
        assert len(sim._queue) == 1
        assert sim.pending == 1

    def test_compaction_preserves_order(self):
        # Same workload with and without compaction kicking in must
        # fire surviving events in the same order at the same clocks.
        def run_one(cancel_bulk):
            sim = Simulator()
            order = []
            for i in range(50):
                sim.schedule(float(100 + i),
                             lambda i=i: order.append((i, sim.now)))
            doomed = [sim.schedule(5000.0 + i, lambda: None)
                      for i in range(cancel_bulk)]
            for handle in doomed:
                handle.cancel()
            sim.post(1.0, lambda: order.append(("first", sim.now)))
            sim.run(until=200.0)
            return order

        quiet = run_one(cancel_bulk=0)
        compacted = run_one(cancel_bulk=2 * _COMPACT_MIN)
        assert quiet == compacted

    def test_cancelled_events_never_fire_after_compaction(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(10.0 + i, lambda i=i: fired.append(i))
                   for i in range(2 * _COMPACT_MIN)]
        keep = list(range(0, len(handles), 7))
        for i, handle in enumerate(handles):
            if i % 7:
                handle.cancel()
        sim.post(1.0, lambda: None)
        sim.run()
        assert fired == keep


class TestRunCycles:
    def test_cycles_advance_in_fixed_steps(self):
        sim = Simulator()
        for i in range(10):
            sim.post(float(i), lambda: None)
        stats = []
        ran = sim.run_cycles(cycle=2.5, cycles=4, on_cycle=stats.append)
        assert ran == 4
        assert [s.t_end for s in stats] == [2.5, 5.0, 7.5, 10.0]
        assert sum(s.events for s in stats) == 10
        assert stats[-1].pending == 0

    def test_unbounded_cycles_stop_when_drained(self):
        sim = Simulator()
        sim.post(7.0, lambda: None)
        ran = sim.run_cycles(cycle=2.0)
        assert ran == 4  # 0-2, 2-4, 4-6, 6-8
        assert sim.pending == 0

    def test_cycle_budget_raises_by_default(self):
        sim = Simulator()
        for i in range(10):
            sim.post(0.1 * i, lambda: None)
        with pytest.raises(SimulationBudgetError):
            sim.run_cycles(cycle=5.0, cycles=1, max_events_per_cycle=3)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Simulator().run_cycles(cycle=0.0)
        with pytest.raises(ParameterError):
            Simulator().run_cycles(cycle=1.0, cycles=-1)


class TestFaultInjectorReset:
    def test_reset_rewinds_index_and_counter(self):
        fault = FaultInjector(drop_nth=frozenset({0, 2}))
        decisions = [fault.should_drop(0.0, "inv") for _ in range(4)]
        assert decisions == [True, False, True, False]
        assert fault.dropped == 2
        fault.reset()
        assert fault.dropped == 0
        assert fault._index == 0
        assert [fault.should_drop(0.0, "inv")
                for _ in range(4)] == decisions

    def test_reset_keeps_configuration(self):
        fault = FaultInjector(drop_commands=frozenset({"block"}),
                              blackhole=(1.0, 2.0))
        fault.should_drop(1.5, "inv")
        fault.reset()
        assert fault.should_drop(0.0, "block")
        assert fault.should_drop(1.5, "inv")


def _event(command="graphene_block", direction="received",
           role="receiver", phase="p1", parts=None, outcome=""):
    return MessageEvent(command=command, direction=direction, role=role,
                        phase=phase, roundtrip=1,
                        parts=parts or {"iblt_i": 100, "bloom_s": 40},
                        outcome=outcome)


class TestAggregateRecorder:
    def test_aggregates_match_full_recorder(self):
        full, aggregate = EventRecorder(), AggregateRecorder()
        events = [
            _event(),
            _event(direction="sent", phase="fetch",
                   parts={"fetched_tx_bytes": 500}, outcome="fetch"),
            _event(parts={"counts": 8}, outcome="decoded"),
        ]
        for event in events:
            full.append(event)
            aggregate.append(event)
        assert aggregate.part_totals == full.part_totals
        assert aggregate.direction_counts == full.direction_counts
        assert aggregate.phase_bytes == full.phase_bytes
        assert aggregate.outcome_counts == full.outcome_counts
        assert aggregate.outcome_bytes == full.outcome_bytes

    def test_events_are_not_retained(self):
        aggregate = AggregateRecorder()
        aggregate.append(_event())
        assert len(aggregate) == 0
        assert aggregate.consistent()

    def test_cost_breakdown_fast_path_reads_aggregates(self):
        full, aggregate = EventRecorder(), AggregateRecorder()
        for _ in range(3):
            full.append(_event())
            aggregate.append(_event())
        assert (CostBreakdown.from_events(aggregate).as_dict()
                == CostBreakdown.from_events(full).as_dict())
        assert total_wire_bytes(aggregate) == total_wire_bytes(full)


class TestColumnarState:
    def test_stats_view_is_peerstats_compatible(self):
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.connect(b)
        assert a.stats[b].bytes_sent == 0
        a.submit_transaction(_make_tx(0))
        sim.run()
        assert a.stats[b].messages_sent >= 1
        assert a.stats[b].bytes_sent > 0
        assert b in a.stats
        assert len(a.stats) == 1
        assert a.total_bytes_sent() == sum(
            s.bytes_sent for s in a.stats.values())

    def test_direct_link_assignment_reuses_edge(self):
        # tests/test_lossy_links.py wires links by assigning into
        # node.peers directly; the edge registry must tolerate that.
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.connect(b)
        a.submit_transaction(_make_tx(1))
        sim.run()
        before = a.stats[b].bytes_sent
        assert before > 0
        a.peers[b] = Link(latency=0.01)
        b.peers[a] = Link(latency=0.01)
        a.submit_transaction(_make_tx(2))
        sim.run()
        # Same ordered pair -> same edge row: counters accumulate.
        assert a.stats[b].bytes_sent > before

    def test_inv_view_is_shared_but_per_node(self):
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a._seen_inv.add(b"t1")
        assert b"t1" in a._seen_inv
        assert b"t1" not in b._seen_inv
        b._seen_inv.update([b"t1", b"t2"])
        assert len(b._seen_inv) == 2
        # One shared table entry for t1, owned by two bits.
        assert len(sim.net.inv_masks) == 2
        a._seen_inv.clear()
        assert b"t1" not in a._seen_inv
        assert b"t1" in b._seen_inv
        b._seen_inv.clear()
        assert len(sim.net.inv_masks) == 0

    def test_block_sources_resolve_through_registry(self):
        from repro.chain.scenarios import make_block_scenario
        from repro.net import connect_line
        sim = Simulator()
        nodes = [Node(f"n{i}", sim) for i in range(3)]
        connect_line(nodes)
        scenario = make_block_scenario(n=8, extra=0, fraction=1.0, seed=3)
        for node in nodes[1:]:
            node.mempool.add_many(
                scenario.receiver_mempool.transactions())
        nodes[0].mine_block(scenario.block)
        sim.run()
        root = scenario.block.header.merkle_root
        assert all(root in node.blocks for node in nodes)
        # Registries were GCed after acceptance.
        assert all(not node._block_sources for node in nodes)


class TestPropagationScenario:
    def test_small_run_reports_consistent_stats(self):
        from repro.obs import run_propagation_scenario
        run = run_propagation_scenario(nodes=12, degree=4, blocks=3,
                                       block_txns=8, interval=1.0,
                                       seed=3, drain=10.0)
        assert len(run.records) == 3
        assert run.coverage == 1.0
        assert run.fork_rate == 0.0
        assert run.delay_quantile(0.5) > 0.0
        assert len(run.delays) == 3 * 11
        # Below the threshold, full per-event telemetry is kept.
        assert run.params["telemetry_mode"] == "full"
        retained = sum(len(s) for n in run.nodes
                       for s in n.relay_telemetry.values())
        assert retained > 0
        histogram = run.registry.histogram("net_propagation_seconds")
        assert histogram.count == len(run.delays)

    def test_aggregate_threshold_switches_mode(self):
        from repro.obs import run_propagation_scenario
        run = run_propagation_scenario(nodes=12, degree=4, blocks=2,
                                       block_txns=8, interval=1.0,
                                       seed=3, drain=5.0,
                                       aggregate_threshold=10)
        assert run.params["telemetry_mode"] == "aggregate"
        assert sum(len(s) for n in run.nodes
                   for s in n.relay_telemetry.values()) == 0
        # Aggregate streams still account nonzero relay bytes.
        assert run.simulator.net.total_bytes() > 0

    def test_seeded_runs_are_identical(self):
        from repro.obs import run_propagation_scenario
        runs = [run_propagation_scenario(nodes=12, degree=4, blocks=2,
                                         block_txns=8, interval=1.0,
                                         seed=9, drain=5.0)
                for _ in range(2)]
        assert runs[0].delays == runs[1].delays
        assert ([r.root for r in runs[0].records]
                == [r.root for r in runs[1].records])
        assert (runs[0].simulator.events_processed
                == runs[1].simulator.events_processed)

    def test_cycle_stats_cover_the_run(self):
        from repro.obs import run_propagation_scenario
        run = run_propagation_scenario(nodes=8, degree=4, blocks=2,
                                       block_txns=6, interval=1.0,
                                       seed=5, drain=4.0)
        assert sum(s.events for s in run.cycles) \
            == run.simulator.events_processed
        assert run.cycles[-1].pending == 0
        assert not any(s.truncated for s in run.cycles)

    def test_validation(self):
        from repro.obs import run_propagation_scenario
        with pytest.raises(ParameterError):
            run_propagation_scenario(nodes=1)
        with pytest.raises(ParameterError):
            run_propagation_scenario(nodes=4, topology="torus")


def _make_tx(i):
    from repro.chain.transaction import TransactionGenerator
    return TransactionGenerator(seed=1000 + i).make_batch(1)[0]
