"""Tests for the event-driven network substrate."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.errors import ParameterError
from repro.net.messages import NetMessage
from repro.net.node import Node, RelayProtocol
from repro.net.simulator import Link, Simulator
from repro.net.topology import (
    connect_clique,
    connect_line,
    connect_random_regular,
)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        assert sim.run() == 5.0

    def test_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending == 1

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]

    def test_rejects_negative_delay(self):
        with pytest.raises(ParameterError):
            Simulator().schedule(-1.0, lambda: None)

    def test_rejects_past_absolute(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ParameterError):
            sim.run()


class TestLink:
    def test_delivery_time_formula(self):
        link = Link(latency=0.1, bandwidth=1000)
        assert link.transmit_schedule(0.0, 500) == pytest.approx(0.6)

    def test_fifo_queueing(self):
        link = Link(latency=0.0, bandwidth=100)
        first = link.transmit_schedule(0.0, 100)   # finishes sending at 1.0
        second = link.transmit_schedule(0.0, 100)  # must wait for the first
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            Link(latency=-1)
        with pytest.raises(ParameterError):
            Link(bandwidth=0)


class TestNetMessage:
    def test_unknown_command_rejected(self):
        with pytest.raises(ParameterError):
            NetMessage("bogus", None, 10)

    def test_total_includes_envelope(self):
        msg = NetMessage("inv", None, 37)
        assert msg.total_size == 37 + 24


class TestNodeGossip:
    def _pair(self):
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        a.connect(b, Link(latency=0.01, bandwidth=10_000_000))
        return sim, a, b

    def test_transaction_propagates(self, txgen):
        sim, a, b = self._pair()
        tx = txgen.make()
        a.submit_transaction(tx)
        sim.run()
        assert tx.txid in b.mempool

    def test_no_self_peering(self):
        sim = Simulator()
        node = Node("x", sim)
        with pytest.raises(ParameterError):
            node.connect(node)

    def test_bytes_accounted(self, txgen):
        sim, a, b = self._pair()
        a.submit_transaction(txgen.make())
        sim.run()
        assert a.total_bytes_sent() > 0
        assert b.total_bytes_sent() > 0  # getdata back

    def test_duplicate_inv_not_rerequested(self, txgen):
        sim = Simulator()
        a, b, c = (Node(i, sim) for i in "abc")
        a.connect(c)
        b.connect(c)
        a.connect(b)
        tx = txgen.make()
        a.submit_transaction(tx)
        sim.run()
        assert tx.txid in c.mempool
        # c asked for the tx exactly once despite two inv paths.
        getdatas = sum(
            stats.messages_sent for stats in c.stats.values())
        assert getdatas <= 3  # getdata + its own inv relays


class TestBlockRelayOverNetwork:
    @pytest.mark.parametrize("protocol", list(RelayProtocol))
    def test_block_reaches_all_nodes(self, protocol, txgen):
        sim = Simulator()
        nodes = [Node(f"n{i}", sim, protocol=protocol) for i in range(4)]
        connect_line(nodes, latency=0.01)
        txs = txgen.make_batch(50)
        for node in nodes:
            node.mempool.add_many(txs)
        block = Block.assemble(txs)
        nodes[0].mine_block(block)
        sim.run()
        root = block.header.merkle_root
        assert all(root in node.blocks for node in nodes)

    def test_graphene_propagates_faster_than_full_blocks(self, txgen):
        results = {}
        for protocol in (RelayProtocol.GRAPHENE, RelayProtocol.FULL_BLOCK):
            sim = Simulator()
            nodes = [Node(f"n{i}", sim, protocol=protocol) for i in range(5)]
            connect_line(nodes, latency=0.02, bandwidth=200_000)
            txs = txgen.make_batch(400)
            for node in nodes:
                node.mempool.add_many(txs)
            block = Block.assemble(txs)
            nodes[0].mine_block(block)
            sim.run()
            results[protocol] = nodes[-1].block_arrival[
                block.header.merkle_root]
        assert (results[RelayProtocol.GRAPHENE]
                < results[RelayProtocol.FULL_BLOCK])

    def test_mempool_cleared_after_block(self, txgen):
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        a.connect(b)
        txs = txgen.make_batch(20)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        a.mine_block(Block.assemble(txs))
        sim.run()
        assert len(b.mempool) == 0


class TestTopologies:
    def _nodes(self, count):
        sim = Simulator()
        return [Node(f"n{i}", sim) for i in range(count)]

    def test_clique_degree(self):
        nodes = self._nodes(5)
        connect_clique(nodes)
        assert all(len(node.peers) == 4 for node in nodes)

    def test_line_degree(self):
        nodes = self._nodes(5)
        connect_line(nodes)
        assert len(nodes[0].peers) == 1
        assert len(nodes[2].peers) == 2

    def test_random_regular_degree(self):
        import random
        nodes = self._nodes(20)
        connect_random_regular(nodes, degree=4, rng=random.Random(1))
        assert all(len(node.peers) == 4 for node in nodes)

    def test_small_network_falls_back_to_clique(self):
        nodes = self._nodes(3)
        connect_random_regular(nodes, degree=8)
        assert all(len(node.peers) == 2 for node in nodes)

    def test_rejects_bad_degree(self):
        with pytest.raises(ParameterError):
            connect_random_regular(self._nodes(5), degree=0)


class TestNetMessageIds:
    def test_msg_ids_monotonic_unique(self):
        a = NetMessage("inv", None, 1)
        b = NetMessage("inv", None, 1)
        assert b.msg_id > a.msg_id

    def test_negative_size_rejected(self):
        with pytest.raises(ParameterError):
            NetMessage("inv", None, -1)
