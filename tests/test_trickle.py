"""Tests for inv trickling and the lag -> Protocol 2 story."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError
from repro.net.node import Node, RelayProtocol
from repro.net.simulator import Link, Simulator


class TestTrickling:
    def test_rejects_negative_interval(self):
        with pytest.raises(ParameterError):
            Node("x", Simulator(), trickle_interval=-1.0)

    def test_batches_reduce_messages(self, txgen):
        def run(trickle):
            sim = Simulator()
            a = Node("a", sim, trickle_interval=trickle)
            b = Node("b", sim)
            a.connect(b, Link(latency=0.001))
            for tx in txgen.make_batch(100):
                a.submit_transaction(tx)
            sim.run()
            return a.stats[b].messages_sent, len(b.mempool)

        flood_msgs, flood_pool = run(0.0)
        trickle_msgs, trickle_pool = run(0.5)
        assert flood_pool == trickle_pool  # same content delivered...
        assert trickle_msgs < flood_msgs / 5  # ...in far fewer messages

    def test_trickled_txs_arrive_later(self, txgen):
        sim = Simulator()
        a = Node("a", sim, trickle_interval=2.0)
        b = Node("b", sim)
        a.connect(b, Link(latency=0.001))
        a.submit_transaction(txgen.make())
        sim.run(until=1.0)
        assert len(b.mempool) == 0  # still queued
        sim.run()
        assert len(b.mempool) == 1


class TestLagTriggersProtocol2:
    def test_block_outruns_trickled_transactions(self, txgen):
        """The paper 3.2 scenario, emergent: slow tx relay, fast block.

        The miner submits fresh transactions that trickle out slowly,
        then immediately mines them.  The block's Graphene relay beats
        the transactions to the peer, so Protocol 1 cannot suffice --
        yet the peer still reconstructs the exact block (Protocol 2 /
        pushed transactions).
        """
        sim = Simulator()
        miner = Node("m", sim, protocol=RelayProtocol.GRAPHENE,
                     trickle_interval=30.0)
        peer = Node("p", sim, protocol=RelayProtocol.GRAPHENE)
        miner.connect(peer, Link(latency=0.01))

        base = txgen.make_batch(150)
        miner.mempool.add_many(base)
        peer.mempool.add_many(base)

        fresh = txgen.make_batch(50)
        for tx in fresh:
            miner.submit_transaction(tx)  # queued behind the trickle
        block = Block.assemble(base + fresh)
        miner.mine_block(block)
        sim.run(until=5.0)  # before the 30 s trickle flush

        assert block.header.merkle_root in peer.blocks
        arrived = peer.blocks[block.header.merkle_root]
        assert arrived.txids == block.txids
        # The exchange needed more than the single P1 message.
        assert miner.stats[peer].messages_sent >= 3
