"""Tests for the Bloom/IBLT joint size optimization (Eqs. 2-5)."""

from __future__ import annotations

import math

import pytest

from repro.core.params import (
    EXHAUSTIVE_LIMIT,
    GrapheneConfig,
    closed_form_a,
    optimize_a,
    optimize_b,
)
from repro.errors import ParameterError
from repro.pds.bloom import bloom_size_bytes
from repro.pds.param_table import default_param_table


class TestClosedForm:
    def test_eq3_value(self):
        # a = n / (8 r tau ln^2 2).
        n, r, tau = 2000, 12, 1.4
        expected = n / (8 * r * tau * math.log(2) ** 2)
        assert closed_form_a(n, tau, r) == round(expected)

    def test_minimum_one(self):
        assert closed_form_a(1, 1.5, 12) == 1

    def test_rejects_bad(self):
        with pytest.raises(ParameterError):
            closed_form_a(10, 0, 12)


class TestOptimizeA:
    def test_plan_is_locally_optimal(self, config):
        # No nearby integer a should produce a smaller total.
        n, m = 2000, 4000
        plan = optimize_a(n, m, config)
        from repro.core.bounds import a_star
        table = config.table()
        for a in (plan.a - 1, plan.a + 1):
            if not 1 <= a <= m - n:
                continue
            recover = math.ceil(a_star(a, config.beta))
            params = table.params_for(recover)
            total = (bloom_size_bytes(n, a / (m - n)) + 9
                     + config.iblt_bytes(params))
            assert plan.total_bytes <= total

    def test_m_equals_n_degenerates(self, config):
        plan = optimize_a(100, 100, config)
        assert plan.fpr == 1.0
        assert plan.bloom_bytes == 0
        assert plan.iblt_bytes > 0

    def test_n_zero(self, config):
        plan = optimize_a(0, 50, config)
        assert plan.fpr == 1.0

    def test_fpr_consistent_with_a(self, config):
        n, m = 500, 2000
        plan = optimize_a(n, m, config)
        assert plan.fpr == pytest.approx(plan.a / (m - n))

    def test_recover_exceeds_a(self, config):
        plan = optimize_a(1000, 3000, config)
        assert plan.recover > plan.a  # Theorem 1 head-room

    def test_total_below_both_extremes(self, config):
        # The optimum beats both the near-zero-FPR filter and IBLT-only.
        n, m = 2000, 6000
        plan = optimize_a(n, m, config)
        # IBLT-only: a = m - n.
        iblt_only = optimize_a(n, m, config).total_bytes  # sanity anchor
        assert plan.total_bytes <= iblt_only
        tiny_fpr_bloom = bloom_size_bytes(n, 1.0 / (m - n)) + 9
        table = config.table()
        assert plan.total_bytes <= tiny_fpr_bloom + config.iblt_bytes(
            table.params_for(2))

    def test_grows_sublinearly_in_m(self, config):
        # Fig. 14: cost grows slowly as extra mempool txns accumulate.
        n = 2000
        t1 = optimize_a(n, n + n // 2, config).total_bytes
        t2 = optimize_a(n, n + 5 * n, config).total_bytes
        assert t2 < 2.5 * t1

    def test_much_smaller_than_compact_blocks(self, config):
        from repro.baselines.compact_blocks import compact_blocks_bytes
        n, m = 2000, 4000
        assert optimize_a(n, m, config).total_bytes < compact_blocks_bytes(n)

    def test_rejects_negative(self, config):
        with pytest.raises(ParameterError):
            optimize_a(-1, 10, config)


class TestOptimizeB:
    def test_basic_shape(self, config):
        plan = optimize_b(z=500, missing_bound=100, ystar=20, config=config)
        assert 1 <= plan.a <= 100
        assert plan.fpr == pytest.approx(plan.a / 100)
        assert plan.recover == plan.a + 20

    def test_missing_bound_zero_degenerates(self, config):
        plan = optimize_b(z=100, missing_bound=0, ystar=5, config=config)
        assert plan.fpr == 1.0
        assert plan.bloom_bytes == 0
        assert plan.recover >= 5

    def test_recover_includes_ystar(self, config):
        plan = optimize_b(z=300, missing_bound=50, ystar=40, config=config)
        assert plan.recover >= 40

    def test_rejects_negative(self, config):
        with pytest.raises(ParameterError):
            optimize_b(z=-1, missing_bound=10, ystar=0, config=config)


class TestGrapheneConfig:
    def test_defaults_match_paper(self, config):
        assert config.beta == pytest.approx(239 / 240)
        assert config.cell_bytes == 12
        assert config.decode_denom == 240
        assert config.short_id_bytes == 8
        assert config.special_case_fpr == 0.1

    def test_table_lookup(self, config):
        assert config.table() is default_param_table(240)

    def test_iblt_bytes(self, config):
        params = config.table().params_for(10)
        assert config.iblt_bytes(params) == 12 + params.cells * 12


class TestCandidateSweep:
    def test_small_region_exhaustive(self, config):
        # The paper's <100 discrete-search requirement: every integer in
        # the small region must be a candidate.
        from repro.core.params import _candidate_values
        values = _candidate_values(50, 1000)
        assert set(range(1, EXHAUSTIVE_LIMIT + 1)) <= set(values)

    def test_includes_upper(self):
        from repro.core.params import _candidate_values
        assert 1000 in _candidate_values(50, 1000)

    def test_small_upper(self):
        from repro.core.params import _candidate_values
        assert _candidate_values(1, 3) == [1, 2, 3]


class TestParamTableEdges:
    """Boundary rows of the IBLT parameter table (clamp, never
    under-allocate): an estimate at or below the smallest certified
    entry gets the smallest certified shape, and a request past the
    last row extrapolates with the tail hedge plus margin."""

    def test_zero_clamps_to_smallest_row(self):
        from repro.pds.param_table import IBLTParamTable
        for denom in (24, 240, 2400):
            table = default_param_table(denom)
            row_j, row_k, row_cells = table.rows[0]
            params = table.params_for(0)
            assert params.cells == row_cells
            assert params.k == row_k
        # The built-in fallback's smallest row is 16 cells; the old
        # degenerate k-cell answer under-allocated by 4x.
        fallback = IBLTParamTable.fallback(240)
        assert fallback.params_for(0) == fallback.params_for(1)
        assert fallback.params_for(0).cells >= 16

    def test_zero_never_smaller_than_one(self):
        for denom in (24, 240, 2400):
            table = default_param_table(denom)
            assert table.params_for(0).cells >= table.params_for(1).cells

    def test_first_row_exact(self):
        table = default_param_table(240)
        row_j, row_k, row_cells = table.rows[0]
        params = table.params_for(row_j)
        assert (params.cells, params.k) == (row_cells, row_k)

    def test_last_row_exact(self):
        table = default_param_table(240)
        row_j, row_k, row_cells = table.rows[-1]
        params = table.params_for(row_j)
        assert (params.cells, params.k) == (row_cells, row_k)

    def test_between_rows_rounds_up(self):
        table = default_param_table(240)
        (j_lo, _, _), (j_hi, k_hi, cells_hi) = table.rows[3], table.rows[4]
        if j_hi - j_lo > 1:
            params = table.params_for(j_lo + 1)
            assert (params.cells, params.k) == (cells_hi, k_hi)

    def test_beyond_table_extrapolates_with_margin(self):
        table = default_param_table(240)
        max_j, _, max_cells = table.rows[-1]
        tail_tau = max_cells / max_j
        params = table.params_for(max_j + 1)
        assert params.cells >= (max_j + 1) * tail_tau
        assert params.cells % params.k == 0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            default_param_table(240).params_for(-1)
