"""Tests for workload scenario generators."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import (
    make_block_scenario,
    make_sync_scenario,
    mempool_multiple_to_extra,
)
from repro.errors import ParameterError


class TestBlockScenario:
    def test_full_overlap(self):
        sc = make_block_scenario(n=100, extra=50, fraction=1.0, seed=1)
        assert sc.n == 100
        assert sc.m == 150
        assert not sc.missing
        block_ids = sc.block.txid_set()
        assert all(txid in sc.receiver_mempool for txid in block_ids)

    def test_partial_overlap_counts(self):
        sc = make_block_scenario(n=100, extra=0, fraction=0.7, seed=2)
        assert len(sc.missing) == 30
        assert sc.m == 70

    def test_missing_disjoint_from_receiver(self):
        sc = make_block_scenario(n=50, extra=20, fraction=0.5, seed=3)
        for tx in sc.missing:
            assert tx.txid not in sc.receiver_mempool

    def test_extra_disjoint_from_block(self):
        sc = make_block_scenario(n=50, extra=30, fraction=1.0, seed=4)
        block_ids = sc.block.txid_set()
        extra_count = sum(
            1 for tx in sc.receiver_mempool if tx.txid not in block_ids)
        assert extra_count == 30

    def test_sender_mempool_covers_block(self):
        sc = make_block_scenario(n=40, extra=10, fraction=0.5, seed=5)
        for txid in sc.block.txid_set():
            assert txid in sc.sender_mempool

    def test_deterministic_by_seed(self):
        a = make_block_scenario(n=20, extra=10, fraction=0.5, seed=6)
        b = make_block_scenario(n=20, extra=10, fraction=0.5, seed=6)
        assert a.block.header.merkle_root == b.block.header.merkle_root

    def test_fraction_zero(self):
        sc = make_block_scenario(n=30, extra=10, fraction=0.0, seed=7)
        assert len(sc.missing) == 30

    @pytest.mark.parametrize("kwargs", [
        dict(n=-1, extra=0), dict(n=1, extra=-1),
        dict(n=1, extra=0, fraction=1.5),
    ])
    def test_rejects_bad_args(self, kwargs):
        with pytest.raises(ParameterError):
            make_block_scenario(**{"fraction": 1.0, **kwargs})


class TestSyncScenario:
    def test_sizes_equal(self):
        sc = make_sync_scenario(n=100, fraction_common=0.4, seed=8)
        assert len(sc.sender_mempool) == 100
        assert len(sc.receiver_mempool) == 100

    def test_common_really_common(self):
        sc = make_sync_scenario(n=100, fraction_common=0.4, seed=9)
        assert len(sc.common) == 40
        for tx in sc.common:
            assert tx.txid in sc.sender_mempool
            assert tx.txid in sc.receiver_mempool

    def test_exclusive_sets_disjoint(self):
        sc = make_sync_scenario(n=100, fraction_common=0.4, seed=10)
        for tx in sc.sender_only:
            assert tx.txid not in sc.receiver_mempool
        for tx in sc.receiver_only:
            assert tx.txid not in sc.sender_mempool

    def test_union_size(self):
        sc = make_sync_scenario(n=100, fraction_common=0.25, seed=11)
        assert sc.union_size == 175

    def test_full_overlap_identical(self):
        sc = make_sync_scenario(n=50, fraction_common=1.0, seed=12)
        assert ({t.txid for t in sc.sender_mempool}
                == {t.txid for t in sc.receiver_mempool})

    def test_rejects_bad_fraction(self):
        with pytest.raises(ParameterError):
            make_sync_scenario(n=10, fraction_common=-0.1)


class TestMempoolMultiple:
    def test_conversion(self):
        assert mempool_multiple_to_extra(200, 0.5) == 100
        assert mempool_multiple_to_extra(200, 0.0) == 0

    def test_rounds_up(self):
        assert mempool_multiple_to_extra(3, 0.5) == 2

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            mempool_multiple_to_extra(10, -1.0)
