"""Tests for the from-scratch Bloom filter."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.pds.bloom import (
    BloomFilter,
    bloom_size_bits,
    bloom_size_bytes,
    optimal_hash_count,
)
from repro.utils.hashing import sha256


def _ids(count, tag=b""):
    return [sha256(tag + i.to_bytes(4, "little")) for i in range(count)]


class TestSizing:
    def test_matches_paper_formula(self):
        # T_BF = -n ln(f) / (8 ln^2 2) bytes (Eq. 2).
        n, f = 2000, 0.01
        expected = -n * math.log(f) / (8 * math.log(2) ** 2)
        assert bloom_size_bytes(n, f) == pytest.approx(expected, abs=2)

    def test_lower_fpr_means_bigger(self):
        assert bloom_size_bits(100, 0.001) > bloom_size_bits(100, 0.01)

    def test_fpr_one_is_zero_bits(self):
        assert bloom_size_bits(100, 1.0) == 0

    def test_zero_items_zero_bits(self):
        assert bloom_size_bits(0, 0.01) == 0

    def test_rejects_negative_n(self):
        with pytest.raises(ParameterError):
            bloom_size_bits(-1, 0.5)

    def test_rejects_nonpositive_fpr(self):
        with pytest.raises(ParameterError):
            bloom_size_bits(10, 0.0)

    def test_optimal_hash_count(self):
        # k = (bits/n) ln 2; for f = 1/2^10 expect about 10 hashes.
        n = 1000
        bits = bloom_size_bits(n, 2**-10)
        assert 8 <= optimal_hash_count(bits, n) <= 12

    def test_optimal_hash_count_degenerate(self):
        assert optimal_hash_count(0, 10) == 1
        assert optimal_hash_count(100, 0) == 1


class TestMembership:
    def test_no_false_negatives(self):
        filt = BloomFilter.from_fpr(500, 0.01)
        items = _ids(500)
        filt.update(items)
        assert all(item in filt for item in items)

    def test_fpr_close_to_target(self):
        target = 0.02
        filt = BloomFilter.from_fpr(1000, target)
        filt.update(_ids(1000))
        probes = _ids(20_000, tag=b"other")
        observed = sum(1 for p in probes if p in filt) / len(probes)
        assert observed == pytest.approx(target, rel=0.5)

    def test_empty_filter_matches_nothing(self):
        filt = BloomFilter.from_fpr(100, 0.01)
        assert sha256(b"probe") not in filt

    def test_degenerate_filter_matches_everything(self):
        filt = BloomFilter.from_fpr(100, 1.0)
        assert filt.is_degenerate
        assert sha256(b"anything") in filt
        assert filt.serialized_size() == 9  # header only

    def test_seed_changes_mistakes(self):
        # Same items, different seeds: false positive sets should differ.
        items = _ids(200)
        probes = _ids(5000, tag=b"p")
        fps = []
        for seed in (1, 2):
            filt = BloomFilter.from_fpr(200, 0.05, seed=seed)
            filt.update(items)
            fps.append({p for p in probes if p in filt})
        assert fps[0] != fps[1]

    def test_count_tracks_inserts(self):
        filt = BloomFilter.from_fpr(10, 0.1)
        filt.update(_ids(7))
        assert len(filt) == 7


class TestActualFpr:
    def test_unloaded_is_zero(self):
        assert BloomFilter.from_fpr(100, 0.01).actual_fpr() == 0.0

    def test_at_capacity_near_target(self):
        filt = BloomFilter.from_fpr(1000, 0.01)
        filt.update(_ids(1000))
        assert filt.actual_fpr() == pytest.approx(0.01, rel=0.5)

    def test_overload_raises_fpr(self):
        filt = BloomFilter.from_fpr(100, 0.01)
        filt.update(_ids(500))
        assert filt.actual_fpr() > 0.01


class TestConstruction:
    def test_rejects_negative_bits(self):
        with pytest.raises(ParameterError):
            BloomFilter(-1, 2)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ParameterError):
            BloomFilter(100, 0)

    def test_from_fpr_rejects_zero(self):
        with pytest.raises(ParameterError):
            BloomFilter.from_fpr(10, 0.0)

    def test_target_fpr_recorded(self):
        assert BloomFilter.from_fpr(10, 0.07).target_fpr == 0.07

    def test_serialized_size_formula(self):
        filt = BloomFilter.from_fpr(300, 0.01)
        assert filt.serialized_size() == (filt.nbits + 7) // 8 + 9


class TestBatchPaths:
    """The vectorized batch entry points must match the scalar loops."""

    def test_update_matches_scalar_inserts(self):
        items = _ids(200)
        batched = BloomFilter.from_fpr(200, 0.01, seed=9)
        batched.update(items)
        single = BloomFilter.from_fpr(200, 0.01, seed=9)
        for item in items:
            single.insert(item)
        assert batched._bits == single._bits
        assert len(batched) == len(single) == 200

    def test_update_matches_scalar_unseeded(self):
        # seed=0 reuses 32-byte txids as digests (hash splitting).
        items = _ids(150)
        batched = BloomFilter.from_fpr(150, 0.02)
        batched.update(items)
        single = BloomFilter.from_fpr(150, 0.02)
        for item in items:
            single.insert(item)
        assert batched._bits == single._bits

    def test_update_matches_scalar_high_k(self):
        # k > 8 exercises the derived-hashing continuation of the
        # splitting rule in both paths.
        items = _ids(100)
        batched = BloomFilter(503, 11, seed=3)
        batched.update(items)
        single = BloomFilter(503, 11, seed=3)
        for item in items:
            single.insert(item)
        assert batched._bits == single._bits

    def test_contains_many_matches_scalar(self):
        items = _ids(120)
        filt = BloomFilter.from_fpr(120, 0.05, seed=7)
        filt.update(items)
        probes = items[:60] + _ids(100, tag=b"q")
        filt._index_cache.clear()
        assert filt.contains_many(probes) == [p in filt for p in probes]

    def test_degenerate_update_keeps_count_zero(self):
        # Zero-bit filters fold nothing into the bit array, so nothing
        # is counted: count tracks the bit-array load.
        filt = BloomFilter.from_fpr(10, 1.0)
        filt.update(_ids(5))
        filt.insert(_ids(1)[0])
        assert len(filt) == 0
        assert filt.actual_fpr() == 1.0
        assert filt.contains_many(_ids(3)) == [True, True, True]


class TestPropertyBased:
    @given(st.sets(st.binary(min_size=32, max_size=32), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_membership_superset_property(self, items):
        filt = BloomFilter.from_fpr(max(1, len(items)), 0.01)
        for item in items:
            filt.insert(item)
        assert all(item in filt for item in items)

    @given(st.integers(1, 5000),
           st.floats(min_value=1e-6, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_size_positive_and_monotone_cheap(self, n, f):
        assert bloom_size_bytes(n, f) >= 1
        assert bloom_size_bytes(n, min(0.999, f * 2)) <= bloom_size_bytes(n, f)
