"""The asyncio peer stack: handshake, byte parity, recovery ladder.

The tentpole claim: a block relayed over a real localhost TCP socket
produces a CostBreakdown and telemetry event stream *byte-identical*
to the LoopbackTransport run of the same scenario (same seed, same
mempools).  Only the engines append telemetry -- handshake and inv
frames add nothing -- so parity holds by construction, and these tests
pin it for both the Protocol 1 and the full P2-fallback paths.

The ladder tests drive the client's asyncio-mapped recovery rungs with
the server's deterministic ``drop`` knob instead of a lossy network:
re-emit with backoff (outcome="timeout"/"retry" telemetry), escalate
to a full-block fetch, abandon when a single peer is exhausted.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.core.session import BlockRelaySession
from repro.errors import ParameterError, ProtocolFailure
from repro.net.peer import (
    AsyncioTransport,
    BlockServer,
    PeerConnection,
    derive_sync_nonce,
    encode_version,
    fetch_block,
)
from repro.net.recovery import RecoveryPolicy
from repro.net.transport import LoopbackTransport
from repro.core.engine import (
    ActionKind,
    EngineAction,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
)
from repro.obs import Tracer, WallClock

#: Small timeouts so ladder tests stall in milliseconds, not seconds.
FAST = dict(timeout_base=0.15, backoff=1.5)


async def _serve_and_fetch(scenario, drop=None, policy=None, tracer=None):
    server = BlockServer(scenario.block, drop=drop, tracer=tracer)
    port = await server.start()
    try:
        return await fetch_block("127.0.0.1", port,
                                 scenario.receiver_mempool,
                                 policy=policy, tracer=tracer)
    finally:
        await server.close()


def _fetch(scenario, **kwargs):
    return asyncio.run(_serve_and_fetch(scenario, **kwargs))


class TestByteParity:
    """Socket relay == loopback relay, byte for byte and event for event."""

    def _assert_parity(self, fraction, seed):
        sc = make_block_scenario(n=120, extra=120, fraction=fraction,
                                 seed=seed)
        result = _fetch(sc)
        assert result.success

        sc2 = make_block_scenario(n=120, extra=120, fraction=fraction,
                                  seed=seed)
        loop = BlockRelaySession().relay(sc2.block, sc2.receiver_mempool)
        # Byte-identical: compare the JSON serializations, the exact
        # form the CI smoke stage and the CLI parity check compare.
        assert json.dumps(result.cost.as_dict(), sort_keys=True) \
            == json.dumps(loop.cost.as_dict(), sort_keys=True)
        assert json.dumps([e.as_dict() for e in result.events]) \
            == json.dumps([e.as_dict() for e in loop.events])
        assert result.roundtrips == loop.roundtrips
        assert result.protocol_used == loop.protocol_used
        assert [tx.txid for tx in result.txs] \
            == [tx.txid for tx in loop.txs]
        return result

    def test_protocol1_path(self):
        result = self._assert_parity(fraction=1.0, seed=7)
        assert result.protocol_used == 1
        assert [e.command for e in result.events] \
            == ["inv", "getdata", "graphene_block"]
        # The socket adds real envelope bytes, but never to the
        # analytic accounting.
        assert result.wire_overhead > 0

    def test_full_fallback_chain(self):
        result = self._assert_parity(fraction=0.4, seed=133)
        assert result.protocol_used == 2
        assert result.p2_used_pingpong
        assert result.fetched_count > 0
        assert [e.command for e in result.events] \
            == ["inv", "getdata", "graphene_block", "graphene_p2_request",
                "graphene_p2_response", "getdata_shortids", "block_txs"]

    def test_reconstructed_block_carries_received_header(self):
        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=3)
        result = _fetch(sc)
        assert result.block.header.serialize() \
            == sc.block.header.serialize()


class TestHandshake:
    def test_version_carries_derived_sync_nonce(self):
        sc = make_block_scenario(n=30, extra=30, fraction=1.0, seed=1)
        result = _fetch(sc)
        assert result.peer.node_id == "server"
        assert result.peer.nonce == derive_sync_nonce("server")

    def test_version_mismatch_rejected(self):
        async def run():
            sc = make_block_scenario(n=30, extra=30, fraction=1.0, seed=1)
            server = BlockServer(sc.block)
            port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                conn = PeerConnection(reader, writer, "oldpeer")
                # Speak an unknown protocol version by hand.
                conn.send("version", encode_version("oldpeer", version=99))
                await conn.drain()
                # The server rejects us: either it closes (EOF on our
                # next read) or our own handshake machinery never sees
                # a verack.  Drain until EOF proves the disconnect.
                while True:
                    frame = await asyncio.wait_for(conn.read_frame(), 5)
                    if frame is None:
                        break
                await conn.close()
            finally:
                await server.close()
            assert server.connections_served == 1

        asyncio.run(run())

    def test_client_rejects_mismatched_version(self):
        async def run():
            async def fake_server(reader, writer):
                decoder_conn = PeerConnection(reader, writer, "fake")
                await decoder_conn.read_frame()  # the client's version
                decoder_conn.send("version",
                                  encode_version("fake", version=2))
                await decoder_conn.drain()

            server = await asyncio.start_server(fake_server,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            sc = make_block_scenario(n=10, extra=0, fraction=1.0, seed=0)
            try:
                with pytest.raises(ProtocolFailure, match="protocol 2"):
                    await fetch_block("127.0.0.1", port,
                                      sc.receiver_mempool)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())


class TestRecoveryLadder:
    """The simulator's timeout ladder, mapped onto asyncio timeouts."""

    def test_retry_rung_reemits_and_charges_bytes(self):
        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=3)
        policy = RecoveryPolicy(max_retries=2, **FAST)
        result = _fetch(sc, drop={"getdata": 1}, policy=policy)
        assert result.success and not result.escalated
        assert result.timeouts == 1 and result.retries == 1
        outcomes = [e.outcome for e in result.events if e.outcome
                    in ("timeout", "retry")]
        assert outcomes == ["timeout", "retry"]
        by_outcome = {e.outcome: e for e in result.events}
        # The timeout event is zero-byte; the retry re-charges the
        # original request's byte decomposition -- honest accounting,
        # same as the simulator.
        assert by_outcome["timeout"].wire_bytes == 0
        assert by_outcome["retry"].wire_bytes > 0
        assert by_outcome["retry"].command == "getdata"

    def test_escalation_rung_fetches_full_block(self):
        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=3)
        policy = RecoveryPolicy(max_retries=1, **FAST)
        # Drop every graphene request (initial + 1 retry): the client
        # must give up on the exchange and pull the whole block.
        result = _fetch(sc, drop={"getdata": 2}, policy=policy)
        assert result.success and result.escalated and result.via_fullblock
        assert [tx.txid for tx in result.txs] \
            == [tx.txid for tx in sc.block.txs]
        assert result.block.header.merkle_root \
            == sc.block.header.merkle_root

    def test_abandon_when_single_peer_exhausted(self):
        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=3)
        policy = RecoveryPolicy(max_retries=1, **FAST)
        result = _fetch(sc, drop={"getdata": 5, "getdata_block": 5},
                        policy=policy)
        assert not result.success and result.abandoned
        # Both rungs were climbed before giving up.
        assert result.escalated
        assert result.timeouts == 4  # 2 per rung (initial + 1 retry)

    def test_traced_socket_run_produces_spans(self):
        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=3)
        tracer = Tracer(WallClock())
        policy = RecoveryPolicy(max_retries=2, **FAST)
        result = _fetch(sc, drop={"getdata": 1}, policy=policy,
                        tracer=tracer)
        assert result.success
        relay_spans = tracer.spans(kind="relay")
        assert len(relay_spans) == 1
        span = relay_spans[0]
        assert span.status == "done"
        assert span.timeouts == 1 and span.retries == 1
        assert span.end >= span.start
        serve_spans = tracer.spans(kind="serve")
        assert len(serve_spans) == 1
        assert serve_spans[0].status == "served"


class TestTransportContract:
    """The SEND-only deliver contract is uniform across all siblings."""

    @staticmethod
    def _engines(seed=3):
        sc = make_block_scenario(n=30, extra=30, fraction=1.0, seed=seed)
        return (GrapheneSenderEngine(sc.block),
                GrapheneReceiverEngine(sc.receiver_mempool))

    def test_asyncio_transport_rejects_terminal_actions(self):
        class SinkWriter:
            def write(self, data):  # never reached
                raise AssertionError("terminal action crossed the wire")

        transport = AsyncioTransport(SinkWriter(), b"\x00" * 32)
        for kind in (ActionKind.DONE, ActionKind.FAILED):
            with pytest.raises(ParameterError, match="only SEND"):
                transport.deliver(EngineAction(kind))

    def test_loopback_rejects_terminal_actions(self):
        transport = LoopbackTransport(*self._engines())
        for kind in (ActionKind.DONE, ActionKind.FAILED):
            with pytest.raises(ParameterError, match="only SEND"):
                transport.deliver(EngineAction(kind))

    def test_loopback_reuse_never_leaks_stale_final(self):
        sender, receiver = self._engines()
        transport = LoopbackTransport(sender, receiver)
        final = transport.run()
        assert final.kind is ActionKind.DONE
        assert transport.final is final
        # A second exchange on the same transport: deliver() must reset
        # `final` on entry, so a failure mid-pump can never leave the
        # previous exchange's DONE visible as this exchange's result.
        sender2, receiver2 = self._engines(seed=4)
        transport.sender, transport.receiver = sender2, receiver2
        action = receiver2.start()
        transport.deliver(action)
        assert transport.final is not final
        assert transport.final.kind is ActionKind.DONE

    def test_asyncio_transport_counts_envelope_overhead(self):
        frames = []

        class ListWriter:
            def write(self, data):
                frames.append(bytes(data))

        transport = AsyncioTransport(ListWriter(), b"\x07" * 32)
        sender, receiver = self._engines()
        action = receiver.start()
        transport.deliver(action)
        assert transport.frames_sent == 1
        # overhead = frame envelope + the 32-byte exchange key; the
        # analytic payload itself is not overhead.
        assert transport.wire_overhead \
            == len(frames[0]) - len(action.message)
