"""Tests for message-driven Compact Blocks and XThin over the simulator."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.chain.transaction import TransactionGenerator
from repro.net.node import Node, RelayProtocol
from repro.net.simulator import Link, Simulator


def _pair(protocol):
    sim = Simulator()
    a = Node("a", sim, protocol=protocol)
    b = Node("b", sim, protocol=protocol)
    a.connect(b, Link(latency=0.01, bandwidth=10_000_000))
    return sim, a, b


class TestCompactBlocksWire:
    def test_synced_receiver_one_message(self, txgen):
        sim, a, b = _pair(RelayProtocol.COMPACT_BLOCKS)
        txs = txgen.make_batch(120)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks
        # inv + cmpctblock only: no repair roundtrip happened.
        assert a.stats[b].messages_sent == 2

    def test_missing_txs_cost_extra_roundtrip(self, txgen):
        sim, a, b = _pair(RelayProtocol.COMPACT_BLOCKS)
        txs = txgen.make_batch(120)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs[:100])  # missing 20
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks
        arrived = b.blocks[block.header.merkle_root]
        assert arrived.txids == block.txids
        # inv + cmpctblock + blocktxn from a; getdata + getblocktxn from b.
        assert a.stats[b].messages_sent == 3
        assert b.stats[a].messages_sent == 2

    def test_coinbase_prefilled(self, txgen):
        sim, a, b = _pair(RelayProtocol.COMPACT_BLOCKS)
        txs = txgen.make_batch(50)
        coinbase = txgen.make_coinbase()
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        block = Block.assemble(txs + [coinbase])
        a.mine_block(block)
        sim.run()
        # The receiver never held the coinbase yet needed no repair.
        assert block.header.merkle_root in b.blocks
        assert a.stats[b].messages_sent == 2

    def test_compact_blocks_cheaper_than_full(self, txgen):
        totals = {}
        for protocol in (RelayProtocol.COMPACT_BLOCKS,
                         RelayProtocol.FULL_BLOCK):
            sim, a, b = _pair(protocol)
            txs = txgen.make_batch(200)
            a.mempool.add_many(txs)
            b.mempool.add_many(txs)
            a.mine_block(Block.assemble(txs))
            sim.run()
            totals[protocol] = a.total_bytes_sent()
        assert (totals[RelayProtocol.COMPACT_BLOCKS]
                < totals[RelayProtocol.FULL_BLOCK] / 5)


class TestXThinWire:
    def test_synced_receiver(self, txgen):
        sim, a, b = _pair(RelayProtocol.XTHIN)
        txs = txgen.make_batch(120)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks

    def test_missing_txs_pushed_in_one_roundtrip(self, txgen):
        sim, a, b = _pair(RelayProtocol.XTHIN)
        txs = txgen.make_batch(120)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs[:90])
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        assert block.header.merkle_root in b.blocks
        arrived = b.blocks[block.header.merkle_root]
        assert arrived.txids == block.txids
        # inv + xthinblock: the push is proactive, no repair roundtrip.
        assert a.stats[b].messages_sent == 2
        assert b.stats[a].messages_sent == 1

    def test_xthin_bloom_rides_getdata(self, txgen):
        sim, a, b = _pair(RelayProtocol.XTHIN)
        txs = txgen.make_batch(50)
        a.mempool.add_many(txs)
        b.mempool.add_many(txs)
        b.mempool.add_many(txgen.make_batch(2000))  # fat mempool
        block = Block.assemble(txs)
        a.mine_block(block)
        sim.run()
        # Receiver-side bytes include the mempool Bloom filter.
        assert b.stats[a].bytes_sent > 2000  # ~2.3 KB filter

    def test_multihop_xthin(self, txgen):
        sim = Simulator()
        nodes = [Node(f"n{i}", sim, protocol=RelayProtocol.XTHIN)
                 for i in range(3)]
        nodes[0].connect(nodes[1])
        nodes[1].connect(nodes[2])
        txs = txgen.make_batch(80)
        for node in nodes:
            node.mempool.add_many(txs)
        block = Block.assemble(txs)
        nodes[0].mine_block(block)
        sim.run()
        assert block.header.merkle_root in nodes[2].blocks
