"""Tests for Graphene Protocol 2 (Graphene Extended)."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_block_scenario, make_sync_scenario
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import (
    build_protocol2_request,
    finish_protocol2,
    respond_protocol2,
)


def _run_p1(scenario, config):
    payload = build_protocol1(scenario.block.txs, scenario.m, config)
    p1 = receive_protocol1(payload, scenario.receiver_mempool, config,
                           validate_block=scenario.block)
    return payload, p1


def _run_full_p2(scenario, config):
    payload, p1 = _run_p1(scenario, config)
    assert not p1.success
    request, state = build_protocol2_request(p1, payload, scenario.m, config)
    response = respond_protocol2(request, scenario.block.txs, scenario.m,
                                 config)
    result = finish_protocol2(response, state, scenario.receiver_mempool,
                              config, validate_block=scenario.block)
    return request, response, result


class TestRequest:
    def test_bounds_are_consistent(self, missing_scenario, config):
        payload, p1 = _run_p1(missing_scenario, config)
        request, state = build_protocol2_request(p1, payload,
                                                 missing_scenario.m, config)
        true_x = missing_scenario.n - len(missing_scenario.missing)
        assert request.xstar <= true_x          # Theorem 2 (w.h.p.)
        assert request.z == p1.z
        assert request.b >= 1
        assert request.bloom_r.count == p1.z

    def test_wire_size_positive(self, missing_scenario, config):
        payload, p1 = _run_p1(missing_scenario, config)
        request, _ = build_protocol2_request(p1, payload, missing_scenario.m,
                                             config)
        assert request.wire_size() > request.bloom_bytes

    def test_special_case_triggers_when_m_equals_n(self, config):
        sc = make_block_scenario(n=150, extra=0, fraction=0.6, seed=41)
        payload, p1 = _run_p1(sc, config)
        assert not p1.success
        request, state = build_protocol2_request(p1, payload, sc.m, config)
        assert request.special_case
        assert request.bloom_r.target_fpr == pytest.approx(
            config.special_case_fpr)

    def test_standard_case_when_mempool_larger(self, config):
        sc = make_block_scenario(n=200, extra=200, fraction=0.9, seed=42)
        payload, p1 = _run_p1(sc, config)
        assert not p1.success
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        assert not request.special_case


class TestRespond:
    def test_pushes_filter_misses(self, config):
        sc = make_block_scenario(n=200, extra=200, fraction=0.9, seed=43)
        payload, p1 = _run_p1(sc, config)
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        response = respond_protocol2(request, sc.block.txs, sc.m, config)
        pushed_ids = {tx.txid for tx in response.missing_txs}
        missing_ids = {tx.txid for tx in sc.missing}
        # Everything pushed is genuinely in the block and missed R.
        assert pushed_ids <= sc.block.txid_set()
        # Most missing transactions fail R and get pushed; at most b slip.
        assert len(missing_ids - pushed_ids) <= max(2 * request.b, 10)

    def test_iblt_j_covers_block(self, config):
        sc = make_block_scenario(n=100, extra=100, fraction=0.9, seed=44)
        payload, p1 = _run_p1(sc, config)
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        response = respond_protocol2(request, sc.block.txs, sc.m, config)
        assert response.iblt_j.count == sc.n

    def test_special_case_includes_filter_f(self, config):
        sc = make_block_scenario(n=150, extra=0, fraction=0.6, seed=45)
        payload, p1 = _run_p1(sc, config)
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        response = respond_protocol2(request, sc.block.txs, sc.m, config)
        assert response.bloom_f is not None
        assert response.bloom_f_bytes > 0


class TestFinish:
    def test_recovers_block_with_repair(self, config):
        sc = make_block_scenario(n=200, extra=200, fraction=0.9, seed=46)
        request, response, result = _run_full_p2(sc, config)
        assert result.decode_complete
        recovered_ids = set(result.recovered)
        if result.missing_short_ids:
            # The protocol identified exactly what a final getdata fetches.
            still = {tx for tx in sc.block.txs
                     if tx.short_id() in result.missing_short_ids}
            recovered_ids |= {tx.txid for tx in still}
        assert recovered_ids == sc.block.txid_set()

    def test_success_without_residual_missing(self, config):
        # With fraction 0.95 and roomy mempool, usually nothing slips R.
        successes = 0
        for t in range(10):
            sc = make_block_scenario(n=100, extra=100, fraction=0.95,
                                     seed=600 + t)
            payload, p1 = _run_p1(sc, config)
            if p1.success:
                continue
            request, state = build_protocol2_request(p1, payload, sc.m,
                                                     config)
            response = respond_protocol2(request, sc.block.txs, sc.m, config)
            result = finish_protocol2(response, state, sc.receiver_mempool,
                                      config, validate_block=sc.block)
            if result.success:
                successes += 1
                assert result.merkle_ok
        assert successes >= 5

    def test_special_case_end_to_end(self, config):
        sc = make_block_scenario(n=150, extra=0, fraction=0.6, seed=47)
        request, response, result = _run_full_p2(sc, config)
        assert request.special_case
        assert result.decode_complete

    def test_sync_scenario_special_case(self, config):
        # m = n mempool sync: the regime of Fig. 18.
        sc = make_sync_scenario(n=300, fraction_common=0.5, seed=48)
        sender_txs = sc.sender_mempool.transactions()
        payload = build_protocol1(sender_txs, len(sc.receiver_mempool),
                                  config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config)
        assert not p1.decode_complete
        request, state = build_protocol2_request(p1, payload,
                                                 len(sc.receiver_mempool),
                                                 config)
        response = respond_protocol2(request, sender_txs,
                                     len(sc.receiver_mempool), config)
        result = finish_protocol2(response, state, sc.receiver_mempool,
                                  config)
        assert result.decode_complete
        # Everything recovered is from the sender's mempool.
        sender_ids = {tx.txid for tx in sender_txs}
        assert set(result.recovered) <= sender_ids
