"""Tests for the relay recovery subsystem (repro.net.recovery).

Timeout timers, the retry -> full block -> alternate peer ladder,
fault injection, stale-state GC, and the acceptance chaos scenario:
a 20-node Graphene topology with 5% per-link loss must converge with
the recovery trail visible in telemetry.
"""

from __future__ import annotations

import random

import pytest

from repro.chain.block import Block
from repro.chain.scenarios import make_block_scenario, make_sync_scenario
from repro.core.engine import (
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
)
from repro.core.sizing import CostBreakdown
from repro.errors import ParameterError, ProtocolFailure
from repro.net import (
    FaultInjector,
    Link,
    NetMessage,
    Node,
    RecoveryPolicy,
    Simulator,
    connect_random_regular,
)


def _graphene_pair(fault=None, scenario_seed=7, recovery=None):
    """Two peered nodes sharing a scenario's receiver mempool."""
    sc = make_block_scenario(n=100, extra=100, fraction=1.0,
                             seed=scenario_seed)
    sim = Simulator()
    a = Node("a", sim, recovery=recovery)
    b = Node("b", sim, recovery=recovery)
    a.connect(b)
    if fault is not None:
        a.inject_fault(b, fault)
    b.mempool.add_many(sc.receiver_mempool.transactions())
    return sim, a, b, sc


class TestSimulatorTimers:
    def test_cancelled_event_never_fires_nor_advances_clock(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(5.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.now == 1.0          # clock stopped at the live event
        assert sim.events_processed == 1  # cancelled one never counted

    def test_run_clamps_clock_to_horizon_with_events_remaining(self):
        # Regression: the clock used to stop at the last processed
        # event when events remained beyond the horizon, so repeated
        # run(until=now + dt) calls advanced in lurches.
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=5.0) == 5.0
        assert sim.pending == 1

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        keep.cancel()
        assert sim.pending == 0


class TestFaultInjector:
    def test_drop_nth(self):
        fault = FaultInjector(drop_nth=frozenset({0, 2}))
        verdicts = [fault.should_drop(0.0, "inv") for _ in range(4)]
        assert verdicts == [True, False, True, False]
        assert fault.dropped == 2

    def test_drop_by_command(self):
        fault = FaultInjector(drop_commands=frozenset({"graphene_block"}))
        assert fault.should_drop(0.0, "graphene_block")
        assert not fault.should_drop(0.0, "inv")

    def test_blackhole_window(self):
        fault = FaultInjector(blackhole=(1.0, 3.0))
        assert not fault.should_drop(0.5, "inv")
        assert fault.should_drop(1.0, "inv")
        assert fault.should_drop(2.9, "inv")
        assert not fault.should_drop(3.0, "inv")

    def test_fault_does_not_perturb_seeded_loss_stream(self):
        clean = Link(loss_rate=0.5, loss_seed=7)
        faulted = Link(loss_rate=0.5, loss_seed=7,
                       fault=FaultInjector(drop_nth=frozenset({1, 3})))
        # Messages the fault lets through see the same loss verdicts
        # the clean link would give them, in order.
        clean_draws = [clean.drops() for _ in range(4)]
        survivors = [faulted.drops(0.0, "inv") for _ in range(6)]
        assert survivors[1] and survivors[3]  # fault-dropped
        passed = [v for i, v in enumerate(survivors) if i not in (1, 3)]
        assert passed == clean_draws


class TestDroppedMessagesOccupyLink:
    def test_busy_window_advances_on_drop(self):
        # Regression: a dropped message used to consume zero sender
        # bandwidth while PeerStats still charged its bytes.
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        link = Link(latency=0.0, bandwidth=100.0)
        a.connect(b, link)
        a.inject_fault(b, FaultInjector(drop_nth=frozenset({0})))
        a._send(b, NetMessage("block", None, 200))   # dropped
        assert link._busy_until > 0                  # NIC time was spent
        busy_after_drop = link._busy_until
        a._send(b, NetMessage("block", None, 200))   # delivered
        assert link._busy_until > busy_after_drop


class TestStrictShortIdRequests:
    def test_malformed_length_raises(self):
        sc = make_block_scenario(n=20, extra=0, fraction=1.0, seed=88)
        sender = GrapheneSenderEngine(sc.block)
        good = sc.block.txs[3].short_id().to_bytes(8, "little")
        with pytest.raises(ParameterError):
            sender.on_shortid_request(good + b"\x01")  # trailing byte

    def test_whole_multiples_still_served(self):
        sc = make_block_scenario(n=20, extra=0, fraction=1.0, seed=88)
        sender = GrapheneSenderEngine(sc.block)
        wanted = b"".join(tx.short_id().to_bytes(8, "little")
                          for tx in sc.block.txs[:3])
        from repro.codec import decode_tx_list
        txs, _ = decode_tx_list(sender.on_shortid_request(wanted).message)
        assert len(txs) == 3


class TestEngineRecoveryHooks:
    def test_reemit_repeats_last_request_and_charges_bytes(self):
        sc = make_block_scenario(n=50, extra=50, fraction=1.0, seed=3)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        first = receiver.start()
        sent_before = receiver.bytes_sent
        again = receiver.reemit_last_request()
        assert again.command == first.command
        assert again.message == first.message
        assert again.event.parts == first.event.parts
        assert again.event.outcome == "retry"
        assert receiver.bytes_sent == sent_before + len(first.message)

    def test_note_timeout_is_zero_byte_event(self):
        sc = make_block_scenario(n=50, extra=50, fraction=1.0, seed=3)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        receiver.start()
        receiver.note_timeout()
        event = receiver.telemetry[-1]
        assert event.outcome == "timeout"
        assert event.wire_bytes == 0

    def test_reemit_before_any_request_raises(self):
        sc = make_block_scenario(n=50, extra=50, fraction=1.0, seed=3)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        with pytest.raises(ProtocolFailure):
            receiver.reemit_last_request()

    def test_accepts_tracks_phase(self):
        sc = make_block_scenario(n=50, extra=50, fraction=1.0, seed=3)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        assert not receiver.accepts("graphene_block")  # IDLE
        receiver.start()
        assert receiver.accepts("graphene_block")      # WAIT_P1
        assert not receiver.accepts("graphene_p2_response")


class TestRetryLadder:
    def test_lost_p1_payload_recovered_by_retry(self):
        # a -> b stream: inv (0), graphene_block (1).  Drop the P1
        # payload once; the receiver's timer must re-request it.
        fault = FaultInjector(drop_nth=frozenset({1}))
        sim, a, b, sc = _graphene_pair(fault=fault)
        a.mine_block(sc.block)
        sim.run()
        root = sc.block.header.merkle_root
        assert root in b.blocks
        assert b.relay_timeouts == 1
        assert b.relay_retries == 1
        outcomes = [e.outcome for e in b.relay_telemetry[root]]
        assert "timeout" in outcomes and "retry" in outcomes
        # Retry charged its bytes: two getdata events in the stream.
        cost = CostBreakdown.from_events(b.relay_telemetry[root])
        assert cost.getdata > 0

    def test_lost_getdata_recovered_by_retry(self):
        # b -> a stream: getdata is message 0.
        sim, a, b, sc = _graphene_pair()
        b.inject_fault(a, FaultInjector(drop_nth=frozenset({0})))
        a.mine_block(sc.block)
        sim.run()
        assert sc.block.header.merkle_root in b.blocks
        assert b.relay_retries == 1

    def test_engine_blackout_escalates_to_full_block(self):
        # Every engine payload from a is lost, but full blocks pass:
        # the ladder must climb to rung 2 and deliver.
        fault = FaultInjector(drop_commands=frozenset({"graphene_block"}))
        sim, a, b, sc = _graphene_pair(fault=fault)
        a.mine_block(sc.block)
        sim.run()
        root = sc.block.header.merkle_root
        assert root in b.blocks
        assert b.relay_timeouts > b.recovery.max_retries  # climbed rung 1
        assert root not in b._rx_engines
        assert root not in b._block_recovery

    def test_dead_peer_fails_over_to_alternate_announcer(self):
        sc = make_block_scenario(n=100, extra=100, fraction=1.0, seed=7)
        sim = Simulator()
        a, b, c = Node("a", sim), Node("b", sim), Node("c", sim)
        a.connect(b)
        a.connect(c)
        b.connect(c)
        for node in (b, c):
            node.mempool.add_many(sc.receiver_mempool.transactions())
        # a's inv reaches c but every block payload a -> c is lost;
        # b (which hears the inv over a clean link) is the alternate.
        a.inject_fault(c, FaultInjector(
            drop_commands=frozenset({"graphene_block", "block"})))
        a.mine_block(sc.block)
        sim.run()
        root = sc.block.header.merkle_root
        assert root in c.blocks
        assert c.relay_timeouts > 0
        assert root not in c._rx_engines
        assert root not in c._block_recovery

    def test_total_blackout_abandons_and_new_inv_restarts(self):
        fault = FaultInjector(
            drop_commands=frozenset({"graphene_block", "block"}))
        sim, a, b, sc = _graphene_pair(fault=fault)
        a.mine_block(sc.block)
        sim.run()
        root = sc.block.header.merkle_root
        assert root not in b.blocks           # sole announcer was dead
        assert root not in b._rx_engines      # ...but nothing stranded
        assert root not in b._block_recovery
        assert root not in b._block_sources
        # The link heals and a re-announces: the fetch starts over.
        a.peers[b].fault = None
        a._send(b, NetMessage("inv", ("block", root), 37))
        sim.run()
        assert root in b.blocks

    def test_retry_trail_is_bounded_by_policy(self):
        fault = FaultInjector(
            drop_commands=frozenset({"graphene_block", "block"}))
        policy = RecoveryPolicy(timeout_base=0.5, max_retries=2)
        sim, a, b, sc = _graphene_pair(fault=fault, recovery=policy)
        a.mine_block(sc.block)
        sim.run()
        # Two rungs (engine, fullblock), each max_retries resends plus
        # the timeout that moves past the rung.
        assert b.relay_retries <= 2 * policy.max_retries
        assert b.relay_timeouts <= 2 * (policy.max_retries + 1)


class TestStaleStateGC:
    def test_block_via_other_path_cancels_recovery(self, txgen):
        # b is mid-fetch from a (stalled); the full block then arrives
        # from c.  All fetch state must be evicted and no timeout fire.
        txs = txgen.make_batch(80)
        block = Block.assemble(txs)
        root = block.header.merkle_root
        sim = Simulator()
        a, b, c = Node("a", sim), Node("b", sim), Node("c", sim)
        a.connect(b)
        b.connect(c)
        b.mempool.add_many(txs)
        a.inject_fault(b, FaultInjector(
            drop_commands=frozenset({"graphene_block"})))
        a.blocks[root] = block  # a can serve but its payloads are lost
        a._send(b, NetMessage("inv", ("block", root), 37))
        sim.run(until=0.5)      # inv + getdata flow; P1 payload lost
        assert root in b._rx_engines
        assert root in b._block_recovery
        c.blocks[root] = block
        c._send(b, NetMessage("block", block, block.serialized_size()))
        sim.run()
        assert root in b.blocks
        assert root not in b._rx_engines
        assert root not in b._block_recovery
        assert root not in b._block_sources
        assert b.relay_timeouts == 0  # timer was cancelled, never fired

    def test_serving_engines_bounded(self, txgen):
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.recovery = RecoveryPolicy(serving_cap=2)
        a.connect(b)
        for batch in range(4):
            txs = txgen.make_batch(10)
            for node in (a, b):
                node.mempool.add_many(txs)
            a.mine_block(Block.assemble(txs))
            sim.run()
        assert len(a._tx_engines) <= 2
        assert len(b.blocks) == 4

    def test_zero_loss_run_identical_with_recovery_disabled(self):
        results = []
        for policy in (RecoveryPolicy(), RecoveryPolicy(enabled=False)):
            sc = make_block_scenario(n=120, extra=120, fraction=0.5,
                                     seed=3)
            sim = Simulator()
            a = Node("a", sim, recovery=policy)
            b = Node("b", sim, recovery=policy)
            a.connect(b)
            b.mempool.add_many(sc.receiver_mempool.transactions())
            a.mine_block(sc.block)
            sim.run()
            root = sc.block.header.merkle_root
            cost = CostBreakdown.from_events(b.relay_telemetry[root])
            results.append((sim.now, a.total_bytes_sent(),
                            b.total_bytes_sent(), cost.as_dict()))
        assert results[0] == results[1]


class TestSyncRecovery:
    def test_lost_sync_round_recovered_by_retry(self):
        sc = make_sync_scenario(n=300, fraction_common=0.7, seed=5)
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.connect(b)
        a.mempool.add_many(sc.sender_mempool.transactions())
        b.mempool.add_many(sc.receiver_mempool.transactions())
        a.inject_fault(b, FaultInjector(drop_nth=frozenset({0})))
        union = ({t.txid for t in a.mempool} | {t.txid for t in b.mempool})
        nonce = b.initiate_mempool_sync(a)
        sim.run()
        state = b.sync_result(nonce)
        assert state.succeeded
        assert b.relay_retries == 1
        assert {t.txid for t in b.mempool} == union
        outcomes = [e.outcome for e in state.events]
        assert "timeout" in outcomes and "retry" in outcomes

    def test_dead_responder_abandons_sync(self):
        sc = make_sync_scenario(n=200, fraction_common=0.7, seed=5)
        sim = Simulator()
        a, b = Node("a", sim), Node("b", sim)
        a.connect(b)
        a.mempool.add_many(sc.sender_mempool.transactions())
        a.inject_fault(b, FaultInjector(
            drop_commands=frozenset({"mempool_sync_p1"})))
        nonce = b.initiate_mempool_sync(a)
        sim.run()
        state = b.sync_result(nonce)
        assert state.done and not state.succeeded
        assert b.relay_timeouts == b.recovery.max_retries + 1


class TestChaosTopology:
    """Acceptance: 20 Graphene nodes, 5% per-link loss, all converge."""

    def test_twenty_node_lossy_topology_converges(self):
        sc = make_block_scenario(n=200, extra=200, fraction=1.0, seed=42)
        sim = Simulator()
        nodes = [Node(f"n{i:02d}", sim) for i in range(20)]
        connect_random_regular(nodes, degree=4, rng=random.Random(2024),
                               loss_rate=0.05)
        for node in nodes[1:]:
            node.mempool.add_many(sc.receiver_mempool.transactions())
        nodes[0].mine_block(sc.block)
        sim.run(until=120.0)
        root = sc.block.header.merkle_root
        missing = [n.node_id for n in nodes if root not in n.blocks]
        assert missing == []
        # The loss actually bit and recovery visibly repaired it.
        assert sum(n.relay_timeouts for n in nodes) > 0
        recovery_events = [
            e for n in nodes if root in n.relay_telemetry
            for e in n.relay_telemetry[root]
            if e.outcome in ("timeout", "retry")]
        assert recovery_events
        # And nothing was left stranded anywhere.
        assert sum(len(n._rx_engines) for n in nodes) == 0
        assert sum(len(n._block_recovery) for n in nodes) == 0
        assert sum(len(n._block_sources) for n in nodes) == 0
