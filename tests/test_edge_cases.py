"""Edge cases: legal-but-extreme inputs across the whole stack."""

from __future__ import annotations

import pytest

from repro import (
    Block,
    BlockRelaySession,
    GrapheneConfig,
    Mempool,
    TransactionGenerator,
    make_block_scenario,
    synchronize_mempools,
)
from repro.core.params import optimize_a, optimize_b
from repro.core.protocol1 import build_protocol1, receive_protocol1


@pytest.fixture
def gen():
    return TransactionGenerator(seed=4242)


class TestTinyBlocks:
    def test_single_transaction_block(self, gen):
        tx = gen.make()
        block = Block.assemble([tx])
        receiver = Mempool([tx])
        receiver.add_many(gen.make_batch(10))
        outcome = BlockRelaySession().relay(block, receiver)
        assert outcome.success
        assert outcome.txs[0].txid == tx.txid

    def test_two_transaction_block(self, gen):
        txs = gen.make_batch(2)
        block = Block.assemble(txs)
        receiver = Mempool(txs)
        outcome = BlockRelaySession().relay(block, receiver)
        assert outcome.success

    def test_single_tx_block_receiver_missing_it(self, gen):
        tx = gen.make()
        block = Block.assemble([tx])
        receiver = Mempool(gen.make_batch(20))
        outcome = BlockRelaySession().relay(block, receiver)
        # Must terminate cleanly; success via P2 push is expected.
        assert outcome.protocol_used in (1, 2)
        if outcome.success:
            assert outcome.txs[0].txid == tx.txid


class TestEmptyReceivers:
    def test_empty_mempool_receiver(self, gen):
        block = Block.assemble(gen.make_batch(50))
        outcome = BlockRelaySession().relay(block, Mempool())
        # z = 0; Protocol 2 must push the entire block.
        if outcome.success:
            assert len(outcome.txs) == 50

    def test_empty_sender_sync(self, gen):
        sender = Mempool()
        receiver = Mempool(gen.make_batch(30))
        result = synchronize_mempools(sender, receiver)
        if result.success:
            assert len(sender) == 30  # received H


class TestHugeMempoolRatios:
    def test_mempool_50x_block(self, gen):
        scenario = make_block_scenario(n=100, extra=5000, fraction=1.0,
                                       seed=1)
        outcome = BlockRelaySession().relay(scenario.block,
                                            scenario.receiver_mempool)
        assert outcome.success
        # Still beats the 8n short-ID list despite the huge mempool.
        assert outcome.cost.graphene_core() < 8 * 100 * 4

    def test_block_larger_than_claimed_mempool(self, gen):
        # Receiver understates m (claims 10, holds the full block):
        # the protocol must still terminate and not crash.
        txs = gen.make_batch(200)
        block = Block.assemble(txs)
        receiver = Mempool(txs)
        payload = build_protocol1(block.txs, 10, GrapheneConfig())
        result = receive_protocol1(payload, receiver, GrapheneConfig(),
                                   validate_block=block)
        assert result.decode_complete or not result.success


class TestOptimizerEdges:
    def test_optimize_a_one_extra_txn(self):
        plan = optimize_a(100, 101, GrapheneConfig())
        assert plan.total_bytes > 0
        assert plan.a in (0, 1)

    def test_optimize_b_z_zero(self):
        plan = optimize_b(z=0, missing_bound=50, ystar=0,
                          config=GrapheneConfig())
        assert plan.recover >= 1

    def test_optimize_a_massive_gap(self):
        # m - n = 10^6: the geometric candidate grid must stay fast.
        plan = optimize_a(100, 1_000_100, GrapheneConfig())
        assert plan.total_bytes > 0
        assert plan.fpr < 0.01


class TestDuplicateSubmissions:
    def test_block_with_duplicate_txids_collapses(self, gen):
        tx = gen.make()
        block = Block.assemble([tx, tx])
        # Canonical ordering keeps both entries; Merkle root is defined.
        assert block.n == 2

    def test_mempool_rejects_duplicates(self, gen):
        tx = gen.make()
        pool = Mempool([tx, tx])
        assert len(pool) == 1


class TestRepeatedRelaySameSession:
    def test_session_is_stateless_across_blocks(self, gen):
        session = BlockRelaySession()
        receiver = Mempool(gen.make_batch(100))
        for _ in range(3):
            txs = gen.make_batch(80)
            receiver.add_many(txs)
            outcome = session.relay(Block.assemble(txs), receiver)
            assert outcome.success
            receiver.remove_block([tx.txid for tx in txs])
