"""Tests for the Merkle tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.merkle import merkle_proof_size, merkle_root
from repro.errors import ParameterError
from repro.utils.hashing import sha256

TXIDS = st.lists(st.binary(min_size=32, max_size=32), min_size=1, max_size=40)


class TestMerkleRoot:
    def test_empty_is_zero(self):
        assert merkle_root([]) == bytes(32)

    def test_single_leaf_is_itself(self):
        leaf = sha256(b"only")
        assert merkle_root([leaf]) == leaf

    def test_known_pair(self):
        import hashlib
        a, b = sha256(b"a"), sha256(b"b")
        expected = hashlib.sha256(hashlib.sha256(a + b).digest()).digest()
        assert merkle_root([a, b]) == expected

    def test_odd_leaf_duplicated(self):
        a, b, c = (sha256(x) for x in (b"a", b"b", b"c"))
        assert merkle_root([a, b, c]) == merkle_root([a, b, c, c])

    def test_order_matters(self):
        a, b = sha256(b"a"), sha256(b"b")
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_content_matters(self):
        a, b, c = (sha256(x) for x in (b"a", b"b", b"c"))
        assert merkle_root([a, b]) != merkle_root([a, c])

    def test_rejects_bad_leaf_width(self):
        with pytest.raises(ParameterError):
            merkle_root([b"not-32-bytes"])

    @given(TXIDS)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, txids):
        assert merkle_root(txids) == merkle_root(txids)

    @given(TXIDS, st.integers(0, 39))
    @settings(max_examples=50, deadline=None)
    def test_any_mutation_changes_root(self, txids, position):
        position %= len(txids)
        mutated = list(txids)
        mutated[position] = sha256(mutated[position])
        if mutated != txids:
            assert merkle_root(txids) != merkle_root(mutated)


class TestProofSize:
    def test_single_leaf(self):
        assert merkle_proof_size(1) == 32

    def test_grows_logarithmically(self):
        assert merkle_proof_size(1024) == 32 * 10

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            merkle_proof_size(0)
