"""Tests for the IBLT parameter tables and their conservative lookup."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.pds.iblt import IBLT
from repro.pds.param_table import (
    DEFAULT_DENOM,
    IBLTParamTable,
    SUPPORTED_DENOMS,
    default_param_table,
)


class TestLookup:
    def test_exact_grid_hit(self):
        table = IBLTParamTable([(10, 4, 40), (20, 4, 60)], 240)
        assert table.params_for(10).cells == 40

    def test_between_grid_points_rounds_up(self):
        table = IBLTParamTable([(10, 4, 40), (20, 4, 60)], 240)
        assert table.params_for(15).cells == 60

    def test_beyond_table_extrapolates_conservatively(self):
        table = IBLTParamTable([(100, 4, 140)], 240)
        params = table.params_for(1000)
        assert params.cells >= 1400  # tau 1.4 times safety margin
        assert params.cells % params.k == 0

    def test_j_zero_clamps_to_smallest_certified_row(self):
        # An estimate of zero still has residual variance behind it, so
        # the lookup must never under-allocate below a certified shape.
        table = IBLTParamTable([(10, 4, 40)], 240)
        assert table.params_for(0).cells == 40

    def test_rejects_negative(self):
        table = IBLTParamTable([(10, 4, 40)], 240)
        with pytest.raises(ParameterError):
            table.params_for(-1)

    def test_empty_table_rejected(self):
        with pytest.raises(ParameterError):
            IBLTParamTable([], 240)

    def test_tau_for(self):
        table = IBLTParamTable([(10, 4, 40)], 240)
        assert table.tau_for(10) == pytest.approx(4.0)


class TestShippedTables:
    @pytest.mark.parametrize("denom", SUPPORTED_DENOMS)
    def test_loads(self, denom):
        table = default_param_table(denom)
        assert len(table) > 0
        assert table.denom == denom

    def test_cached(self):
        assert default_param_table(240) is default_param_table(240)

    def test_rejects_bad_denom(self):
        with pytest.raises(ParameterError):
            default_param_table(1)

    def test_cells_always_divisible_by_k(self):
        table = default_param_table(DEFAULT_DENOM)
        for j, k, cells in table.rows:
            assert cells % k == 0, f"row j={j}"

    def test_cells_monotone_in_j(self):
        table = default_param_table(DEFAULT_DENOM)
        cells = [row[2] for row in sorted(table.rows)]
        assert all(b >= a for a, b in zip(cells, cells[1:]))

    def test_stricter_rate_needs_more_cells(self):
        loose = default_param_table(24)
        strict = default_param_table(2400)
        for j in (10, 50, 100):
            assert strict.params_for(j).cells >= loose.params_for(j).cells

    def test_tau_reasonable_for_large_j(self):
        # Peeling thresholds put tau in [1.15, 1.6] for large j.
        table = default_param_table(DEFAULT_DENOM)
        assert 1.1 <= table.tau_for(1000) <= 1.8

    def test_shipped_params_really_decode(self, rng):
        # End-to-end: a real IBLT at the table's shape decodes j items.
        table = default_param_table(DEFAULT_DENOM)
        params = table.params_for(50)
        failures = 0
        for _ in range(60):
            keys = [rng.getrandbits(64) for _ in range(50)]
            iblt = IBLT(params.cells, k=params.k, seed=rng.getrandbits(30))
            iblt.update(keys)
            if not iblt.decode().complete:
                failures += 1
        # Target failure rate 1/240; 60 trials should essentially never
        # see more than a couple of failures.
        assert failures <= 2
