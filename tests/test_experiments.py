"""Smoke tests for the figure-reproduction experiment drivers.

Each driver is run at a tiny scale; the assertions check the *shape*
properties the paper's figures exhibit (who wins, monotonicity), not
absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments as exp


class TestFig07And10:
    def test_optimal_meets_targets(self):
        rows = exp.fig07_rows(j_values=(20, 50), denoms=(24,), trials=300)
        for row in rows:
            if row["scheme"] == "optimal":
                # Target 1/24; allow Monte-Carlo slack.
                assert row["failure_rate"] <= 3 / 24

    def test_static_rows_present(self):
        rows = exp.fig07_rows(j_values=(20,), denoms=(24,), trials=100)
        schemes = {row["scheme"] for row in rows}
        assert schemes == {"static", "optimal"}

    def test_fig10_stricter_rate_more_cells(self):
        rows = exp.fig10_rows(j_values=(100,), denoms=(24, 2400))
        cells = {row["target_failure"]: row["cells"]
                 for row in rows if row["scheme"] == "optimal"}
        assert cells[1 / 2400] >= cells[1 / 24]


class TestFig11:
    def test_pingpong_never_worse(self):
        rows = exp.fig11_rows(j_values=(20,), sibling_fractions=(1.0,),
                              trials=50)
        single = next(r for r in rows if r["scheme"] == "single")
        paired = next(r for r in rows if r["scheme"] == "pingpong")
        assert paired["failure_rate"] <= single["failure_rate"] + 0.02


class TestDeploymentFigures:
    def test_fig12_graphene_beats_xthin_star(self):
        rows = exp.fig12_rows(block_sizes=(500, 2000), trials=2)
        for row in rows:
            assert row["graphene_bytes"] < row["xthin_star_bytes"]
            assert row["failures"] == 0

    def test_fig12_xthin_grows_faster(self):
        rows = exp.fig12_rows(block_sizes=(500, 2000), trials=2)
        graphene_growth = rows[1]["graphene_bytes"] / rows[0]["graphene_bytes"]
        xthin_growth = rows[1]["xthin_star_bytes"] / rows[0]["xthin_star_bytes"]
        assert graphene_growth < xthin_growth

    def test_fig13_graphene_beats_full_blocks(self):
        rows = exp.fig13_rows(block_sizes=(100, 400), trials=1)
        for row in rows:
            assert row["graphene_bytes"] < row["full_block_bytes"]


class TestSimulationFigures:
    def test_fig14_graphene_beats_compact_blocks(self):
        rows = exp.fig14_rows(block_sizes=(2000,), multiples=(0.5, 2.0),
                              trials=2)
        for row in rows:
            assert row["graphene_bytes"] < row["compact_blocks_bytes"]

    def test_fig14_cost_grows_with_mempool(self):
        rows = exp.fig14_rows(block_sizes=(2000,), multiples=(0.5, 4.0),
                              trials=2)
        assert rows[1]["graphene_bytes"] > rows[0]["graphene_bytes"]

    def test_fig15_failure_rate_below_target(self):
        rows = exp.fig15_rows(block_sizes=(200,), multiples=(1.0,),
                              trials=60)
        for row in rows:
            assert row["failure_rate"] <= row["target"] * 5  # small-sample

    def test_fig16_pingpong_helps(self):
        rows = exp.fig16_rows(block_sizes=(200,), fractions=(0.9,),
                              trials=30)
        for row in rows:
            assert (row["failure_with_pingpong"]
                    <= row["failure_without_pingpong"] + 0.05)

    def test_fig17_parts_sum_to_total(self):
        rows = exp.fig17_rows(block_sizes=(200,), fractions=(0.8,), trials=2)
        for row in rows:
            parts = (row["inv"] + row["getdata"] + row["bloom_s"]
                     + row["iblt_i"] + row["counts"] + row["bloom_r"]
                     + row["iblt_j"] + row["bloom_f"] + row["extra_getdata"]
                     + row["ordering"])
            assert parts == pytest.approx(row["graphene_total"], rel=0.01)

    def test_fig18_graphene_beats_compact_blocks(self):
        rows = exp.fig18_rows(block_sizes=(2000,), fractions=(0.4, 0.8),
                              trials=2)
        for row in rows:
            assert row["graphene_bytes"] < row["compact_blocks_bytes"]
            assert row["success_rate"] == 1.0


class TestBoundValidation:
    def test_fig19_theorem2_holds(self):
        rows = exp.fig19_rows(block_sizes=(200,), fractions=(0.3, 0.9),
                              trials=300)
        for row in rows:
            assert row["bound_holds_rate"] >= row["target"] - 0.02

    def test_fig20_theorem3_holds(self):
        rows = exp.fig20_rows(block_sizes=(200,), fractions=(0.3, 0.9),
                              trials=300)
        for row in rows:
            assert row["bound_holds_rate"] >= row["target"] - 0.02


class TestSectionComparisons:
    def test_sec51_ordering_of_protocols(self):
        rows = exp.sec51_rows(block_sizes=(2000,))
        row = rows[0]
        assert row["info_bound_bytes"] < row["graphene_bytes"]
        assert row["graphene_bytes"] < row["compact_blocks_bytes"]

    def test_sec532_digest_more_expensive(self):
        rows = exp.sec532_rows(block_sizes=(2000,), fractions=(0.95,),
                               trials=2)
        for row in rows:
            assert row["difference_digest_bytes"] > row["graphene_bytes"]


class TestExtensionDrivers:
    def test_forkrate_rows_shape(self):
        from repro.analysis.experiments import forkrate_rows
        rows = forkrate_rows(block_sizes=(200,))
        protocols = {row["protocol"] for row in rows}
        assert {"graphene", "compact_blocks", "full_block"} <= protocols
        by_proto = {row["protocol"]: row["fork_probability"] for row in rows}
        assert by_proto["graphene"] <= by_proto["full_block"]

    def test_throughput_rows_shape(self):
        from repro.analysis.experiments import throughput_rows
        rows = throughput_rows()
        by_proto = {row["protocol"]: row["max_tps"] for row in rows}
        assert by_proto["graphene"] > by_proto["full_block"]
