"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.chain.scenarios import make_block_scenario, make_sync_scenario
from repro.chain.transaction import TransactionGenerator
from repro.core.params import GrapheneConfig


@pytest.fixture
def rng():
    """A deterministic random source."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def config():
    """Default Graphene configuration (paper parameters)."""
    return GrapheneConfig()


@pytest.fixture
def txgen():
    """A deterministic transaction factory."""
    return TransactionGenerator(seed=1234)


@pytest.fixture
def small_scenario():
    """A fully synchronized 100-txn block scenario (Protocol 1 regime)."""
    return make_block_scenario(n=100, extra=100, fraction=1.0, seed=99)


@pytest.fixture
def missing_scenario():
    """A scenario where the receiver misses 10% of the block (Protocol 2)."""
    return make_block_scenario(n=100, extra=100, fraction=0.9, seed=77)


@pytest.fixture
def sync_scenario():
    """Two mempools of equal size sharing half their content."""
    return make_sync_scenario(n=200, fraction_common=0.5, seed=55)
