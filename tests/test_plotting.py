"""Tests for the terminal plotting helper."""

from __future__ import annotations

import pytest

from repro.analysis.plotting import ascii_plot
from repro.errors import ParameterError

ROWS = [
    {"n": 100, "graphene": 500, "cb": 900},
    {"n": 1000, "graphene": 1900, "cb": 6100},
    {"n": 10000, "graphene": 14000, "cb": 60000},
]


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        chart = ascii_plot(ROWS, x="n", ys=["graphene", "cb"])
        assert "o=graphene" in chart
        assert "x=cb" in chart
        assert chart.count("o") >= 3

    def test_title_included(self):
        chart = ascii_plot(ROWS, x="n", ys=["graphene"], title="fig")
        assert chart.splitlines()[0] == "fig"

    def test_axis_labels_present(self):
        chart = ascii_plot(ROWS, x="n", ys=["graphene"])
        assert "100" in chart
        assert ("1.0e+04" in chart) or ("10000" in chart)

    def test_log_scale(self):
        chart = ascii_plot(ROWS, x="n", ys=["cb"], logy=True)
        assert "(log y)" in chart

    def test_skips_non_numeric(self):
        rows = ROWS + [{"n": "oops", "graphene": None}]
        chart = ascii_plot(rows, x="n", ys=["graphene"])
        assert "o" in chart

    def test_single_point(self):
        chart = ascii_plot([{"n": 5, "y": 7}], x="n", ys=["y"])
        assert "o" in chart

    def test_rejects_empty_series(self):
        with pytest.raises(ParameterError):
            ascii_plot(ROWS, x="n", ys=[])

    def test_rejects_all_non_numeric(self):
        with pytest.raises(ParameterError):
            ascii_plot([{"a": "x"}], x="a", ys=["b"])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ParameterError):
            ascii_plot(ROWS, x="n", ys=["cb"], width=5)

    def test_fixed_dimensions(self):
        chart = ascii_plot(ROWS, x="n", ys=["graphene"], width=40,
                           height=8)
        body = [line for line in chart.splitlines() if "|" in line]
        assert len(body) == 8


class TestCliPlot:
    def test_experiment_plot_flag(self, capsys):
        from repro.cli import main
        assert main(["experiment", "fig10", "--plot", "--x", "j",
                     "--y", "cells"]) == 0
        out = capsys.readouterr().out
        assert "o=cells" in out and "|" in out
