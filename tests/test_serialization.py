"""Tests for CompactSize wire encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.serialization import (
    compact_size,
    compact_size_len,
    read_compact_size,
)


class TestCompactSize:
    @pytest.mark.parametrize("value,expected_len", [
        (0, 1), (1, 1), (252, 1),
        (253, 3), (65535, 3),
        (65536, 5), (2**32 - 1, 5),
        (2**32, 9), (2**64 - 1, 9),
    ])
    def test_boundary_widths(self, value, expected_len):
        assert len(compact_size(value)) == expected_len
        assert compact_size_len(value) == expected_len

    @pytest.mark.parametrize("value,prefix", [
        (253, 0xFD), (65536, 0xFE), (2**32, 0xFF),
    ])
    def test_prefix_bytes(self, value, prefix):
        assert compact_size(value)[0] == prefix

    def test_small_values_are_raw(self):
        assert compact_size(7) == bytes([7])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            compact_size(-1)
        with pytest.raises(ValueError):
            compact_size_len(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            compact_size(2**64)

    def test_read_at_offset(self):
        blob = b"\x00" * 3 + compact_size(300) + b"rest"
        value, offset = read_compact_size(blob, 3)
        assert value == 300
        assert blob[offset:] == b"rest"

    def test_read_truncated_payload(self):
        with pytest.raises(ValueError):
            read_compact_size(b"\xfd\x01")  # needs 2 payload bytes

    def test_read_empty(self):
        with pytest.raises(ValueError):
            read_compact_size(b"", 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        encoded = compact_size(value)
        decoded, offset = read_compact_size(encoded)
        assert decoded == value
        assert offset == len(encoded)
        assert len(encoded) == compact_size_len(value)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_encoding_is_canonical_width(self, value):
        # The chosen width is the smallest that fits.
        width = len(compact_size(value))
        if width == 3:
            assert value >= 0xFD
        elif width == 5:
            assert value > 0xFFFF
        elif width == 9:
            assert value > 0xFFFFFFFF
