"""Frame codec robustness: arbitrary stream splits and hostile frames.

A TCP stream has no message boundaries, so the one property that makes
the peer stack correct is split invariance: feeding the FrameDecoder a
byte stream 1 byte at a time, 2 bytes at a time, or in random chunks
must yield exactly the frames a whole-buffer parse yields.  The second
half of the contract is hostile-input handling: bad magic, oversized
lengths, checksum mismatches and mid-frame EOF must raise FrameError
early instead of stalling or allocating unboundedly.
"""

from __future__ import annotations

import random
import struct
import zlib

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.core.engine import GrapheneReceiverEngine, GrapheneSenderEngine
from repro.net.peer.framing import (
    FrameDecoder,
    FrameError,
    MAGIC,
    MAX_PAYLOAD,
    decode_frames,
    encode_frame,
    frame_overhead,
    iter_splits,
)
from repro.net.peer.protocol import encode_keyed, encode_version


def _engine_stream(seed: int = 133) -> bytes:
    """A realistic wire stream: every frame of a full P2-fallback relay."""
    sc = make_block_scenario(n=60, extra=60, fraction=0.4, seed=seed)
    sender = GrapheneSenderEngine(sc.block)
    receiver = GrapheneReceiverEngine(sc.receiver_mempool)
    root = sc.block.header.merkle_root
    frames = [encode_frame("version", encode_version("peer")),
              encode_frame("verack", b"")]
    action = receiver.start()
    while action.command:
        frames.append(encode_frame(action.command,
                                   encode_keyed(root, action.message)))
        engine = sender if action.command in ("getdata",
                                              "graphene_p2_request",
                                              "getdata_shortids") \
            else receiver
        action = engine.handle(action.command, action.message)
    return b"".join(frames)


class TestSplitInvariance:
    """Any fragmentation decodes to the whole-buffer reference parse."""

    def _assert_invariant(self, stream: bytes, sizes) -> None:
        reference = decode_frames(stream)
        assert len(reference) >= 2
        decoder = FrameDecoder()
        collected = []
        for chunk in iter_splits(stream, sizes):
            collected.extend(decoder.feed(chunk))
        decoder.eof()
        assert collected == reference

    def test_one_byte_at_a_time(self):
        stream = _engine_stream()
        self._assert_invariant(stream, iter([1] * len(stream)))

    def test_two_bytes_at_a_time(self):
        stream = _engine_stream()
        self._assert_invariant(stream, iter([2] * (len(stream) // 2 + 1)))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_splits(self, seed):
        stream = _engine_stream()
        rng = random.Random(seed)
        sizes = iter(lambda: rng.randint(1, 977), None)
        self._assert_invariant(stream, sizes)

    def test_splits_inside_every_header_field(self):
        # Cut points straddling magic, cmd_len, command, length and
        # checksum individually: the header-first validation must not
        # misfire on a partially arrived header.
        frame = encode_frame("graphene_block", b"\x01" * 37)
        for cut in range(1, len(frame)):
            decoder = FrameDecoder()
            first = decoder.feed(frame[:cut])
            rest = decoder.feed(frame[cut:])
            decoder.eof()
            assert first + rest == [("graphene_block", b"\x01" * 37)]

    def test_payloads_are_copies_not_views(self):
        # The decoder compacts and reuses its buffer; a returned
        # payload must survive later feeds mutating that buffer.
        decoder = FrameDecoder()
        [(_, first)] = decoder.feed(encode_frame("inv", b"\xaa" * 32))
        decoder.feed(encode_frame("inv", b"\xbb" * 32))
        assert first == b"\xaa" * 32
        assert type(first) is bytes


class TestHostileFrames:
    """Envelope violations fail fast with FrameError."""

    def test_bad_magic(self):
        bad = b"\x00\x00\x00\x00" + encode_frame("inv", b"x" * 32)[4:]
        with pytest.raises(FrameError, match="magic"):
            decode_frames(bad)

    def test_bad_magic_detected_before_body_arrives(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="magic"):
            decoder.feed(struct.pack("<IB", MAGIC ^ 0xFF, 3))

    def test_zero_command_length(self):
        with pytest.raises(FrameError, match="command length"):
            decode_frames(struct.pack("<IB", MAGIC, 0) + b"\x00" * 8)

    def test_oversized_command_length(self):
        with pytest.raises(FrameError, match="command length"):
            decode_frames(struct.pack("<IB", MAGIC, 255))

    def test_non_ascii_command(self):
        frame = bytearray(encode_frame("inv", b"x" * 32))
        frame[5] = 0xC3  # first command byte -> invalid ASCII
        with pytest.raises(FrameError, match="non-ASCII"):
            decode_frames(bytes(frame))

    def test_hostile_length_rejected_without_buffering(self):
        # A 4 GiB claimed length must be rejected from the header
        # alone -- long before 4 GiB could ever be buffered.
        head = (struct.pack("<IB", MAGIC, 3) + b"inv"
                + struct.pack("<II", 0xFFFFFFFF, 0))
        with pytest.raises(FrameError, match="MAX_PAYLOAD"):
            FrameDecoder().feed(head)

    def test_checksum_mismatch(self):
        frame = bytearray(encode_frame("inv", b"x" * 32))
        frame[-1] ^= 0x01  # corrupt the payload, keep the header
        with pytest.raises(FrameError, match="checksum"):
            decode_frames(bytes(frame))

    def test_midframe_eof(self):
        frame = encode_frame("graphene_block", b"y" * 100)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending == len(frame) - 1
        with pytest.raises(FrameError, match="mid-frame"):
            decoder.eof()

    def test_clean_eof_is_silent(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame("verack", b""))
        decoder.eof()  # no pending bytes: no error

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameError, match="MAX_PAYLOAD"):
            encode_frame("block", b"\x00" * (MAX_PAYLOAD + 1))

    def test_encode_rejects_bad_command(self):
        with pytest.raises(FrameError):
            encode_frame("", b"")
        with pytest.raises(FrameError):
            encode_frame("x" * 33, b"")


class TestEnvelopeAccounting:
    def test_frame_overhead_matches_encoding(self):
        for command, payload in (("inv", b"r" * 32), ("verack", b""),
                                 ("graphene_p2_request", b"abc")):
            frame = encode_frame(command, payload)
            assert len(frame) == frame_overhead(command) + len(payload)

    def test_checksum_is_crc32(self):
        payload = b"graphene"
        frame = encode_frame("block", payload)
        (checksum,) = struct.unpack_from("<I", frame,
                                         len(frame) - len(payload) - 4)
        assert checksum == zlib.crc32(payload)
