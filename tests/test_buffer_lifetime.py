"""Memoryview lifetime audit: decoded structures own their bytes.

The zero-copy decode path hands every ``decode_*`` a memoryview over
the receive buffer, and real receive buffers get reused: the asyncio
peer stack compacts its frame buffer between reads, and any pooled
transport would recycle storage outright.  The safety contract is
copy-on-retain -- a decoded structure may *read* the view during the
decode call, but everything it keeps must be copied out.

These are the regression tests for that audit: decode every wire
structure from a mutable buffer, clobber the buffer, and assert the
decoded structure (its re-encoding, and downstream engine state) is
unchanged.  A future "optimization" that retains a view into the
receive buffer fails here immediately.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import codec
from repro.chain.scenarios import make_block_scenario
from repro.core.engine import (
    ActionKind,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
)
from repro.core.protocol1 import build_protocol1
from repro.core.protocol2 import build_protocol2_request, respond_protocol2
from repro.core.protocol1 import receive_protocol1
from repro.net.peer.protocol import (
    decode_full_block,
    decode_inv,
    decode_version,
    encode_full_block,
    encode_inv,
    encode_version,
)


def _clobber(buf: bytearray) -> None:
    """Flip every byte in place -- no decoded bit pattern survives."""
    for i in range(len(buf)):
        buf[i] ^= 0xFF


def _scenario(fraction=0.4, seed=133):
    return make_block_scenario(n=60, extra=60, fraction=fraction, seed=seed)


class TestCodecCopyOnRetain:
    """Each decode_* survives its source buffer being clobbered."""

    def _roundtrip(self, encode, decode, original_blob):
        buf = bytearray(original_blob)
        decoded = decode(memoryview(buf))
        if isinstance(decoded, tuple):
            decoded = decoded[0]
        _clobber(buf)
        assert encode(decoded) == original_blob
        return decoded

    def test_bloom(self):
        sc = _scenario()
        payload = build_protocol1([*sc.block.txs],
                                  len(sc.receiver_mempool),
                                  GrapheneSenderEngine(sc.block).config)
        self._roundtrip(codec.encode_bloom, codec.decode_bloom,
                        codec.encode_bloom(payload.bloom_s))

    def test_iblt(self):
        sc = _scenario()
        payload = build_protocol1([*sc.block.txs],
                                  len(sc.receiver_mempool),
                                  GrapheneSenderEngine(sc.block).config)
        self._roundtrip(codec.encode_iblt, codec.decode_iblt,
                        codec.encode_iblt(payload.iblt_i))

    def test_iblt_pure_python_path(self):
        # The vectorized and pure decode paths manage cell storage
        # differently; both must copy.  Run the pure path in a child
        # interpreter where the fastpath is disabled from the start.
        code = (
            "import os; os.environ['REPRO_FASTPATH']='0'\n"
            "from repro import codec\n"
            "from repro.core.protocol1 import build_protocol1\n"
            "from repro.core.params import GrapheneConfig\n"
            "from repro.chain.scenarios import make_block_scenario\n"
            "sc = make_block_scenario(n=60, extra=60, fraction=0.4, "
            "seed=133)\n"
            "p = build_protocol1(list(sc.block.txs), "
            "len(sc.receiver_mempool), GrapheneConfig())\n"
            "blob = codec.encode_iblt(p.iblt_i)\n"
            "buf = bytearray(blob)\n"
            "iblt, _ = codec.decode_iblt(memoryview(buf))\n"
            "buf[:] = bytes(len(buf))\n"
            "assert codec.encode_iblt(iblt) == blob, 'retained a view'\n"
            "print('pure-path ok')\n")
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, timeout=120)
        assert out.returncode == 0, out.stderr
        assert "pure-path ok" in out.stdout

    def test_transaction_and_tx_list(self):
        sc = _scenario()
        tx = sc.block.txs[0]
        decoded = self._roundtrip(codec.encode_transaction,
                                  codec.decode_transaction,
                                  codec.encode_transaction(tx))
        assert type(decoded.txid) is bytes
        self._roundtrip(codec.encode_tx_list, codec.decode_tx_list,
                        codec.encode_tx_list(list(sc.block.txs[:7])))

    def test_block_header(self):
        sc = _scenario()
        blob = sc.block.header.serialize()
        buf = bytearray(blob)
        header = codec.decode_block_header(memoryview(buf))
        _clobber(buf)
        assert header.serialize() == blob
        assert type(header.merkle_root) is bytes

    def test_protocol1_payload(self):
        sc = _scenario()
        payload = build_protocol1([*sc.block.txs],
                                  len(sc.receiver_mempool),
                                  GrapheneSenderEngine(sc.block).config)
        self._roundtrip(codec.encode_protocol1_payload,
                        codec.decode_protocol1_payload,
                        codec.encode_protocol1_payload(payload))

    def test_protocol2_request_and_response(self):
        sc = _scenario()
        config = GrapheneSenderEngine(sc.block).config
        m = len(sc.receiver_mempool)
        payload = build_protocol1([*sc.block.txs], m, config)
        result = receive_protocol1(payload, sc.receiver_mempool, config)
        assert not result.success  # this seed needs Protocol 2
        request, _ = build_protocol2_request(result, payload, m, config)
        self._roundtrip(codec.encode_protocol2_request,
                        codec.decode_protocol2_request,
                        codec.encode_protocol2_request(request))
        response = respond_protocol2(request, [*sc.block.txs], m, config)
        self._roundtrip(codec.encode_protocol2_response,
                        codec.decode_protocol2_response,
                        codec.encode_protocol2_response(response))

    def test_peer_payloads(self):
        blob = encode_version("node-7")
        buf = bytearray(blob)
        info = decode_version(memoryview(buf))
        _clobber(buf)
        assert info.node_id == "node-7"

        root = bytes(range(32))
        buf = bytearray(encode_inv(root))
        decoded = decode_inv(memoryview(buf))
        _clobber(buf)
        assert decoded == root
        assert type(decoded) is bytes

        sc = _scenario()
        blob = encode_full_block(sc.block)
        buf = bytearray(blob)
        block = decode_full_block(memoryview(buf))
        _clobber(buf)
        assert encode_full_block(block) == blob


class TestEngineMutateAfterEveryStep:
    """Full P2-fallback relay with every inbound buffer clobbered
    immediately after its engine step: final state must match a clean
    run exactly (txs, block bytes, telemetry stream)."""

    @staticmethod
    def _run_relay(clobber: bool):
        sc = _scenario()
        sender = GrapheneSenderEngine(sc.block)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool)
        sender_steps = ("getdata", "graphene_p2_request",
                        "getdata_shortids")
        action = receiver.start()
        while action.kind is ActionKind.SEND:
            engine = sender if action.command in sender_steps else receiver
            buf = bytearray(bytes(action.message))
            action = engine.handle(action.command, memoryview(buf))
            if clobber:
                _clobber(buf)
        return sc, receiver, action

    def test_telemetry_and_result_unchanged(self):
        sc, rx_clean, clean = self._run_relay(clobber=False)
        _, rx_dirty, dirty = self._run_relay(clobber=True)
        assert clean.kind is ActionKind.DONE is dirty.kind
        assert rx_clean.protocol_used == 2  # the interesting path
        assert [tx.txid for tx in clean.txs] \
            == [tx.txid for tx in dirty.txs]
        assert clean.block.header.serialize() \
            == dirty.block.header.serialize()
        assert [e.as_dict() for e in rx_clean.telemetry] \
            == [e.as_dict() for e in rx_dirty.telemetry]

    def test_retained_txids_are_owned_bytes(self):
        _, receiver, action = self._run_relay(clobber=True)
        for tx in action.txs:
            assert type(tx.txid) is bytes


@pytest.mark.parametrize("fraction,seed", [(1.0, 7), (0.4, 133)])
def test_socket_path_survives_buffer_clobbering(fraction, seed):
    """End to end over the frame decoder: decode frames from a reused
    bytearray, clobber it after every decode, relay must complete with
    the canonical telemetry."""
    import asyncio

    from repro.net.peer import BlockServer, fetch_block

    async def run():
        sc = make_block_scenario(n=60, extra=60, fraction=fraction,
                                 seed=seed)
        server = BlockServer(sc.block)
        port = await server.start()
        try:
            result = await fetch_block("127.0.0.1", port,
                                       sc.receiver_mempool)
        finally:
            await server.close()
        assert result.success
        # FrameDecoder hands out fresh bytes, so by the time engines
        # decode, the receive buffer can be recycled freely; the
        # telemetry stream still matches the loopback run.
        from repro.core.session import BlockRelaySession
        sc2 = make_block_scenario(n=60, extra=60, fraction=fraction,
                                  seed=seed)
        loop = BlockRelaySession().relay(sc2.block, sc2.receiver_mempool)
        assert [e.as_dict() for e in result.events] \
            == [e.as_dict() for e in loop.events]

    asyncio.run(run())
