"""Tests for the end-to-end block relay session."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.core.params import GrapheneConfig
from repro.core.session import BlockRelaySession
from repro.errors import ProtocolFailure


@pytest.fixture
def session():
    return BlockRelaySession()


class TestProtocol1Path:
    def test_success_and_costs(self, session, small_scenario):
        outcome = session.relay(small_scenario.block,
                                small_scenario.receiver_mempool)
        assert outcome.success
        assert outcome.protocol_used == 1
        assert outcome.roundtrips == 1.5
        assert outcome.cost.bloom_s > 0 or outcome.cost.iblt_i > 0
        assert outcome.cost.bloom_r == 0
        assert outcome.cost.iblt_j == 0

    def test_block_reconstructed_in_order(self, session, small_scenario):
        outcome = session.relay(small_scenario.block,
                                small_scenario.receiver_mempool)
        assert [t.txid for t in outcome.txs] == small_scenario.block.txids

    def test_total_bytes_is_cost_total(self, session, small_scenario):
        outcome = session.relay(small_scenario.block,
                                small_scenario.receiver_mempool)
        assert outcome.total_bytes == outcome.cost.total()


class TestProtocol2Path:
    def test_fallback_succeeds(self, session, missing_scenario):
        outcome = session.relay(missing_scenario.block,
                                missing_scenario.receiver_mempool)
        assert outcome.success
        assert outcome.protocol_used == 2
        assert outcome.roundtrips >= 2.5
        assert outcome.cost.iblt_j > 0

    def test_pushed_bytes_counted_separately(self, session, missing_scenario):
        outcome = session.relay(missing_scenario.block,
                                missing_scenario.receiver_mempool)
        assert outcome.cost.pushed_tx_bytes > 0
        assert (outcome.cost.total(include_txs=True)
                >= outcome.cost.total() + outcome.cost.pushed_tx_bytes)

    def test_fetch_path_counts_roundtrip(self, session):
        # Run many missing-tx scenarios; whenever a fetch happened, the
        # roundtrip count and byte accounting must reflect it.
        fetches = 0
        for t in range(15):
            sc = make_block_scenario(n=150, extra=150, fraction=0.85,
                                     seed=900 + t)
            outcome = session.relay(sc.block, sc.receiver_mempool)
            assert outcome.success
            if outcome.fetched_count:
                fetches += 1
                assert outcome.roundtrips == 3.5
                assert outcome.cost.extra_getdata > 0
                assert outcome.cost.fetched_tx_bytes > 0
        # Not asserting fetches > 0: b is tuned to make slips rare.

    def test_strict_mode_raises_on_failure(self):
        config = GrapheneConfig()
        session = BlockRelaySession(config)
        # Pathological: receiver has nothing at all and mempool is empty.
        sc = make_block_scenario(n=60, extra=0, fraction=0.0, seed=50)
        try:
            outcome = session.relay(sc.block, sc.receiver_mempool,
                                    strict=True)
            assert outcome.success  # if it worked, fine
        except ProtocolFailure:
            pass  # also acceptable: the documented strict behaviour


class TestOrderingCost:
    def test_included_when_requested(self, small_scenario):
        plain = BlockRelaySession().relay(
            small_scenario.block, small_scenario.receiver_mempool)
        with_order = BlockRelaySession(include_ordering_cost=True).relay(
            small_scenario.block, small_scenario.receiver_mempool)
        assert with_order.cost.ordering > 0
        assert plain.cost.ordering == 0


class TestCostScaling:
    def test_graphene_beats_compact_blocks_for_large_blocks(self):
        from repro.baselines.compact_blocks import compact_blocks_bytes
        session = BlockRelaySession()
        sc = make_block_scenario(n=2000, extra=2000, fraction=1.0, seed=51)
        outcome = session.relay(sc.block, sc.receiver_mempool)
        assert outcome.success
        assert outcome.total_bytes < compact_blocks_bytes(2000)

    def test_cost_grows_sublinearly_with_mempool(self):
        session = BlockRelaySession()
        totals = []
        for extra in (1000, 4000):
            sc = make_block_scenario(n=1000, extra=extra, fraction=1.0,
                                     seed=52)
            totals.append(session.relay(sc.block,
                                        sc.receiver_mempool).total_bytes)
        assert totals[1] < 2 * totals[0]
