"""Tests for CPISync (characteristic polynomial interpolation)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeFailure, ParameterError
from repro.pds.cpisync import (
    FIELD_PRIME,
    cpisync_size_bytes,
    make_digest,
    poly_divmod,
    poly_eval,
    poly_from_roots,
    poly_gcd,
    poly_mul,
    poly_roots,
    reconcile,
    sample_points,
)

P = FIELD_PRIME


class TestFieldPolynomials:
    def test_eval_known(self):
        # 3 + 2x + x^2 at x = 5 -> 38.
        assert poly_eval([3, 2, 1], 5) == 38

    def test_mul_degrees_add(self):
        product = poly_mul([1, 1], [2, 0, 1])  # (1+x)(2+x^2)
        assert product == [2, 2, 1, 1]

    def test_divmod_roundtrip(self):
        a = [5, 0, 3, 1]
        b = [2, 1]
        q, r = poly_divmod(a, b)
        recombined = poly_mul(q, b)
        recombined = [(c + (r[i] if i < len(r) else 0)) % P
                      for i, c in enumerate(recombined)]
        assert recombined == a

    def test_gcd_of_shared_roots(self):
        a = poly_from_roots([10, 20, 30])
        b = poly_from_roots([20, 30, 40])
        g = poly_gcd(a, b)
        assert sorted(poly_roots(g)) == [20, 30]

    def test_roots_of_characteristic_polynomial(self):
        roots = [7, 99, 12345, 2**63]
        recovered = poly_roots(poly_from_roots(roots))
        assert sorted(recovered) == sorted(roots)

    def test_roots_of_constant_is_empty(self):
        assert poly_roots([5]) == []

    def test_divide_by_zero_rejected(self):
        with pytest.raises(ParameterError):
            poly_divmod([1, 2], [])

    @given(st.sets(st.integers(0, 2**64 - 1), min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_from_roots_evaluates_to_zero_at_roots(self, roots):
        poly = poly_from_roots(roots)
        assert all(poly_eval(poly, r) == 0 for r in roots)


class TestSamplePoints:
    def test_points_above_key_universe(self):
        for z in sample_points(10):
            assert z >= 2**64

    def test_rejects_bad_count(self):
        with pytest.raises(ParameterError):
            sample_points(0)


class TestReconcile:
    def _sets(self, shared, a_extra, b_extra, seed=0):
        rng = random.Random(seed)
        common = [rng.getrandbits(64) for _ in range(shared)]
        a = [rng.getrandbits(64) for _ in range(a_extra)]
        b = [rng.getrandbits(64) for _ in range(b_extra)]
        return common, a, b

    def test_recovers_two_sided_difference(self):
        common, a_only, b_only = self._sets(100, 6, 9, seed=1)
        digest = make_digest(common + a_only, mbar=20)
        remote, local = reconcile(digest, common + b_only)
        assert remote == frozenset(a_only)
        assert local == frozenset(b_only)

    def test_identical_sets(self):
        common, _, _ = self._sets(50, 0, 0, seed=2)
        digest = make_digest(common, mbar=4)
        remote, local = reconcile(digest, list(common))
        assert remote == frozenset() and local == frozenset()

    def test_one_sided_difference(self):
        common, a_only, _ = self._sets(60, 5, 0, seed=3)
        digest = make_digest(common + a_only, mbar=8)
        remote, local = reconcile(digest, list(common))
        assert remote == frozenset(a_only)
        assert local == frozenset()

    def test_exact_bound(self):
        common, a_only, b_only = self._sets(40, 3, 5, seed=4)
        digest = make_digest(common + a_only, mbar=8)  # exactly |diff|
        remote, local = reconcile(digest, common + b_only)
        assert remote == frozenset(a_only) and local == frozenset(b_only)

    def test_bound_violation_detected(self):
        common, a_only, b_only = self._sets(80, 10, 10, seed=5)
        digest = make_digest(common + a_only, mbar=6)
        with pytest.raises(DecodeFailure):
            reconcile(digest, common + b_only)

    def test_generous_bound_still_exact(self):
        common, a_only, b_only = self._sets(30, 2, 3, seed=6)
        digest = make_digest(common + a_only, mbar=30)
        remote, local = reconcile(digest, common + b_only)
        assert remote == frozenset(a_only) and local == frozenset(b_only)

    @given(st.integers(0, 6), st.integers(0, 6),
           st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, na, nb, seed):
        common, a_only, b_only = self._sets(20, na, nb, seed=seed)
        digest = make_digest(common + a_only, mbar=max(1, na + nb))
        remote, local = reconcile(digest, common + b_only)
        assert remote == frozenset(a_only)
        assert local == frozenset(b_only)


class TestSizeComparison:
    def test_near_information_optimal(self):
        # One field element (16 B) per difference item plus verification.
        assert cpisync_size_bytes(10) == 16 * 12 + 9

    def test_smaller_than_iblt_per_item(self):
        # Section 2.1: "more computation but smaller in size" -- CPISync
        # needs ~16 B/item while a 1/240-certified IBLT needs tau * 12 B
        # per item plus hedging.
        from repro.pds.param_table import default_param_table
        table = default_param_table(240)
        for j in (10, 50, 200):
            params = table.params_for(j)
            iblt_bytes = 12 + params.cells * 12
            assert cpisync_size_bytes(j) < iblt_bytes

    def test_rejects_bad_mbar(self):
        with pytest.raises(ParameterError):
            cpisync_size_bytes(0)
