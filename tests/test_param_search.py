"""Tests for Algorithm 1 (IBLT-Param-Search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pds.hypergraph import decode_many
from repro.pds.param_search import (
    classify_cell_count,
    default_k_candidates,
    measure_decode_rate,
    optimal_parameters,
    search_cells,
)


@pytest.fixture
def gen():
    return np.random.default_rng(12345)


class TestClassify:
    def test_ample_cells_classified_sufficient(self, gen):
        assert classify_cell_count(10, 4, 200, 0.9, gen)

    def test_starved_cells_classified_insufficient(self, gen):
        assert not classify_cell_count(100, 4, 104, 0.9, gen)

    def test_rejects_bad_p(self, gen):
        with pytest.raises(ParameterError):
            classify_cell_count(10, 4, 40, 1.0, gen)


class TestSearchCells:
    def test_returns_multiple_of_k(self, gen):
        cells = search_cells(20, 4, 0.95, rng=gen, max_trials=1500)
        assert cells is not None and cells % 4 == 0

    def test_found_size_actually_meets_rate(self, gen):
        p = 0.95
        cells = search_cells(30, 4, p, rng=gen, max_trials=2000)
        rate = decode_many(30, 4, cells, 2000, gen) / 2000
        assert rate >= p - 0.03  # Monte-Carlo slack

    def test_minimality(self, gen):
        # One k-step below the answer should measurably miss the target.
        p = 0.95
        cells = search_cells(30, 4, p, rng=gen, max_trials=2000)
        if cells > 8:
            rate_below = decode_many(30, 4, cells - 4, 3000, gen) / 3000
            assert rate_below < p + 0.02

    def test_j_zero(self, gen):
        assert search_cells(0, 4, 0.95, rng=gen) == 4

    def test_known_upper_prunes(self, gen):
        assert search_cells(50, 4, 0.95, rng=gen, known_upper=8,
                            max_trials=500) is None

    def test_grows_with_j(self, gen):
        small = search_cells(10, 4, 0.9, rng=gen, max_trials=1000)
        large = search_cells(80, 4, 0.9, rng=gen, max_trials=1000)
        assert large > small


class TestOptimalParameters:
    def test_beats_or_matches_single_k(self, gen):
        best = optimal_parameters(25, 0.9, rng=gen, max_trials=1000)
        k4 = search_cells(25, 4, 0.9, rng=gen, max_trials=1000)
        assert best.cells <= k4

    def test_tau_reported(self, gen):
        result = optimal_parameters(25, 0.9, rng=gen, max_trials=800)
        assert result.tau == pytest.approx(result.cells / 25)

    def test_restricted_k_list(self, gen):
        result = optimal_parameters(25, 0.9, ks=[3], rng=gen, max_trials=800)
        assert result.k == 3


class TestKCandidates:
    def test_windows_cover_paper_range(self):
        assert set(default_k_candidates(5)) <= set(range(3, 13))
        assert 3 in default_k_candidates(1000)

    def test_small_j_searches_more_ks(self):
        assert len(list(default_k_candidates(5))) >= len(
            list(default_k_candidates(5000)))


class TestMeasureDecodeRate:
    def test_rate_in_unit_interval(self):
        rate = measure_decode_rate(20, 4, 60, 200)
        assert 0.0 <= rate <= 1.0

    def test_pure_python_path(self, rng):
        rate = measure_decode_rate(10, 4, 60, 50, rng=rng, use_numpy=False)
        assert rate == pytest.approx(1.0, abs=0.1)

    def test_rejects_zero_trials(self):
        with pytest.raises(ParameterError):
            measure_decode_rate(10, 4, 40, 0)
