"""Tests for the statistics helpers (Lemma 1 machinery, Wilson CI)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    binomial_sample,
    chernoff_delta,
    chernoff_poisson_tail,
    chernoff_upper_tail,
    wilson_interval,
)


class TestChernoffDelta:
    def test_solves_lemma1_equality(self):
        # delta is defined so exp(-d^2 mu / (2+d)) == 1 - beta exactly.
        mu, beta = 20.0, 239.0 / 240.0
        delta = chernoff_delta(mu, beta)
        assert chernoff_upper_tail(mu, delta) == pytest.approx(1.0 - beta)

    def test_decreases_with_mu(self):
        beta = 0.99
        deltas = [chernoff_delta(mu, beta) for mu in (1, 10, 100, 1000)]
        assert deltas == sorted(deltas, reverse=True)

    def test_increases_with_beta(self):
        assert (chernoff_delta(10, 0.999)
                > chernoff_delta(10, 0.99)
                > chernoff_delta(10, 0.9))

    @pytest.mark.parametrize("bad_beta", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_beta(self, bad_beta):
        with pytest.raises(ValueError):
            chernoff_delta(10, bad_beta)

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            chernoff_delta(0.0, 0.99)

    def test_empirically_bounds_binomial(self):
        # Pr[A >= (1+delta) mu] should be <= 1 - beta (with slack).
        rng = random.Random(42)
        n, p, beta = 2000, 0.01, 0.99
        mu = n * p
        threshold = (1.0 + chernoff_delta(mu, beta)) * mu
        exceed = sum(
            sum(rng.random() < p for _ in range(n)) > threshold
            for _ in range(2000))
        assert exceed / 2000 <= (1 - beta) * 3  # generous Monte-Carlo slack


class TestTailBounds:
    def test_upper_tail_at_zero_delta(self):
        assert chernoff_upper_tail(5.0, 0.0) == 1.0

    def test_upper_tail_monotone_in_delta(self):
        values = [chernoff_upper_tail(10.0, d) for d in (0.1, 0.5, 1.0, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_poisson_tail_bounds_upper_tail(self):
        # The (e^d/(1+d)^(1+d))^mu form is tighter than Lemma 1's form.
        for delta in (0.5, 1.0, 3.0):
            assert (chernoff_poisson_tail(10.0, delta)
                    <= chernoff_upper_tail(10.0, delta) + 1e-12)

    def test_poisson_tail_zero_mu(self):
        assert chernoff_poisson_tail(0.0, 1.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1.0, 0.5)
        with pytest.raises(ValueError):
            chernoff_poisson_tail(1.0, -1.5)


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_perfect_successes_upper_is_one(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low > 0.9

    def test_narrows_with_trials(self):
        low1, high1 = wilson_interval(50, 100)
        low2, high2 = wilson_interval(500, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_interval_is_ordered_and_bounded(self, successes, trials):
        if successes > trials:
            successes, trials = trials, successes
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0


class TestBinomialSample:
    def test_edge_cases(self, rng):
        assert binomial_sample(rng, 0, 0.5) == 0
        assert binomial_sample(rng, 100, 0.0) == 0
        assert binomial_sample(rng, 100, 1.0) == 100

    def test_within_range(self, rng):
        for _ in range(100):
            value = binomial_sample(rng, 50, 0.3)
            assert 0 <= value <= 50

    def test_mean_accuracy_small(self, rng):
        n, p, trials = 40, 0.2, 4000
        mean = sum(binomial_sample(rng, n, p) for _ in range(trials)) / trials
        assert mean == pytest.approx(n * p, rel=0.1)

    def test_mean_accuracy_normal_approx(self, rng):
        # Large n*p path uses the Gaussian approximation.
        n, p, trials = 100_000, 0.01, 400
        mean = sum(binomial_sample(rng, n, p) for _ in range(trials)) / trials
        assert mean == pytest.approx(n * p, rel=0.05)
        assert math.sqrt(n * p * (1 - p)) > 30  # confirm approx regime

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            binomial_sample(rng, -1, 0.5)
        with pytest.raises(ValueError):
            binomial_sample(rng, 10, 1.5)
