"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestRelay:
    def test_default_relay_succeeds(self, capsys):
        assert main(["relay", "--n", "200", "--extra", "200"]) == 0
        out = capsys.readouterr().out
        assert "graphene" in out
        assert "compact blocks" in out

    def test_breakdown_flag(self, capsys):
        main(["relay", "--n", "100", "--extra", "100", "--breakdown"])
        out = capsys.readouterr().out
        assert "bloom_s" in out

    def test_protocol2_path(self, capsys):
        assert main(["relay", "--n", "200", "--extra", "200",
                     "--fraction", "0.9"]) == 0
        assert "protocol 2" in capsys.readouterr().out


class TestSync:
    def test_sync_succeeds(self, capsys):
        assert main(["sync", "--n", "300", "--common", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "synchronized=True" in out


class TestIBLTParams:
    def test_table_lookup(self, capsys):
        assert main(["iblt-params", "--j", "50"]) == 0
        out = capsys.readouterr().out
        assert "cells=" in out and "k=" in out

    def test_other_denom(self, capsys):
        assert main(["iblt-params", "--j", "50", "--denom", "24"]) == 0


class TestExperiment:
    def test_known_driver(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "cells=" in out

    def test_json_output(self, capsys):
        assert main(["experiment", "fig10", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list) and rows

    def test_unknown_driver(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "choose from" in capsys.readouterr().err


class TestAttack:
    def test_attack_summary(self, capsys):
        assert main(["attack", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "xthin" in out and "graphene" in out


class TestNetsim:
    def test_propagates(self, capsys):
        assert main(["netsim", "--nodes", "6", "--degree", "2",
                     "--block-size", "60"]) == 0
        out = capsys.readouterr().out
        assert "6/6 nodes" in out

    def test_full_block_protocol(self, capsys):
        assert main(["netsim", "--nodes", "4", "--degree", "2",
                     "--block-size", "40",
                     "--protocol", "full_block"]) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
