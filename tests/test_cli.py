"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestRelay:
    def test_default_relay_succeeds(self, capsys):
        assert main(["relay", "--n", "200", "--extra", "200"]) == 0
        out = capsys.readouterr().out
        assert "graphene" in out
        assert "compact blocks" in out

    def test_breakdown_flag(self, capsys):
        main(["relay", "--n", "100", "--extra", "100", "--breakdown"])
        out = capsys.readouterr().out
        assert "bloom_s" in out

    def test_protocol2_path(self, capsys):
        assert main(["relay", "--n", "200", "--extra", "200",
                     "--fraction", "0.9"]) == 0
        assert "protocol 2" in capsys.readouterr().out

    def test_p3_flag(self, capsys):
        assert main(["relay", "--n", "200", "--extra", "200", "--p3",
                     "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "protocol 3" in out
        assert "riblt" in out

    def test_p3_flag_under_provisioned_receiver(self, capsys):
        # The regime that forces classic Graphene into the P2 fallback
        # never leaves protocol 3: the stream just runs longer.
        assert main(["relay", "--n", "200", "--extra", "200",
                     "--fraction", "0.8", "--p3"]) == 0
        assert "protocol 3" in capsys.readouterr().out


class TestSync:
    def test_sync_succeeds(self, capsys):
        assert main(["sync", "--n", "300", "--common", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "synchronized=True" in out

    def test_sync_p3_flag(self, capsys):
        assert main(["sync", "--n", "300", "--common", "0.5",
                     "--p3"]) == 0
        out = capsys.readouterr().out
        assert "protocol 3" in out
        assert "synchronized=True" in out


class TestIBLTParams:
    def test_table_lookup(self, capsys):
        assert main(["iblt-params", "--j", "50"]) == 0
        out = capsys.readouterr().out
        assert "cells=" in out and "k=" in out

    def test_other_denom(self, capsys):
        assert main(["iblt-params", "--j", "50", "--denom", "24"]) == 0


class TestExperiment:
    def test_known_driver(self, capsys):
        assert main(["experiment", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "cells=" in out

    def test_json_output(self, capsys):
        assert main(["experiment", "fig10", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list) and rows

    def test_unknown_driver(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "choose from" in capsys.readouterr().err


class TestAttack:
    def test_attack_summary(self, capsys):
        assert main(["attack", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "xthin" in out and "graphene" in out


class TestNetsim:
    def test_propagates(self, capsys):
        assert main(["netsim", "--nodes", "6", "--degree", "2",
                     "--block-size", "60"]) == 0
        out = capsys.readouterr().out
        assert "6/6 nodes" in out

    def test_full_block_protocol(self, capsys):
        assert main(["netsim", "--nodes", "4", "--degree", "2",
                     "--block-size", "40",
                     "--protocol", "full_block"]) == 0


class TestPeerJSON:
    """``repro peer --json`` against a live socket server.

    The JSON document is the machine-readable record of the fetch; on
    the abandon rung it must still carry the recovery marks and the
    bytes spent before giving up (a regression: the single-connection
    serializer used to drop ``escalated``/``abandoned``/``marks``)."""

    def _serve_in_thread(self, scenario, drop=None):
        import asyncio
        import threading

        from repro.net.peer import BlockServer

        started = threading.Event()
        stop = threading.Event()
        port_box: list = []

        def run_server():
            async def run():
                server = BlockServer(scenario.block, drop=drop)
                port_box.append(await server.start("127.0.0.1", 0))
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.02)
                await server.close()

            asyncio.run(run())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert started.wait(5.0), "server thread never came up"
        return port_box[0], stop, thread

    def test_success_json_has_recovery_fields(self, capsys):
        from repro.chain.scenarios import make_block_scenario

        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=9)
        port, stop, thread = self._serve_in_thread(sc)
        try:
            rc = main(["peer", "--port", str(port), "--n", "60",
                       "--extra", "60", "--seed", "9", "--json"])
        finally:
            stop.set()
            thread.join(5.0)
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["success"] is True
        assert doc["abandoned"] is False
        assert doc["escalated"] is False
        assert doc["via_fullblock"] is False
        assert [m["name"] for m in doc["marks"]] == ["done"]

    def test_abandon_json_carries_marks_and_partial_cost(self, capsys):
        from repro.chain.scenarios import make_block_scenario

        sc = make_block_scenario(n=60, extra=60, fraction=1.0, seed=9)
        blackhole = {"getdata": 10 ** 9, "graphene_p2_request": 10 ** 9,
                     "graphene_p3_request": 10 ** 9,
                     "getdata_shortids": 10 ** 9, "getdata_block": 10 ** 9}
        port, stop, thread = self._serve_in_thread(sc, drop=blackhole)
        try:
            rc = main(["peer", "--port", str(port), "--n", "60",
                       "--extra", "60", "--seed", "9", "--json",
                       "--timeout-base", "0.1", "--max-retries", "1"])
        finally:
            stop.set()
            thread.join(5.0)
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["success"] is False
        assert doc["abandoned"] is True
        assert doc["escalated"] is True
        assert doc["timeouts"] >= 1
        # The marks narrate the ladder: escalation(s), then the abandon.
        names = [m["name"] for m in doc["marks"]]
        assert "abandon" in names and "escalate" in names
        # Partial cost: the getdata bytes burned before giving up are
        # still accounted, not zeroed out by the failure.
        assert sum(doc["cost"].values()) > 0
        assert doc["events"], "abandoned fetch still reports its events"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
