"""Cross-module integration tests: the full system working together."""

from __future__ import annotations

import pytest

from repro import (
    Block,
    BlockRelaySession,
    GrapheneConfig,
    Mempool,
    TransactionGenerator,
    make_block_scenario,
    make_sync_scenario,
    synchronize_mempools,
)
from repro.baselines.compact_blocks import CompactBlocksRelay
from repro.baselines.xthin import XThinRelay
from repro.net import Node, RelayProtocol, Simulator, connect_random_regular


class TestRelayAgainstBaselinesSameScenario:
    """All protocols run on identical scenarios and all must succeed."""

    @pytest.mark.parametrize("fraction", [1.0, 0.9])
    def test_all_protocols_reconstruct_block(self, fraction):
        sc = make_block_scenario(n=300, extra=300, fraction=fraction,
                                 seed=1000)
        graphene = BlockRelaySession().relay(sc.block, sc.receiver_mempool)
        cb = CompactBlocksRelay().relay(sc.block, sc.receiver_mempool)
        xthin = XThinRelay().relay(sc.block, sc.receiver_mempool)
        assert graphene.success and cb.success and xthin.success

    def test_size_ranking_matches_paper(self):
        # Graphene < Compact Blocks < XThin (with mempool filter), for a
        # 2000-txn block with mempool multiple 1.
        sc = make_block_scenario(n=2000, extra=2000, fraction=1.0, seed=1001)
        graphene = BlockRelaySession().relay(sc.block, sc.receiver_mempool)
        cb = CompactBlocksRelay().relay(sc.block, sc.receiver_mempool)
        xthin = XThinRelay().relay(sc.block, sc.receiver_mempool)
        assert graphene.total_bytes < cb.total_bytes < xthin.total_bytes

    def test_headline_ratio(self):
        # Paper: "for larger blocks, our protocol uses 12% of the
        # bandwidth of existing deployed systems"; our shape check is
        # one order of magnitude at n = 10000.
        sc = make_block_scenario(n=10_000, extra=10_000, fraction=1.0,
                                 seed=1002)
        graphene = BlockRelaySession().relay(sc.block, sc.receiver_mempool)
        cb = CompactBlocksRelay().relay(sc.block, sc.receiver_mempool)
        assert graphene.success
        ratio = graphene.total_bytes / cb.total_bytes
        assert ratio < 0.25


class TestRepeatedRelays:
    def test_hundred_blocks_all_succeed(self):
        session = BlockRelaySession()
        failures = 0
        for t in range(100):
            sc = make_block_scenario(n=120, extra=120, fraction=1.0,
                                     seed=2000 + t)
            if not session.relay(sc.block, sc.receiver_mempool).success:
                failures += 1
        # Protocol 1 failure target is 1/240; P2 catches the rest, so
        # end-to-end failures should be essentially absent.
        assert failures == 0

    def test_protocol2_fallback_rate_sane(self):
        session = BlockRelaySession()
        p2_used = 0
        for t in range(50):
            sc = make_block_scenario(n=120, extra=120, fraction=1.0,
                                     seed=3000 + t)
            outcome = session.relay(sc.block, sc.receiver_mempool)
            if outcome.protocol_used == 2:
                p2_used += 1
        assert p2_used <= 3  # P1 should almost always suffice when synced


class TestChainedWorkflow:
    def test_mine_relay_evict_sync(self):
        """A miniature full-node life cycle across two peers."""
        gen = TransactionGenerator(seed=42)
        shared = gen.make_batch(300)
        sender_pool = Mempool(shared)
        receiver_pool = Mempool(shared)
        receiver_pool.add_many(gen.make_batch(100))  # receiver extras

        # 1. Miner assembles a block from its mempool and relays it.
        block = Block.assemble(shared[:200])
        outcome = BlockRelaySession().relay(block, receiver_pool)
        assert outcome.success

        # 2. Both sides evict the confirmed transactions.
        sender_pool.remove_block(block.txids)
        receiver_pool.remove_block(block.txids)
        assert len(sender_pool) == 100
        assert len(receiver_pool) == 200

        # 3. New traffic arrives unevenly; mempool sync reconciles.
        sender_pool.add_many(gen.make_batch(100))
        result = synchronize_mempools(sender_pool, receiver_pool)
        assert result.success
        assert ({t.txid for t in sender_pool}
                == {t.txid for t in receiver_pool})


class TestNetworkEndToEnd:
    def test_ten_node_network_propagates_block(self):
        import random
        sim = Simulator()
        nodes = [Node(f"n{i}", sim, protocol=RelayProtocol.GRAPHENE)
                 for i in range(10)]
        connect_random_regular(nodes, degree=4, rng=random.Random(3))
        gen = TransactionGenerator(seed=7)
        txs = gen.make_batch(150)
        for node in nodes:
            node.mempool.add_many(txs)
        block = Block.assemble(txs)
        nodes[0].mine_block(block)
        sim.run()
        root = block.header.merkle_root
        assert all(root in node.blocks for node in nodes)
        # Everyone evicted the confirmed transactions.
        assert all(len(node.mempool) == 0 for node in nodes)


class TestConfigVariants:
    @pytest.mark.parametrize("cell_bytes", [8, 12, 16])
    def test_cell_width_variants_work(self, cell_bytes):
        config = GrapheneConfig(cell_bytes=cell_bytes)
        sc = make_block_scenario(n=200, extra=200, fraction=1.0, seed=4000)
        outcome = BlockRelaySession(config).relay(sc.block,
                                                  sc.receiver_mempool)
        assert outcome.success

    @pytest.mark.parametrize("denom", [24, 240, 2400])
    def test_decode_rate_variants_work(self, denom):
        config = GrapheneConfig(decode_denom=denom)
        sc = make_block_scenario(n=200, extra=200, fraction=1.0, seed=4100)
        outcome = BlockRelaySession(config).relay(sc.block,
                                                  sc.receiver_mempool)
        assert outcome.success

    def test_stricter_decode_rate_costs_more(self):
        sc = make_block_scenario(n=1000, extra=1000, fraction=1.0, seed=4200)
        loose = BlockRelaySession(GrapheneConfig(decode_denom=24)).relay(
            sc.block, sc.receiver_mempool)
        strict = BlockRelaySession(GrapheneConfig(decode_denom=2400)).relay(
            sc.block, sc.receiver_mempool)
        assert loose.success and strict.success
        assert strict.cost.iblt_i >= loose.cost.iblt_i

    def test_sync_scenarios_across_sizes(self):
        for n, frac in ((100, 0.2), (500, 0.6), (1000, 0.9)):
            sc = make_sync_scenario(n=n, fraction_common=frac, seed=n)
            result = synchronize_mempools(sc.sender_mempool,
                                          sc.receiver_mempool)
            assert result.success, (n, frac)
            assert result.synchronized, (n, frac)
