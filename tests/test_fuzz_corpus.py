"""Replay the fuzz corpus: every bug the fuzzer ever caught stays caught.

Artifacts in ``tests/corpus/`` are minimized failing (or, for the seed
corpus, deliberately bug-class-pinning) cases written by ``repro fuzz``.
Each replays here as a plain pytest regression by re-deriving the case
from its parameters -- reverting any of the wire-parity fixes makes the
matching artifact fail again.

The truncation battery additionally walks *every* byte offset of valid
Protocol 1 / Protocol 2 messages: the codecs consume every byte, so any
strict prefix must raise rather than mis-parse.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import build_protocol2_request, respond_protocol2
from repro.errors import ReproError
from repro.fuzz import load_artifact, replay_artifact

CORPUS = Path(__file__).parent / "corpus"
ARTIFACTS = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(ARTIFACTS) >= 12, (
        "the seed corpus ships with the repo; if you moved it, update "
        "CORPUS in this test")


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_artifact_replays_clean(path):
    failure = replay_artifact(path)
    assert failure is None, (
        f"corpus case regressed: {failure}\n"
        f"note: {load_artifact(path).get('note', '')}")


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_artifact_is_well_formed(path):
    payload = load_artifact(path)
    assert isinstance(payload["params"], dict)
    assert payload["check"], "artifacts must name the check they guard"


class TestTruncationAtEveryOffset:
    """Strict prefixes of valid messages must always be rejected."""

    @pytest.fixture(scope="class")
    def wire_messages(self):
        from repro.codec import (
            encode_protocol1_payload,
            encode_protocol2_request,
            encode_protocol2_response,
            encode_protocol3_payload,
        )
        from repro.core.protocol3 import build_protocol3
        config = GrapheneConfig()
        sc = make_block_scenario(n=120, extra=80, fraction=0.7, seed=75)
        payload = build_protocol1(sc.block.txs, sc.m, config)
        p1 = receive_protocol1(payload, sc.receiver_mempool, config,
                               validate_block=sc.block)
        assert not p1.success, "scenario must reach Protocol 2"
        request, _ = build_protocol2_request(p1, payload, sc.m, config)
        response = respond_protocol2(request, sc.block.txs, sc.m, config)
        p3_payload, _ = build_protocol3(sc.block.txs, sc.m, config)
        return {
            "p1": encode_protocol1_payload(payload),
            "p2_request": encode_protocol2_request(request),
            "p2_response": encode_protocol2_response(response),
            "p3": encode_protocol3_payload(p3_payload),
        }

    @pytest.mark.parametrize("name,decoder_name", [
        ("p1", "decode_protocol1_payload"),
        ("p2_request", "decode_protocol2_request"),
        ("p2_response", "decode_protocol2_response"),
        ("p3", "decode_protocol3_payload"),
    ])
    def test_every_strict_prefix_raises(self, wire_messages, name,
                                        decoder_name):
        import repro.codec as codec
        decoder = getattr(codec, decoder_name)
        blob = wire_messages[name]
        decoder(blob)  # the full message decodes
        survivors = []
        for cut in range(len(blob)):
            try:
                decoder(blob[:cut])
            except (ReproError, ValueError):
                continue
            survivors.append(cut)
        assert not survivors, (
            f"{decoder_name} accepted strict prefixes of lengths "
            f"{survivors[:10]} (message is {len(blob)} bytes)")


class TestSymbolStreamCuts:
    """The Protocol 3 symbol stream under every disconnect geometry.

    The wire stream is a sequence of self-delimiting batches; a cut at
    a batch boundary leaves whole batches (the receiver stalls, which
    the recovery ladder treats as a timeout), while a cut anywhere
    inside a batch must raise rather than yield a short batch.
    """

    @pytest.fixture(scope="class")
    def stream(self):
        from repro.codec import encode_symbol_batch
        from repro.core.protocol3 import (
            SymbolBatch,
            build_protocol3,
            next_batch_size,
        )
        sc = make_block_scenario(n=100, extra=60, fraction=0.6, seed=31)
        payload, encoder = build_protocol3(sc.block.txs, sc.m,
                                           GrapheneConfig())
        batches = [payload.symbols]
        start = len(payload.symbols)
        for _ in range(3):
            count = next_batch_size(start)
            counts, key_sums, check_sums = encoder.window(start, count)
            batches.append(SymbolBatch(start=start, counts=counts,
                                       key_sums=key_sums,
                                       check_sums=check_sums))
            start += count
        blobs = [encode_symbol_batch(b) for b in batches]
        boundaries = [0]
        for blob in blobs:
            boundaries.append(boundaries[-1] + len(blob))
        return b"".join(blobs), boundaries

    def _parse_all(self, data):
        from repro.codec import decode_symbol_batch
        offset, batches = 0, []
        while offset < len(data):
            batch, offset = decode_symbol_batch(data, offset)
            batches.append(batch)
        return batches

    def test_cut_at_every_batch_boundary_parses_whole_batches(self, stream):
        blob, boundaries = stream
        for k, cut in enumerate(boundaries):
            assert len(self._parse_all(blob[:cut])) == k

    def test_cut_at_every_interior_offset_raises(self, stream):
        blob, boundaries = stream
        survivors = []
        for cut in range(len(blob)):
            if cut in boundaries:
                continue
            try:
                self._parse_all(blob[:cut])
            except ReproError:
                continue
            survivors.append(cut)
        assert not survivors, (
            f"mid-batch cuts at offsets {survivors[:10]} parsed without "
            f"error (stream is {len(blob)} bytes)")

    def test_hostile_count_never_reads_past_buffer(self, stream):
        import struct

        from repro.codec import decode_symbol_batch
        blob, boundaries = stream
        first = blob[:boundaries[1]]
        for claimed in (len(first) // 14 + 1, 0x7FFF, 0xFFFF):
            forged = first[:4] + struct.pack("<H", claimed) + first[6:]
            with pytest.raises(ReproError):
                decode_symbol_batch(forged)
