"""Protocol 3 end to end: the rateless exchange on every transport.

The tentpole claims, pinned here:

* a Protocol 3 relay decodes every scenario *without a difference
  estimate* -- there is no fallback branch to take, so ``protocol_used``
  stays 3 and no ``p2`` events ever appear;
* the exchange produces byte-identical CostBreakdowns and telemetry
  event streams across all three transports -- loopback, the network
  simulator, and a real localhost TCP socket -- exactly the parity
  contract Protocols 1 and 2 already honor;
* a stalled symbol stream is a timeout like any other: the recovery
  ladder re-emits the continuation request verbatim and the sender
  (whose stream is a pure function of the block) re-serves the same
  window byte-for-byte;
* hostile streams fail *cleanly*: a replayed batch, a desynchronized
  window, or a stream that runs past the receiver's cap all end in
  FAILED, never a wrong block and never an unbounded loop.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.chain.block import Block
from repro.chain.scenarios import make_block_scenario, make_sync_scenario
from repro.chain.transaction import TransactionGenerator
from repro.core.engine import (
    ActionKind,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
    ReceiverPhase,
)
from repro.core.params import GrapheneConfig
from repro.core.protocol3 import (
    SymbolBatch,
    first_batch_size,
    next_batch_size,
    sender_stream_cap,
)
from repro.core.session import BlockRelaySession
from repro.core.sizing import CostBreakdown
from repro.errors import ParameterError, ProtocolFailure
from repro.net.node import Node
from repro.net.peer import BlockServer, fetch_block
from repro.net.recovery import RecoveryPolicy
from repro.net.simulator import Link, Simulator
from repro.net.transport import LoopbackTransport

CFG = GrapheneConfig(protocol=3)

#: Small timeouts so ladder tests stall in milliseconds, not seconds.
FAST = dict(timeout_base=0.15, backoff=1.5)


def _relay(scenario, config=CFG):
    return BlockRelaySession(config).relay(scenario.block,
                                           scenario.receiver_mempool)


class TestLoopbackRelay:
    @pytest.mark.parametrize("fraction,extra", [
        (1.0, 0), (1.0, 100), (0.98, 100), (0.9, 200), (0.75, 50),
    ])
    def test_decodes_without_estimate(self, fraction, extra):
        sc = make_block_scenario(n=150, extra=extra, fraction=fraction,
                                 seed=31)
        out = _relay(sc)
        assert out.success
        assert out.protocol_used == 3
        assert [tx.txid for tx in out.txs] == list(sc.block.txids)
        # The deleted failure branch: no P2 phase, no fallback outcome.
        assert all(e.phase != "p2" for e in out.events)
        assert all(e.outcome != "fallback" for e in out.events)

    def test_single_roundtrip_when_synced(self):
        sc = make_block_scenario(n=200, extra=120, fraction=1.0, seed=8)
        out = _relay(sc)
        assert out.success and out.roundtrips == 1.5
        assert out.cost.riblt > 0 and out.cost.iblt_i == 0

    def test_missing_txs_fetched_not_escalated(self):
        sc = make_block_scenario(n=200, extra=100, fraction=0.95, seed=9)
        out = _relay(sc)
        assert out.success and out.protocol_used == 3
        assert out.fetched_count == len(sc.missing)
        assert out.cost.fetched_tx_bytes > 0

    def test_tiny_block(self):
        sc = make_block_scenario(n=1, extra=5, fraction=1.0, seed=2)
        out = _relay(sc)
        assert out.success and out.roundtrips == 1.5

    def test_pure_python_byte_parity(self):
        """The pure-Python paths relay the same bytes as numpy's."""
        from repro.fastpath import fastpath_enabled, set_fastpath

        sc = make_block_scenario(n=150, extra=100, fraction=0.97, seed=13)
        fast = _relay(sc)
        saved = fastpath_enabled()
        set_fastpath(False)
        try:
            sc2 = make_block_scenario(n=150, extra=100, fraction=0.97,
                                      seed=13)
            pure = _relay(sc2)
        finally:
            set_fastpath(saved)
        assert fast.success and pure.success
        assert json.dumps(fast.cost.as_dict(), sort_keys=True) \
            == json.dumps(pure.cost.as_dict(), sort_keys=True)

    def test_mempool_mode_sync(self):
        sc = make_sync_scenario(300, 0.9, seed=3)
        sender = GrapheneSenderEngine(txs=sc.sender_mempool.transactions(),
                                      config=CFG)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool, CFG,
                                          mode="mempool")
        final = LoopbackTransport(sender, receiver).run()
        assert final.kind is ActionKind.DONE
        got = set(receiver.reconciled)
        want = {tx.txid for tx in sc.sender_mempool}
        assert got == want


class TestTransportParity:
    """One scenario, three transports, identical analytic bytes."""

    def _scenario(self):
        return make_block_scenario(n=150, extra=150, fraction=0.96,
                                   seed=21)

    def test_socket_matches_loopback(self):
        sc = self._scenario()

        async def run():
            server = BlockServer(sc.block, CFG)
            port = await server.start()
            try:
                return await fetch_block("127.0.0.1", port,
                                         sc.receiver_mempool, CFG)
            finally:
                await server.close()

        result = asyncio.run(run())
        assert result.success and result.protocol_used == 3

        loop = _relay(self._scenario())
        assert json.dumps(result.cost.as_dict(), sort_keys=True) \
            == json.dumps(loop.cost.as_dict(), sort_keys=True)
        assert json.dumps([e.as_dict() for e in result.events]) \
            == json.dumps([e.as_dict() for e in loop.events])

    def test_simulator_matches_loopback(self):
        sc = self._scenario()
        sim = Simulator()
        a = Node("a", sim, config=CFG)
        b = Node("b", sim, config=CFG)
        a.connect(b, Link(latency=0.01, bandwidth=10_000_000))
        a.mempool.add_many(sc.block.txs)
        b.mempool.add_many(sc.receiver_mempool.transactions())
        a.mine_block(sc.block)
        sim.run()
        root = sc.block.header.merkle_root
        assert root in b.blocks
        assert b.blocks[root].txids == sc.block.txids

        sim_cost = CostBreakdown.from_events(b.relay_telemetry[root])
        loop = _relay(self._scenario())
        assert json.dumps(sim_cost.as_dict(), sort_keys=True) \
            == json.dumps(loop.cost.as_dict(), sort_keys=True)


class TestRecoveryLadder:
    """A stalled stream is a timeout; re-serving is byte-stable."""

    def test_dropped_continuation_is_retransmitted(self):
        sc = make_block_scenario(n=150, extra=150, fraction=0.9, seed=17)

        async def run():
            server = BlockServer(sc.block, CFG,
                                 drop={"graphene_p3_request": 1})
            port = await server.start()
            try:
                return await fetch_block(
                    "127.0.0.1", port, sc.receiver_mempool, CFG,
                    policy=RecoveryPolicy(**FAST))
            finally:
                await server.close()

        result = asyncio.run(run())
        assert result.success and not result.escalated
        assert result.timeouts == 1 and result.retries == 1
        assert result.block.txids == sc.block.txids
        outcomes = [e.outcome for e in result.events]
        assert "timeout" in outcomes and "retry" in outcomes

    def test_blackholed_stream_escalates_to_full_block(self):
        sc = make_block_scenario(n=120, extra=120, fraction=0.9, seed=18)

        async def run():
            server = BlockServer(sc.block, CFG,
                                 drop={"graphene_p3_request": 10 ** 9})
            port = await server.start()
            try:
                return await fetch_block(
                    "127.0.0.1", port, sc.receiver_mempool, CFG,
                    policy=RecoveryPolicy(max_retries=1, **FAST))
            finally:
                await server.close()

        result = asyncio.run(run())
        assert result.success and result.escalated
        assert result.via_fullblock
        assert result.block.txids == sc.block.txids


class TestHostileStreams:
    """Malformed streams end in clean failure, never a wrong block."""

    def _pair(self, seed=23):
        sc = make_block_scenario(n=100, extra=100, fraction=0.5,
                                 seed=seed)
        sender = GrapheneSenderEngine(sc.block, CFG)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool, CFG)
        opening = sender.handle("getdata", receiver.start().message)
        return sc, sender, receiver, opening

    def test_desynchronized_batch_rejected(self):
        _, sender, receiver, opening = self._pair()
        action = receiver.handle(opening.command, opening.message)
        assert receiver.phase is ReceiverPhase.WAIT_P3_SYMBOLS, \
            "scenario must need a continuation round"
        from repro.codec import decode_protocol3_request, \
            encode_protocol3_request

        start, count, _ = decode_protocol3_request(action.message)
        stale = sender.handle("graphene_p3_request",
                              encode_protocol3_request(start + 1, count))
        with pytest.raises(ParameterError):
            receiver.handle("graphene_p3_symbols", stale.message)

    def test_zeroed_stream_fails_not_wrong_block(self):
        """All-zero symbols claim 'nothing differs'; the n-consistency
        guard must turn that into FAILED, not a silently wrong block."""
        sc, sender, receiver, opening = self._pair(seed=29)
        from repro.codec import encode_protocol3_payload
        from repro.core.protocol3 import build_protocol3

        payload, _ = build_protocol3(list(sc.block.txs),
                                     len(sc.receiver_mempool), CFG)
        zeros = SymbolBatch(start=0,
                            counts=[0] * len(payload.symbols),
                            key_sums=[0] * len(payload.symbols),
                            check_sums=[0] * len(payload.symbols))
        forged = type(payload)(n=payload.n, bloom_s=payload.bloom_s,
                               symbols=zeros, recover=payload.recover,
                               plan=payload.plan,
                               prefilled=payload.prefilled)
        blob = sc.block.header.serialize() \
            + encode_protocol3_payload(forged)
        action = receiver.handle("graphene_p3_block", blob)
        # Either the guard fires immediately (FAILED) or the receiver
        # asks for more symbols -- it must never return DONE.
        assert action.kind is not ActionKind.DONE

    def test_stream_cap_bounds_hostile_exchange(self):
        """A sender that never lets the decode finish cannot drag the
        receiver past its symbol cap."""
        sc = make_block_scenario(n=60, extra=60, fraction=0.5, seed=5)
        receiver = GrapheneReceiverEngine(sc.receiver_mempool, CFG)
        sender = GrapheneSenderEngine(sc.block, CFG)
        opening = sender.handle("getdata", receiver.start().message)
        action = receiver.handle(opening.command, opening.message)
        assert action.command == "graphene_p3_request", \
            "scenario must need a continuation round"
        steps = 0
        from repro.codec import decode_protocol3_request

        while action.kind is ActionKind.SEND \
                and action.command == "graphene_p3_request":
            steps += 1
            assert steps < 200, "receiver never gave up"
            start, count, _ = decode_protocol3_request(action.message)
            garbage = SymbolBatch(
                start=start,
                counts=[7] * count,
                key_sums=[0xDEAD] * count,
                check_sums=[1] * count)
            from repro.codec import encode_symbol_batch

            try:
                action = receiver.handle("graphene_p3_symbols",
                                         encode_symbol_batch(garbage))
            except (ParameterError, ProtocolFailure):
                return  # rejected outright: also a clean ending
        assert action.kind is ActionKind.FAILED

    def test_sender_refuses_window_beyond_cap(self):
        sc = make_block_scenario(n=30, extra=0, fraction=1.0, seed=1)
        sender = GrapheneSenderEngine(sc.block, CFG)
        from repro.codec import encode_protocol3_request

        cap = sender_stream_cap(30)
        with pytest.raises(ParameterError):
            sender.handle("graphene_p3_request",
                          encode_protocol3_request(cap, 100))


class TestBatchSizing:
    def test_first_batch_floor(self):
        assert first_batch_size(0) >= 4
        assert first_batch_size(10) >= 14  # ceil(1.35 * 10)

    def test_continuation_grows_geometrically(self):
        assert next_batch_size(100) == 50
        assert next_batch_size(2) == 4  # floor

    def test_sender_cap_scales_with_keys(self):
        assert sender_stream_cap(10) == 1 << 16
        assert sender_stream_cap(1 << 20) == 32 << 20
