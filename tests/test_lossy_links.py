"""Tests for lossy links and the sync-repairs-gossip story."""

from __future__ import annotations

import pytest

from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError
from repro.net.node import Node
from repro.net.simulator import Link, Simulator


class TestLinkLoss:
    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ParameterError):
            Link(loss_rate=1.0)
        with pytest.raises(ParameterError):
            Link(loss_rate=-0.1)

    def test_zero_loss_never_drops(self):
        link = Link()
        assert not any(link.drops() for _ in range(1000))

    def test_loss_rate_statistics(self):
        link = Link(loss_rate=0.3, loss_seed=1)
        dropped = sum(link.drops() for _ in range(5000))
        assert dropped == pytest.approx(1500, rel=0.15)

    def test_deterministic_by_seed(self):
        a = Link(loss_rate=0.5, loss_seed=7)
        b = Link(loss_rate=0.5, loss_seed=7)
        assert [a.drops() for _ in range(50)] == \
            [b.drops() for _ in range(50)]


class TestGossipUnderLoss:
    def _lossy_pair(self, loss):
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        a.connect(b,
                  Link(latency=0.01, loss_rate=loss, loss_seed=3),
                  Link(latency=0.01, loss_rate=loss, loss_seed=4))
        return sim, a, b

    def test_lossy_gossip_diverges_mempools(self, txgen):
        sim, a, b = self._lossy_pair(0.4)
        for tx in txgen.make_batch(300):
            a.submit_transaction(tx)
        sim.run()
        # With 40% loss, a substantial fraction of invs/txs never land.
        assert len(b.mempool) < 300

    def test_sync_repairs_lossy_gossip(self, txgen):
        sim, a, b = self._lossy_pair(0.4)
        for tx in txgen.make_batch(300):
            a.submit_transaction(tx)
        sim.run()
        missing_before = 300 - len(b.mempool)
        assert missing_before > 0

        # Heal the links for the repair pass (sync needs its own
        # messages through), then reconcile: b catches up completely.
        a.peers[b] = Link(latency=0.01)
        b.peers[a] = Link(latency=0.01)
        nonce = b.initiate_mempool_sync(a)
        sim.run()
        assert b.sync_result(nonce).succeeded
        assert len(b.mempool) == 300

    def test_bytes_spent_even_on_drops(self, txgen):
        sim, a, b = self._lossy_pair(0.9)
        for tx in txgen.make_batch(50):
            a.submit_transaction(tx)
        sim.run()
        assert a.total_bytes_sent() > 0  # sender pays for lost traffic
