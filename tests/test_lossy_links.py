"""Tests for lossy links and the sync-repairs-gossip story."""

from __future__ import annotations

import pytest

from repro.chain.scenarios import make_block_scenario
from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError
from repro.net.node import Node
from repro.net.simulator import Link, Simulator


class TestLinkLoss:
    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ParameterError):
            Link(loss_rate=1.0)
        with pytest.raises(ParameterError):
            Link(loss_rate=-0.1)

    def test_zero_loss_never_drops(self):
        link = Link()
        assert not any(link.drops() for _ in range(1000))

    def test_loss_rate_statistics(self):
        link = Link(loss_rate=0.3, loss_seed=1)
        dropped = sum(link.drops() for _ in range(5000))
        assert dropped == pytest.approx(1500, rel=0.15)

    def test_deterministic_by_seed(self):
        a = Link(loss_rate=0.5, loss_seed=7)
        b = Link(loss_rate=0.5, loss_seed=7)
        assert [a.drops() for _ in range(50)] == \
            [b.drops() for _ in range(50)]


class TestGossipUnderLoss:
    def _lossy_pair(self, loss):
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        a.connect(b,
                  Link(latency=0.01, loss_rate=loss, loss_seed=3),
                  Link(latency=0.01, loss_rate=loss, loss_seed=4))
        return sim, a, b

    def test_lossy_gossip_diverges_mempools(self, txgen):
        sim, a, b = self._lossy_pair(0.4)
        for tx in txgen.make_batch(300):
            a.submit_transaction(tx)
        sim.run()
        # With 40% loss, a substantial fraction of invs/txs never land.
        assert len(b.mempool) < 300

    def test_sync_repairs_lossy_gossip(self, txgen):
        sim, a, b = self._lossy_pair(0.4)
        for tx in txgen.make_batch(300):
            a.submit_transaction(tx)
        sim.run()
        missing_before = 300 - len(b.mempool)
        assert missing_before > 0

        # Heal the links for the repair pass (sync needs its own
        # messages through), then reconcile: b catches up completely.
        a.peers[b] = Link(latency=0.01)
        b.peers[a] = Link(latency=0.01)
        nonce = b.initiate_mempool_sync(a)
        sim.run()
        assert b.sync_result(nonce).succeeded
        assert len(b.mempool) == 300

    def test_bytes_spent_even_on_drops(self, txgen):
        sim, a, b = self._lossy_pair(0.9)
        for tx in txgen.make_batch(50):
            a.submit_transaction(tx)
        sim.run()
        assert a.total_bytes_sent() > 0  # sender pays for lost traffic


class TestBlockRelayUnderLoss:
    """Recovery properties of Graphene relay over lossy links.

    A lost message can hit any phase of the exchange; the recovery
    ladder (see repro.net.recovery) must either deliver the block or
    abandon it cleanly within the policy bounds.  The only permanently
    stranding loss is the announcement itself: with a single announcer
    a dropped inv leaves nothing to recover from (multi-peer
    topologies cover that case with redundant inv paths).
    """

    def _relay_once(self, loss, seed_fwd, seed_rev):
        sc = make_block_scenario(n=80, extra=80, fraction=1.0, seed=11)
        sim = Simulator()
        a = Node("a", sim)
        b = Node("b", sim)
        a.connect(b,
                  Link(latency=0.01, loss_rate=loss, loss_seed=seed_fwd),
                  Link(latency=0.01, loss_rate=loss, loss_seed=seed_rev))
        b.mempool.add_many(sc.receiver_mempool.transactions())
        a.mine_block(sc.block)
        sim.run(until=120.0)
        return sc.block.header.merkle_root, a, b

    def test_converges_or_leaves_bounded_trail(self):
        converged = 0
        for seed in range(12):
            root, a, b = self._relay_once(0.25, 2 * seed, 2 * seed + 1)
            if root in b.blocks:
                converged += 1
                # Telemetry trail matches the counters exactly.
                outcomes = [e.outcome for e in b.relay_telemetry[root]]
                assert outcomes.count("retry") == b.relay_retries
                assert outcomes.count("timeout") == b.relay_timeouts
            else:
                # Either the inv was the casualty (nothing ever started)
                # or the ladder ran out of rungs; both end with a
                # bounded trail, never an infinite retry loop.
                bound = b.recovery.max_retries
                assert b.relay_retries <= 2 * bound
                assert b.relay_timeouts <= 2 * (bound + 1)
        assert converged > 0  # the loss level leaves most runs savable

    def test_no_engine_left_behind(self):
        for seed in range(12):
            root, a, b = self._relay_once(0.25, 2 * seed, 2 * seed + 1)
            # Converged or abandoned, no fetch state may linger.
            assert root not in b._rx_engines
            assert root not in b._block_recovery
            assert b._cb_pending == {}
            if root in b.blocks:
                assert root not in b._block_sources

    def test_heavy_loss_relay_still_converges_when_inv_lands(self):
        recovered = 0
        for seed in range(10):
            root, a, b = self._relay_once(0.3, 100 + seed, 200 + seed)
            if root in b.blocks and b.relay_retries > 0:
                recovered += 1
        assert recovered > 0  # retries demonstrably rescued some runs
