"""Robustness of the wire codecs against hostile or corrupted input.

A peer can send anything.  Decoders must either produce a well-formed
object (whose content the Merkle check will judge) or raise
:class:`~repro.errors.ParameterError` / :class:`ReproError` -- never
IndexError, struct.error, MemoryError or an infinite loop.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.scenarios import make_block_scenario
from repro.codec import (
    decode_bloom,
    decode_iblt,
    decode_protocol1_payload,
    decode_protocol2_request,
    decode_protocol2_response,
    decode_transaction,
    decode_tx_list,
    encode_bloom,
    encode_iblt,
    encode_protocol1_payload,
)
from repro.core.protocol1 import build_protocol1
from repro.errors import ReproError
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT

DECODERS = (decode_bloom, decode_iblt, decode_transaction, decode_tx_list,
            decode_protocol1_payload, decode_protocol2_request,
            decode_protocol2_response)


def _expect_clean(decoder, blob):
    """Decoding must yield a value or a ReproError/ValueError, only."""
    try:
        decoder(blob)
    except (ReproError, ValueError):
        pass


class TestRandomBytes:
    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_decoders_never_crash_on_noise(self, blob):
        for decoder in DECODERS:
            _expect_clean(decoder, blob)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_huge_length_claims_rejected(self, suffix):
        # A CompactSize claiming 2^32 transactions must not allocate.
        blob = b"\xfe\xff\xff\xff\xff" + suffix
        _expect_clean(decode_tx_list, blob)


class TestTruncation:
    def test_bloom_truncation_sweep(self):
        bloom = BloomFilter.from_fpr(100, 0.01)
        blob = encode_bloom(bloom)
        for cut in range(len(blob)):
            _expect_clean(decode_bloom, blob[:cut])

    def test_iblt_truncation_sweep(self):
        iblt = IBLT(24, k=4)
        iblt.update(range(10))
        blob = encode_iblt(iblt)
        for cut in range(0, len(blob), 7):
            _expect_clean(decode_iblt, blob[:cut])

    def test_payload_truncation_sweep(self):
        sc = make_block_scenario(n=40, extra=40, fraction=1.0, seed=4)
        payload = build_protocol1(sc.block.txs, sc.m)
        blob = encode_protocol1_payload(payload)
        for cut in range(0, len(blob), 11):
            _expect_clean(decode_protocol1_payload, blob[:cut])


class TestBitflips:
    def test_flipped_payload_never_crashes(self):
        # Bit flips may corrupt content (Merkle validation's job) but
        # must not break the decoder.
        sc = make_block_scenario(n=30, extra=30, fraction=1.0, seed=5)
        payload = build_protocol1(sc.block.txs, sc.m)
        blob = bytearray(encode_protocol1_payload(payload))
        rng = random.Random(6)
        for _ in range(200):
            pos = rng.randrange(len(blob))
            bit = 1 << rng.randrange(8)
            blob[pos] ^= bit
            _expect_clean(decode_protocol1_payload, bytes(blob))
            blob[pos] ^= bit  # restore

    def test_flipped_iblt_decode_is_safe(self):
        # Even when the IBLT parses, peeling a corrupted table must end
        # (partial result or MalformedIBLTError), never loop.
        iblt = IBLT(48, k=4)
        iblt.update(range(20))
        blob = bytearray(encode_iblt(iblt))
        rng = random.Random(7)
        for _ in range(60):
            pos = rng.randrange(12, len(blob))  # corrupt cells, not shape
            blob[pos] ^= 1 << rng.randrange(8)
            try:
                parsed, _ = decode_iblt(bytes(blob))
                parsed.decode()
            except (ReproError, ValueError):
                pass


class TestAdversarialShapes:
    def test_bloom_with_absurd_k(self):
        # k = 255 over 8 bits: decoder accepts, membership still works.
        blob = (255).to_bytes(4, "little") + bytes([255]) + bytes(4) \
            + bytes(32)
        _expect_clean(decode_bloom, blob)

    def test_iblt_zero_cells_rejected(self):
        blob = (0).to_bytes(4, "little") + bytes([4]) + bytes(4) \
            + bytes([12]) + bytes(2)
        _expect_clean(decode_iblt, blob)

    def test_iblt_k_larger_than_cells(self):
        blob = (4).to_bytes(4, "little") + bytes([200]) + bytes(4) \
            + bytes([12]) + bytes(2) + bytes(4 * 12)
        _expect_clean(decode_iblt, blob)
