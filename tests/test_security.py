"""Tests for the section 6.1 attack simulations."""

from __future__ import annotations

import pytest

from repro.errors import MalformedIBLTError, ParameterError
from repro.security.collision_attack import (
    craft_colliding_pair,
    find_short_id_collision,
    run_collision_attack,
)
from repro.security.malformed_iblt import make_malformed_iblt


class TestMalformedIBLT:
    def test_decode_raises_instead_of_looping(self):
        with pytest.raises(MalformedIBLTError):
            make_malformed_iblt().decode()

    def test_with_honest_cover_traffic(self, rng):
        honest = [rng.getrandbits(64) for _ in range(10)]
        iblt = make_malformed_iblt(cells=120, honest_keys=honest)
        with pytest.raises(MalformedIBLTError):
            iblt.decode()

    def test_rejects_low_k(self):
        with pytest.raises(ParameterError):
            make_malformed_iblt(k=2)

    def test_subtraction_still_malformed(self, rng):
        # Subtracting an honest IBLT does not cleanse the poison.
        from repro.pds.iblt import IBLT
        honest = [rng.getrandbits(64) for _ in range(5)]
        poisoned = make_malformed_iblt(cells=60, seed=3, honest_keys=honest)
        clean = IBLT(poisoned.cells, k=poisoned.k, seed=3)
        clean.update(honest)
        with pytest.raises(MalformedIBLTError):
            poisoned.subtract(clean).decode()


class TestCollisionSearch:
    def test_finds_small_collision(self):
        a, b = find_short_id_collision(nbytes=2, seed=1)
        assert a != b
        assert a[:2] == b[:2]

    def test_rejects_bad_width(self):
        with pytest.raises(ParameterError):
            find_short_id_collision(nbytes=0)

    def test_gives_up_gracefully(self):
        with pytest.raises(ParameterError):
            find_short_id_collision(nbytes=8, max_attempts=10)

    def test_crafted_pair_collides_on_short_id(self):
        t1, t2 = craft_colliding_pair(seed=2)
        assert t1.txid != t2.txid
        assert t1.short_id() == t2.short_id()


class TestCollisionAttack:
    def test_deployed_protocols_always_fail(self):
        for seed in range(5):
            result = run_collision_attack(seed=seed)
            assert result.xthin_failed
            assert result.compact_blocks_failed

    def test_siphash_defends_compact_blocks(self):
        # Keyed short IDs: the precomputed collision misses the key.
        failures = sum(run_collision_attack(seed=s)
                       .compact_blocks_siphash_failed for s in range(5))
        assert failures == 0

    def test_graphene_failure_needs_both_filters(self):
        for seed in range(10):
            result = run_collision_attack(seed=seed)
            assert result.graphene_failed == (
                result.t2_passed_s and result.t1_passed_r)

    def test_graphene_failure_probability_is_small(self):
        result = run_collision_attack(seed=0)
        assert result.graphene_failure_probability < 0.01

    def test_graphene_rarely_fails_empirically(self):
        failures = sum(run_collision_attack(seed=s).graphene_failed
                       for s in range(30))
        assert failures <= 2
