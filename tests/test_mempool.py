"""Tests for the mempool and its per-peer inventory log."""

from __future__ import annotations

import pytest

from repro.chain.mempool import Mempool
from repro.errors import ParameterError


class TestSetOperations:
    def test_add_and_contains(self, txgen):
        pool = Mempool()
        tx = txgen.make()
        assert pool.add(tx)
        assert tx.txid in pool
        assert pool.get(tx.txid) is tx

    def test_double_add_returns_false(self, txgen):
        pool = Mempool()
        tx = txgen.make()
        pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1

    def test_constructor_seeds_content(self, txgen):
        txs = txgen.make_batch(5)
        pool = Mempool(txs)
        assert len(pool) == 5

    def test_add_many_counts_new(self, txgen):
        txs = txgen.make_batch(5)
        pool = Mempool(txs[:2])
        assert pool.add_many(txs) == 3

    def test_remove(self, txgen):
        tx = txgen.make()
        pool = Mempool([tx])
        assert pool.remove(tx.txid) is tx
        assert pool.remove(tx.txid) is None
        assert len(pool) == 0

    def test_remove_block_evicts_confirmed(self, txgen):
        txs = txgen.make_batch(10)
        pool = Mempool(txs)
        evicted = pool.remove_block([tx.txid for tx in txs[:4]])
        assert evicted == 4
        assert len(pool) == 6

    def test_iteration_yields_transactions(self, txgen):
        txs = txgen.make_batch(3)
        pool = Mempool(txs)
        assert {tx.txid for tx in pool} == {tx.txid for tx in txs}

    def test_txids_property(self, txgen):
        txs = txgen.make_batch(3)
        pool = Mempool(txs)
        assert set(pool.txids) == {tx.txid for tx in txs}


class TestInvLog:
    def test_note_and_query(self, txgen):
        pool = Mempool()
        tx = txgen.make()
        pool.note_inv("peer-1", tx.txid)
        assert pool.inv_exchanged("peer-1", tx.txid)
        assert not pool.inv_exchanged("peer-2", tx.txid)

    def test_unannounced_to(self, txgen):
        pool = Mempool()
        txs = txgen.make_batch(4)
        pool.note_inv("peer", txs[0].txid)
        pool.note_inv("peer", txs[2].txid)
        unannounced = pool.unannounced_to("peer", [tx.txid for tx in txs])
        assert unannounced == [txs[1].txid, txs[3].txid]

    def test_unknown_peer_all_unannounced(self, txgen):
        pool = Mempool()
        txs = txgen.make_batch(2)
        assert len(pool.unannounced_to("ghost", [t.txid for t in txs])) == 2

    def test_empty_peer_id_rejected(self, txgen):
        with pytest.raises(ParameterError):
            Mempool().note_inv("", txgen.make().txid)
