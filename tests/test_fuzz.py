"""Self-tests for the fuzzing harness: determinism, shrinking, replay."""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    ENGINES,
    FuzzFailure,
    load_artifact,
    replay_artifact,
    run_fuzz,
    shrink,
    write_artifact,
)
from repro.fuzz.engines import Engine, numpy_disabled
from repro.fuzz.gen import MUTATION_OPS, mutate, rng_from
from repro.fuzz.runner import _wrap_check


class TestDeterminism:
    def test_rng_from_is_stable_across_processes(self):
        # String seeding hashes through SHA-512 inside random, not
        # hash(), so the stream cannot depend on PYTHONHASHSEED.
        assert rng_from("draw", 0, "codec", 7).getrandbits(64) \
            == rng_from("draw", 0, "codec", 7).getrandbits(64)
        assert rng_from("draw", 0, "codec", 7).getrandbits(64) \
            != rng_from("draw", 0, "codec", 8).getrandbits(64)

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_draws_are_reproducible(self, name):
        engine = ENGINES[name]
        first = [engine.draw(rng_from("d", 3, name, i)) for i in range(20)]
        second = [engine.draw(rng_from("d", 3, name, i)) for i in range(20)]
        assert first == second

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_params_are_json_serializable(self, name):
        engine = ENGINES[name]
        for index in range(20):
            params = engine.draw(rng_from("j", 1, name, index))
            assert json.loads(json.dumps(params)) == params

    def test_same_seed_same_campaign(self):
        a = run_fuzz(seed=42, cases=30, corpus_dir=None)
        b = run_fuzz(seed=42, cases=30, corpus_dir=None)
        assert a.per_engine == b.per_engine
        assert [str(f) for f in a.failures] == [str(f) for f in b.failures]

    def test_mutate_is_deterministic(self):
        blob = bytes(range(64))
        assert mutate(blob, rng_from("m", 1), 4) \
            == mutate(blob, rng_from("m", 1), 4)
        assert mutate(blob, rng_from("m", 1), 4) != blob
        assert set(MUTATION_OPS) >= {"bitflip", "truncate", "splice"}


class _ThresholdEngine(Engine):
    """Fails whenever n >= 10; used to exercise the shrinker."""

    name = "threshold"
    shrink_floors = {"n": 0, "extra": 0}

    def draw(self, rng):
        return {"n": rng.randint(0, 1000), "extra": rng.randint(0, 1000)}

    def check(self, params):
        if params["n"] >= 10:
            return self.fail("too-big", f"n={params['n']}", params)
        return None


class TestShrinker:
    def test_shrinks_to_the_boundary(self):
        engine = _ThresholdEngine()
        failure = engine.check({"n": 937, "extra": 512})
        minimized, rounds = shrink(engine, failure)
        assert minimized.check == "too-big"
        assert 10 <= minimized.params["n"] <= 16  # halving granularity
        assert minimized.params["extra"] == 0    # irrelevant knob zeroed
        assert rounds >= 1

    def test_preserves_the_original_check(self):
        engine = _ThresholdEngine()
        failure = FuzzFailure(engine="threshold", check="other-bug",
                              detail="", params={"n": 900, "extra": 3})
        minimized, _ = shrink(engine, failure)
        # Candidates all reproduce "too-big", never "other-bug", so
        # nothing is accepted and the original failure survives intact.
        assert minimized.params == failure.params


class TestArtifacts:
    def test_write_load_replay_roundtrip(self, tmp_path):
        failure = FuzzFailure(
            engine="codec", check="tx-roundtrip", detail="synthetic",
            params={"kind": "transaction", "seed": 11, "n": 3})
        path = write_artifact(failure, tmp_path, note="self-test")
        payload = load_artifact(path)
        assert payload["params"] == failure.params
        assert payload["note"] == "self-test"
        assert replay_artifact(path) is None  # healthy code: no failure

    def test_unknown_engine_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"engine": "nope", "params": {}}))
        with pytest.raises(ValueError, match="unknown engine"):
            load_artifact(path)

    def test_unhandled_exceptions_become_findings(self):
        class Boom(Engine):
            name = "codec"  # reuse a registered name for the wrapper

            def check(self, params):
                raise RuntimeError("kaboom")

        failure = _wrap_check(Boom(), {"x": 1})
        assert failure is not None
        assert failure.check == "unhandled:RuntimeError"
        assert "kaboom" in failure.detail


class TestRunner:
    def test_budget_and_engine_selection(self):
        stats = run_fuzz(seed=1, cases=20, engines=["codec"],
                         corpus_dir=None)
        assert set(stats.per_engine) == {"codec"}
        assert stats.cases_run == 20
        assert stats.ok
        assert "codec:20" in stats.summary()

    def test_engine_costs_scale_quotas(self):
        stats = run_fuzz(seed=1, cases=50, engines=["pds"],
                         corpus_dir=None)
        assert stats.per_engine["pds"] == 50 // ENGINES["pds"].cost

    def test_unknown_engine_name_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_fuzz(seed=0, cases=1, engines=["quantum"])

    def test_failures_write_minimized_artifacts(self, tmp_path,
                                                monkeypatch):
        # Revert the bloom-load restore in-process: the codec engine
        # must catch it, shrink it, and archive a replayable artifact.
        import repro.codec as codec
        monkeypatch.setattr(codec, "restore_bloom_load",
                            lambda bloom, count: bloom)
        stats = run_fuzz(seed=0, cases=150, engines=["codec"],
                         corpus_dir=tmp_path)
        assert not stats.ok
        checks = {f.check for f in stats.failures}
        assert checks & {"p1-bloom-s-count", "p2-bloom-r-count",
                         "p1-bloom-s-actual-fpr", "p2-bloom-r-actual-fpr"}
        assert stats.artifacts
        monkeypatch.undo()
        for path in stats.artifacts:
            assert replay_artifact(path) is None  # fixed again -> clean


class TestPDSHarness:
    def test_numpy_disabled_restores_backends(self):
        import repro.pds.bloom as bloom_mod
        import repro.pds.iblt as iblt_mod
        before = bloom_mod._np, iblt_mod._np
        with numpy_disabled():
            assert bloom_mod._np is None and iblt_mod._np is None
        assert (bloom_mod._np, iblt_mod._np) == before

    def test_pds_engine_covers_fallback(self):
        # A no-numpy case runs both backends in one check.
        engine = ENGINES["pds"]
        params = engine.draw(rng_from("x", 0))
        params["numpy"] = False
        assert engine.check(params) is None
