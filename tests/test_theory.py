"""Tests for the analytic bounds of section 5.1 / Theorem 4."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    bloom_approx_lower_bound_bytes,
    exact_membership_bound_bytes,
    graphene_protocol1_bytes,
    graphene_vs_bloom_gain_bits,
    protocol1_cost_model_bytes,
)
from repro.errors import ParameterError


class TestInformationBounds:
    def test_exact_bound_formula(self):
        # log2 C(10, 3) = log2 120 ~ 6.9 bits -> 1 byte.
        assert exact_membership_bound_bytes(3, 10) == pytest.approx(7 / 8)

    def test_exact_bound_edges(self):
        assert exact_membership_bound_bytes(0, 10) == 0.0
        assert exact_membership_bound_bytes(10, 10) == 0.0

    def test_exact_bound_rejects_bad(self):
        with pytest.raises(ParameterError):
            exact_membership_bound_bytes(5, 3)

    def test_carter_bound(self):
        # -n log2 f bits.
        assert bloom_approx_lower_bound_bytes(100, 1 / 1024) == pytest.approx(
            100 * 10 / 8)

    def test_carter_bound_below_exact_for_loose_fpr(self):
        n, m = 100, 10_000
        approx = bloom_approx_lower_bound_bytes(n, 0.01)
        exact = exact_membership_bound_bytes(n, m)
        assert approx < exact


class TestTheorem4:
    def test_gain_positive_for_large_n(self):
        assert graphene_vs_bloom_gain_bits(2000, 4000) > 0

    def test_gain_grows_superlinearly(self):
        # Omega(n log n): gain per transaction increases with n.
        per_tx = [graphene_vs_bloom_gain_bits(n, 2 * n) / n
                  for n in (1000, 4000, 16000)]
        assert per_tx == sorted(per_tx)

    def test_small_n_can_lose(self):
        # Paper: below ~50-100 txns deterministic/simple solutions win.
        assert graphene_vs_bloom_gain_bits(50, 100) < \
            graphene_vs_bloom_gain_bits(5000, 10_000)

    def test_rejects_m_not_larger(self):
        with pytest.raises(ParameterError):
            graphene_vs_bloom_gain_bits(10, 10)


class TestCostModel:
    def test_matches_eq2_shape(self):
        # T(a) should be near the discrete optimizer's result at the
        # optimizer's own choice of a.
        from repro.core.params import GrapheneConfig, optimize_a
        config = GrapheneConfig()
        n, m = 2000, 4000
        plan = optimize_a(n, m, config)
        tau = plan.iblt.cells / max(1, plan.recover)
        model = protocol1_cost_model_bytes(n, m, plan.a, tau)
        assert model == pytest.approx(plan.total_bytes, rel=0.25)

    def test_convex_in_a(self):
        # The continuous cost has a single interior minimum.
        n, m = 2000, 4000
        costs = [protocol1_cost_model_bytes(n, m, a, 1.4)
                 for a in (1, 5, 20, 60, 200, 1000, 1999)]
        minimum = min(costs)
        idx = costs.index(minimum)
        assert 0 < idx < len(costs) - 1

    def test_eq3_near_continuous_minimum(self):
        from repro.core.params import closed_form_a
        n, m, tau, r = 5000, 10_000, 1.4, 12
        a_hint = closed_form_a(n, tau, r)
        here = protocol1_cost_model_bytes(n, m, a_hint, tau, delta=0.0,
                                          cell_bytes=r)
        for factor in (0.5, 2.0):
            there = protocol1_cost_model_bytes(
                n, m, max(1, int(a_hint * factor)), tau, delta=0.0,
                cell_bytes=r)
            assert here <= there + 1e-9

    def test_rejects_bad(self):
        with pytest.raises(ParameterError):
            protocol1_cost_model_bytes(10, 5, 1, 1.4)

    def test_graphene_protocol1_bytes_positive(self):
        assert graphene_protocol1_bytes(100, 300) > 0


class TestAsymptoticGain:
    def test_gain_roughly_n_log_n(self):
        # gain(n) / (n log2 n) should stabilize to a positive constant.
        ratios = [
            graphene_vs_bloom_gain_bits(n, 2 * n) / (n * math.log2(n))
            for n in (4000, 16000)
        ]
        assert all(r > 0 for r in ratios)
        assert ratios[1] == pytest.approx(ratios[0], rel=0.5)
