"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-build-isolation``
take the setup.py develop path instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
