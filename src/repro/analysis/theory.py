"""Analytic size comparisons (paper section 5.1 and Theorem 4).

* The information-theoretic bound for describing an unordered
  ``n``-subset of ``m`` elements: ``ceil(log2 C(m, n))`` bits.
* Carter et al.'s lower bound for *approximate* membership with false
  positive rate ``f``: ``-n log2 f`` bits.
* Graphene Protocol 1's cost model ``T(a)`` (Eq. 2) and the gain over a
  Bloom filter at the 1/(144 (m-n)) budget, which Theorem 4 proves is
  ``Omega(n log2 n)`` bits when the IBLT uses k >= 3 hash functions.
"""

from __future__ import annotations

import math

from repro.core.bounds import BETA_DEFAULT, a_star
from repro.core.params import GrapheneConfig, optimize_a
from repro.errors import ParameterError


def exact_membership_bound_bytes(n: int, m: int) -> float:
    """``ceil(log2 C(m, n))`` bits, in bytes: the exact-description floor."""
    if not 0 <= n <= m:
        raise ParameterError(f"need 0 <= n <= m, got n={n}, m={m}")
    if n == 0 or n == m:
        return 0.0
    bits = (math.lgamma(m + 1) - math.lgamma(n + 1)
            - math.lgamma(m - n + 1)) / math.log(2.0)
    return math.ceil(bits) / 8.0


def bloom_approx_lower_bound_bytes(n: int, fpr: float) -> float:
    """Carter's ``-n log2 f`` bits for approximate membership, in bytes."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 < fpr < 1.0:
        raise ParameterError(f"fpr must be in (0, 1), got {fpr}")
    return -n * math.log2(fpr) / 8.0


def graphene_protocol1_bytes(n: int, m: int,
                             config: GrapheneConfig | None = None) -> int:
    """Protocol 1's optimized S + I size in bytes (Eq. 2 with real ceilings)."""
    plan = optimize_a(n, m, config or GrapheneConfig())
    return plan.total_bytes


def graphene_vs_bloom_gain_bits(n: int, m: int,
                                beta: float = BETA_DEFAULT,
                                cell_bytes: int = 12,
                                blocks_per_failure: int = 144) -> float:
    """Theorem 4's gap, evaluated exactly: Bloom-alone bits minus Graphene bits.

    Positive values mean Graphene is smaller.  The proof form of the
    difference is ``n (log2 n + log2(1 / (p tau)) - 1) - a r tau``
    with ``a = n / (r tau)``; here we evaluate the two protocols'
    actual cost models so finite-``n`` effects are visible too.
    """
    if m <= n:
        raise ParameterError(f"need m > n, got n={n}, m={m}")
    bloom_fpr = 1.0 / (blocks_per_failure * (m - n))
    bloom_bits = -n * math.log2(bloom_fpr)

    config = GrapheneConfig(beta=beta, cell_bytes=cell_bytes)
    plan = optimize_a(n, m, config)
    graphene_bits = 8.0 * plan.total_bytes
    return bloom_bits - graphene_bits


def protocol1_cost_model_bytes(n: int, m: int, a: float, tau: float,
                               delta: float | None = None,
                               cell_bytes: int = 12,
                               beta: float = BETA_DEFAULT) -> float:
    """The continuous ``T(a)`` of Eq. 2, for verifying the optimizer.

    ``T(a) = -n ln(a / (m-n)) / (8 ln^2 2) + r tau (1 + delta) a``.
    """
    if a <= 0 or m <= n:
        raise ParameterError("need a > 0 and m > n")
    if delta is None:
        delta = a_star(a, beta) / a - 1.0
    bloom = -n * math.log(a / (m - n)) / (8.0 * math.log(2.0) ** 2)
    return max(0.0, bloom) + cell_bytes * tau * (1.0 + delta) * a
