"""Monte-Carlo drivers for every figure in the paper's evaluation.

Each ``figNN_rows`` function runs the experiment behind the matching
figure and returns a list of plain dict rows -- the same series the
paper plots.  The benchmark harness under ``benchmarks/`` times these
and prints the rows; EXPERIMENTS.md records paper-vs-measured values.

Every driver takes ``trials`` and ``seed`` so runtime scales to taste
and results are reproducible.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

import numpy as np

from repro.baselines.compact_blocks import compact_blocks_bytes
from repro.baselines.difference_digest import DifferenceDigestRelay
from repro.baselines.full_block import full_block_bytes
from repro.baselines.xthin import xthin_star_bytes
from repro.chain.ordering import ordering_info_bytes
from repro.chain.scenarios import (
    make_block_scenario,
    make_sync_scenario,
    mempool_multiple_to_extra,
)
from repro.core.bounds import BETA_DEFAULT, x_star, y_star
from repro.core.engine import GrapheneReceiverEngine, GrapheneSenderEngine
from repro.core.mempool_sync import synchronize_mempools
from repro.core.params import GrapheneConfig, optimize_a
from repro.core.session import BlockRelaySession
from repro.net.transport import LoopbackTransport
from repro.pds.hypergraph import decode_many
from repro.pds.iblt import IBLT
from repro.pds.param_table import default_param_table
from repro.pds.pingpong import pingpong_decode
from repro.utils.stats import binomial_sample

#: Block sizes used across the paper's simulations (section 5.3): ETH/BCH
#: average, BTC average, and a large-block scenario.
PAPER_BLOCK_SIZES = (200, 2000, 10000)

_STATIC_TAU = 1.5
_STATIC_K = 4


# ---------------------------------------------------------------------------
# Figures 7 and 10: IBLT parameterization quality
# ---------------------------------------------------------------------------

def fig07_rows(j_values: Sequence[int] = (10, 50, 100, 200, 500, 1000),
               denoms: Sequence[int] = (24, 240, 2400),
               trials: int = 2000, seed: int = 7) -> list[dict]:
    """Decode failure rates: static (k=4, tau=1.5) vs optimal parameters."""
    rng = np.random.default_rng(seed)
    rows = []
    for j in j_values:
        static_c = int(j * _STATIC_TAU)
        static_c += -static_c % _STATIC_K
        static_c = max(static_c, _STATIC_K)
        fails = trials - decode_many(j, _STATIC_K, static_c, trials, rng)
        rows.append({"j": j, "scheme": "static", "target_failure": None,
                     "cells": static_c, "failure_rate": fails / trials})
        for denom in denoms:
            params = default_param_table(denom).params_for(j)
            fails = trials - decode_many(j, params.k, params.cells, trials, rng)
            rows.append({"j": j, "scheme": "optimal",
                         "target_failure": 1.0 / denom,
                         "cells": params.cells,
                         "failure_rate": fails / trials})
    return rows


def fig10_rows(j_values: Sequence[int] = (10, 50, 100, 200, 300, 500, 1000),
               denoms: Sequence[int] = (24, 240, 2400)) -> list[dict]:
    """IBLT size in cells: optimal tables vs the static parameterization."""
    rows = []
    for j in j_values:
        static_c = max(_STATIC_K, int(j * _STATIC_TAU))
        rows.append({"j": j, "scheme": "static", "cells": static_c,
                     "target_failure": None})
        for denom in denoms:
            params = default_param_table(denom).params_for(j)
            rows.append({"j": j, "scheme": "optimal", "cells": params.cells,
                         "k": params.k, "target_failure": 1.0 / denom})
    return rows


# ---------------------------------------------------------------------------
# Figure 11: ping-pong decoding
# ---------------------------------------------------------------------------

def fig11_rows(j_values: Sequence[int] = (10, 20, 50, 100),
               sibling_fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
               trials: int = 500, seed: int = 11,
               denom: int = 240) -> list[dict]:
    """Single-IBLT vs ping-pong failure rates with a smaller sibling.

    Inserts the same ``j`` random items into an optimally sized IBLT and
    a sibling sized for ``i = fraction * j`` items (independent seed),
    mirroring Fig. 11's setup.
    """
    table = default_param_table(denom)
    rng = random.Random(seed)
    rows = []
    for j in j_values:
        main = table.params_for(j)
        single_fail = 0
        pair_fail = {frac: 0 for frac in sibling_fractions}
        for _ in range(trials):
            items = [rng.getrandbits(64) for _ in range(j)]
            primary = IBLT(main.cells, k=main.k, seed=rng.getrandbits(30))
            primary.update(items)
            if not primary.decode().complete:
                single_fail += 1
            for frac in sibling_fractions:
                i = max(1, int(round(frac * j)))
                sib_params = table.params_for(i)
                sibling = IBLT(sib_params.cells, k=sib_params.k,
                               seed=rng.getrandbits(30) | 1)
                sibling.update(items)
                if not pingpong_decode(primary, sibling).complete:
                    pair_fail[frac] += 1
        rows.append({"j": j, "scheme": "single", "sibling": None,
                     "failure_rate": single_fail / trials})
        for frac in sibling_fractions:
            rows.append({"j": j, "scheme": "pingpong",
                         "sibling": max(1, int(round(frac * j))),
                         "failure_rate": pair_fail[frac] / trials})
    return rows


# ---------------------------------------------------------------------------
# Figures 12 and 13: deployment-shaped experiments
# ---------------------------------------------------------------------------

def fig12_rows(block_sizes: Sequence[int] = (50, 200, 500, 1000, 2000,
                                             3000, 4000, 5000),
               mempool_extra: int = 4000, trials: int = 5,
               seed: int = 12) -> list[dict]:
    """Protocol 1 vs XThin* as block size grows (the BCH deployment shape).

    ``mempool_extra`` models the receiver's typical extra mempool
    transactions beyond the block; the deployment held mempools a few
    thousand transactions deep.
    """
    rows = []
    session = BlockRelaySession()
    for n in block_sizes:
        graphene_total = 0
        failures = 0
        for t in range(trials):
            scenario = make_block_scenario(n, mempool_extra, 1.0,
                                           seed=seed + 1000 * t + n)
            outcome = session.relay(scenario.block,
                                    scenario.receiver_mempool)
            graphene_total += outcome.cost.total()
            if not outcome.success:
                failures += 1
        rows.append({"n": n,
                     "graphene_bytes": graphene_total / trials,
                     "xthin_star_bytes": xthin_star_bytes(n),
                     "failures": failures, "trials": trials})
    return rows


def fig13_rows(block_sizes: Sequence[int] = (25, 50, 100, 200, 400, 700,
                                             1000),
               mempool_size: int = 60000, trials: int = 3,
               mean_tx_size: int = 110, seed: int = 13) -> list[dict]:
    """Protocol 1 vs full blocks and the 8 B/txn ideal (Ethereum shape).

    The receiver mempool is pinned at 60,000 transactions like the
    paper's Geth replay; Graphene's cost includes ordering information
    since Ethereum has no CTOR (section 6.2).
    """
    rows = []
    session = BlockRelaySession(include_ordering_cost=True)
    for n in block_sizes:
        extra = mempool_size - n
        graphene_total = 0
        full_total = 0
        for t in range(trials):
            scenario = make_block_scenario(
                n, extra, 1.0, seed=seed + 1000 * t + n,
                mean_tx_size=mean_tx_size)
            outcome = session.relay(scenario.block,
                                    scenario.receiver_mempool)
            graphene_total += outcome.cost.total()
            full_total += full_block_bytes(scenario.block)
        rows.append({"n": n,
                     "graphene_bytes": graphene_total / trials,
                     "full_block_bytes": full_total / trials,
                     "ideal_8B_bytes": 8 * n,
                     "ordering_bytes": ordering_info_bytes(n)})
    return rows


# ---------------------------------------------------------------------------
# Figures 14 and 15: Protocol 1 size and decode rate vs mempool size
# ---------------------------------------------------------------------------

def fig14_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               multiples: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 3.0, 4.0,
                                             5.0),
               trials: int = 5, seed: int = 14) -> list[dict]:
    """Protocol 1 bytes vs Compact Blocks as the mempool multiple grows."""
    rows = []
    session = BlockRelaySession()
    for n in block_sizes:
        for multiple in multiples:
            extra = mempool_multiple_to_extra(n, multiple)
            total = 0
            for t in range(trials):
                scenario = make_block_scenario(
                    n, extra, 1.0, seed=seed + 7919 * t + n + int(multiple * 13))
                outcome = session.relay(scenario.block,
                                        scenario.receiver_mempool)
                total += outcome.cost.total()
            rows.append({"n": n, "multiple": multiple,
                         "graphene_bytes": total / trials,
                         "compact_blocks_bytes": compact_blocks_bytes(n)})
    return rows


def fig15_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               multiples: Sequence[float] = (0.5, 1.0, 2.0, 5.0),
               trials: int = 200, seed: int = 15,
               beta: float = BETA_DEFAULT) -> list[dict]:
    """Protocol 1 decode failure rate; target is 1 - beta (1/240).

    Uses the protocol's actual data structures per trial, so both Bloom
    filter variance and IBLT decode failures contribute.
    """
    rows = []
    config = GrapheneConfig(beta=beta)
    for n in block_sizes:
        for multiple in multiples:
            extra = mempool_multiple_to_extra(n, multiple)
            failures = 0
            for t in range(trials):
                scenario = make_block_scenario(
                    n, extra, 1.0, seed=seed + 104729 * t + n + int(multiple * 17))
                # One engine round: getdata -> P1 payload -> decode;
                # escalation to Protocol 2 counts as a P1 failure.
                sender = GrapheneSenderEngine(scenario.block, config)
                receiver = GrapheneReceiverEngine(scenario.receiver_mempool,
                                                  config)
                action = receiver.start()
                reply = sender.handle(action.command, action.message)
                receiver.handle(reply.command, reply.message)
                if not receiver.p1_success:
                    failures += 1
            rows.append({"n": n, "multiple": multiple, "trials": trials,
                         "failure_rate": failures / trials,
                         "target": 1.0 - beta})
    return rows


# ---------------------------------------------------------------------------
# Figures 16 and 17: Protocol 2 decode rate and message breakdown
# ---------------------------------------------------------------------------

def fig16_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               fractions: Sequence[float] = (0.1, 0.5, 0.9, 0.99),
               trials: int = 100, mempool_multiple: float = 1.0,
               seed: int = 16) -> list[dict]:
    """Protocol 2 decode failure, with and without ping-pong decoding."""
    rows = []
    config = GrapheneConfig()
    for n in block_sizes:
        extra = mempool_multiple_to_extra(n, mempool_multiple)
        for fraction in fractions:
            solo_fail = 0
            pingpong_fail = 0
            for t in range(trials):
                scenario = make_block_scenario(
                    n, extra, fraction,
                    seed=seed + 65537 * t + n + int(fraction * 1000))
                # Full engine exchange; the receiver records whether
                # Protocol 2 ran and how its IBLT decode went.
                sender = GrapheneSenderEngine(scenario.block, config)
                receiver = GrapheneReceiverEngine(scenario.receiver_mempool,
                                                  config)
                LoopbackTransport(sender, receiver).run()
                if receiver.protocol_used == 1:
                    continue
                if not receiver.p2_decode_solo:
                    solo_fail += 1
                if not receiver.p2_decode_complete:
                    pingpong_fail += 1
            rows.append({"n": n, "fraction": fraction, "trials": trials,
                         "failure_without_pingpong": solo_fail / trials,
                         "failure_with_pingpong": pingpong_fail / trials})
    return rows


def fig17_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.99),
               trials: int = 5, mempool_multiple: float = 1.0,
               seed: int = 17) -> list[dict]:
    """Protocol 2 cost split by message type vs fraction of block held."""
    rows = []
    session = BlockRelaySession()
    for n in block_sizes:
        extra = mempool_multiple_to_extra(n, mempool_multiple)
        for fraction in fractions:
            agg = None
            missing_total = 0
            for t in range(trials):
                scenario = make_block_scenario(
                    n, extra, fraction,
                    seed=seed + 31337 * t + n + int(fraction * 100))
                outcome = session.relay(scenario.block,
                                        scenario.receiver_mempool)
                agg = outcome.cost if agg is None else agg.merge(outcome.cost)
                missing_total += len(scenario.missing)
            parts = {key: value / trials for key, value in agg.as_dict().items()}
            missing = missing_total // trials
            rows.append({"n": n, "fraction": fraction, **parts,
                         "graphene_total": agg.total() / trials,
                         "compact_blocks_bytes":
                             compact_blocks_bytes(n, missing=missing)})
    return rows


# ---------------------------------------------------------------------------
# Figure 18: mempool synchronization (m = n)
# ---------------------------------------------------------------------------

def fig18_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
               trials: int = 5, seed: int = 18) -> list[dict]:
    """Graphene mempool sync vs Compact Blocks as overlap varies."""
    rows = []
    for n in block_sizes:
        for fraction in fractions:
            total = 0
            sync_ok = 0
            for t in range(trials):
                scenario = make_sync_scenario(
                    n, fraction, seed=seed + 2221 * t + n + int(fraction * 10))
                result = synchronize_mempools(scenario.sender_mempool,
                                              scenario.receiver_mempool,
                                              transfer_missing=False)
                total += result.cost.total()
                if result.success:
                    sync_ok += 1
            missing = int(round((1.0 - fraction) * n))
            rows.append({"n": n, "fraction_common": fraction,
                         "graphene_bytes": total / trials,
                         "compact_blocks_bytes":
                             compact_blocks_bytes(n, missing=missing),
                         "success_rate": sync_ok / trials})
    return rows


# ---------------------------------------------------------------------------
# Figures 19 and 20: Theorem 2 / Theorem 3 empirical validation
# ---------------------------------------------------------------------------

def _bound_validation(block_sizes, fractions, trials, seed, beta, check):
    rows = []
    rng = random.Random(seed)
    config = GrapheneConfig(beta=beta)
    for n in block_sizes:
        m = 2 * n  # mempool multiple 1, like the paper's validation runs
        for fraction in fractions:
            x = int(round(fraction * n))
            plan = optimize_a(n, m, config)
            fpr = plan.fpr
            if fpr >= 1.0:
                continue
            holds = 0
            for _ in range(trials):
                y = binomial_sample(rng, m - x, fpr)
                z = x + y
                holds += check(z, m, fpr, beta, x, y, n)
            rows.append({"n": n, "fraction": fraction, "trials": trials,
                         "bound_holds_rate": holds / trials, "target": beta})
    return rows


def fig19_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               fractions: Sequence[float] = (0.0, 0.3, 0.6, 0.9),
               trials: int = 2000, seed: int = 19,
               beta: float = BETA_DEFAULT) -> list[dict]:
    """Fraction of trials where Theorem 2's x* really lower-bounds x."""
    def check(z, m, fpr, beta, x, y, n):
        return x_star(z, m, fpr, beta=beta, n=n) <= x
    return _bound_validation(block_sizes, fractions, trials, seed, beta, check)


def fig20_rows(block_sizes: Sequence[int] = PAPER_BLOCK_SIZES,
               fractions: Sequence[float] = (0.0, 0.3, 0.6, 0.9),
               trials: int = 2000, seed: int = 20,
               beta: float = BETA_DEFAULT) -> list[dict]:
    """Fraction of trials where Theorem 3's y* really upper-bounds y."""
    def check(z, m, fpr, beta, x, y, n):
        return y_star(z, m, fpr, beta=beta, n=n) >= y
    return _bound_validation(block_sizes, fractions, trials, seed, beta, check)


# ---------------------------------------------------------------------------
# Section 5.1 and 5.3.2 comparisons
# ---------------------------------------------------------------------------

def sec51_rows(block_sizes: Sequence[int] = (50, 100, 200, 500, 1000, 2000,
                                             5000, 10000),
               mempool_factor: float = 2.0) -> list[dict]:
    """Graphene P1 vs Bloom-alone vs Compact Blocks, analytic (Theorem 4)."""
    from repro.analysis.theory import (
        exact_membership_bound_bytes,
        graphene_protocol1_bytes,
        graphene_vs_bloom_gain_bits,
    )
    from repro.baselines.bloom_only import bloom_only_bytes
    rows = []
    for n in block_sizes:
        m = int(n * mempool_factor)
        rows.append({
            "n": n, "m": m,
            "graphene_bytes": graphene_protocol1_bytes(n, m),
            "bloom_only_bytes": bloom_only_bytes(n, m),
            "compact_blocks_bytes": compact_blocks_bytes(n, short_id_bytes=6),
            "info_bound_bytes": exact_membership_bound_bytes(n, m),
            "gain_bits": graphene_vs_bloom_gain_bits(n, m),
        })
    return rows


def sec532_rows(block_sizes: Sequence[int] = (200, 2000),
                fractions: Sequence[float] = (0.8, 0.9, 0.95),
                trials: int = 5, mempool_multiple: float = 1.0,
                seed: int = 532) -> list[dict]:
    """Difference Digest (IBLT-only) vs Graphene on the same scenarios."""
    rows = []
    session = BlockRelaySession()
    digest = DifferenceDigestRelay()
    for n in block_sizes:
        extra = mempool_multiple_to_extra(n, mempool_multiple)
        for fraction in fractions:
            graphene_total = 0
            digest_total = 0
            digest_ok = 0
            for t in range(trials):
                scenario = make_block_scenario(
                    n, extra, fraction,
                    seed=seed + 911 * t + n + int(fraction * 100))
                graphene_total += session.relay(
                    scenario.block, scenario.receiver_mempool).cost.total()
                outcome = digest.relay(scenario.block,
                                       scenario.receiver_mempool)
                digest_total += outcome.total_bytes
                digest_ok += outcome.success
            rows.append({"n": n, "fraction": fraction,
                         "graphene_bytes": graphene_total / trials,
                         "difference_digest_bytes": digest_total / trials,
                         "digest_success_rate": digest_ok / trials})
    return rows


def run_all(fast: bool = True) -> dict:
    """Run every experiment (small trial counts when ``fast``).

    Returns ``{experiment id: rows}`` plus per-experiment wall time;
    used by the EXPERIMENTS.md generator.
    """
    t = 2 if fast else 10
    jobs = {
        "fig07": lambda: fig07_rows(trials=400 if fast else 4000),
        "fig10": fig10_rows,
        "fig11": lambda: fig11_rows(trials=60 if fast else 1000),
        "fig12": lambda: fig12_rows(trials=t),
        "fig13": lambda: fig13_rows(trials=t),
        "fig14": lambda: fig14_rows(trials=t),
        "fig15": lambda: fig15_rows(trials=40 if fast else 1000),
        "fig16": lambda: fig16_rows(trials=20 if fast else 400),
        "fig17": lambda: fig17_rows(trials=t),
        "fig18": lambda: fig18_rows(trials=t),
        "fig19": lambda: fig19_rows(trials=400 if fast else 4000),
        "fig20": lambda: fig20_rows(trials=400 if fast else 4000),
        "sec51": sec51_rows,
        "sec532": lambda: sec532_rows(trials=t),
    }
    results = {}
    for name, job in jobs.items():
        start = time.time()
        results[name] = {"rows": job(), "seconds": time.time() - start}
    return results


# ---------------------------------------------------------------------------
# Extensions (not paper figures): fork rates and throughput ceilings
# ---------------------------------------------------------------------------

def forkrate_rows(block_sizes: Sequence[int] = (200, 1000, 4000),
                  trials: Optional[int] = None) -> list[dict]:
    """Analytic fork probability per protocol (Decker-Wattenhofer model).

    ``trials`` is accepted for CLI uniformity and ignored (the model is
    deterministic given the measured propagation delay).
    """
    from repro.analysis.forks import fork_rate_curve
    from repro.net.node import RelayProtocol
    rows = []
    for protocol in (RelayProtocol.GRAPHENE, RelayProtocol.COMPACT_BLOCKS,
                     RelayProtocol.FULL_BLOCK):
        rows.extend(fork_rate_curve(protocol, block_sizes=block_sizes,
                                    nodes=8, degree=3,
                                    bandwidth=120_000.0, seed=11))
    return rows


def throughput_rows(fork_budget: float = 0.01,
                    trials: Optional[int] = None) -> list[dict]:
    """Max TPS per protocol under a fork budget (section 1's claim)."""
    from repro.analysis.throughput import throughput_table
    return throughput_table(fork_budget=fork_budget,
                            bandwidth=100_000.0, n_ceiling=200_000)
