"""Fork-rate analysis: why smaller block encodings matter (paper 1).

The introduction's argument chain: blocks that encode smaller propagate
faster; faster propagation means fewer forks (miners building on stale
tips); fewer forks means the chain can safely raise its block size and
throughput.  This module quantifies each link:

* :func:`fork_probability` -- with Poisson block discovery at mean
  interval ``T`` and network-wide propagation delay ``D``, a competing
  block is found during the vulnerable window with probability
  ``1 - exp(-D / T)`` (the classic Decker-Wattenhofer model the paper
  cites as [18]).
* :func:`measure_propagation_delay` -- run the packaged network
  simulator and report when the last node holds the block.
* :func:`max_block_size_for_budget` -- invert the chain: given a fork
  budget, how large can blocks grow under each relay protocol?
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.chain.block import Block
from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError
from repro.net.node import Node, RelayProtocol
from repro.net.simulator import Simulator
from repro.net.topology import connect_random_regular

#: Bitcoin's mean inter-block interval in seconds.
BITCOIN_BLOCK_INTERVAL = 600.0


def fork_probability(delay: float,
                     block_interval: float = BITCOIN_BLOCK_INTERVAL) -> float:
    """``1 - exp(-D/T)``: chance a competing block lands within ``delay``."""
    if delay < 0:
        raise ParameterError(f"delay must be non-negative, got {delay}")
    if block_interval <= 0:
        raise ParameterError(
            f"block_interval must be positive, got {block_interval}")
    return 1.0 - math.exp(-delay / block_interval)


def delay_for_fork_budget(budget: float,
                          block_interval: float = BITCOIN_BLOCK_INTERVAL) -> float:
    """Invert :func:`fork_probability`: the largest acceptable delay."""
    if not 0.0 < budget < 1.0:
        raise ParameterError(f"budget must be in (0, 1), got {budget}")
    return -block_interval * math.log(1.0 - budget)


@dataclass(frozen=True)
class PropagationMeasurement:
    """One simulator run's outcome."""

    protocol: RelayProtocol
    block_txns: int
    coverage_delay: float
    total_bytes: int
    nodes: int


def measure_propagation_delay(
        protocol: RelayProtocol, block_txns: int,
        nodes: int = 12, degree: int = 4,
        latency: float = 0.05, bandwidth: float = 250_000.0,
        extra_mempool: Optional[int] = None,
        seed: int = 0) -> PropagationMeasurement:
    """Propagate one block through a random-regular network; time it."""
    if block_txns < 1:
        raise ParameterError(f"block_txns must be >= 1, got {block_txns}")
    sim = Simulator()
    peers = [Node(f"n{i}", sim, protocol=protocol) for i in range(nodes)]
    connect_random_regular(peers, degree=degree, latency=latency,
                           bandwidth=bandwidth, rng=random.Random(seed))
    gen = TransactionGenerator(seed=seed)
    block_txs = gen.make_batch(block_txns)
    extras = gen.make_batch(extra_mempool if extra_mempool is not None
                            else block_txns)
    for peer in peers:
        peer.mempool.add_many(block_txs)
        peer.mempool.add_many(extras)
    block = Block.assemble(block_txs)
    peers[0].mine_block(block)
    sim.run()
    root = block.header.merkle_root
    missing = [p for p in peers if root not in p.blocks]
    if missing:
        raise ParameterError(
            f"propagation incomplete: {len(missing)} nodes never got the "
            "block (protocol failure)")
    delay = max(p.block_arrival[root] for p in peers)
    return PropagationMeasurement(
        protocol=protocol, block_txns=block_txns, coverage_delay=delay,
        total_bytes=sum(p.total_bytes_sent() for p in peers), nodes=nodes)


def fork_rate_curve(protocol: RelayProtocol,
                    block_sizes=(200, 1000, 4000),
                    block_interval: float = BITCOIN_BLOCK_INTERVAL,
                    **net_kwargs) -> list[dict]:
    """Fork probability as block size grows, for one relay protocol."""
    rows = []
    for n in block_sizes:
        measured = measure_propagation_delay(protocol, n, **net_kwargs)
        rows.append({
            "protocol": protocol.value,
            "n": n,
            "coverage_delay": measured.coverage_delay,
            "fork_probability": fork_probability(
                measured.coverage_delay, block_interval),
        })
    return rows


def max_block_size_for_budget(
        protocol: RelayProtocol, budget: float,
        candidates=(500, 1000, 2000, 4000, 8000, 16000),
        block_interval: float = BITCOIN_BLOCK_INTERVAL,
        **net_kwargs) -> int:
    """Largest candidate block size whose fork rate stays within budget.

    The headline claim of the paper's introduction, made operational:
    a relay protocol that shrinks encodings raises the admissible block
    size under the same fork budget.
    """
    allowed = delay_for_fork_budget(budget, block_interval)
    best = 0
    for n in candidates:
        measured = measure_propagation_delay(protocol, n, **net_kwargs)
        if measured.coverage_delay <= allowed:
            best = n
        else:
            break
    return best
