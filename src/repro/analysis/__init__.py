"""Analysis: information-theoretic bounds and experiment drivers.

:mod:`~repro.analysis.theory` implements section 5.1 -- the Carter et
al. lower bounds and the Theorem 4 comparison of Graphene Protocol 1
against an optimal Bloom filter.  :mod:`~repro.analysis.experiments`
holds the Monte-Carlo drivers behind every figure reproduction, shared
by the benchmark harness, the examples and the integration tests.
"""

from repro.analysis.theory import (
    bloom_approx_lower_bound_bytes,
    exact_membership_bound_bytes,
    graphene_protocol1_bytes,
    graphene_vs_bloom_gain_bits,
)

__all__ = [
    "bloom_approx_lower_bound_bytes",
    "exact_membership_bound_bytes",
    "graphene_protocol1_bytes",
    "graphene_vs_bloom_gain_bits",
]
