"""Terminal plotting for experiment rows (no plotting libraries needed).

The benchmark harness emits rows of dicts; :func:`ascii_plot` renders
one or more numeric series against a shared x-axis as a fixed-size
ASCII chart, so `python -m repro experiment fig14 --plot ...` can show
the figure's shape right in the terminal.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ParameterError

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def ascii_plot(rows: Sequence[dict], x: str, ys: Sequence[str],
               width: int = 64, height: int = 16,
               logy: bool = False,
               title: Optional[str] = None) -> str:
    """Render ``rows`` as an ASCII scatter of ``ys`` against ``x``.

    Non-numeric or missing values are skipped.  Returns the chart as a
    string (caller prints it).
    """
    if width < 16 or height < 4:
        raise ParameterError("width >= 16 and height >= 4 required")
    if not ys:
        raise ParameterError("at least one y series required")

    series = []
    for key in ys:
        points = []
        for row in rows:
            xv, yv = row.get(x), row.get(key)
            if isinstance(xv, (int, float)) and isinstance(yv, (int, float)):
                if logy and yv <= 0:
                    continue
                points.append((float(xv), float(yv)))
        series.append((key, points))
    all_points = [pt for _, pts in series for pt in pts]
    if not all_points:
        raise ParameterError(
            f"no numeric data for x={x!r}, ys={list(ys)!r}")

    xs = [pt[0] for pt in all_points]
    yvals = [math.log10(pt[1]) if logy else pt[1] for pt in all_points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(yvals), max(yvals)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (key, points), marker in zip(series, _MARKERS):
        for xv, yv in points:
            yv = math.log10(yv) if logy else yv
            col = round((xv - xmin) / xspan * (width - 1))
            row_idx = round((yv - ymin) / yspan * (height - 1))
            grid[height - 1 - row_idx][col] = marker

    top = _format_tick(10 ** ymax if logy else ymax)
    bottom = _format_tick(10 ** ymin if logy else ymin)
    label_width = max(len(top), len(bottom))
    lines = []
    if title:
        lines.append(title)
    for i, grid_row in enumerate(grid):
        label = top if i == 0 else bottom if i == height - 1 else ""
        lines.append(f"{label:>{label_width}} |{''.join(grid_row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    xticks = (f"{_format_tick(xmin)}"
              f"{' ' * max(1, width - len(_format_tick(xmin)) - len(_format_tick(xmax)))}"
              f"{_format_tick(xmax)}")
    lines.append(f"{'':>{label_width}}  {xticks}")
    legend = "  ".join(f"{marker}={key}" for (key, _), marker
                       in zip(series, _MARKERS))
    lines.append(f"{'':>{label_width}}  x={x}   {legend}"
                 + ("   (log y)" if logy else ""))
    return "\n".join(lines)
