"""Throughput ceilings: how relay efficiency buys transactions/second.

The paper's first claimed benefit: "if blocks can be relayed using less
network data, then the maximum block size can be increased, which means
an increase in the overall number of transactions per second."  This
module closes that loop analytically:

1. bytes-per-block models for each relay protocol (Graphene via the
   real Eq. 2-3 optimizer),
2. propagation delay over an H-hop path of given latency/bandwidth,
3. the fork-budget delay ceiling (``repro.analysis.forks``),
4. a search for the largest admissible block, hence the max TPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.forks import delay_for_fork_budget
from repro.baselines.bloom_only import bloom_only_bytes
from repro.baselines.compact_blocks import compact_blocks_bytes
from repro.baselines.xthin import xthin_bytes
from repro.core.params import GrapheneConfig, optimize_a
from repro.errors import ParameterError

#: Analytic bytes-per-block models, by protocol name.
RELAY_MODELS: dict = {}


def _model(name: str):
    def register(fn: Callable[[int, int], int]):
        RELAY_MODELS[name] = fn
        return fn
    return register


@_model("graphene")
def graphene_bytes(n: int, m: int) -> int:
    return optimize_a(n, m, GrapheneConfig()).total_bytes


@_model("compact_blocks")
def cb_bytes(n: int, m: int) -> int:
    return compact_blocks_bytes(n)


@_model("xthin")
def xthin_model_bytes(n: int, m: int) -> int:
    return xthin_bytes(n, m)


@_model("bloom_only")
def bloom_model_bytes(n: int, m: int) -> int:
    return bloom_only_bytes(n, m)


@_model("full_block")
def full_bytes(n: int, m: int, tx_size: int = 250) -> int:
    return 80 + n * tx_size


def propagation_delay(block_bytes: int, hops: int = 4,
                      latency: float = 0.05,
                      bandwidth: float = 250_000.0) -> float:
    """Store-and-forward delay over ``hops`` links."""
    if hops < 1:
        raise ParameterError(f"hops must be >= 1, got {hops}")
    if block_bytes < 0:
        raise ParameterError(
            f"block_bytes must be non-negative, got {block_bytes}")
    return hops * (latency + block_bytes / bandwidth)


@dataclass(frozen=True)
class ThroughputCeiling:
    """Result of one throughput computation."""

    protocol: str
    max_block_txns: int
    max_tps: float
    delay_at_max: float
    allowed_delay: float


def max_throughput(protocol: str,
                   fork_budget: float = 0.01,
                   block_interval: float = 600.0,
                   mempool_factor: float = 2.0,
                   hops: int = 4, latency: float = 0.05,
                   bandwidth: float = 250_000.0,
                   n_ceiling: int = 1_000_000) -> ThroughputCeiling:
    """Largest block (and TPS) whose propagation fits the fork budget.

    Binary search over ``n`` using the protocol's analytic byte model;
    the receiver's mempool is ``mempool_factor * n``.
    """
    if protocol not in RELAY_MODELS:
        raise ParameterError(
            f"unknown protocol {protocol!r}; choose from "
            f"{sorted(RELAY_MODELS)}")
    model = RELAY_MODELS[protocol]
    allowed = delay_for_fork_budget(fork_budget, block_interval)

    def delay_of(n: int) -> float:
        return propagation_delay(model(n, int(n * mempool_factor)),
                                 hops=hops, latency=latency,
                                 bandwidth=bandwidth)

    if delay_of(1) > allowed:
        return ThroughputCeiling(protocol=protocol, max_block_txns=0,
                                 max_tps=0.0, delay_at_max=delay_of(1),
                                 allowed_delay=allowed)
    low, high = 1, 2
    while high < n_ceiling and delay_of(high) <= allowed:
        low, high = high, high * 2
    high = min(high, n_ceiling)
    while high - low > 1:
        mid = (low + high) // 2
        if delay_of(mid) <= allowed:
            low = mid
        else:
            high = mid
    return ThroughputCeiling(protocol=protocol, max_block_txns=low,
                             max_tps=low / block_interval,
                             delay_at_max=delay_of(low),
                             allowed_delay=allowed)


def throughput_table(protocols=("graphene", "compact_blocks", "xthin",
                                "bloom_only", "full_block"),
                     **kwargs) -> list[dict]:
    """Ceilings for several protocols under identical conditions."""
    rows = []
    for protocol in protocols:
        ceiling = max_throughput(protocol, **kwargs)
        rows.append({
            "protocol": protocol,
            "max_block_txns": ceiling.max_block_txns,
            "max_tps": ceiling.max_tps,
            "delay_at_max": ceiling.delay_at_max,
        })
    return rows
