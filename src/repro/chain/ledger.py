"""Chain state: a block tree with longest-chain fork choice.

The paper's motivation is ultimately about *forks*: two miners
extending the same parent because a block propagated too slowly.  To
observe that end to end, nodes need real chain state -- not just a bag
of blocks.  :class:`Blockchain` keeps the header tree, tracks heights,
picks the best tip (longest chain, first-seen tie-break like Bitcoin),
reports reorgs, and counts stale blocks, which is exactly the fork-rate
numerator the mining experiments measure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.chain.block import Block
from repro.errors import ParameterError
from repro.utils.hashing import sha256


def block_hash(block: Block) -> bytes:
    """The block's identity: double-SHA256 of its 80-byte header."""
    return sha256(sha256(block.header.serialize()))


class ChainEvent(enum.Enum):
    """What adding a block did to the chain."""

    EXTENDED_TIP = "extended_tip"   # grew the best chain
    CREATED_FORK = "created_fork"   # a competing branch appeared/grew
    REORGANIZED = "reorganized"     # a competing branch became best
    DUPLICATE = "duplicate"         # already known
    ORPHAN = "orphan"               # parent unknown; held aside


@dataclass
class _Entry:
    block: Block
    hash: bytes
    parent: bytes
    height: int
    arrival_index: int


@dataclass
class ReorgInfo:
    """Details of one reorganization."""

    old_tip: bytes
    new_tip: bytes
    disconnected: list = field(default_factory=list)  # hashes, old branch
    connected: list = field(default_factory=list)     # hashes, new branch

    @property
    def depth(self) -> int:
        return len(self.disconnected)


class Blockchain:
    """A block tree rooted at a genesis block."""

    def __init__(self, genesis: Optional[Block] = None):
        self.genesis = genesis if genesis is not None else Block.assemble([])
        genesis_hash = block_hash(self.genesis)
        self._entries: dict = {
            genesis_hash: _Entry(block=self.genesis, hash=genesis_hash,
                                 parent=b"", height=0, arrival_index=0)
        }
        self._children: dict = {genesis_hash: []}
        self._orphans: dict = {}  # parent hash -> list of blocks
        self._arrivals = 0
        self.tip_hash = genesis_hash
        self.reorgs: list = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def tip(self) -> Block:
        return self._entries[self.tip_hash].block

    @property
    def height(self) -> int:
        return self._entries[self.tip_hash].height

    def __contains__(self, bhash: bytes) -> bool:
        return bhash in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def block_at(self, bhash: bytes) -> Block:
        return self._entries[bhash].block

    def height_of(self, bhash: bytes) -> int:
        return self._entries[bhash].height

    def main_chain(self) -> Iterator[Block]:
        """Yield the best chain, genesis first."""
        path = []
        cursor = self.tip_hash
        while cursor:
            entry = self._entries[cursor]
            path.append(entry.block)
            cursor = entry.parent
        return iter(reversed(path))

    def main_chain_hashes(self) -> set:
        hashes = set()
        cursor = self.tip_hash
        while cursor:
            hashes.add(cursor)
            cursor = self._entries[cursor].parent
        return hashes

    def stale_blocks(self) -> list:
        """Blocks that lost a fork race (not on the best chain)."""
        on_main = self.main_chain_hashes()
        return [entry.block for bhash, entry in self._entries.items()
                if bhash not in on_main]

    def fork_rate(self) -> float:
        """Stale blocks as a fraction of all non-genesis blocks."""
        total = len(self._entries) - 1
        if total <= 0:
            return 0.0
        return len(self.stale_blocks()) / total

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    def add_block(self, block: Block,
                  parent_hash: Optional[bytes] = None) -> ChainEvent:
        """Insert ``block`` under ``parent_hash`` (default: current tip).

        Orphans (unknown parent) are retained and connected when their
        parent arrives.  Returns what happened to the best chain.
        """
        bhash = block_hash(block)
        if bhash in self._entries:
            return ChainEvent.DUPLICATE
        parent = parent_hash if parent_hash is not None \
            else bytes(block.header.prev_hash)
        if parent not in self._entries:
            self._orphans.setdefault(parent, []).append(block)
            return ChainEvent.ORPHAN
        event = self._connect(block, bhash, parent)
        self._adopt_orphans(bhash)
        return event

    def _connect(self, block: Block, bhash: bytes,
                 parent: bytes) -> ChainEvent:
        self._arrivals += 1
        entry = _Entry(block=block, hash=bhash, parent=parent,
                       height=self._entries[parent].height + 1,
                       arrival_index=self._arrivals)
        self._entries[bhash] = entry
        self._children.setdefault(parent, []).append(bhash)
        self._children.setdefault(bhash, [])

        old_tip = self.tip_hash
        # Longest chain wins; first-seen breaks ties (no reorg on equal
        # height, like Bitcoin's first-seen rule).
        if entry.height > self._entries[old_tip].height:
            if parent == old_tip:
                self.tip_hash = bhash
                return ChainEvent.EXTENDED_TIP
            info = self._describe_reorg(old_tip, bhash)
            self.tip_hash = bhash
            self.reorgs.append(info)
            return ChainEvent.REORGANIZED
        return ChainEvent.CREATED_FORK

    def _adopt_orphans(self, parent: bytes) -> None:
        pending = self._orphans.pop(parent, [])
        for block in pending:
            self.add_block(block, parent_hash=parent)

    def _ancestors(self, bhash: bytes) -> list:
        path = []
        cursor = bhash
        while cursor:
            path.append(cursor)
            cursor = self._entries[cursor].parent
        return path

    def _describe_reorg(self, old_tip: bytes, new_tip: bytes) -> ReorgInfo:
        old_path = self._ancestors(old_tip)
        new_path = self._ancestors(new_tip)
        old_set = set(old_path)
        fork_point = next(h for h in new_path if h in old_set)
        disconnected = old_path[:old_path.index(fork_point)]
        connected = new_path[:new_path.index(fork_point)]
        return ReorgInfo(old_tip=old_tip, new_tip=new_tip,
                         disconnected=disconnected,
                         connected=list(reversed(connected)))

    def __repr__(self) -> str:
        return (f"Blockchain(height={self.height}, blocks={len(self)}, "
                f"stale={len(self.stale_blocks())}, "
                f"reorgs={len(self.reorgs)})")


def assemble_child(parent: Block, txs, timestamp: int = 0,
                   nonce: int = 0) -> Block:
    """Build a block whose header commits to ``parent``."""
    if parent is None:
        raise ParameterError("parent block required")
    return Block.assemble(txs, prev_hash=block_hash(parent),
                          timestamp=timestamp, nonce=nonce)
