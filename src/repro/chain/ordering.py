"""Transaction ordering (paper section 6.2).

Bloom filters and IBLTs reconcile *unordered* sets, but a Merkle root
commits to an *ordered* list.  Without an agreed order the sender must
ship one, costing ``n log2 n`` bits -- asymptotically more than Graphene
itself.  Bitcoin Cash eliminated this with a Canonical Transaction
Ordering (CTOR): sort by txid.  We implement both the canonical order
and the cost model for shipping an explicit permutation, so benchmarks
can report Graphene with and without ordering overhead (Fig. 13 includes
it; the BCH deployment does not need it).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.chain.transaction import Transaction


def canonical_order(txs: Sequence[Transaction]) -> list[Transaction]:
    """Return ``txs`` in canonical (CTOR) order: lexicographic by txid."""
    return sorted(txs, key=lambda tx: tx.txid)


def is_canonically_ordered(txs: Sequence[Transaction]) -> bool:
    """True when ``txs`` is already in canonical order."""
    return all(txs[i].txid <= txs[i + 1].txid for i in range(len(txs) - 1))


def ordering_info_bytes(n: int) -> int:
    """Bytes to encode an arbitrary order of ``n`` transactions.

    ``log2(n!) ~ n log2 n`` bits; we use the exact ``log2(n!)`` rounded
    up to whole bytes, the information-theoretic floor for shipping a
    permutation.  Deployed clients pay slightly more (they send explicit
    per-transaction indexes); this floor makes the comparison to CTOR
    conservative.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n < 2:
        return 0
    bits = math.lgamma(n + 1) / math.log(2.0)
    return math.ceil(bits / 8.0)
