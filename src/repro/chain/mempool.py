"""Mempools with per-peer inventory bookkeeping.

A mempool is the receiver-side set ``M`` of the paper's reconciliation
problem.  Beyond set storage we track, per peer, which transactions have
had an ``inv`` exchanged -- the log the paper notes senders can use to
proactively push transactions the receiver cannot have (section 2.2 and
the Protocol 1 step 3 note).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.chain.transaction import Transaction
from repro.errors import ParameterError


class Mempool:
    """A set of transactions indexed by txid with inv tracking."""

    def __init__(self, txs: Optional[Iterable[Transaction]] = None):
        self._txs: dict = {}
        self._inv_seen: dict = {}  # peer id -> set of txids
        if txs is not None:
            self.add_many(txs)

    # ------------------------------------------------------------------
    # Set content
    # ------------------------------------------------------------------

    def add(self, tx: Transaction) -> bool:
        """Insert ``tx``; return False if it was already present."""
        if tx.txid in self._txs:
            return False
        self._txs[tx.txid] = tx
        return True

    def add_many(self, txs: Iterable[Transaction]) -> int:
        """Insert many; return how many were new."""
        return sum(1 for tx in txs if self.add(tx))

    def remove(self, txid: bytes) -> Optional[Transaction]:
        """Remove and return a transaction, or None if absent."""
        return self._txs.pop(txid, None)

    def remove_block(self, txids: Iterable[bytes]) -> int:
        """Evict confirmed transactions after a block connects."""
        return sum(1 for txid in txids if self._txs.pop(txid, None) is not None)

    def get(self, txid: bytes) -> Optional[Transaction]:
        return self._txs.get(txid)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._txs

    def __len__(self) -> int:
        return len(self._txs)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._txs.values())

    @property
    def txids(self) -> list[bytes]:
        return list(self._txs.keys())

    def transactions(self) -> list[Transaction]:
        return list(self._txs.values())

    # ------------------------------------------------------------------
    # Per-peer inventory log
    # ------------------------------------------------------------------

    def note_inv(self, peer: str, txid: bytes) -> None:
        """Record that an inv for ``txid`` was exchanged with ``peer``."""
        if not peer:
            raise ParameterError("peer id must be non-empty")
        self._inv_seen.setdefault(peer, set()).add(txid)

    def inv_exchanged(self, peer: str, txid: bytes) -> bool:
        """True when an inv for ``txid`` was exchanged with ``peer``."""
        return txid in self._inv_seen.get(peer, ())

    def unannounced_to(self, peer: str, txids: Iterable[bytes]) -> list[bytes]:
        """Subset of ``txids`` never announced to ``peer``.

        These are candidates for proactive push alongside a Graphene
        block (Protocol 1 step 3 note).
        """
        seen = self._inv_seen.get(peer, set())
        return [txid for txid in txids if txid not in seen]
