"""Transactions and synthetic transaction generation.

A transaction's identity is the SHA-256 hash of its payload, exactly the
property the hash-splitting optimization (paper 6.3) and the 8-byte
short-ID truncation rely on.  The payload itself is opaque to every
protocol here; only its size matters (for full-block and missing-
transaction transfer costs), so synthetic payloads are modelled as a
size plus a random seed rather than real script bytes.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.utils.hashing import sha256, short_id
from repro.utils.siphash import siphash24

#: Typical Bitcoin-style transaction wire size in bytes (1-in 2-out P2PKH).
TYPICAL_TX_BYTES = 250

#: Serialized size of an outpoint-style inventory entry: 32-byte hash.
TXID_BYTES = 32

#: Short transaction ID width used by Graphene's IBLT and XThin (bytes).
SHORT_ID_BYTES = 8


@dataclass(frozen=True)
class Transaction:
    """An opaque transaction: a 32-byte ID plus a wire size.

    Attributes
    ----------
    txid:
        SHA-256 digest identifying the transaction.
    size:
        Serialized size in bytes, used when the transaction itself must
        cross the wire (full blocks, Protocol 2 step 3 repairs).
    fee_rate:
        Satoshis per byte; lets workloads model low-fee transactions that
        relay policies drop but miners still include (paper 2.2).
        Quantized to f32 at construction -- the wire codec packs it as
        f32, so holding a full double here would make a decoded
        transaction compare (and sort) differently from its loopback
        twin.
    """

    txid: bytes
    size: int = TYPICAL_TX_BYTES
    fee_rate: float = 1.0
    #: Coinbase transactions exist only in their block: no peer can have
    #: them, so relay protocols prefill them (BIP-152 does; Graphene's
    #: step-3 note covers the general case).
    is_coinbase: bool = False

    def __post_init__(self):
        if len(self.txid) != TXID_BYTES:
            raise ParameterError(
                f"txid must be {TXID_BYTES} bytes, got {len(self.txid)}")
        if self.size < 1:
            raise ParameterError(f"size must be >= 1, got {self.size}")
        try:
            fee32 = struct.unpack("<f", struct.pack("<f", self.fee_rate))[0]
        except (OverflowError, struct.error) as exc:
            raise ParameterError(
                f"fee_rate {self.fee_rate!r} is not representable as "
                f"f32") from exc
        if fee32 != self.fee_rate:
            object.__setattr__(self, "fee_rate", fee32)
        # Eager default-width short ID: every Bloom/IBLT build and
        # short-id lookup in a relay asks for it, the txid is immutable,
        # and computing it here keeps short_id() branch-free on the hot
        # default path.
        object.__setattr__(self, "_short_id8",
                           short_id(self.txid, SHORT_ID_BYTES))

    def short_id(self, nbytes: int = SHORT_ID_BYTES) -> int:
        """Truncated ID as stored in IBLTs and short-ID lists.

        The default-width value is precomputed at construction (see
        ``__post_init__``); other widths are derived on demand.
        """
        if nbytes == SHORT_ID_BYTES:
            return self._short_id8
        return short_id(self.txid, nbytes)

    def keyed_short_id(self, key: bytes, nbytes: int = 6) -> int:
        """SipHash-keyed short ID, the BIP-152 defence of paper 6.1."""
        mask = (1 << (8 * nbytes)) - 1
        return siphash24(key, self.txid) & mask

    def __hash__(self) -> int:
        return hash(self.txid)


class TransactionGenerator:
    """Deterministic synthetic transaction factory.

    Sizes are drawn from a clipped log-normal centred near the typical
    250-byte transaction, which reproduces the long-tailed distribution
    of real Bitcoin traffic closely enough for bandwidth accounting.
    """

    def __init__(self, seed: int = 0, mean_size: int = TYPICAL_TX_BYTES):
        if mean_size < 64:
            raise ParameterError(f"mean_size must be >= 64, got {mean_size}")
        self.rng = random.Random(seed)
        self.mean_size = mean_size
        self._counter = 0

    def make(self, size: int | None = None,
             fee_rate: float | None = None) -> Transaction:
        """Create one transaction with a fresh, unique txid."""
        self._counter += 1
        payload = struct.pack("<QQ", self._counter,
                              self.rng.getrandbits(64))
        txid = sha256(payload)
        if size is None:
            draw = self.rng.lognormvariate(0.0, 0.45)
            size = max(100, int(self.mean_size * draw))
        if fee_rate is None:
            fee_rate = max(0.0, self.rng.expovariate(1.0))
        return Transaction(txid=txid, size=size, fee_rate=fee_rate)

    def make_batch(self, count: int) -> list[Transaction]:
        """Create ``count`` distinct transactions."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        return [self.make() for _ in range(count)]

    def make_coinbase(self, size: int = 120) -> Transaction:
        """Create a coinbase transaction (unique, unknown to all peers)."""
        self._counter += 1
        payload = struct.pack("<QQ", self._counter,
                              self.rng.getrandbits(64))
        return Transaction(txid=sha256(b"coinbase" + payload), size=size,
                           fee_rate=0.0, is_coinbase=True)


@dataclass
class ShortIdIndex:
    """Bidirectional map between transactions and their short IDs.

    Receivers use this to turn the keys recovered from an IBLT back into
    transactions.  Collisions (two mempool transactions sharing a short
    ID) are recorded rather than silently dropped, since the collision
    attack analysis of paper 6.1 needs to observe them.
    """

    nbytes: int = SHORT_ID_BYTES
    _by_short: dict = field(default_factory=dict)
    collisions: set = field(default_factory=set)

    def add(self, tx: Transaction, sid: int | None = None) -> None:
        """Index ``tx``; pass ``sid`` when the caller already computed it.

        Hot reconciliation paths compute each candidate's short ID once
        and share it between the index, the IBLT and the false-positive
        strip, so re-deriving it here would double the work.
        """
        if sid is None:
            sid = tx.short_id(self.nbytes)
        existing = self._by_short.get(sid)
        if existing is not None and existing.txid != tx.txid:
            self.collisions.add(sid)
            return
        self._by_short[sid] = tx

    def bulk_add(self, txs: list, sids: list) -> None:
        """Index parallel ``(tx, sid)`` lists in one pass.

        The common case -- empty index, no short-ID collisions -- builds
        the map with a single ``dict(zip(...))``; any duplicate falls
        back to per-item :meth:`add` so first-wins and collision
        recording behave exactly as the scalar path.
        """
        if not self._by_short:
            merged = dict(zip(sids, txs))
            if len(merged) == len(sids):
                self._by_short = merged
                return
        for tx, sid in zip(txs, sids):
            self.add(tx, sid)

    def get(self, sid: int) -> Transaction | None:
        return self._by_short.get(sid)

    def __contains__(self, sid: int) -> bool:
        return sid in self._by_short

    def __len__(self) -> int:
        return len(self._by_short)
