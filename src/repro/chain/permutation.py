"""Transaction-order codec for chains without canonical ordering.

Section 6.2: on a non-CTOR chain the sender must ship the block's
transaction order, costing ``log2(n!)`` bits -- asymptotically more
than Graphene itself.  ``ordering_info_bytes`` models that cost;
this module makes it real with an exact-entropy codec: the order is
expressed as a Lehmer code (position of each transaction within the
still-unplaced canonical set), packed into a single integer in the
factorial number system, and serialized in ``ceil(log2 n!)`` bits.

Our Ethereum-shaped experiments (Fig. 13) charge exactly this size.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.chain.ordering import canonical_order, ordering_info_bytes
from repro.chain.transaction import Transaction
from repro.errors import ParameterError


def lehmer_encode(order: Sequence[int]) -> int:
    """Pack a permutation of ``range(n)`` into its factoradic integer."""
    n = len(order)
    if sorted(order) != list(range(n)):
        raise ParameterError("input is not a permutation of range(n)")
    remaining = list(range(n))
    value = 0
    for position in order:
        index = remaining.index(position)
        value = value * len(remaining) + index
        remaining.pop(index)
    return value


def lehmer_decode(value: int, n: int) -> list[int]:
    """Invert :func:`lehmer_encode` for a permutation of length ``n``."""
    if value < 0:
        raise ParameterError(f"value must be non-negative, got {value}")
    digits = []
    for radix in range(1, n + 1):
        digits.append(value % radix)
        value //= radix
    if value:
        raise ParameterError("value exceeds n! - 1")
    digits.reverse()
    remaining = list(range(n))
    return [remaining.pop(d) for d in digits]


def encode_order(txs: Sequence[Transaction]) -> bytes:
    """Serialize the order of ``txs`` relative to canonical order.

    Returns exactly ``ordering_info_bytes(n)`` bytes (the entropy floor
    rounded up to whole bytes); an already-canonical block encodes to
    the same number of (zero-valued) bytes, which is why CTOR chains
    simply skip the field.
    """
    n = len(txs)
    canonical = canonical_order(list(txs))
    index_of = {tx.txid: i for i, tx in enumerate(canonical)}
    order = [index_of[tx.txid] for tx in txs]
    value = lehmer_encode(order)
    return value.to_bytes(max(1, ordering_info_bytes(n)), "little") \
        if n > 1 else b""


def decode_order(blob: bytes, txs: Sequence[Transaction]) -> list[Transaction]:
    """Restore the transmitted order given the (unordered) set ``txs``."""
    n = len(txs)
    canonical = canonical_order(list(txs))
    if n <= 1:
        return canonical
    expected = ordering_info_bytes(n)
    if len(blob) != max(1, expected):
        raise ParameterError(
            f"ordering blob must be {expected} bytes for n={n}, "
            f"got {len(blob)}")
    value = int.from_bytes(blob, "little")
    order = lehmer_decode(value, n)
    return [canonical[i] for i in order]


def ordering_overhead_ratio(n: int, graphene_bytes: int) -> float:
    """How large the order field is relative to a Graphene encoding.

    Used by the Fig. 13 analysis: beyond a few thousand transactions
    the permutation dwarfs Graphene itself (paper 6.2).
    """
    if graphene_bytes <= 0:
        raise ParameterError("graphene_bytes must be positive")
    return ordering_info_bytes(n) / graphene_bytes


def log2_factorial(n: int) -> float:
    """``log2(n!)`` via lgamma, for analytic comparisons."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if n < 2:
        return 0.0
    return math.lgamma(n + 1) / math.log(2.0)
