"""Workload generators for every evaluation scenario in the paper.

Two scenario families cover all of section 5:

* :func:`make_block_scenario` -- a sender's block of ``n`` transactions
  and a receiver mempool that holds a *fraction* of the block plus
  *extra* unrelated transactions (the "mempool multiple" axis of
  Figs. 14-17).
* :func:`make_sync_scenario` -- two mempools of equal size ``n = m``
  sharing a given fraction of transactions (the mempool-synchronization
  experiments of Fig. 18).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError


@dataclass(frozen=True)
class BlockScenario:
    """A block-relay experiment instance.

    Attributes
    ----------
    block:
        The sender's block (``n`` transactions).
    sender_mempool:
        The sender's mempool; always a superset of the block.
    receiver_mempool:
        The receiver's mempool: ``fraction`` of the block plus
        ``extra`` unrelated transactions.
    missing:
        Block transactions absent from the receiver's mempool.
    """

    block: Block
    sender_mempool: Mempool
    receiver_mempool: Mempool
    missing: tuple

    @property
    def n(self) -> int:
        return self.block.n

    @property
    def m(self) -> int:
        return len(self.receiver_mempool)


def make_block_scenario(n: int, extra: int, fraction: float = 1.0,
                        seed: int = 0,
                        mean_tx_size: int = 250) -> BlockScenario:
    """Build a block of ``n`` txns and a receiver holding part of it.

    Parameters
    ----------
    n:
        Transactions in the block.
    extra:
        Unrelated transactions in the receiver's mempool (the paper's
        "mempool multiple" times ``n``).
    fraction:
        Fraction of the block present in the receiver's mempool; 1.0 is
        the Protocol 1 regime (Fig. 1-Left), below 1.0 exercises
        Protocol 2 (Fig. 1-Right).
    """
    if n < 0 or extra < 0:
        raise ParameterError(f"n and extra must be non-negative: {n}, {extra}")
    if not 0.0 <= fraction <= 1.0:
        raise ParameterError(f"fraction must be in [0, 1], got {fraction}")
    gen = TransactionGenerator(seed=seed, mean_size=mean_tx_size)
    block_txs = gen.make_batch(n)
    extra_txs = gen.make_batch(extra)
    rng = random.Random(seed ^ 0x5CEA4A10)
    held_count = int(round(fraction * n))
    held = rng.sample(block_txs, held_count) if held_count < n else list(block_txs)
    held_ids = {tx.txid for tx in held}
    missing = tuple(tx for tx in block_txs if tx.txid not in held_ids)
    block = Block.assemble(block_txs)
    sender_mempool = Mempool(block_txs)
    receiver_mempool = Mempool(held)
    receiver_mempool.add_many(extra_txs)
    return BlockScenario(block=block, sender_mempool=sender_mempool,
                         receiver_mempool=receiver_mempool, missing=missing)


@dataclass(frozen=True)
class MempoolSyncScenario:
    """A mempool-synchronization experiment instance (m = n regime)."""

    sender_mempool: Mempool
    receiver_mempool: Mempool
    common: tuple
    sender_only: tuple
    receiver_only: tuple

    @property
    def union_size(self) -> int:
        return (len(self.common) + len(self.sender_only)
                + len(self.receiver_only))


def make_sync_scenario(n: int, fraction_common: float,
                       seed: int = 0,
                       mean_tx_size: int = 250) -> MempoolSyncScenario:
    """Two mempools of size ``n`` sharing ``fraction_common`` of content.

    Mirrors Fig. 18: the sender's mempool has ``n`` transactions, a
    fraction is common, and the receiver's mempool is "topped off with
    unrelated transactions so that m = n".
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 <= fraction_common <= 1.0:
        raise ParameterError(
            f"fraction_common must be in [0, 1], got {fraction_common}")
    gen = TransactionGenerator(seed=seed, mean_size=mean_tx_size)
    ncommon = int(round(fraction_common * n))
    common = gen.make_batch(ncommon)
    sender_only = gen.make_batch(n - ncommon)
    receiver_only = gen.make_batch(n - ncommon)
    sender = Mempool(common)
    sender.add_many(sender_only)
    receiver = Mempool(common)
    receiver.add_many(receiver_only)
    return MempoolSyncScenario(
        sender_mempool=sender, receiver_mempool=receiver,
        common=tuple(common), sender_only=tuple(sender_only),
        receiver_only=tuple(receiver_only))


def mempool_multiple_to_extra(n: int, multiple: float) -> int:
    """Convert the paper's x-axis "mempool multiple" into an extra count."""
    if multiple < 0:
        raise ParameterError(f"multiple must be non-negative, got {multiple}")
    return int(math.ceil(n * multiple))
