"""Blocks and block headers.

A block is a header (80 bytes, Bitcoin layout) plus an ordered list of
transactions.  The header's Merkle root is the ground truth every
Graphene decode is validated against.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.chain.merkle import merkle_root
from repro.chain.ordering import canonical_order
from repro.chain.transaction import Transaction
from repro.errors import MerkleValidationError, ParameterError

#: Serialized header size: version(4) prev(32) merkle(32) time(4) bits(4) nonce(4).
BLOCK_HEADER_BYTES = 80


@dataclass(frozen=True)
class BlockHeader:
    """An 80-byte Bitcoin-style block header."""

    version: int = 1
    prev_hash: bytes = bytes(32)
    merkle_root: bytes = bytes(32)
    timestamp: int = 0
    bits: int = 0x1D00FFFF
    nonce: int = 0

    def __post_init__(self):
        if len(self.prev_hash) != 32:
            raise ParameterError("prev_hash must be 32 bytes")
        if len(self.merkle_root) != 32:
            raise ParameterError("merkle_root must be 32 bytes")

    def serialize(self) -> bytes:
        return (struct.pack("<I", self.version & 0xFFFFFFFF)
                + self.prev_hash + self.merkle_root
                + struct.pack("<III", self.timestamp & 0xFFFFFFFF,
                              self.bits & 0xFFFFFFFF,
                              self.nonce & 0xFFFFFFFF))

    @property
    def serialized_size(self) -> int:
        return BLOCK_HEADER_BYTES


@dataclass(frozen=True)
class Block:
    """A block: header plus transactions in Merkle (canonical) order."""

    header: BlockHeader
    txs: tuple = field(default_factory=tuple)

    @classmethod
    def assemble(cls, txs: Iterable[Transaction],
                 prev_hash: bytes = bytes(32),
                 timestamp: int = 0, nonce: int = 0) -> "Block":
        """Build a block from transactions, applying canonical ordering.

        The Merkle root is computed over the canonical order, mirroring
        Bitcoin Cash post-CTOR (paper 6.2), so Graphene never needs to
        transmit ordering information for these blocks.
        """
        ordered = tuple(canonical_order(list(txs)))
        root = merkle_root([tx.txid for tx in ordered])
        header = BlockHeader(prev_hash=prev_hash, merkle_root=root,
                             timestamp=timestamp, nonce=nonce)
        return cls(header=header, txs=ordered)

    @property
    def n(self) -> int:
        """Number of transactions in the block."""
        return len(self.txs)

    @property
    def txids(self) -> list[bytes]:
        return [tx.txid for tx in self.txs]

    def txid_set(self) -> set[bytes]:
        return {tx.txid for tx in self.txs}

    def serialized_size(self) -> int:
        """Full wire size: header + all transaction payloads."""
        return BLOCK_HEADER_BYTES + sum(tx.size for tx in self.txs)

    def validate_candidate(self, candidate: Sequence[Transaction]) -> bool:
        """Check a decoded transaction set against this block's Merkle root.

        The candidate is canonically ordered before hashing, exactly what
        a CTOR receiver does at Protocol 1 step 4 / Protocol 2 step 5.
        """
        ordered = canonical_order(list(candidate))
        return merkle_root([tx.txid for tx in ordered]) == self.header.merkle_root

    def require_valid(self, candidate: Sequence[Transaction]) -> list[Transaction]:
        """Return the canonically ordered candidate or raise on mismatch."""
        ordered = canonical_order(list(candidate))
        if merkle_root([tx.txid for tx in ordered]) != self.header.merkle_root:
            raise MerkleValidationError(
                f"candidate set of {len(candidate)} txs does not match "
                f"Merkle root {self.header.merkle_root.hex()[:16]}...")
        return ordered
