"""Blocks and block headers.

A block is a header (80 bytes, Bitcoin layout) plus an ordered list of
transactions.  The header's Merkle root is the ground truth every
Graphene decode is validated against.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.chain.merkle import merkle_root
from repro.chain.ordering import canonical_order
from repro.chain.transaction import Transaction
from repro.errors import MerkleValidationError, ParameterError

#: Serialized header size: version(4) prev(32) merkle(32) time(4) bits(4) nonce(4).
BLOCK_HEADER_BYTES = 80

#: Memoized candidate-set validations, shared across Block instances
#: (relay paths construct a fresh header-only probe per attempt).  Keyed
#: ``(merkle_root, frozenset(txids))``; the value is the txid order when
#: the set hashes to the root, else None.  CTOR is a pure function of
#: the txids, so the key fully determines the answer; the hit path
#: re-maps the order onto the *caller's* transaction objects.
_ORDER_CACHE: dict = {}
_ORDER_CACHE_CAP = 256
_ORDER_MISS = object()


@dataclass(frozen=True)
class BlockHeader:
    """An 80-byte Bitcoin-style block header."""

    version: int = 1
    prev_hash: bytes = bytes(32)
    merkle_root: bytes = bytes(32)
    timestamp: int = 0
    bits: int = 0x1D00FFFF
    nonce: int = 0

    def __post_init__(self):
        if len(self.prev_hash) != 32:
            raise ParameterError("prev_hash must be 32 bytes")
        if len(self.merkle_root) != 32:
            raise ParameterError("merkle_root must be 32 bytes")

    def serialize(self) -> bytes:
        return (struct.pack("<I", self.version & 0xFFFFFFFF)
                + self.prev_hash + self.merkle_root
                + struct.pack("<III", self.timestamp & 0xFFFFFFFF,
                              self.bits & 0xFFFFFFFF,
                              self.nonce & 0xFFFFFFFF))

    @property
    def serialized_size(self) -> int:
        return BLOCK_HEADER_BYTES


@dataclass(frozen=True)
class Block:
    """A block: header plus transactions in Merkle (canonical) order."""

    header: BlockHeader
    txs: tuple = field(default_factory=tuple)

    @classmethod
    def assemble(cls, txs: Iterable[Transaction],
                 prev_hash: bytes = bytes(32),
                 timestamp: int = 0, nonce: int = 0) -> "Block":
        """Build a block from transactions, applying canonical ordering.

        The Merkle root is computed over the canonical order, mirroring
        Bitcoin Cash post-CTOR (paper 6.2), so Graphene never needs to
        transmit ordering information for these blocks.
        """
        ordered = tuple(canonical_order(list(txs)))
        root = merkle_root([tx.txid for tx in ordered])
        header = BlockHeader(prev_hash=prev_hash, merkle_root=root,
                             timestamp=timestamp, nonce=nonce)
        return cls(header=header, txs=ordered)

    @property
    def n(self) -> int:
        """Number of transactions in the block."""
        return len(self.txs)

    @property
    def txids(self) -> list[bytes]:
        return [tx.txid for tx in self.txs]

    def txid_set(self) -> set[bytes]:
        return {tx.txid for tx in self.txs}

    def serialized_size(self) -> int:
        """Full wire size: header + all transaction payloads."""
        return BLOCK_HEADER_BYTES + sum(tx.size for tx in self.txs)

    def validate_candidate(self, candidate: Sequence[Transaction]) -> bool:
        """Check a decoded transaction set against this block's Merkle root.

        The candidate is canonically ordered before hashing, exactly what
        a CTOR receiver does at Protocol 1 step 4 / Protocol 2 step 5.
        """
        ordered = canonical_order(list(candidate))
        return merkle_root([tx.txid for tx in ordered]) == self.header.merkle_root

    def validated_order(self, candidate: Sequence[Transaction]
                        ) -> list[Transaction] | None:
        """Order and Merkle-check a candidate set in one pass.

        Returns the canonically ordered list when it hashes to this
        block's root, else ``None``.  Fuses :meth:`validate_candidate`
        followed by :meth:`require_valid`, which each re-sort and
        re-hash the same candidate -- the relay hot path asks both
        questions about every decode.

        The answer is memoized per ``(merkle_root, txid set)`` (a relay
        re-validates the same reconciled set once per hop): candidate
        sets are deduplicated by txid in every caller, and CTOR depends
        only on txids, so the key determines the order.  Sets with
        duplicate txids bypass the cache.
        """
        txs = list(candidate)
        id_set = frozenset(tx.txid for tx in txs)
        if len(id_set) != len(txs):
            ordered = canonical_order(txs)
            if merkle_root([tx.txid for tx in ordered]) \
                    != self.header.merkle_root:
                return None
            return ordered
        key = (self.header.merkle_root, id_set)
        hit = _ORDER_CACHE.get(key, _ORDER_MISS)
        if hit is not _ORDER_MISS:
            if hit is None:
                return None
            by_id = {tx.txid: tx for tx in txs}
            return [by_id[txid] for txid in hit]
        ordered = canonical_order(txs)
        if merkle_root([tx.txid for tx in ordered]) \
                != self.header.merkle_root:
            ordered = None
        if len(_ORDER_CACHE) >= _ORDER_CACHE_CAP:
            for stale in list(_ORDER_CACHE)[:_ORDER_CACHE_CAP // 2]:
                del _ORDER_CACHE[stale]
        _ORDER_CACHE[key] = tuple(tx.txid for tx in ordered) \
            if ordered is not None else None
        return ordered

    def require_valid(self, candidate: Sequence[Transaction]) -> list[Transaction]:
        """Return the canonically ordered candidate or raise on mismatch."""
        ordered = canonical_order(list(candidate))
        if merkle_root([tx.txid for tx in ordered]) != self.header.merkle_root:
            raise MerkleValidationError(
                f"candidate set of {len(candidate)} txs does not match "
                f"Merkle root {self.header.merkle_root.hex()[:16]}...")
        return ordered
