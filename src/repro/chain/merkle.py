"""Bitcoin-style Merkle trees.

The Merkle root in a block header is what turns Graphene from "probably
the right transactions" into an exact protocol: after IBLT decoding, the
receiver orders the candidate set and checks it hashes to the header's
root (Protocol 1 step 4 / Protocol 2 step 5).  Any residual Bloom filter
or IBLT mistake is caught here.
"""

from __future__ import annotations

import hashlib
import math
from typing import Sequence

from repro.errors import ParameterError


def _sha256d(data: bytes) -> bytes:
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


#: Memoized roots keyed by SHA-256 of the concatenated (ordered) leaf
#: list.  A relay validates the same candidate set repeatedly (sender
#: assembly, per-receiver Merkle checks), and fingerprinting the leaves
#: is one hash pass where the tree itself is ~2(n-1) double-SHA calls.
#: Bounded: oldest half evicted at the cap (insertion order).
_ROOT_CACHE: dict = {}
_ROOT_CACHE_CAP = 1024


def merkle_root(txids: Sequence[bytes]) -> bytes:
    """Compute the Merkle root of an *ordered* list of transaction IDs.

    Follows Bitcoin's convention: an odd node at any level is paired with
    itself.  An empty list yields 32 zero bytes (only possible for an
    empty block, which real chains forbid but tests exercise).
    """
    if not txids:
        return bytes(32)
    level = [bytes(t) for t in txids]
    for txid in level:
        if len(txid) != 32:
            raise ParameterError(f"txids must be 32 bytes, got {len(txid)}")
    key = hashlib.sha256(b"".join(level)).digest()
    cached = _ROOT_CACHE.get(key)
    if cached is not None:
        return cached
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            _sha256d(level[i] + level[i + 1])
            for i in range(0, len(level), 2)
        ]
    if len(_ROOT_CACHE) >= _ROOT_CACHE_CAP:
        for stale in list(_ROOT_CACHE)[:_ROOT_CACHE_CAP // 2]:
            del _ROOT_CACHE[stale]
    _ROOT_CACHE[key] = level[0]
    return level[0]


def merkle_proof_size(n: int) -> int:
    """Bytes of a single inclusion proof in a tree of ``n`` leaves."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return 32 * max(1, math.ceil(math.log2(n))) if n > 1 else 32
