"""Blockchain substrate: transactions, blocks, Merkle trees, mempools.

Graphene is evaluated in the paper as a block-propagation protocol for
Bitcoin Cash / Ethereum-like chains.  This package provides the pieces of
such a chain that the protocols touch: transactions with cryptographic
IDs, blocks with headers whose Merkle root lets a receiver verify a
decoded transaction set exactly, mempools with per-peer inventory
bookkeeping, canonical transaction ordering (CTOR, paper 6.2), and
workload generators for every experimental scenario in section 5.
"""

from repro.chain.transaction import Transaction, TransactionGenerator
from repro.chain.merkle import merkle_root, merkle_proof_size
from repro.chain.block import Block, BlockHeader, BLOCK_HEADER_BYTES
from repro.chain.mempool import Mempool
from repro.chain.ordering import (
    canonical_order,
    ordering_info_bytes,
)
from repro.chain.scenarios import (
    BlockScenario,
    MempoolSyncScenario,
    make_block_scenario,
    make_sync_scenario,
)

__all__ = [
    "Transaction",
    "TransactionGenerator",
    "merkle_root",
    "merkle_proof_size",
    "Block",
    "BlockHeader",
    "BLOCK_HEADER_BYTES",
    "Mempool",
    "canonical_order",
    "ordering_info_bytes",
    "BlockScenario",
    "MempoolSyncScenario",
    "make_block_scenario",
    "make_sync_scenario",
]
