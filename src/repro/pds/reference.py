"""Frozen seed implementations of the PDS hot path (reference only).

The live :mod:`repro.pds.iblt` / :mod:`repro.pds.bloom` structures were
rewritten columnar-and-batch-first for speed; these classes preserve the
original per-object, hash-per-probe implementations byte-for-byte.  They
exist for two reasons:

* **Equivalence testing** -- property tests assert the optimized
  structures produce byte-identical wire encodings and identical decode
  results against these references for randomized key sets.
* **Perf trajectory** -- ``benchmarks/bench_perf_pds.py`` times both
  implementations on the same machine in the same process, so the
  before/after speedups recorded in ``BENCH_PDS.json`` are honest on any
  hardware rather than replayed from a one-off measurement.

Do not use these classes outside tests and benchmarks: they are
deliberately slow.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from typing import Iterable

from repro.errors import MalformedIBLTError, ParameterError
from repro.utils.hashing import sha256, split_digest

_U64 = 0xFFFFFFFFFFFFFFFF
_U32 = 0xFFFFFFFF


class ReferenceHasher:
    """Seed ``DerivedHasher``: one SHA-256 per call, no caching."""

    __slots__ = ("seed", "k", "_prefix")

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self._prefix = struct.pack("<Q", seed & _U64)

    def base_pair(self, key: int) -> tuple[int, int]:
        digest = hashlib.sha256(
            self._prefix + struct.pack("<Q", key & _U64)).digest()
        h1, h2 = struct.unpack("<QQ", digest[:16])
        return h1, h2 | 1

    def _words(self, key: int, need: int) -> list[int]:
        words: list[int] = []
        counter = 0
        packed_key = struct.pack("<Q", key & _U64)
        while len(words) < need:
            digest = hashlib.sha256(
                self._prefix + struct.pack("<I", counter) + packed_key).digest()
            words.extend(struct.unpack("<QQQQ", digest))
            counter += 1
        return words[:need]

    def partitioned_indices(self, key: int, cells: int) -> list[int]:
        if cells % self.k != 0:
            raise ValueError(f"cell count {cells} not divisible by k={self.k}")
        width = cells // self.k
        return [i * width + (w % width)
                for i, w in enumerate(self._words(key, self.k))]

    def checksum(self, key: int, bits: int = 16) -> int:
        h1, h2 = self.base_pair(key)
        return (h1 ^ (h2 >> 7)) & ((1 << bits) - 1)


@dataclass
class ReferenceCell:
    """Seed IBLT cell: one dataclass object per cell."""

    count: int = 0
    key_sum: int = 0
    check_sum: int = 0

    def is_empty(self) -> bool:
        return self.count == 0 and self.key_sum == 0 and self.check_sum == 0


@dataclass(frozen=True)
class ReferenceDecodeResult:
    complete: bool
    local: frozenset
    remote: frozenset


class ReferenceIBLT:
    """Seed IBLT: ``list[ReferenceCell]`` table, clone-then-peel decode."""

    def __init__(self, cells: int, k: int = 4, seed: int = 0,
                 cell_bytes: int = 12):
        if cells < 1:
            raise ParameterError(f"cells must be >= 1, got {cells}")
        if k < 2:
            raise ParameterError(f"k must be >= 2, got {k}")
        if cells % k:
            cells += k - cells % k
        self.cells = cells
        self.k = k
        self.seed = seed
        self.cell_bytes = cell_bytes
        self.hasher = ReferenceHasher(k, seed=seed)
        self._table = [ReferenceCell() for _ in range(cells)]
        self.count = 0

    def _apply(self, key: int, delta: int) -> None:
        key &= _U64
        csum = self.hasher.checksum(key)
        for idx in self.hasher.partitioned_indices(key, self.cells):
            cell = self._table[idx]
            cell.count += delta
            cell.key_sum ^= key
            cell.check_sum ^= csum

    def insert(self, key: int) -> None:
        self._apply(key, +1)
        self.count += 1

    def update(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.insert(key)

    @classmethod
    def from_keys(cls, keys: Iterable[int], cells: int, k: int = 4,
                  seed: int = 0, cell_bytes: int = 12) -> "ReferenceIBLT":
        iblt = cls(cells, k=k, seed=seed, cell_bytes=cell_bytes)
        iblt.update(keys)
        return iblt

    def copy(self) -> "ReferenceIBLT":
        clone = ReferenceIBLT(self.cells, k=self.k, seed=self.seed,
                              cell_bytes=self.cell_bytes)
        for mine, theirs in zip(clone._table, self._table):
            mine.count = theirs.count
            mine.key_sum = theirs.key_sum
            mine.check_sum = theirs.check_sum
        clone.count = self.count
        return clone

    def subtract(self, other: "ReferenceIBLT") -> "ReferenceIBLT":
        if (self.cells, self.k, self.seed) != (other.cells, other.k,
                                               other.seed):
            raise ParameterError("incompatible reference IBLTs")
        diff = ReferenceIBLT(self.cells, k=self.k, seed=self.seed,
                             cell_bytes=self.cell_bytes)
        for out, a, b in zip(diff._table, self._table, other._table):
            out.count = a.count - b.count
            out.key_sum = a.key_sum ^ b.key_sum
            out.check_sum = a.check_sum ^ b.check_sum
        diff.count = self.count - other.count
        return diff

    def _is_pure(self, cell: ReferenceCell) -> bool:
        return (cell.count in (1, -1)
                and self.hasher.checksum(cell.key_sum) == cell.check_sum)

    def decode(self) -> ReferenceDecodeResult:
        scratch = self.copy()
        local: set = set()
        remote: set = set()
        stack = [i for i, cell in enumerate(scratch._table)
                 if scratch._is_pure(cell)]
        while stack:
            idx = stack.pop()
            cell = scratch._table[idx]
            if not scratch._is_pure(cell):
                continue
            key = cell.key_sum
            sign = cell.count
            if key in local or key in remote:
                raise MalformedIBLTError(
                    f"key {key:#x} decoded twice; IBLT is malformed")
            (local if sign == 1 else remote).add(key)
            scratch._apply(key, -sign)
            for nxt in scratch.hasher.partitioned_indices(key, scratch.cells):
                if scratch._is_pure(scratch._table[nxt]):
                    stack.append(nxt)
        complete = all(cell.is_empty() for cell in scratch._table)
        return ReferenceDecodeResult(complete, frozenset(local),
                                     frozenset(remote))


def encode_reference_iblt(iblt: ReferenceIBLT) -> bytes:
    """Seed wire encoding, layout-identical to :func:`repro.codec.encode_iblt`."""
    check_width = iblt.cell_bytes - 10
    if check_width < 1 or check_width > 8:
        raise ParameterError(f"cell_bytes={iblt.cell_bytes} not encodable")
    check_mask = (1 << (8 * check_width)) - 1
    parts = [struct.pack("<IBIBH", iblt.cells, iblt.k, iblt.seed & _U32,
                         iblt.cell_bytes, 0)]
    for cell in iblt._table:
        parts.append(struct.pack("<hQ", cell.count, cell.key_sum))
        parts.append((cell.check_sum & check_mask)
                     .to_bytes(check_width, "little"))
    return b"".join(parts)


class ReferenceBloomFilter:
    """Seed Bloom filter: re-digests and re-slices on every probe."""

    def __init__(self, nbits: int, k: int, seed: int = 0):
        if nbits < 0:
            raise ParameterError(f"nbits must be non-negative, got {nbits}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.nbits = nbits
        self.k = k
        self.seed = seed
        self.count = 0
        self._bits = bytearray((nbits + 7) // 8)

    @classmethod
    def from_fpr(cls, n: int, fpr: float,
                 seed: int = 0) -> "ReferenceBloomFilter":
        if fpr >= 1.0 or n == 0:
            return cls(0, 1, seed=seed)
        ln2 = math.log(2.0)
        nbits = max(1, math.ceil(-n * math.log(fpr) / (ln2 * ln2)))
        k = max(1, round(nbits / n * ln2))
        return cls(nbits, k, seed=seed)

    def _digest(self, item: bytes) -> bytes:
        if self.seed:
            return sha256(self.seed.to_bytes(8, "little") + item)
        return item if len(item) >= 32 else sha256(item)

    def insert(self, item: bytes) -> None:
        self.count += 1
        if self.nbits == 0:
            return
        for idx in split_digest(self._digest(item), self.k, self.nbits):
            self._bits[idx >> 3] |= 1 << (idx & 7)

    def __contains__(self, item: bytes) -> bool:
        if self.nbits == 0:
            return True
        digest = self._digest(item)
        return all(
            self._bits[idx >> 3] & (1 << (idx & 7))
            for idx in split_digest(digest, self.k, self.nbits)
        )


def encode_reference_bloom(bloom: ReferenceBloomFilter) -> bytes:
    """Seed wire encoding, layout-identical to :func:`repro.codec.encode_bloom`."""
    header = struct.pack("<IBI", bloom.nbits, bloom.k, bloom.seed & _U32)
    return header + bytes(bloom._bits)
