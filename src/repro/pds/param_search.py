"""Algorithm 1: IBLT-Param-Search (paper section 4.1, Fig. 9).

Finds the smallest cell count ``c`` (a multiple of ``k``) such that an
IBLT with ``k`` hash functions decodes ``j`` items with probability at
least ``p``, then minimizes over ``k``.

Faithful to the paper's algorithm in structure: binary search over ``c``
justified by the monotonicity of the decode rate in ``c``, Monte-Carlo
``decode()`` trials over the *hypergraph* representation rather than real
IBLTs (the source of the order-of-magnitude speedup the paper reports),
and a confidence-interval stopping rule.  Our one refinement is that the
trials at each candidate ``c`` are batched and vectorized
(:func:`repro.pds.hypergraph.decode_many`), and each candidate's
statistics are kept independent, which strengthens the guarantee the
interval provides.

When the trial budget at a candidate ``c`` is exhausted without the
interval separating from ``p`` -- the pseudocode's ``L = (1-p)/5``
proximity band -- we classify ``c`` as *insufficient*, exactly like the
pseudocode's ``cl = c`` branch.  The search therefore errs on the side of
slightly larger IBLTs whose decode rate meets or exceeds the target,
matching the behaviour in the paper's Fig. 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.pds.hypergraph import decode_many
from repro.utils.stats import wilson_interval

#: Largest hedge factor considered, mirroring ``cmax = 20`` in Fig. 9.
DEFAULT_TAU_MAX = 20.0


@dataclass(frozen=True)
class SearchResult:
    """Optimal parameters for one ``(j, p)`` pair."""

    j: int
    k: int
    cells: int
    target_success: float

    @property
    def tau(self) -> float:
        """Hedge factor ``tau = c / j`` (Eq. 1)."""
        return self.cells / self.j if self.j else float(self.cells)


def _round_up(c: int, k: int) -> int:
    return c + (-c % k)


class _CandidateStats:
    """Adaptive Monte-Carlo classification of one candidate cell count."""

    def __init__(self, j: int, k: int, c: int, rng: np.random.Generator):
        self.j = j
        self.k = k
        self.c = c
        self.rng = rng
        self.trials = 0
        self.successes = 0

    def run_batch(self, size: int) -> None:
        self.successes += decode_many(self.j, self.k, self.c, size, self.rng)
        self.trials += size

    def interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials)


def classify_cell_count(j: int, k: int, c: int, p: float,
                        rng: np.random.Generator,
                        max_trials: int = 6000,
                        initial_batch: int = 128) -> bool:
    """Return True iff an IBLT (j items, k hashes, c cells) meets rate ``p``.

    Runs exponentially growing batches of hypergraph decode trials until
    the Wilson interval of the success proportion lies entirely above or
    below ``p``, or the budget runs out (treated as "does not meet").
    """
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    stats = _CandidateStats(j, k, c, rng)
    batch = initial_batch
    while stats.trials < max_trials:
        stats.run_batch(min(batch, max_trials - stats.trials))
        low, high = stats.interval()
        if low >= p:
            return True
        if high <= p:
            return False
        batch *= 2
    return False


def search_cells(j: int, k: int, p: float,
                 rng: Optional[np.random.Generator] = None,
                 tau_max: float = DEFAULT_TAU_MAX,
                 max_trials: int = 6000,
                 known_upper: Optional[int] = None) -> Optional[int]:
    """Binary-search the optimally small ``c`` for ``(j, k, p)``.

    Returns the smallest multiple of ``k`` whose decode rate is certified
    to be at least ``p``, or None if even ``tau_max * j`` cells fail
    (then ``k`` is a bad choice for this ``j``).  ``known_upper`` lets the
    outer loop over ``k`` prune candidates that cannot beat the best
    result found so far.
    """
    if j < 0:
        raise ParameterError(f"j must be non-negative, got {j}")
    if j == 0:
        return k
    rng = rng if rng is not None else np.random.default_rng()
    ch = _round_up(max(int(tau_max * j), 4 * k), k)
    if known_upper is not None:
        ch = min(ch, _round_up(known_upper, k))
    if not classify_cell_count(j, k, ch, p, rng, max_trials=max_trials):
        return None
    cl = k  # exclusive lower bound: k cells can hold at most k items anyway
    # Invariant: ch is certified sufficient, cl is not (or is the floor).
    while ch - cl > k:
        mid = _round_up((cl + ch) // 2, k)
        if mid >= ch:
            mid = ch - k
        if mid <= cl:
            break
        if classify_cell_count(j, k, mid, p, rng, max_trials=max_trials):
            ch = mid
        else:
            cl = mid
    return ch


def default_k_candidates(j: int) -> Sequence[int]:
    """Hash-function counts worth searching for a given ``j``.

    The paper searches k in roughly 3..12 and observes that smaller k
    wins as j grows; these windows cover the optimum with margin.
    """
    if j <= 30:
        return range(3, 11)
    if j <= 200:
        return range(3, 8)
    return range(3, 6)


def optimal_parameters(j: int, p: float,
                       ks: Optional[Iterable[int]] = None,
                       rng: Optional[np.random.Generator] = None,
                       max_trials: int = 6000) -> SearchResult:
    """Minimize cells over ``k`` for a target decode rate ``p``.

    This is the outer loop the paper describes around Algorithm 1.
    """
    rng = rng if rng is not None else np.random.default_rng()
    ks = list(ks) if ks is not None else list(default_k_candidates(max(j, 1)))
    best: Optional[SearchResult] = None
    for k in ks:
        upper = best.cells - 1 if best else None
        if upper is not None and upper < k:
            continue
        cells = search_cells(j, k, p, rng=rng, max_trials=max_trials,
                             known_upper=upper)
        if cells is None:
            continue
        if best is None or cells < best.cells:
            best = SearchResult(j=j, k=k, cells=cells, target_success=p)
    if best is None:
        raise ParameterError(
            f"no (c, k) within tau <= {DEFAULT_TAU_MAX} meets rate {p} for j={j}")
    return best


def measure_decode_rate(j: int, k: int, c: int, trials: int,
                        rng: Optional[random.Random] = None,
                        use_numpy: bool = True) -> float:
    """Empirical decode success rate of an IBLT shape, for validation."""
    if trials <= 0:
        raise ParameterError(f"trials must be positive, got {trials}")
    if use_numpy:
        seed = rng.getrandbits(32) if rng is not None else None
        nprng = np.random.default_rng(seed)
        return decode_many(j, k, c, trials, nprng) / trials
    from repro.pds.hypergraph import decode_once
    rng = rng if rng is not None else random.Random()
    return sum(decode_once(j, k, c, rng) for _ in range(trials)) / trials
