"""Optimal IBLT parameter tables and the lookup the protocols use.

Algorithm 1 is a Monte-Carlo search; running it inline every time a
protocol needs an IBLT would dominate runtime.  Like the paper's released
implementation, we run the search once per target decode rate over a grid
of ``j`` values and ship the results as CSV files
(``src/repro/pds/data/iblt_params_<denom>.csv`` for failure rate
``1/denom``).  "For any given rate, the parameter file can be generated
once ever and be universally applicable to any IBLT implementation."

Lookups are conservative in two ways:

* a request between grid points uses the next *larger* grid entry, whose
  certified decode rate at a smaller item count is at least as good
  (decode success is monotone non-increasing in items for fixed shape);
* a request beyond the table extrapolates with the largest entry's hedge
  factor plus a safety margin.

If a table file is missing (e.g. mid-regeneration), a deliberately
generous built-in fallback keeps every protocol functional.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from importlib import resources
from pathlib import Path
from typing import Optional

from repro.errors import ParameterError

#: Decode failure rates the paper evaluates (Fig. 7): 1/24, 1/240, 1/2400.
SUPPORTED_DENOMS = (24, 240, 2400)

#: Default target: beta = 239/240, like every experiment in the paper.
DEFAULT_DENOM = 240

_EXTRAPOLATION_MARGIN = 1.05

# (max_j, tau, k): generous shapes used only when no CSV is available.
_FALLBACK_ROWS = (
    (2, 16.0, 4),
    (5, 12.0, 4),
    (10, 6.0, 4),
    (30, 3.0, 4),
    (100, 2.0, 4),
    (300, 1.7, 4),
    (10**9, 1.6, 4),
)


@dataclass(frozen=True)
class IBLTParams:
    """Shape of one IBLT: total cells and hash-function count."""

    cells: int
    k: int

    @property
    def partition_width(self) -> int:
        return self.cells // self.k


class IBLTParamTable:
    """Maps a symmetric-difference size ``j`` to an optimal IBLT shape."""

    def __init__(self, rows: list[tuple[int, int, int]], denom: int):
        """``rows`` are ``(j, k, cells)`` triples sorted by ``j``."""
        if not rows:
            raise ParameterError("parameter table must not be empty")
        self.denom = denom
        self.rows = sorted(rows)
        self._max_j, max_k, max_cells = self.rows[-1]
        self._tail_tau = max_cells / self._max_j
        self._tail_k = max_k

    @classmethod
    def from_csv(cls, path, denom: int) -> "IBLTParamTable":
        rows = []
        with open(path, newline="") as handle:
            for record in csv.DictReader(handle):
                rows.append((int(record["j"]), int(record["k"]),
                             int(record["cells"])))
        return cls(rows, denom)

    @classmethod
    def fallback(cls, denom: int) -> "IBLTParamTable":
        """Generous built-in table used when no CSV has been generated."""
        rows = []
        grid = [1, 2, 3, 5, 8, 10, 20, 30, 50, 100, 200, 300, 500, 1000]
        for j in grid:
            tau, k = next(
                (tau, k) for max_j, tau, k in _FALLBACK_ROWS if j <= max_j)
            cells = math.ceil(j * tau)
            cells += -cells % k
            rows.append((j, k, max(cells, k)))
        return cls(rows, denom)

    def params_for(self, j: int) -> IBLTParams:
        """Return a shape certified to decode ``j`` items at the table's rate."""
        if j < 0:
            raise ParameterError(f"j must be non-negative, got {j}")
        if j == 0:
            # Clamp to the smallest certified row.  Returning a k-cell,
            # width-1 table here under-allocates: an estimate of zero
            # still has to absorb the beta-probability event that the
            # difference was not zero, and the j=1 row is the smallest
            # shape the Monte-Carlo search certified for *any* load.
            row_j, k, cells = self.rows[0]
            return IBLTParams(cells=cells, k=k)
        if j <= self._max_j:
            for row_j, k, cells in self.rows:
                if row_j >= j:
                    return IBLTParams(cells=cells, k=k)
        k = self._tail_k
        cells = math.ceil(j * self._tail_tau * _EXTRAPOLATION_MARGIN)
        cells += -cells % k
        return IBLTParams(cells=cells, k=k)

    def tau_for(self, j: int) -> float:
        """Hedge factor ``tau`` (cells per item) for a difference of ``j``."""
        params = self.params_for(max(j, 1))
        return params.cells / max(j, 1)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (f"IBLTParamTable(denom={self.denom}, entries={len(self.rows)}, "
                f"max_j={self._max_j})")


_CACHE: dict = {}


def _data_path(denom: int) -> Optional[Path]:
    try:
        root = resources.files("repro.pds") / "data" / f"iblt_params_{denom}.csv"
    except (ModuleNotFoundError, TypeError):  # pragma: no cover
        return None
    path = Path(str(root))
    return path if path.exists() else None


def default_param_table(denom: int = DEFAULT_DENOM) -> IBLTParamTable:
    """Return the shipped table for failure rate ``1/denom`` (cached).

    Falls back to :meth:`IBLTParamTable.fallback` when the CSV is absent.
    """
    if denom <= 1:
        raise ParameterError(f"denom must exceed 1, got {denom}")
    if denom in _CACHE:
        return _CACHE[denom]
    path = _data_path(denom)
    table = (IBLTParamTable.from_csv(path, denom) if path is not None
             else IBLTParamTable.fallback(denom))
    _CACHE[denom] = table
    return table


def clear_cache() -> None:
    """Drop cached tables (used by tests that swap data files)."""
    _CACHE.clear()
