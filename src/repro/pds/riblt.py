"""Rateless IBLT: an infinite coded-symbol stream for set reconciliation.

Implements the construction of Yang et al., "Practical Rateless Set
Reconciliation" (see PAPERS.md): instead of sizing an IBLT to a
difference estimate up front, the sender emits an endless stream of
*coded symbols* -- IBLT-style cells -- and the receiver consumes
symbols until its peeling decoder terminates.  Reconciling a symmetric
difference of ``d`` items costs about ``1.35 d`` symbols in expectation
for large ``d``, with no parameter table, no hedge factor and no
failure branch: a stream that has not decoded yet is simply a stream
that needs more symbols.

Construction
------------

Every key participates in symbol 0.  After index ``i`` a key's next
index is drawn so that the *mapping density* -- the probability a key
participates in symbol ``t`` -- decays as ``1.5 / (t + 1.5)``.  Each
key carries its own deterministic PRNG (a 64-bit multiplicative
congruential generator seeded from the key's hash), so both sides of
an exchange derive identical index sequences from the key alone::

    s    <- s * 0xda942042e4dd58b5  (mod 2^64)
    u    <- (s >> 32): 1 - u/2^32 uniform in (0, 1]
    gap  <- max(1, ceil((i + 1.5) * (2^16 / sqrt(u + 1) - 1)))
    next <- i + gap

A coded symbol is exactly an IBLT cell: a signed ``count``, the xor of
participating keys (``keySum``) and the xor of their 16-bit checksums
(``checkSum``).  Subtracting a sender's symbol stream from the same
prefix generated over the receiver's key set leaves a stream whose
pure cells (count +-1, checksum consistent) peel out the symmetric
difference, exactly like a subtracted IBLT -- except the prefix can
*grow*: recovered keys remember their stream position, so peeling
continues seamlessly into newly arrived symbols.

Storage is columnar like :mod:`repro.pds.iblt`: three flat parallel
arrays per stream.  Symbol generation has a numpy lockstep batch path
(all keys advance through the index stream together under an active
mask) and a scalar pure-Python path, selected by
:func:`repro.fastpath.fastpath_enabled` (``REPRO_FASTPATH=0`` forces
pure) -- both produce bit-identical columns.

The decoder keeps the section 6.1 malformed-table defence: a key
peeled twice raises :class:`~repro.errors.MalformedIBLTError` instead
of looping forever.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, Optional, Sequence

from repro import fastpath
from repro.errors import MalformedIBLTError, ParameterError
from repro.utils.hashing import DerivedHasher

try:  # optional vector backend for symbol generation
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always ships numpy
    _np = None

_U64 = 0xFFFFFFFFFFFFFFFF

#: Multiplier of the per-key index-stream PRNG (a full-period 64-bit
#: MCG constant; both sides derive identical streams from it).
_PRNG_MULT = 0xDA942042E4DD58B5

#: Below this many keys the scalar loop beats numpy's fixed call overhead.
_BATCH_MIN = 32

#: Serialized width of one coded symbol:
#: ``count i32 | keySum u64 | checkSum u16``.  Unlike an IBLT cell's
#: i16 count, symbol 0 sums *every* key in the set, so the count field
#: must hold a whole mempool.
SYMBOL_BYTES = 14

#: Wire header preceding every symbol batch: ``start u32 | count u16``
#: (see :func:`repro.codec.encode_symbol_batch` and PROTOCOL.md 1.4).
SYMBOL_BATCH_HEADER_BYTES = 6


def symbol_stream_bytes(count: int) -> int:
    """Wire size of one batch of ``count`` coded symbols."""
    return SYMBOL_BATCH_HEADER_BYTES + SYMBOL_BYTES * count


def _initial_state(hasher: DerivedHasher, key: int) -> tuple[int, int]:
    """Per-key PRNG seed and 16-bit checksum, both from the hash family.

    The first hash word seeds the index-stream PRNG (forced nonzero:
    a zero MCG state is absorbing).  The checksum is the same masked
    entry checksum IBLT cells use, so a short ID hashed for an IBLT
    costs nothing to re-derive here.
    """
    words, csum = hasher.entry(key)
    return words[0] or 1, csum & 0xFFFF


def _next_index(state: int, idx: int) -> tuple[int, int]:
    """Advance one key's stream: returns ``(new_state, next_index)``."""
    state = (state * _PRNG_MULT) & _U64
    u = state >> 32
    gap = math.ceil((idx + 1.5) * (65536.0 / math.sqrt(u + 1.0) - 1.0))
    return state, idx + (gap if gap > 1 else 1)


class RIBLTEncoder:
    """Generates the coded-symbol prefix for a fixed key set.

    The stream is a pure function of ``(keys, seed)``: extending the
    prefix is deterministic and any window of it can be re-served
    byte-identically (retransmissions, multiple peers).  Symbols are
    generated lazily -- :meth:`extend` grows the columnar prefix to a
    requested length; :meth:`window` snapshots a slice.
    """

    __slots__ = ("seed", "hasher", "size", "_counts", "_key_sums",
                 "_check_sums", "_keys", "_csums", "_states", "_next")

    def __init__(self, keys: Iterable[int], seed: int = 0):
        self.seed = seed
        self.hasher = DerivedHasher.shared(1, seed)
        self.size = 0
        self._counts = array("q")
        self._key_sums = array("Q")
        self._check_sums = array("Q")
        uniq = {key & _U64 for key in keys}
        self._keys = array("Q", sorted(uniq))
        self._csums = array("Q", bytes(8 * len(uniq)))
        self._states = array("Q", bytes(8 * len(uniq)))
        #: Next stream index each key participates in (all start at 0).
        self._next = array("q", bytes(8 * len(uniq)))
        for i, key in enumerate(self._keys):
            state, csum = _initial_state(self.hasher, key)
            self._states[i] = state
            self._csums[i] = csum

    def __len__(self) -> int:
        return self.size

    @property
    def key_count(self) -> int:
        return len(self._keys)

    def extend(self, size: int) -> None:
        """Grow the generated prefix to at least ``size`` symbols."""
        if size <= self.size:
            return
        grow = size - self.size
        self._counts.extend([0] * grow)
        self._key_sums.frombytes(bytes(8 * grow))
        self._check_sums.frombytes(bytes(8 * grow))
        if (_np is not None and fastpath.fastpath_enabled()
                and len(self._keys) >= _BATCH_MIN):
            self._extend_batch(size)
        else:
            self._extend_py(size)
        self.size = size

    def _extend_py(self, size: int) -> None:
        """Scalar reference path: walk each key's stream independently."""
        counts = self._counts
        key_sums = self._key_sums
        check_sums = self._check_sums
        for i in range(len(self._keys)):
            idx = self._next[i]
            if idx >= size:
                continue
            key = self._keys[i]
            csum = self._csums[i]
            state = self._states[i]
            while idx < size:
                counts[idx] += 1
                key_sums[idx] ^= key
                check_sums[idx] ^= csum
                state, idx = _next_index(state, idx)
            self._states[i] = state
            self._next[i] = idx

    def _extend_batch(self, size: int) -> None:
        """Numpy lockstep path: all in-range keys advance together.

        Each pass applies one symbol per active key (``bincount`` for
        counts, ``bitwise_xor.at`` for the sums) then advances every
        active stream one step; identical arithmetic to the scalar
        loop, so the columns match bit for bit.
        """
        keys = _np.frombuffer(self._keys, dtype=_np.uint64)
        csums = _np.frombuffer(self._csums, dtype=_np.uint64)
        states = _np.frombuffer(self._states, dtype=_np.uint64)
        nxt = _np.frombuffer(self._next, dtype=_np.int64)
        counts = _np.frombuffer(self._counts, dtype=_np.int64)
        key_sums = _np.frombuffer(self._key_sums, dtype=_np.uint64)
        check_sums = _np.frombuffer(self._check_sums, dtype=_np.uint64)
        while True:
            active = nxt < size
            if not active.any():
                break
            idx = nxt[active]
            counts += _np.bincount(idx, minlength=counts.size)
            _np.bitwise_xor.at(key_sums, idx, keys[active])
            _np.bitwise_xor.at(check_sums, idx, csums[active])
            state = states[active] * _np.uint64(_PRNG_MULT)  # wraps mod 2^64
            u = state >> _np.uint64(32)
            gap = _np.ceil((idx + 1.5)
                           * (65536.0 / _np.sqrt(u + 1.0) - 1.0))
            gap = _np.maximum(gap.astype(_np.int64), 1)
            states[active] = state
            nxt[active] = idx + gap

    def window(self, start: int, count: int):
        """Columns of symbols ``[start, start + count)`` as array copies.

        Extends the prefix as needed; the returned triple is
        ``(counts, key_sums, check_sums)``.
        """
        if start < 0 or count < 0:
            raise ParameterError(
                f"symbol window must be non-negative: {start}, {count}")
        self.extend(start + count)
        stop = start + count
        return (self._counts[start:stop], self._key_sums[start:stop],
                self._check_sums[start:stop])


class RIBLTDecoder:
    """Peels a sender's symbol stream against a local candidate set.

    Feed sender symbols in arrival order with :meth:`add_symbols`; the
    decoder subtracts its own locally generated stream (over
    ``local_keys``) and peels the difference incrementally.  Decoding
    is ``complete`` once the subtracted prefix is all zeros -- at that
    point :attr:`local` holds keys only the *sender* has (sign +1,
    e.g. block transactions the receiver is missing) and
    :attr:`remote` holds keys only the *receiver* has (sign -1, e.g.
    Bloom false positives), matching the naming of
    :meth:`repro.pds.iblt.IBLT.decode` for a ``sender - receiver``
    subtraction.

    Recovered keys remember their stream position, so symbols arriving
    after a key was peeled are corrected on ingest and the peel
    continues across batch boundaries.
    """

    __slots__ = ("seed", "hasher", "size", "_encoder", "_counts",
                 "_key_sums", "_check_sums", "local", "remote",
                 "_peeled")

    def __init__(self, local_keys: Iterable[int], seed: int = 0):
        self.seed = seed
        self.hasher = DerivedHasher.shared(1, seed)
        self.size = 0
        self._encoder = RIBLTEncoder(local_keys, seed=seed)
        # Subtracted columns: sender stream minus the local stream.
        self._counts = array("q")
        self._key_sums = array("Q")
        self._check_sums = array("Q")
        self.local: set = set()
        self.remote: set = set()
        #: Recovered keys' forward stream positions:
        #: ``key -> [sign, csum, state, next_idx]``.
        self._peeled: dict = {}

    def __len__(self) -> int:
        return self.size

    @property
    def complete(self) -> bool:
        """True when the subtracted prefix has fully peeled to zeros.

        Vacuously false before any symbol arrives: completeness is a
        statement about observed symbols.
        """
        if self.size == 0:
            return False
        zeros = bytes(8 * self.size)
        return (self._counts.tobytes() == zeros
                and self._key_sums.tobytes() == zeros
                and self._check_sums.tobytes() == zeros)

    def add_symbols(self, counts: Sequence[int], key_sums: Sequence[int],
                    check_sums: Sequence[int]) -> bool:
        """Ingest the next batch of sender symbols; returns ``complete``.

        Batches must arrive in stream order (the caller checks the wire
        batch's ``start`` against :attr:`size`).  Raises
        :class:`MalformedIBLTError` if peeling recovers a key twice.
        """
        if not (len(counts) == len(key_sums) == len(check_sums)):
            raise ParameterError("symbol batch columns disagree in length")
        start = self.size
        stop = start + len(counts)
        self._encoder.extend(stop)
        enc_c = self._encoder._counts
        enc_k = self._encoder._key_sums
        enc_s = self._encoder._check_sums
        sub_c = self._counts
        sub_k = self._key_sums
        sub_s = self._check_sums
        for i in range(len(counts)):
            idx = start + i
            sub_c.append(counts[i] - enc_c[idx])
            sub_k.append((key_sums[i] ^ enc_k[idx]) & _U64)
            sub_s.append((check_sums[i] ^ enc_s[idx]) & _U64)
        self.size = stop
        # Keys peeled from the earlier prefix keep participating in the
        # stream: subtract them out of the new region before peeling.
        stack = []
        for key, pos in self._peeled.items():
            sign, csum, state, idx = pos
            while idx < stop:
                sub_c[idx] -= sign
                sub_k[idx] ^= key
                sub_s[idx] ^= csum
                if sub_c[idx] in (1, -1):
                    stack.append(idx)
                state, idx = _next_index(state, idx)
            pos[2] = state
            pos[3] = idx
        stack.extend(i for i in range(start, stop) if sub_c[i] in (1, -1))
        self._peel(stack)
        return self.complete

    def _peel(self, stack: list) -> None:
        sub_c = self._counts
        sub_k = self._key_sums
        sub_s = self._check_sums
        size = self.size
        while stack:
            idx = stack.pop()
            sign = sub_c[idx]
            if sign not in (1, -1):
                continue
            key = sub_k[idx]
            state, csum = _initial_state(self.hasher, key)
            if csum != sub_s[idx]:
                continue  # not a pure cell, just a coincidence of counts
            if key in self._peeled:
                raise MalformedIBLTError(
                    f"key {key:#x} decoded twice; symbol stream is "
                    "malformed")
            (self.local if sign == 1 else self.remote).add(key)
            # Peel the key out of its entire index stream within the
            # current prefix, remembering where it left off.
            i = 0
            while i < size:
                sub_c[i] -= sign
                sub_k[i] ^= key
                sub_s[i] ^= csum
                if sub_c[i] in (1, -1):
                    stack.append(i)
                state, i = _next_index(state, i)
            self._peeled[key] = [sign, csum, state, i]


def reconcile(sender_keys: Iterable[int], receiver_keys: Iterable[int],
              seed: int = 0, batch: int = 8,
              max_symbols: Optional[int] = None):
    """Run a whole exchange in memory; returns ``(decoder, symbols_used)``.

    Streams ``batch``-symbol chunks from an encoder over
    ``sender_keys`` into a decoder over ``receiver_keys`` until the
    difference decodes.  ``max_symbols`` bounds the stream (default
    generous) so a test that should converge fails loudly instead of
    spinning.
    """
    if batch < 1:
        raise ParameterError(f"batch must be >= 1, got {batch}")
    encoder = RIBLTEncoder(sender_keys, seed=seed)
    decoder = RIBLTDecoder(receiver_keys, seed=seed)
    if max_symbols is None:
        max_symbols = 64 + 8 * (encoder.key_count
                                + decoder._encoder.key_count)
    while decoder.size < max_symbols:
        counts, key_sums, check_sums = encoder.window(decoder.size, batch)
        if decoder.add_symbols(counts, key_sums, check_sums):
            return decoder, decoder.size
    raise MalformedIBLTError(
        f"stream did not decode within {max_symbols} symbols")
