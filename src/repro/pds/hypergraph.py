"""Hypergraph model of IBLT decoding (paper section 4.1).

An IBLT with ``c`` cells, ``k`` hash functions and ``j`` inserted items is
a k-partite, k-uniform hypergraph: cells are vertices (``c/k`` per
partition), items are hyperedges joining one uniformly random vertex from
each partition.  The IBLT decodes iff repeatedly removing edges incident
to a degree-1 vertex eliminates every edge -- i.e. iff the hypergraph has
an empty 2-core.

Because items enter the IBLT through cryptographic hashes, uniformly
random edges are a faithful model, and simulating the hypergraph is an
order of magnitude faster than exercising a real IBLT (the paper reports
29 s vs 426 s for j=100).  This module provides:

* :func:`decode_once` -- one peeling trial in pure Python.
* :func:`decode_many` -- a numpy-vectorized batch of trials that peels
  all trials round-by-round in parallel.

Both are used by Algorithm 1 (:mod:`repro.pds.param_search`).
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import ParameterError


def _check_shape(j: int, k: int, c: int) -> None:
    if j < 0:
        raise ParameterError(f"j must be non-negative, got {j}")
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    if c < k or c % k != 0:
        raise ParameterError(
            f"c must be a positive multiple of k (k={k}), got {c}")


def decode_once(j: int, k: int, c: int, rng: random.Random) -> bool:
    """Simulate one IBLT decode: ``j`` random edges over ``c`` cells.

    Returns True when the peeling removes every edge (empty 2-core).
    """
    _check_shape(j, k, c)
    if j == 0:
        return True
    width = c // k
    # edges[e] holds the k vertex ids of edge e.
    edges = [
        [p * width + rng.randrange(width) for p in range(k)]
        for _ in range(j)
    ]
    degree = [0] * c
    incident: list = [[] for _ in range(c)]
    for e, verts in enumerate(edges):
        for v in verts:
            degree[v] += 1
            incident[v].append(e)
    alive = [True] * j
    remaining = j
    stack = [v for v in range(c) if degree[v] == 1]
    while stack:
        v = stack.pop()
        if degree[v] != 1:
            continue
        # The single live edge at v.
        edge = next(e for e in incident[v] if alive[e])
        alive[edge] = False
        remaining -= 1
        for u in edges[edge]:
            degree[u] -= 1
            if degree[u] == 1:
                stack.append(u)
    return remaining == 0


def decode_many(j: int, k: int, c: int, trials: int,
                rng: np.random.Generator) -> int:
    """Run ``trials`` independent decode simulations; return success count.

    Vectorized: every trial's hypergraph is peeled simultaneously, one
    parallel round per iteration.  Within a round, every edge containing
    a degree-1 vertex is removed; this is a valid schedule because a
    degree-1 vertex pins exactly one live edge, so simultaneous removals
    never conflict.  Parallel peeling reaches the 2-core in O(log j)
    rounds with high probability.
    """
    _check_shape(j, k, c)
    if trials < 0:
        raise ParameterError(f"trials must be non-negative, got {trials}")
    if trials == 0:
        return 0
    if j == 0:
        return trials
    width = c // k
    offsets = (np.arange(k, dtype=np.int32) * width)[None, None, :]
    # verts[t, e, p]: vertex of edge e in partition p for trial t.
    verts = rng.integers(0, width, size=(trials, j, k), dtype=np.int32)
    verts += offsets

    alive = np.ones((trials, j), dtype=bool)
    successes = 0
    while verts.shape[0]:
        active = verts.shape[0]
        # Per-trial vertex ids made globally unique so one bincount covers
        # the whole batch.
        base = (np.arange(active, dtype=np.int64) * c)[:, None, None]
        flat = (verts + base).reshape(active, j * k)
        degree = np.bincount(
            flat[np.repeat(alive, k, axis=1)], minlength=active * c)
        deg1 = degree == 1
        # An edge is removable iff any of its vertices has degree 1; each
        # degree-1 vertex pins exactly one live edge, so removing all
        # removable edges in one parallel round never conflicts.
        removable = deg1[flat.reshape(active, j, k)].any(axis=2) & alive
        alive &= ~removable
        live_counts = alive.sum(axis=1)
        done = live_counts == 0
        stuck = ~done & ~removable.any(axis=1)
        successes += int(done.sum())
        keep = ~(done | stuck)
        if not keep.all():
            verts = verts[keep]
            alive = alive[keep]
    return successes
