"""Golomb-coded sets: the Bloom filter alternative of paper 3.3.1.

    "There are dozens of variations of Bloom filters, including Cuckoo
    Filters and Golomb Code sets.  Any alternative can be used if
    Eqs. 2, 3, 4, and 5 are updated appropriately."

A GCS encodes set membership near the information-theoretic floor of
``-n log2 f`` bits (vs the Bloom filter's ``1/ln 2`` overhead factor)
at the price of more CPU and no O(1) point queries: membership tests
decode the whole structure.  This implementation follows the BIP-158
construction: hash each item into ``[0, n/f)`` with SipHash, sort,
delta-encode, and Golomb-Rice-code the deltas with parameter
``p = log2(1/f)``.

``gcs_size_bytes`` is the analogue of Eq. 2's ``T_BF`` term, so the
protocol optimizers can be re-run with a GCS in place of filter S --
exercised by the GCS tests and the size-comparison benchmark.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.errors import ParameterError
from repro.utils.siphash import siphash24


class _BitWriter:
    def __init__(self):
        self._bits: list = []

    def write_unary(self, quotient: int) -> None:
        self._bits.extend([1] * quotient)
        self._bits.append(0)

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray((len(self._bits) + 7) // 8)
        for i, bit in enumerate(self._bits):
            if bit:
                out[i >> 3] |= 0x80 >> (i & 7)
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bits)


class _BitReader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._limit = 8 * len(data)

    def read_bit(self) -> int:
        if self._pos >= self._limit:
            raise ParameterError("GCS bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


def gcs_size_bytes(n: int, fpr: float) -> int:
    """Expected GCS size: ``n (log2(1/f) + 1.5) / 8`` bytes plus header.

    The Golomb-Rice expansion over the entropy floor is ~0.5 bits per
    element plus the unary terminator -- the GCS analogue of Eq. 2.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 < fpr <= 1.0:
        raise ParameterError(f"fpr must be in (0, 1], got {fpr}")
    if n == 0 or fpr >= 1.0:
        return 9
    p = max(0, round(-math.log2(fpr)))
    return math.ceil(n * (p + 1.5) / 8) + 9


class GolombCodedSet:
    """An immutable GCS over byte-string items (transaction IDs)."""

    def __init__(self, items: Iterable[bytes], fpr: float, seed: int = 0):
        if not 0.0 < fpr <= 1.0:
            raise ParameterError(f"fpr must be in (0, 1], got {fpr}")
        items = list(items)
        self.n = len(items)
        self.fpr = fpr
        self.seed = seed
        self._key = seed.to_bytes(16, "little")
        self.p = max(0, round(-math.log2(fpr))) if fpr < 1.0 else 0
        self._modulus = self.n << self.p if self.n else 0
        hashed = sorted(self._hash(item) for item in items)
        writer = _BitWriter()
        previous = 0
        for value in hashed:
            delta = value - previous
            previous = value
            writer.write_unary(delta >> self.p)
            writer.write_bits(delta & ((1 << self.p) - 1), self.p)
        self._blob = writer.to_bytes()

    def _hash(self, item: bytes) -> int:
        if self._modulus == 0:
            return 0
        return siphash24(self._key, item) % self._modulus

    def _decode_values(self) -> Iterator[int]:
        reader = _BitReader(self._blob)
        previous = 0
        for _ in range(self.n):
            quotient = reader.read_unary()
            remainder = reader.read_bits(self.p)
            previous += (quotient << self.p) | remainder
            yield previous

    def __contains__(self, item: bytes) -> bool:
        if self.n == 0:
            return self.fpr >= 1.0
        if self.fpr >= 1.0:
            return True
        target = self._hash(item)
        for value in self._decode_values():
            if value == target:
                return True
            if value > target:
                return False
        return False

    def serialized_size(self) -> int:
        """Wire bytes: the coded stream plus a 9-byte header (n, p, seed)."""
        return len(self._blob) + 9

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (f"GolombCodedSet(n={self.n}, fpr={self.fpr}, "
                f"bytes={self.serialized_size()})")
