"""CPISync: set reconciliation by characteristic polynomial interpolation.

Minsky, Trachtenberg & Zippel's method [41] is the paper's section 2.1
counterpoint to IBLTs: "several approaches involve more computation but
are smaller in size"; Eppstein et al. [23] show IBLTs win on CPU for
differences under ~10k while CPISync wins on bytes (it is essentially
information-optimal: one field element per difference element).
Implementing it makes that trade-off measurable inside this repository
(see ``bench_extension_cpisync``).

How it works, over a prime field GF(p) with p > the key universe:

* Party A's set has characteristic polynomial
  ``chi_A(z) = prod_{x in A} (z - x)``; likewise B.
* A sends ``chi_A`` *evaluated at m-bar agreed sample points* (plus its
  set size) -- ``m-bar`` is an upper bound on the symmetric difference.
* B divides by her own evaluations; the quotients are samples of the
  rational function ``chi_A / chi_B`` whose numerator/denominator are
  the characteristic polynomials of (A - B) and (B - A) -- everything
  common cancels.  B interpolates that rational function (a linear
  solve), and the polynomial roots are exactly the differing elements.
* Extra sample points verify the result; a bound that was too small is
  *detected*, not silently wrong.

Everything here -- field arithmetic, dense polynomials, Gaussian
elimination, probabilistic root finding (Rabin splitting) -- is from
scratch; p = 2^127 - 1 (a Mersenne prime) keeps reductions cheap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import DecodeFailure, ParameterError

#: The field modulus: the Mersenne prime 2^127 - 1 (keys are 64-bit).
FIELD_PRIME = (1 << 127) - 1

#: Serialized bytes per field element.
FIELD_BYTES = 16

#: Extra agreed evaluation points used purely for verification.
VERIFY_POINTS = 2


# ---------------------------------------------------------------------------
# Polynomials over GF(p), dense little-endian coefficient lists
# ---------------------------------------------------------------------------

def _trim(poly: list) -> list:
    while poly and poly[-1] == 0:
        poly.pop()
    return poly


def poly_eval(poly: Sequence[int], x: int, p: int = FIELD_PRIME) -> int:
    """Evaluate by Horner's rule."""
    acc = 0
    for coeff in reversed(poly):
        acc = (acc * x + coeff) % p
    return acc


def poly_mul(a: Sequence[int], b: Sequence[int],
             p: int = FIELD_PRIME) -> list:
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    return _trim(out)


def poly_divmod(num: Sequence[int], den: Sequence[int],
                p: int = FIELD_PRIME) -> tuple[list, list]:
    den = _trim(list(den))
    if not den:
        raise ParameterError("polynomial division by zero")
    num = list(num)
    inv_lead = pow(den[-1], p - 2, p)
    deg_d = len(den) - 1
    quot = [0] * max(0, len(num) - deg_d)
    for i in range(len(num) - 1, deg_d - 1, -1):
        coeff = num[i] % p
        if coeff == 0:
            continue
        factor = coeff * inv_lead % p
        quot[i - deg_d] = factor
        for j, dj in enumerate(den):
            num[i - deg_d + j] = (num[i - deg_d + j] - factor * dj) % p
    return _trim(quot), _trim(num[:deg_d])


def poly_gcd(a: Sequence[int], b: Sequence[int],
             p: int = FIELD_PRIME) -> list:
    a, b = _trim(list(a)), _trim(list(b))
    while b:
        _, r = poly_divmod(a, b, p)
        a, b = b, r
    if a:
        inv = pow(a[-1], p - 2, p)
        a = [c * inv % p for c in a]
    return a


def poly_from_roots(roots: Iterable[int], p: int = FIELD_PRIME) -> list:
    poly = [1]
    for root in roots:
        poly = poly_mul(poly, [(-root) % p, 1], p)
    return poly


def _poly_powmod(base: list, exponent: int, modulus: list,
                 p: int = FIELD_PRIME) -> list:
    """``base^exponent mod modulus`` by square-and-multiply."""
    _, result = poly_divmod([1], modulus, p)
    result = [1] if not result else result
    _, base = poly_divmod(base, modulus, p)
    while exponent:
        if exponent & 1:
            _, result = poly_divmod(poly_mul(result, base, p), modulus, p)
        base_sq = poly_mul(base, base, p)
        _, base = poly_divmod(base_sq, modulus, p)
        exponent >>= 1
    return result


def poly_roots(poly: Sequence[int], p: int = FIELD_PRIME,
               rng: random.Random | None = None,
               _depth: int = 0) -> list:
    """All roots of a polynomial that splits into distinct linear factors.

    Rabin's algorithm: ``gcd(f, (x+a)^((p-1)/2) - 1)`` splits the roots
    by quadratic-residue character of ``root + a``; random shifts ``a``
    recurse until linear.  Our inputs (characteristic polynomials of
    sets) are always square-free products of linear factors.
    """
    poly = _trim(list(poly))
    rng = rng or random.Random(0xC915)
    if len(poly) <= 1:
        return []
    if len(poly) == 2:
        inv = pow(poly[1], p - 2, p)
        return [(-poly[0] * inv) % p]
    if _depth > 200:
        raise DecodeFailure("root finding failed to converge")
    shift = rng.randrange(p)
    half = _poly_powmod([shift, 1], (p - 1) // 2, list(poly), p)
    half = list(half)
    if half:
        half[0] = (half[0] - 1) % p
    else:
        half = [(p - 1) % p]
    left = poly_gcd(poly, half, p)
    if len(left) <= 1 or len(left) == len(poly):
        return poly_roots(poly, p, rng, _depth + 1)
    right, _ = poly_divmod(poly, left, p)
    return (poly_roots(left, p, rng, _depth + 1)
            + poly_roots(right, p, rng, _depth + 1))


def _solve_linear(matrix: list, rhs: list, p: int = FIELD_PRIME) -> list:
    """Particular solution of a linear system over GF(p) (free vars = 0).

    When the difference-degree bounds overshoot the true degrees, the
    rational function is determined only up to a common polynomial
    factor, so the system is legitimately rank-deficient; any solution
    works because :func:`reconcile` strips ``gcd(P, Q)`` afterwards.
    Raises :class:`DecodeFailure` only on an *inconsistent* system.
    """
    n = len(matrix)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    cols = len(matrix[0]) if n else 0
    row = 0
    pivot_of_col: dict = {}
    for col in range(cols):
        pivot = next((r for r in range(row, n) if aug[r][col] % p), None)
        if pivot is None:
            continue  # free column: variable fixed to 0 below
        aug[row], aug[pivot] = aug[pivot], aug[row]
        inv = pow(aug[row][col], p - 2, p)
        aug[row] = [v * inv % p for v in aug[row]]
        for r in range(n):
            if r != row and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [(v - factor * w) % p
                          for v, w in zip(aug[r], aug[row])]
        pivot_of_col[col] = row
        row += 1
    # Consistency of the remaining (zeroed-out) equations.
    for r in range(row, n):
        if not any(v % p for v in aug[r][:cols]) and aug[r][cols] % p:
            raise DecodeFailure("inconsistent CPISync system")
    return [aug[pivot_of_col[c]][cols] % p if c in pivot_of_col else 0
            for c in range(cols)]


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------

def sample_points(count: int, p: int = FIELD_PRIME) -> list:
    """Agreed evaluation points, taken from the top of the field.

    Keys are < 2^64, so points >= p - count can never collide with a
    set element (which would zero a characteristic evaluation).
    """
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    return [(p - 1 - i) for i in range(count)]


@dataclass(frozen=True)
class CPISyncDigest:
    """What one party transmits: set size + evaluations at agreed points."""

    set_size: int
    evaluations: tuple
    mbar: int

    def serialized_size(self) -> int:
        """Wire bytes: the evaluations plus a small header."""
        return FIELD_BYTES * len(self.evaluations) + 9


def make_digest(items: Iterable[int], mbar: int,
                p: int = FIELD_PRIME) -> CPISyncDigest:
    """Evaluate the characteristic polynomial at ``mbar + verify`` points."""
    if mbar < 1:
        raise ParameterError(f"mbar must be >= 1, got {mbar}")
    items = list(items)
    points = sample_points(mbar + VERIFY_POINTS, p)
    evals = []
    for z in points:
        acc = 1
        for x in items:
            acc = acc * (z - x) % p
        evals.append(acc)
    return CPISyncDigest(set_size=len(items), evaluations=tuple(evals),
                         mbar=mbar)


def reconcile(digest: CPISyncDigest, local_items: Iterable[int],
              p: int = FIELD_PRIME) -> tuple[frozenset, frozenset]:
    """Recover (remote-only, local-only) from a digest and the local set.

    Raises :class:`DecodeFailure` when the true symmetric difference
    exceeds the digest's ``mbar`` bound (detected via the verification
    points or a singular system), mirroring an IBLT decode failure.
    """
    local_items = list(local_items)
    local_digest = make_digest(local_items, digest.mbar, p)
    points = sample_points(digest.mbar + VERIFY_POINTS, p)

    # f(z) = chi_remote(z) / chi_local(z) = P(z) / Q(z) where P, Q are
    # the characteristic polynomials of the two difference sets.
    ratios = [
        remote * pow(local, p - 2, p) % p
        for remote, local in zip(digest.evaluations,
                                 local_digest.evaluations)
    ]

    delta = digest.set_size - len(local_items)
    mbar = digest.mbar
    # deg P - deg Q = delta and deg P + deg Q <= mbar; pad to parity.
    if (mbar + delta) % 2:
        mbar += 1
    deg_p = (mbar + delta) // 2
    deg_q = (mbar - delta) // 2
    if deg_p < 0 or deg_q < 0:
        raise DecodeFailure(
            f"size delta {delta} exceeds the m-bar bound {digest.mbar}")

    # Monic P, Q: unknowns are the lower coefficients.  Each sample
    # point yields  ratio * Q(z) - P(z) = 0.
    unknowns = deg_p + deg_q
    if unknowns == 0:
        remote_only: frozenset = frozenset()
        local_only: frozenset = frozenset()
        _verify(ratios, points, [1], [1], p)
        return remote_only, local_only

    rows = []
    rhs = []
    equations = min(len(points), unknowns + VERIFY_POINTS)
    for z, ratio in list(zip(points, ratios))[:equations]:
        row = [0] * unknowns
        zp = 1
        for j in range(deg_p):            # -P's lower coefficients
            row[j] = (-zp) % p
            zp = zp * z % p
        z_to_degp = pow(z, deg_p, p)
        zq = 1
        for j in range(deg_q):            # +ratio * Q's lower coefficients
            row[deg_p + j] = ratio * zq % p
            zq = zq * z % p
        z_to_degq = pow(z, deg_q, p)
        rows.append(row)
        rhs.append((z_to_degp - ratio * z_to_degq) % p)
    solution = _solve_linear(rows, rhs, p)

    poly_p = solution[:deg_p] + [1]
    poly_q = solution[deg_p:] + [1]
    common = poly_gcd(poly_p, poly_q, p)
    if len(common) > 1:
        poly_p, _ = poly_divmod(poly_p, common, p)
        poly_q, _ = poly_divmod(poly_q, common, p)
    _verify(ratios, points, poly_p, poly_q, p)

    remote_roots = poly_roots(poly_p, p)
    local_roots = poly_roots(poly_q, p)
    if (len(remote_roots) != len(poly_p) - 1
            or len(local_roots) != len(poly_q) - 1):
        raise DecodeFailure("difference polynomials failed to split")
    local_set = set(local_items)
    local_only = frozenset(local_roots) & frozenset(local_set)
    if len(local_only) != len(local_roots):
        raise DecodeFailure("recovered roots are not local elements")
    return frozenset(remote_roots), frozenset(local_roots)


def _verify(ratios, points, poly_p, poly_q, p) -> None:
    for z, ratio in zip(points, ratios):
        qz = poly_eval(poly_q, z, p)
        pz = poly_eval(poly_p, z, p)
        if (ratio * qz - pz) % p:
            raise DecodeFailure(
                "verification points disagree: symmetric difference "
                "exceeds the m-bar bound")


def cpisync_size_bytes(mbar: int) -> int:
    """Wire size of a digest for a difference bound of ``mbar``."""
    if mbar < 1:
        raise ParameterError(f"mbar must be >= 1, got {mbar}")
    return FIELD_BYTES * (mbar + VERIFY_POINTS) + 9
