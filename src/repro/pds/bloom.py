"""A from-scratch Bloom filter.

The Graphene protocols size their filters straight from the target false
positive rate, so this implementation exposes the same knobs the paper's
equations use:

* ``BloomFilter.from_fpr(n, f)`` builds a filter for ``n`` insertions with
  false positive rate ``f``, occupying ``-n log2(f) / (8 ln 2)`` bytes --
  the ``T_BF`` term of Eq. 2.
* ``f >= 1`` degenerates to a match-everything filter of zero bytes; the
  paper leans on this when ``m - n`` approaches zero ("the special case
  where Graphene has an FPR of 1 is equivalent to not sending a Bloom
  filter at all").

Items are inserted by slicing their digest into ``k`` index words
(hash-splitting, section 6.3) rather than rehashing ``k`` times.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ParameterError
from repro.utils.hashing import sha256, split_digest

_LN2 = math.log(2.0)
_LN2_SQ = _LN2 * _LN2


def bloom_size_bits(n: int, f: float) -> int:
    """Return the optimal bit count for ``n`` items at false positive rate ``f``."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 < f:
        raise ParameterError(f"FPR must be positive, got {f}")
    if n == 0 or f >= 1.0:
        return 0
    return max(1, math.ceil(-n * math.log(f) / _LN2_SQ))


def bloom_size_bytes(n: int, f: float) -> int:
    """Return the serialized size in bytes of an optimal filter (Eq. 2's T_BF)."""
    return (bloom_size_bits(n, f) + 7) // 8


def optimal_hash_count(bits: int, n: int) -> int:
    """Return the FPR-minimizing number of hash functions, ``(bits/n) ln 2``."""
    if n <= 0 or bits <= 0:
        return 1
    return max(1, round(bits / n * _LN2))


class BloomFilter:
    """Bloom filter over byte-string items (transaction IDs).

    Parameters
    ----------
    nbits:
        Size of the bit array.  ``0`` creates a degenerate filter that
        reports every item as present and serializes to zero bytes.
    k:
        Number of hash functions.
    seed:
        Mixed into the item digest so that independent filters (S, R, F in
        the protocols) make independent mistakes.
    """

    __slots__ = ("nbits", "k", "seed", "count", "_bits", "_target_fpr")

    def __init__(self, nbits: int, k: int, seed: int = 0):
        if nbits < 0:
            raise ParameterError(f"nbits must be non-negative, got {nbits}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.nbits = nbits
        self.k = k
        self.seed = seed
        self.count = 0
        self._bits = bytearray((nbits + 7) // 8)
        self._target_fpr = 1.0

    @classmethod
    def from_fpr(cls, n: int, fpr: float, seed: int = 0) -> "BloomFilter":
        """Build a filter sized optimally for ``n`` items at rate ``fpr``.

        ``fpr`` is clamped to 1.0; at or above 1.0 the filter is
        degenerate (zero bits, matches everything), which is exactly the
        behaviour Protocol 1 wants as ``m - n`` approaches zero.
        """
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        if fpr <= 0.0:
            raise ParameterError(f"fpr must be positive, got {fpr}")
        if fpr >= 1.0 or n == 0:
            filt = cls(0, 1, seed=seed)
            filt._target_fpr = 1.0
            return filt
        nbits = bloom_size_bits(n, fpr)
        k = optimal_hash_count(nbits, n)
        filt = cls(nbits, k, seed=seed)
        filt._target_fpr = fpr
        return filt

    @property
    def is_degenerate(self) -> bool:
        """True when the filter matches everything (zero-bit filter)."""
        return self.nbits == 0

    @property
    def target_fpr(self) -> float:
        """The FPR this filter was sized for (1.0 when degenerate)."""
        return self._target_fpr

    def _digest(self, item: bytes) -> bytes:
        if self.seed:
            return sha256(self.seed.to_bytes(8, "little") + item)
        # Transaction IDs are already cryptographic hashes; reuse them
        # directly (hash-splitting, paper 6.3) when no reseeding is needed.
        return item if len(item) >= 32 else sha256(item)

    def insert(self, item: bytes) -> None:
        """Insert ``item`` (a byte string, typically a 32-byte txid)."""
        self.count += 1
        if self.nbits == 0:
            return
        for idx in split_digest(self._digest(item), self.k, self.nbits):
            self._bits[idx >> 3] |= 1 << (idx & 7)

    def update(self, items: Iterable[bytes]) -> None:
        """Insert every item of ``items``."""
        for item in items:
            self.insert(item)

    def __contains__(self, item: bytes) -> bool:
        if self.nbits == 0:
            return True
        digest = self._digest(item)
        return all(
            self._bits[idx >> 3] & (1 << (idx & 7))
            for idx in split_digest(digest, self.k, self.nbits)
        )

    def actual_fpr(self) -> float:
        """Expected FPR given the current load: ``(1 - e^{-kn/m})^k``."""
        if self.nbits == 0:
            return 1.0
        if self.count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.k * self.count / self.nbits)
        return fill ** self.k

    def serialized_size(self) -> int:
        """Wire size in bytes: the bit array plus a small fixed header.

        Header: 4 bytes bit-count + 1 byte hash-count + 4 bytes seed,
        mirroring the filterload layout of BIP-37.
        """
        return len(self._bits) + 9

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"BloomFilter(nbits={self.nbits}, k={self.k}, "
                f"count={self.count}, fpr~{self.actual_fpr():.2e})")
