"""A from-scratch Bloom filter.

The Graphene protocols size their filters straight from the target false
positive rate, so this implementation exposes the same knobs the paper's
equations use:

* ``BloomFilter.from_fpr(n, f)`` builds a filter for ``n`` insertions with
  false positive rate ``f``, occupying ``-n log2(f) / (8 ln 2)`` bytes --
  the ``T_BF`` term of Eq. 2.
* ``f >= 1`` degenerates to a match-everything filter of zero bytes; the
  paper leans on this when ``m - n`` approaches zero ("the special case
  where Graphene has an FPR of 1 is equivalent to not sending a Bloom
  filter at all").

Items are inserted by slicing their digest into ``k`` index words
(hash-splitting, section 6.3) rather than rehashing ``k`` times.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Iterable

from repro.errors import ParameterError
from repro.utils.hashing import sha256, split_digest

_LN2 = math.log(2.0)
_LN2_SQ = _LN2 * _LN2

_UNPACK_8I = struct.Struct("<8I").unpack

try:  # optional vector backend for the batch entry points
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always ships numpy
    _np = None

_U64 = 0xFFFFFFFFFFFFFFFF

#: Below this many items the scalar loop beats numpy's fixed call overhead.
_BATCH_MIN = 32

#: Seeded-digest cache shared across *all* filter instances, keyed
#: ``(seed, item)``.  The protocols rebuild filters with the same
#: derived seed for every relay of the same block (S, R, F use fixed
#: seed offsets), so the SHA-256 over each txid repeats across filters;
#: a digest depends only on ``(seed, item)``, making cross-instance
#: sharing deterministic.  Bounded: oldest half evicted at the cap.
_DIGEST_CACHE: dict = {}
_DIGEST_CACHE_CAP = 1 << 17


def _remember_digest(key: tuple, digest: bytes) -> bytes:
    if len(_DIGEST_CACHE) >= _DIGEST_CACHE_CAP:
        for stale in list(_DIGEST_CACHE)[:_DIGEST_CACHE_CAP // 2]:
            del _DIGEST_CACHE[stale]
    _DIGEST_CACHE[key] = digest
    return digest


#: Whole-batch digest-blob cache for :meth:`BloomFilter._batch_indices`,
#: keyed ``(seed, item_count, sha256(joined items))``.  A relay sweeps
#: the *same* mempool txid list through a filter of the same seed on
#: every block, so the concatenated per-item digest blob repeats batch
#: for batch; one join plus one SHA-256 replaces the per-item cache
#: loop.  Only fixed-width (32-byte) items use it -- with the count in
#: the key the concatenation is then unambiguous.
_BLOB_CACHE: dict = {}
_BLOB_CACHE_CAP = 256


def bloom_size_bits(n: int, f: float) -> int:
    """Return the optimal bit count for ``n`` items at false positive rate ``f``."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 < f:
        raise ParameterError(f"FPR must be positive, got {f}")
    if n == 0 or f >= 1.0:
        return 0
    return max(1, math.ceil(-n * math.log(f) / _LN2_SQ))


def bloom_size_bytes(n: int, f: float) -> int:
    """Return the serialized size in bytes of an optimal filter (Eq. 2's T_BF)."""
    return (bloom_size_bits(n, f) + 7) // 8


def optimal_hash_count(bits: int, n: int) -> int:
    """Return the FPR-minimizing number of hash functions, ``(bits/n) ln 2``."""
    if n <= 0 or bits <= 0:
        return 1
    return max(1, round(bits / n * _LN2))


class BloomFilter:
    """Bloom filter over byte-string items (transaction IDs).

    Parameters
    ----------
    nbits:
        Size of the bit array.  ``0`` creates a degenerate filter that
        reports every item as present and serializes to zero bytes.
    k:
        Number of hash functions.
    seed:
        Mixed into the item digest so that independent filters (S, R, F in
        the protocols) make independent mistakes.
    """

    __slots__ = ("nbits", "k", "seed", "count", "_bits", "_target_fpr",
                 "_seed_prefix", "_seed_mid", "_index_cache")

    #: Bound on the per-filter item -> bit-index cache (see ``_indices``).
    CACHE_CAP = 1 << 16

    def __init__(self, nbits: int, k: int, seed: int = 0):
        if nbits < 0:
            raise ParameterError(f"nbits must be non-negative, got {nbits}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.nbits = nbits
        self.k = k
        self.seed = seed
        self.count = 0
        self._bits = bytearray((nbits + 7) // 8)
        self._target_fpr = 1.0
        self._seed_prefix = seed.to_bytes(8, "little") if seed else b""
        # Midstate with the seed prefix absorbed: each digest copies it
        # and feeds only the item bytes.
        self._seed_mid = hashlib.sha256(self._seed_prefix) if seed else None
        self._index_cache: dict = {}

    @classmethod
    def from_fpr(cls, n: int, fpr: float, seed: int = 0) -> "BloomFilter":
        """Build a filter sized optimally for ``n`` items at rate ``fpr``.

        ``fpr`` is clamped to 1.0; at or above 1.0 the filter is
        degenerate (zero bits, matches everything), which is exactly the
        behaviour Protocol 1 wants as ``m - n`` approaches zero.
        """
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        if fpr <= 0.0:
            raise ParameterError(f"fpr must be positive, got {fpr}")
        if fpr >= 1.0 or n == 0:
            filt = cls(0, 1, seed=seed)
            filt._target_fpr = 1.0
            return filt
        nbits = bloom_size_bits(n, fpr)
        k = optimal_hash_count(nbits, n)
        filt = cls(nbits, k, seed=seed)
        filt._target_fpr = fpr
        return filt

    @property
    def is_degenerate(self) -> bool:
        """True when the filter matches everything (zero-bit filter)."""
        return self.nbits == 0

    @property
    def target_fpr(self) -> float:
        """The FPR this filter was sized for (1.0 when degenerate)."""
        return self._target_fpr

    def _digest(self, item: bytes) -> bytes:
        if self.seed:
            key = (self.seed, item)
            digest = _DIGEST_CACHE.get(key)
            if digest is None:
                h = self._seed_mid.copy()
                h.update(item)
                digest = _remember_digest(key, h.digest())
            return digest
        # Transaction IDs are already cryptographic hashes; reuse them
        # directly (hash-splitting, paper 6.3) when no reseeding is needed.
        return item if len(item) >= 32 else sha256(item)

    def _indices(self, item: bytes) -> tuple:
        """Return the ``k`` bit indices for ``item``, cached per filter.

        The protocols probe and insert the same txid against one filter
        within a session (e.g. partitioning a block through R, then
        building F over the hits); the cache makes the second touch free.
        """
        cache = self._index_cache
        idx = cache.get(item)
        if idx is None:
            digest = self._digest(item)
            k, nbits = self.k, self.nbits
            if k <= 8 and len(digest) == 32:
                # Inline hash splitting: identical to split_digest for a
                # 32-byte digest and k direct words, minus the generator.
                idx = tuple(w % nbits for w in _UNPACK_8I(digest)[:k])
            else:
                idx = tuple(split_digest(digest, k, nbits))
            if len(cache) >= self.CACHE_CAP:
                for stale in list(cache)[:self.CACHE_CAP // 2]:
                    del cache[stale]
            cache[item] = idx
        return idx

    def _batch_indices(self, items: list):
        """Return the ``(len(items), k)`` bit-index matrix, vectorized.

        Returns ``None`` when the vector path cannot run (no numpy, or
        unseeded items that are not 32-byte digests); callers fall back
        to the scalar loop.  Index values match :meth:`_indices` exactly:
        the digests and the hash-splitting arithmetic are the same, only
        computed column-wise.
        """
        if _np is None:
            return None
        if self.seed:
            seed = self.seed
            joined = b"".join(items)
            blob_key = None
            if len(joined) == 32 * len(items):
                blob_key = (seed, len(items),
                            hashlib.sha256(joined).digest())
                blob = _BLOB_CACHE.get(blob_key)
                if blob is not None:
                    words = _np.frombuffer(blob, dtype="<u4")
                    return self._split_words(words.reshape(len(items), 8))
            mid = self._seed_mid
            cache = _DIGEST_CACHE
            digests = []
            append = digests.append
            for item in items:
                key = (seed, item)
                digest = cache.get(key)
                if digest is None:
                    h = mid.copy()
                    h.update(item)
                    digest = _remember_digest(key, h.digest())
                append(digest)
            blob = b"".join(digests)
            if blob_key is not None:
                if len(_BLOB_CACHE) >= _BLOB_CACHE_CAP:
                    for stale in list(_BLOB_CACHE)[:_BLOB_CACHE_CAP // 2]:
                        del _BLOB_CACHE[stale]
                _BLOB_CACHE[blob_key] = blob
        else:
            if any(len(item) != 32 for item in items):
                return None
            blob = b"".join(items)
        words = _np.frombuffer(blob, dtype="<u4").reshape(len(items), 8)
        return self._split_words(words)

    def _split_words(self, words):
        """Map a ``(batch, 8)`` u32 digest-word matrix to bit indices."""
        k, nbits = self.k, self.nbits
        if k <= 8:
            return (words[:, :k] % _np.uint32(nbits)).astype(_np.intp)
        h1 = words[:, 0].astype(_np.uint64)
        h2 = words[:, 1].astype(_np.uint64) | _np.uint64(1)
        derived = [((h1 + _np.uint64(i) * h2) & _np.uint64(_U64))
                   % _np.uint64(nbits) for i in range(8, k)]
        direct = words % _np.uint32(nbits)
        return _np.column_stack([direct] + derived).astype(_np.intp)

    def insert(self, item: bytes) -> None:
        """Insert ``item`` (a byte string, typically a 32-byte txid)."""
        if self.nbits == 0:
            # Degenerate match-everything filter: nothing is folded into
            # the (empty) bit array, so nothing is counted either --
            # ``count`` tracks the load of the bit array, keeping
            # ``actual_fpr`` and wire round-trips consistent.
            return
        self.count += 1
        bits = self._bits
        for idx in self._indices(item):
            bits[idx >> 3] |= 1 << (idx & 7)

    def update(self, items: Iterable[bytes]) -> None:
        """Insert every item of ``items`` (batch path)."""
        if self.nbits == 0:
            return
        items = list(items)
        if not items:
            return
        if len(items) >= _BATCH_MIN:
            idx = self._batch_indices(items)
            if idx is not None:
                masks = _np.uint8(1) << (idx & 7).astype(_np.uint8)
                _np.bitwise_or.at(
                    _np.frombuffer(self._bits, dtype=_np.uint8),
                    idx >> 3, masks)
                self.count += len(items)
                return
        bits = self._bits
        indices = self._indices
        for item in items:
            for idx in indices(item):
                bits[idx >> 3] |= 1 << (idx & 7)
        self.count += len(items)

    def __contains__(self, item: bytes) -> bool:
        if self.nbits == 0:
            return True
        bits = self._bits
        for idx in self._indices(item):
            if not bits[idx >> 3] & (1 << (idx & 7)):
                return False
        return True

    def contains_many(self, items: Iterable[bytes]) -> list:
        """Return ``[item in self for item in items]`` in one sweep."""
        if self.nbits == 0:
            return [True for _ in items]
        items = list(items)
        if len(items) >= _BATCH_MIN:
            idx = self._batch_indices(items)
            if idx is not None:
                bits = _np.frombuffer(self._bits, dtype=_np.uint8)
                masks = _np.uint8(1) << (idx & 7).astype(_np.uint8)
                return (bits[idx >> 3] & masks).astype(bool) \
                    .all(axis=1).tolist()
        bits = self._bits
        indices = self._indices
        out = []
        append = out.append
        for item in items:
            for idx in indices(item):
                if not bits[idx >> 3] & (1 << (idx & 7)):
                    append(False)
                    break
            else:
                append(True)
        return out

    def actual_fpr(self) -> float:
        """Expected FPR given the current load: ``(1 - e^{-kn/m})^k``."""
        if self.nbits == 0:
            return 1.0
        if self.count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.k * self.count / self.nbits)
        return fill ** self.k

    def serialized_size(self) -> int:
        """Wire size in bytes: the bit array plus a small fixed header.

        Header: 4 bytes bit-count + 1 byte hash-count + 4 bytes seed,
        mirroring the filterload layout of BIP-37.
        """
        return len(self._bits) + 9

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"BloomFilter(nbits={self.nbits}, k={self.k}, "
                f"count={self.count}, fpr~{self.actual_fpr():.2e})")
