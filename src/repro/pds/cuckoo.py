"""Cuckoo filter: the second Bloom alternative named in paper 3.3.1.

Fan et al. (CoNEXT 2014): store an ``f``-bit fingerprint of each item
in one of two buckets, the second derived by partial-key cuckoo hashing
(``i2 = i1 xor hash(fingerprint)``), evicting on collision.  Supports
deletion (which Bloom filters cannot) and beats Bloom space for FPRs
below ~3%.

Plugging it into Graphene means replacing Eq. 2's ``T_BF`` with
:func:`cuckoo_size_bytes`; the tests do exactly that to show when the
swap pays.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from repro.errors import ParameterError
from repro.utils.hashing import sha256

#: Entries per bucket (the paper's sweet spot).
BUCKET_SLOTS = 4

#: Target load factor achievable with 4-slot buckets.
LOAD_FACTOR = 0.95

_MAX_KICKS = 500


def fingerprint_bits_for(fpr: float) -> int:
    """Fingerprint width for a target FPR: ``ceil(log2(2b/f))`` bits."""
    if not 0.0 < fpr < 1.0:
        raise ParameterError(f"fpr must be in (0, 1), got {fpr}")
    return max(1, math.ceil(math.log2(2 * BUCKET_SLOTS / fpr)))


def cuckoo_size_bytes(n: int, fpr: float) -> int:
    """Serialized size of a cuckoo filter for ``n`` items at rate ``fpr``.

    ``n / alpha`` slots of ``f`` bits each, plus a 9-byte header to
    match the Bloom accounting.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if n == 0 or fpr >= 1.0:
        return 9
    bits = fingerprint_bits_for(fpr)
    slots = math.ceil(n / LOAD_FACTOR)
    return math.ceil(slots * bits / 8) + 9


class CuckooFilter:
    """A from-scratch cuckoo filter over byte-string items."""

    def __init__(self, capacity: int, fpr: float = 0.01, seed: int = 0):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.fpr = fpr
        self.seed = seed
        self.fingerprint_bits = fingerprint_bits_for(fpr)
        self._fp_mask = (1 << self.fingerprint_bits) - 1
        nbuckets = max(1, math.ceil(capacity / (BUCKET_SLOTS * LOAD_FACTOR)))
        # Power-of-two bucket count keeps the xor trick a bijection.
        self.nbuckets = 1 << (nbuckets - 1).bit_length()
        self._buckets: list = [[] for _ in range(self.nbuckets)]
        self.count = 0
        self._rng = random.Random(seed ^ 0xCC)

    # ------------------------------------------------------------------

    def _hashes(self, item: bytes) -> tuple[int, int]:
        digest = sha256(self.seed.to_bytes(8, "little") + item)
        fp = (int.from_bytes(digest[:4], "little") & self._fp_mask) or 1
        i1 = int.from_bytes(digest[4:8], "little") % self.nbuckets
        return fp, i1

    def _alt_index(self, index: int, fp: int) -> int:
        spread = int.from_bytes(
            sha256(fp.to_bytes(8, "little"))[:4], "little")
        return (index ^ spread) % self.nbuckets

    def insert(self, item: bytes) -> bool:
        """Insert ``item``; False when the filter is too full (overflow)."""
        fp, i1 = self._hashes(item)
        i2 = self._alt_index(i1, fp)
        for index in (i1, i2):
            if len(self._buckets[index]) < BUCKET_SLOTS:
                self._buckets[index].append(fp)
                self.count += 1
                return True
        # Evict: kick a random resident to its alternate bucket.
        index = self._rng.choice((i1, i2))
        for _ in range(_MAX_KICKS):
            victim_slot = self._rng.randrange(len(self._buckets[index]))
            fp, self._buckets[index][victim_slot] = (
                self._buckets[index][victim_slot], fp)
            index = self._alt_index(index, fp)
            if len(self._buckets[index]) < BUCKET_SLOTS:
                self._buckets[index].append(fp)
                self.count += 1
                return True
        return False

    def update(self, items: Iterable[bytes]) -> int:
        """Insert many; returns how many were accepted."""
        return sum(1 for item in items if self.insert(item))

    def __contains__(self, item: bytes) -> bool:
        fp, i1 = self._hashes(item)
        if fp in self._buckets[i1]:
            return True
        return fp in self._buckets[self._alt_index(i1, fp)]

    def delete(self, item: bytes) -> bool:
        """Remove one copy of ``item``; False if it was never inserted."""
        fp, i1 = self._hashes(item)
        for index in (i1, self._alt_index(i1, fp)):
            if fp in self._buckets[index]:
                self._buckets[index].remove(fp)
                self.count -= 1
                return True
        return False

    def serialized_size(self) -> int:
        """Wire bytes: all slots at fingerprint width, plus a header."""
        bits = self.nbuckets * BUCKET_SLOTS * self.fingerprint_bits
        return math.ceil(bits / 8) + 9

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"CuckooFilter(buckets={self.nbuckets}, "
                f"fp_bits={self.fingerprint_bits}, count={self.count})")
