"""A from-scratch Invertible Bloom Lookup Table (IBLT).

Follows the construction of Goodrich & Mitzenmacher as summarized in
section 2.1 of the paper:

* ``c`` cells partitioned into ``k`` contiguous ranges of ``c/k`` cells;
  each item is inserted once per partition at an index chosen by that
  partition's hash function (this is the k-partite hypergraph view of
  section 4.1).
* Each cell stores a signed ``count``, the xor of all inserted keys
  (``keySum``) and the xor of a per-key checksum (``checkSum``).  The
  checksum catches the "x values minus a non-subset of x-1 values"
  special case the paper describes.
* Two IBLTs with identical ``(c, k, seed)`` can be subtracted cell-wise;
  peeling the result recovers the symmetric difference of the inserted
  sets, or fails partially if the difference exceeds what ``c`` supports.

Keys are 64-bit integers -- the 8-byte short transaction IDs that
Graphene stores in its IBLTs.

The decode loop includes the section 6.1 mitigation for adversarially
malformed IBLTs: if the same key is peeled twice, decoding halts with
:class:`~repro.errors.MalformedIBLTError` instead of looping forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import MalformedIBLTError, ParameterError
from repro.utils.hashing import DerivedHasher

_U64 = 0xFFFFFFFFFFFFFFFF

#: Default serialized cell width in bytes: 2 (count) + 8 (keySum) + 2 (checkSum).
DEFAULT_CELL_BYTES = 12

#: Fixed per-IBLT wire header: cell count (4) + k (1) + seed (4) + salt (3).
IBLT_HEADER_BYTES = 12


@dataclass
class IBLTCell:
    """One IBLT cell: signed count, xor-of-keys, xor-of-checksums."""

    count: int = 0
    key_sum: int = 0
    check_sum: int = 0

    def is_empty(self) -> bool:
        return self.count == 0 and self.key_sum == 0 and self.check_sum == 0


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of peeling a (possibly subtracted) IBLT.

    Attributes
    ----------
    complete:
        True when every cell emptied -- the full symmetric difference was
        recovered.
    local:
        Keys present only in the left operand (cells with count +1).
    remote:
        Keys present only in the right operand (cells with count -1).
    """

    complete: bool
    local: frozenset = field(default_factory=frozenset)
    remote: frozenset = field(default_factory=frozenset)

    def __iter__(self) -> Iterator:
        # Allow ``complete, local, remote = iblt.decode()`` unpacking.
        return iter((self.complete, self.local, self.remote))


class IBLT:
    """Invertible Bloom Lookup Table over 64-bit keys.

    Parameters
    ----------
    cells:
        Total number of cells.  Rounded up to a multiple of ``k``.
    k:
        Number of hash functions / partitions.
    seed:
        Seed of the hash family.  Sibling IBLTs intended for ping-pong
        decoding must use *different* seeds (paper 4.2).
    cell_bytes:
        Serialized width of one cell, for wire-size accounting.
    """

    __slots__ = ("cells", "k", "seed", "cell_bytes", "hasher", "_table", "count")

    def __init__(self, cells: int, k: int = 4, seed: int = 0,
                 cell_bytes: int = DEFAULT_CELL_BYTES):
        if cells < 1:
            raise ParameterError(f"cells must be >= 1, got {cells}")
        if k < 2:
            raise ParameterError(f"k must be >= 2, got {k}")
        if cell_bytes < 1:
            raise ParameterError(f"cell_bytes must be >= 1, got {cell_bytes}")
        # Round up so the cell array divides evenly into k partitions.
        if cells % k:
            cells += k - cells % k
        self.cells = cells
        self.k = k
        self.seed = seed
        self.cell_bytes = cell_bytes
        self.hasher = DerivedHasher(k, seed=seed)
        self._table = [IBLTCell() for _ in range(cells)]
        self.count = 0

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def _apply(self, key: int, delta: int) -> None:
        key &= _U64
        csum = self.hasher.checksum(key)
        for idx in self.hasher.partitioned_indices(key, self.cells):
            cell = self._table[idx]
            cell.count += delta
            cell.key_sum ^= key
            cell.check_sum ^= csum

    def insert(self, key: int) -> None:
        """Insert a 64-bit key."""
        self._apply(key, +1)
        self.count += 1

    def erase(self, key: int) -> None:
        """Remove a key previously inserted (or force a count of -1)."""
        self._apply(key, -1)
        self.count -= 1

    def update(self, keys: Iterable[int]) -> None:
        """Insert every key of ``keys``."""
        for key in keys:
            self.insert(key)

    @classmethod
    def from_keys(cls, keys: Iterable[int], cells: int, k: int = 4,
                  seed: int = 0, cell_bytes: int = DEFAULT_CELL_BYTES) -> "IBLT":
        """Build an IBLT containing ``keys``."""
        iblt = cls(cells, k=k, seed=seed, cell_bytes=cell_bytes)
        iblt.update(keys)
        return iblt

    def copy(self) -> "IBLT":
        """Return a deep copy."""
        clone = IBLT(self.cells, k=self.k, seed=self.seed,
                     cell_bytes=self.cell_bytes)
        for mine, theirs in zip(clone._table, self._table):
            mine.count = theirs.count
            mine.key_sum = theirs.key_sum
            mine.check_sum = theirs.check_sum
        clone.count = self.count
        return clone

    # ------------------------------------------------------------------
    # Set reconciliation
    # ------------------------------------------------------------------

    def compatible_with(self, other: "IBLT") -> bool:
        """True when ``other`` can be subtracted from this IBLT."""
        return (self.cells == other.cells and self.k == other.k
                and self.seed == other.seed)

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return the cell-wise difference ``self (-) other``.

        Peeling the result recovers keys unique to ``self`` with count +1
        and keys unique to ``other`` with count -1.
        """
        if not self.compatible_with(other):
            raise ParameterError(
                "IBLTs must share (cells, k, seed) to be subtracted: "
                f"({self.cells},{self.k},{self.seed}) vs "
                f"({other.cells},{other.k},{other.seed})")
        diff = IBLT(self.cells, k=self.k, seed=self.seed,
                    cell_bytes=self.cell_bytes)
        for out, a, b in zip(diff._table, self._table, other._table):
            out.count = a.count - b.count
            out.key_sum = a.key_sum ^ b.key_sum
            out.check_sum = a.check_sum ^ b.check_sum
        diff.count = self.count - other.count
        return diff

    def __sub__(self, other: "IBLT") -> "IBLT":
        return self.subtract(other)

    def _is_pure(self, cell: IBLTCell) -> bool:
        # Purity rests on the checksum alone: a cell whose keySum happens
        # to xor to zero (including the legitimate key 0) is still pure
        # iff the checkSum matches that key's checksum.
        return (cell.count in (1, -1)
                and self.hasher.checksum(cell.key_sum) == cell.check_sum)

    def peel(self, key: int, sign: int) -> None:
        """Remove a key known (from elsewhere) to be in this difference.

        Used by ping-pong decoding (paper 4.2): items recovered from a
        sibling IBLT are peeled out of this one before retrying.  ``sign``
        is +1 for a local-only key, -1 for a remote-only key.
        """
        if sign not in (1, -1):
            raise ParameterError(f"sign must be +1 or -1, got {sign}")
        self._apply(key, -sign if sign == 1 else 1)

    def decode(self) -> DecodeResult:
        """Peel this IBLT, returning the recovered symmetric difference.

        Non-destructive: peeling operates on a scratch copy.  Raises
        :class:`MalformedIBLTError` when the same key is recovered twice,
        the section 6.1 defence against adversarial endless-loop IBLTs.
        """
        scratch = self.copy()
        local: set = set()
        remote: set = set()
        stack = [i for i, cell in enumerate(scratch._table)
                 if scratch._is_pure(cell)]
        while stack:
            idx = stack.pop()
            cell = scratch._table[idx]
            if not scratch._is_pure(cell):
                continue
            key = cell.key_sum
            sign = cell.count
            if key in local or key in remote:
                raise MalformedIBLTError(
                    f"key {key:#x} decoded twice; IBLT is malformed")
            (local if sign == 1 else remote).add(key)
            scratch._apply(key, -sign)
            for nxt in scratch.hasher.partitioned_indices(key, scratch.cells):
                if scratch._is_pure(scratch._table[nxt]):
                    stack.append(nxt)
        complete = all(cell.is_empty() for cell in scratch._table)
        return DecodeResult(complete, frozenset(local), frozenset(remote))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def serialized_size(self) -> int:
        """Wire size in bytes: header plus ``cells * cell_bytes``."""
        return IBLT_HEADER_BYTES + self.cells * self.cell_bytes

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"IBLT(cells={self.cells}, k={self.k}, seed={self.seed}, "
                f"count={self.count})")
