"""A from-scratch Invertible Bloom Lookup Table (IBLT).

Follows the construction of Goodrich & Mitzenmacher as summarized in
section 2.1 of the paper:

* ``c`` cells partitioned into ``k`` contiguous ranges of ``c/k`` cells;
  each item is inserted once per partition at an index chosen by that
  partition's hash function (this is the k-partite hypergraph view of
  section 4.1).
* Each cell stores a signed ``count``, the xor of all inserted keys
  (``keySum``) and the xor of a per-key checksum (``checkSum``).  The
  checksum catches the "x values minus a non-subset of x-1 values"
  special case the paper describes.
* Two IBLTs with identical ``(c, k, seed)`` can be subtracted cell-wise;
  peeling the result recovers the symmetric difference of the inserted
  sets, or fails partially if the difference exceeds what ``c`` supports.

Keys are 64-bit integers -- the 8-byte short transaction IDs that
Graphene stores in its IBLTs.

Storage is columnar: three flat parallel arrays (``array('q')`` counts,
``array('Q')`` keySums, ``array('Q')`` checkSums) instead of a list of
cell objects.  ``subtract`` XORs whole columns through big-integer
conversion, ``copy`` is three C-level memcpys, emptiness is a memcmp
against zeros, and ``decode`` peels on scratch columns with a worklist
of candidate pure cells rather than cloning a cell-object table.  Hash
words come from the per-family :meth:`DerivedHasher.entry` cache, so a
key digested while building ``I`` costs nothing to peel out of
``I (-) I'``.  :class:`IBLTCell` survives as a snapshot value object for
introspection (``cell_at``); the wire format and decode semantics are
unchanged from the seed implementation.

The decode loop includes the section 6.1 mitigation for adversarially
malformed IBLTs: if the same key is peeled twice, decoding halts with
:class:`~repro.errors.MalformedIBLTError` instead of looping forever.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import MalformedIBLTError, ParameterError
from repro.utils.hashing import DerivedHasher

try:  # optional vector backend for batch updates
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always ships numpy
    _np = None

_U64 = 0xFFFFFFFFFFFFFFFF

#: Below this many keys the scalar loop beats numpy's fixed call overhead.
_BATCH_MIN = 32

#: Default serialized cell width in bytes: 2 (count) + 8 (keySum) + 2 (checkSum).
DEFAULT_CELL_BYTES = 12

#: Folded-column snapshots for whole-batch :meth:`IBLT.update` calls on
#: pristine tables, keyed ``(cells, k, seed, key tuple)``.  Bounded;
#: oldest half evicted at the cap.
_FOLD_CACHE: dict = {}
_FOLD_CACHE_CAP = 64

#: Fixed per-IBLT wire header, 12 bytes:
#: ``cells u32 | k u8 | seed u32 | cell_bytes u8 | pad u16``
#: (see :func:`repro.codec.encode_iblt` and docs/PROTOCOL.md section 1.2).
IBLT_HEADER_BYTES = 12


@dataclass
class IBLTCell:
    """Snapshot of one IBLT cell: signed count, xor-of-keys, xor-of-checksums.

    The live table is columnar; instances of this class are copies handed
    out by :meth:`IBLT.cell_at` -- mutating one does not touch the IBLT.
    """

    count: int = 0
    key_sum: int = 0
    check_sum: int = 0

    def is_empty(self) -> bool:
        return self.count == 0 and self.key_sum == 0 and self.check_sum == 0


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of peeling a (possibly subtracted) IBLT.

    Attributes
    ----------
    complete:
        True when every cell emptied -- the full symmetric difference was
        recovered.
    local:
        Keys present only in the left operand (cells with count +1).
    remote:
        Keys present only in the right operand (cells with count -1).
    """

    complete: bool
    local: frozenset = field(default_factory=frozenset)
    remote: frozenset = field(default_factory=frozenset)

    def __iter__(self) -> Iterator:
        # Allow ``complete, local, remote = iblt.decode()`` unpacking.
        return iter((self.complete, self.local, self.remote))


class IBLT:
    """Invertible Bloom Lookup Table over 64-bit keys.

    Parameters
    ----------
    cells:
        Total number of cells.  Rounded up to a multiple of ``k``.
    k:
        Number of hash functions / partitions.
    seed:
        Seed of the hash family.  Sibling IBLTs intended for ping-pong
        decoding must use *different* seeds (paper 4.2).
    cell_bytes:
        Serialized width of one cell, for wire-size accounting.
    """

    __slots__ = ("cells", "k", "seed", "cell_bytes", "hasher",
                 "_counts", "_key_sums", "_check_sums", "count",
                 "_pristine")

    def __init__(self, cells: int, k: int = 4, seed: int = 0,
                 cell_bytes: int = DEFAULT_CELL_BYTES):
        if cells < 0:
            raise ParameterError(f"cells must be >= 0, got {cells}")
        if k < 2:
            raise ParameterError(f"k must be >= 2, got {k}")
        if cell_bytes < 1:
            raise ParameterError(f"cell_bytes must be >= 1, got {cell_bytes}")
        # Round up so the cell array divides evenly into k partitions.
        # A 0-cell table is allowed to exist (a degenerate sizing input
        # must fail a *decode*, not crash construction) but can never
        # hold keys and never reports a complete decode.
        if cells % k:
            cells += k - cells % k
        self.cells = cells
        self.k = k
        self.seed = seed
        self.cell_bytes = cell_bytes
        self.hasher = DerivedHasher.shared(k, seed)
        self._counts = array("q", bytes(8 * cells))
        self._key_sums = array("Q", bytes(8 * cells))
        self._check_sums = array("Q", bytes(8 * cells))
        self.count = 0
        #: True while the columns are untouched since construction; the
        #: guard for the whole-batch fold cache in :meth:`update`.  Every
        #: path that writes the columns -- in this class or outside it
        #: (the wire codec, fuzz corruption) -- must clear it.
        self._pristine = True

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def _apply(self, key: int, delta: int) -> None:
        if not self.cells:
            raise ParameterError("cannot store keys in a 0-cell IBLT")
        key &= _U64
        self._pristine = False
        words, csum = self.hasher.entry(key)
        csum &= 0xFFFF
        width = self.cells // self.k
        counts, key_sums, check_sums = \
            self._counts, self._key_sums, self._check_sums
        base = 0
        for w in words:
            idx = base + w % width
            counts[idx] += delta
            key_sums[idx] ^= key
            check_sums[idx] ^= csum
            base += width

    def insert(self, key: int) -> None:
        """Insert a 64-bit key."""
        self._apply(key, +1)
        self.count += 1

    def erase(self, key: int) -> None:
        """Remove a key previously inserted (or force a count of -1)."""
        self._apply(key, -1)
        self.count -= 1

    def update(self, keys: Iterable[int]) -> None:
        """Insert every key of ``keys`` (batch path: one hash lookup each).

        Large batches go through the numpy backend: one digest-blob sweep
        via :meth:`DerivedHasher.batch_entries`, then the three columns
        are updated wholesale (``bincount`` for counts, ``bitwise_xor.at``
        for the sums).  The scalar loop below is the fallback and the
        small-batch fast path; both orders of operation commute (cell
        updates are adds and xors), so the resulting columns are
        identical.
        """
        keys = [key & _U64 for key in keys]
        if not keys:
            return
        if not self.cells:
            raise ParameterError("cannot store keys in a 0-cell IBLT")
        if _np is not None and len(keys) >= _BATCH_MIN:
            fkey = None
            if self._pristine:
                # Whole-batch fold memo: a receiver rebuilds I' from the
                # identical short-ID list on every relay of a block, so
                # the folded columns repeat verbatim.  Keyed by geometry
                # + exact key tuple; only pristine (all-zero) tables can
                # take the snapshot, since the fold starts from zero.
                fkey = (self.cells, self.k, self.seed, tuple(keys))
                snap = _FOLD_CACHE.get(fkey)
                if snap is not None:
                    self._counts[:] = snap[0]
                    self._key_sums[:] = snap[1]
                    self._check_sums[:] = snap[2]
                    self.count += len(keys)
                    self._pristine = False
                    return
            batched = self.hasher.batch_entries(keys)
            if batched is not None:
                self._update_batch(keys, *batched)
                self.count += len(keys)
                self._pristine = False
                if fkey is not None:
                    if len(_FOLD_CACHE) >= _FOLD_CACHE_CAP:
                        for stale in list(_FOLD_CACHE)[:_FOLD_CACHE_CAP // 2]:
                            del _FOLD_CACHE[stale]
                    _FOLD_CACHE[fkey] = (array("q", self._counts),
                                         array("Q", self._key_sums),
                                         array("Q", self._check_sums))
                return
        self._pristine = False
        entry = self.hasher.entry
        width = self.cells // self.k
        counts, key_sums, check_sums = \
            self._counts, self._key_sums, self._check_sums
        for key in keys:
            words, csum = entry(key)
            csum &= 0xFFFF
            base = 0
            for w in words:
                idx = base + w % width
                counts[idx] += 1
                key_sums[idx] ^= key
                check_sums[idx] ^= csum
                base += width
        self.count += len(keys)

    def _update_batch(self, keys: list, words, csums) -> None:
        """Fold ``keys`` into the columns through writable numpy views."""
        k, cells = self.k, self.cells
        width = cells // k
        offsets = _np.arange(0, cells, width, dtype=_np.uint64)
        idx = (words % _np.uint64(width) + offsets).ravel().astype(_np.intp)
        counts = _np.frombuffer(self._counts, dtype=_np.int64)
        counts += _np.bincount(idx, minlength=cells)
        _np.bitwise_xor.at(
            _np.frombuffer(self._key_sums, dtype=_np.uint64), idx,
            _np.repeat(_np.array(keys, dtype=_np.uint64), k))
        _np.bitwise_xor.at(
            _np.frombuffer(self._check_sums, dtype=_np.uint64), idx,
            _np.repeat(csums & _np.uint64(0xFFFF), k))

    @classmethod
    def from_keys(cls, keys: Iterable[int], cells: int, k: int = 4,
                  seed: int = 0, cell_bytes: int = DEFAULT_CELL_BYTES) -> "IBLT":
        """Build an IBLT containing ``keys``."""
        iblt = cls(cells, k=k, seed=seed, cell_bytes=cell_bytes)
        iblt.update(keys)
        return iblt

    def copy(self) -> "IBLT":
        """Return a deep copy (three column memcpys)."""
        clone = IBLT(self.cells, k=self.k, seed=self.seed,
                     cell_bytes=self.cell_bytes)
        clone._counts[:] = self._counts
        clone._key_sums[:] = self._key_sums
        clone._check_sums[:] = self._check_sums
        clone.count = self.count
        clone._pristine = False
        return clone

    # ------------------------------------------------------------------
    # Set reconciliation
    # ------------------------------------------------------------------

    def compatible_with(self, other: "IBLT") -> bool:
        """True when ``other`` can be subtracted from this IBLT."""
        return (self.cells == other.cells and self.k == other.k
                and self.seed == other.seed)

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return the cell-wise difference ``self (-) other``.

        Peeling the result recovers keys unique to ``self`` with count +1
        and keys unique to ``other`` with count -1.
        """
        if not self.compatible_with(other):
            raise ParameterError(
                "IBLTs must share (cells, k, seed) to be subtracted: "
                f"({self.cells},{self.k},{self.seed}) vs "
                f"({other.cells},{other.k},{other.seed})")
        diff = IBLT(self.cells, k=self.k, seed=self.seed,
                    cell_bytes=self.cell_bytes)
        if _np is not None:
            _np.subtract(_np.frombuffer(self._counts, dtype=_np.int64),
                         _np.frombuffer(other._counts, dtype=_np.int64),
                         out=_np.frombuffer(diff._counts, dtype=_np.int64))
        else:
            diff._counts = array("q", [a - b for a, b in
                                       zip(self._counts, other._counts)])
        # XOR columns wholesale: per-element XOR carries nothing between
        # lanes, so one big-integer XOR over the raw column bytes is the
        # exact element-wise result at C speed.
        diff._key_sums = _xor_column(self._key_sums, other._key_sums)
        diff._check_sums = _xor_column(self._check_sums, other._check_sums)
        diff.count = self.count - other.count
        diff._pristine = False
        return diff

    def __sub__(self, other: "IBLT") -> "IBLT":
        return self.subtract(other)

    def peel(self, key: int, sign: int) -> None:
        """Remove a key known (from elsewhere) to be in this difference.

        Used by ping-pong decoding (paper 4.2): items recovered from a
        sibling IBLT are peeled out of this one before retrying.  ``sign``
        is +1 for a local-only key, -1 for a remote-only key.
        """
        if sign not in (1, -1):
            raise ParameterError(f"sign must be +1 or -1, got {sign}")
        self._apply(key, -sign)

    def decode(self) -> DecodeResult:
        """Peel this IBLT, returning the recovered symmetric difference.

        Non-destructive: peeling operates on scratch copies of the three
        columns.  Raises :class:`MalformedIBLTError` when the same key is
        recovered twice, the section 6.1 defence against adversarial
        endless-loop IBLTs.

        A 0-cell table reports a clean decode *failure*: with no cells
        there is no evidence the difference is empty, and the all-zero
        "complete" answer would be a silently wrong set.
        """
        if not self.cells:
            return DecodeResult(False)
        counts = array("q", self._counts)
        key_sums = array("Q", self._key_sums)
        check_sums = array("Q", self._check_sums)
        entry = self.hasher.entry
        width = self.cells // self.k
        local: set = set()
        remote: set = set()
        stack = [i for i in range(self.cells) if counts[i] in (1, -1)]
        while stack:
            idx = stack.pop()
            sign = counts[idx]
            if sign not in (1, -1):
                continue
            key = key_sums[idx]
            words, csum = entry(key)
            if csum & 0xFFFF != check_sums[idx]:
                continue
            if key in local or key in remote:
                raise MalformedIBLTError(
                    f"key {key:#x} decoded twice; IBLT is malformed")
            (local if sign == 1 else remote).add(key)
            csum &= 0xFFFF
            base = 0
            for w in words:
                nxt = base + w % width
                counts[nxt] -= sign
                key_sums[nxt] ^= key
                check_sums[nxt] ^= csum
                base += width
                if counts[nxt] in (1, -1):
                    stack.append(nxt)
        zeros = bytes(8 * self.cells)
        complete = (counts.tobytes() == zeros
                    and key_sums.tobytes() == zeros
                    and check_sums.tobytes() == zeros)
        return DecodeResult(complete, frozenset(local), frozenset(remote))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cell_at(self, idx: int) -> IBLTCell:
        """Return a snapshot of cell ``idx`` (mutations do not write back)."""
        return IBLTCell(self._counts[idx], self._key_sums[idx],
                        self._check_sums[idx])

    def xor_cell(self, idx: int, key: int, delta: int) -> None:
        """Fold ``key`` (with checksum) into the single cell ``idx``.

        This is *not* a normal insertion -- it touches one cell instead of
        ``k`` -- and exists so attack constructions (paper 6.1 malformed
        IBLTs) and white-box tests can build inconsistent tables.
        """
        key &= _U64
        self._pristine = False
        self._counts[idx] += delta
        self._key_sums[idx] ^= key
        self._check_sums[idx] ^= self.hasher.checksum(key)

    def is_empty(self) -> bool:
        """True when every cell is all-zero."""
        zeros = bytes(8 * self.cells)
        return (self._counts.tobytes() == zeros
                and self._key_sums.tobytes() == zeros
                and self._check_sums.tobytes() == zeros)

    def serialized_size(self) -> int:
        """Wire size in bytes: header plus ``cells * cell_bytes``."""
        return IBLT_HEADER_BYTES + self.cells * self.cell_bytes

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"IBLT(cells={self.cells}, k={self.k}, seed={self.seed}, "
                f"count={self.count})")


def _xor_column(a: array, b: array) -> array:
    """Element-wise XOR of two equal-shape unsigned columns."""
    if _np is not None:
        out = array("Q", bytes(8 * len(a)))
        _np.bitwise_xor(_np.frombuffer(a, dtype=_np.uint64),
                        _np.frombuffer(b, dtype=_np.uint64),
                        out=_np.frombuffer(out, dtype=_np.uint64))
        return out
    blob = (int.from_bytes(a.tobytes(), "little")
            ^ int.from_bytes(b.tobytes(), "little"))
    out = array("Q")
    out.frombytes(blob.to_bytes(8 * len(a), "little"))
    return out
