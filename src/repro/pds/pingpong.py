"""Ping-pong decoding of two sibling IBLTs (paper section 4.2).

Graphene Protocol 2 leaves the receiver holding two subtracted IBLTs --
``I (-) I'`` from Protocol 1 and ``J (-) J'`` from Protocol 2 -- built
over (roughly) the same symmetric difference but with independent hash
families.  When one fails to decode fully, the items its sibling *did*
recover can be peeled out of it, possibly unlocking further peeling; the
roles then alternate until neither side makes progress or one side
empties.  The paper measures this to improve Protocol 2's decode rate by
several orders of magnitude (Fig. 16).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ParameterError
from repro.pds.iblt import IBLT, DecodeResult


def pingpong_decode(first: IBLT, second: IBLT) -> DecodeResult:
    """Jointly decode two subtracted IBLTs over the same set difference.

    Parameters are *difference* IBLTs (results of :meth:`IBLT.subtract`).
    They must use independent hash seeds to be useful; this is the
    caller's responsibility (the protocols always do).

    Returns a :class:`DecodeResult` whose ``local``/``remote`` sets are
    the union of everything recovered from either IBLT and whose
    ``complete`` flag reports whether *either* side fully emptied --
    which certifies the union is the entire symmetric difference.
    """
    sides = [first.copy(), second.copy()]
    known: list[set] = [set(), set()]  # [local(+1), remote(-1)] keys seen
    while True:
        progressed = False
        for idx, side in enumerate(sides):
            result = side.decode()
            if result.complete:
                # This sibling accounted for every remaining item; together
                # with what was already peeled, the difference is complete.
                return DecodeResult(
                    True,
                    frozenset(known[0] | result.local),
                    frozenset(known[1] | result.remote),
                )
            other = sides[1 - idx]
            for sign, keys in ((1, result.local), (-1, result.remote)):
                bucket = known[0] if sign == 1 else known[1]
                for key in keys:
                    if key in bucket:
                        continue
                    bucket.add(key)
                    progressed = True
                    # Remove from both: 'side' so its own retry shrinks,
                    # 'other' so the sibling can keep peeling.
                    side.peel(key, sign)
                    other.peel(key, sign)
        if not progressed:
            return DecodeResult(False, frozenset(known[0]), frozenset(known[1]))


def pingpong_decode_many(diffs: Sequence[IBLT]) -> DecodeResult:
    """Jointly decode any number of sibling difference IBLTs.

    The paper (end of section 4.2) suggests this extension: "a receiver
    could ask many neighbors for the same block and the IBLTs can be
    jointly decoded with this approach."  Each round, every IBLT is
    partially decoded and all newly recovered items are peeled out of
    every sibling; the loop ends when any IBLT empties (full recovery
    certified) or no sibling makes progress.

    All inputs must be difference IBLTs over the same symmetric
    difference, built with mutually independent hash seeds.
    """
    if not diffs:
        raise ParameterError("need at least one IBLT")
    sides = [iblt.copy() for iblt in diffs]
    known_local: set = set()
    known_remote: set = set()
    while True:
        progressed = False
        for side in sides:
            result = side.decode()
            if result.complete:
                return DecodeResult(
                    True,
                    frozenset(known_local | result.local),
                    frozenset(known_remote | result.remote))
            for sign, keys, bucket in ((1, result.local, known_local),
                                       (-1, result.remote, known_remote)):
                for key in keys:
                    if key in bucket:
                        continue
                    bucket.add(key)
                    progressed = True
                    for other in sides:
                        other.peel(key, sign)
        if not progressed:
            return DecodeResult(False, frozenset(known_local),
                                frozenset(known_remote))
