"""Probabilistic data structures: Bloom filters, IBLTs, and their tuning.

Everything in this package is implemented from scratch:

* :class:`~repro.pds.bloom.BloomFilter` -- classic Bloom filter with the
  size/FPR relationship the paper uses (Eq. 2), plus the hash-splitting
  optimization of section 6.3.
* :class:`~repro.pds.iblt.IBLT` -- Invertible Bloom Lookup Table with
  subtraction and peeling decode, including the malformed-IBLT guard of
  section 6.1.
* :mod:`~repro.pds.hypergraph` -- the k-partite, k-uniform hypergraph
  model of IBLT decoding from section 4.1.
* :mod:`~repro.pds.param_search` -- Algorithm 1 (IBLT-Param-Search).
* :mod:`~repro.pds.param_table` -- precomputed optimal (c, k) tables and
  the conservative lookup used by the Graphene protocols.
* :mod:`~repro.pds.pingpong` -- ping-pong decoding of two sibling IBLTs
  (section 4.2).
"""

from repro.pds.bloom import BloomFilter, bloom_size_bytes, optimal_hash_count
from repro.pds.iblt import IBLT, IBLTCell, DecodeResult
from repro.pds.param_table import IBLTParamTable, default_param_table
from repro.pds.pingpong import pingpong_decode

__all__ = [
    "BloomFilter",
    "bloom_size_bytes",
    "optimal_hash_count",
    "IBLT",
    "IBLTCell",
    "DecodeResult",
    "IBLTParamTable",
    "default_param_table",
    "pingpong_decode",
]
