"""Dependency-free counter/gauge/histogram registry.

The relay stack already emits one :class:`~repro.core.telemetry.MessageEvent`
per message; this module folds those streams (plus the nodes' own
counters) into named metric series that can be sliced per node, per
phase, per outcome, and snapshotted to JSON.  The registry is a pure
observer: collection reads finished state, it never schedules simulator
events or consumes randomness, so attaching it cannot perturb a run.

Metric identity is ``name`` plus a frozen label set, Prometheus-style::

    registry.counter("relay_bytes", node="n03", phase="p1").inc(512)
    registry.sum("relay_bytes", node="n03")     # across phases
    registry.sum("relay_bytes")                 # simulator-wide

:func:`collect_run_metrics` is the one folding rule shared by the CLI
``report`` command, the smoke-test run report, and the tests -- so the
table a human reads and the invariant CI checks are computed from the
same series.  By construction its byte counters agree with
:meth:`CostBreakdown.from_events
<repro.core.sizing.CostBreakdown.from_events>` over the same streams.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.telemetry import EventRecorder
from repro.errors import ParameterError

#: Default latency buckets (seconds) for exchange-duration histograms --
#: spans a LAN roundtrip up to the recovery ladder's worst case.
LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0)


def _labels_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ParameterError(f"counters only go up, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (set, not accumulated)."""

    value: float = 0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram with cumulative-style snapshots.

    ``bounds`` are upper bucket edges; observations above the last
    bound land in the implicit ``+Inf`` bucket.  ``quantile(q)``
    returns the upper edge of the bucket holding the q-th observation
    (the observed maximum for the overflow bucket) -- coarse, but
    bias-free and dependency-free.
    """

    bounds: Tuple[float, ...] = LATENCY_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    max_seen: float = 0.0

    def __post_init__(self):
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ParameterError("histogram bounds must be sorted and "
                                 f"non-empty, got {self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1
        self.max_seen = max(self.max_seen, value)

    def quantile(self, q: float) -> float:
        if not 0 <= q <= 1:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                return (self.bounds[i] if i < len(self.bounds)
                        else self.max_seen)
        return self.max_seen

    def as_dict(self) -> dict:
        buckets = {str(bound): self.counts[i]
                   for i, bound in enumerate(self.bounds)}
        buckets["+Inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.total,
                "max": self.max_seen, "buckets": buckets}


class MetricsRegistry:
    """Named, labelled metric series with deterministic snapshots."""

    def __init__(self):
        self._counters: Dict[tuple, Counter] = {}
        self._gauges: Dict[tuple, Gauge] = {}
        self._histograms: Dict[tuple, Histogram] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _labels_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _labels_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels) -> Histogram:
        key = (name, _labels_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                bounds=tuple(buckets) if buckets else LATENCY_BUCKETS)
        return metric

    # -- slicing ---------------------------------------------------------

    def series(self, name: str, **labels):
        """Yield ``(labels_dict, metric)`` for every matching series.

        A series matches when its labels are a superset of ``labels``
        (so ``series("relay_bytes", node="n01")`` spans all phases).
        """
        want = set(_labels_key(labels))
        for store in (self._counters, self._gauges, self._histograms):
            for (metric_name, metric_labels), metric in store.items():
                if metric_name == name and want <= set(metric_labels):
                    yield dict(metric_labels), metric

    def sum(self, name: str, **labels) -> float:
        """Total value across all counter/gauge series matching ``labels``."""
        return sum(metric.value for _, metric in self.series(name, **labels)
                   if not isinstance(metric, Histogram))

    def label_values(self, name: str, label: str) -> List[str]:
        """Sorted distinct values ``label`` takes across ``name`` series."""
        values = {found[label] for found, _ in self.series(name)
                  if label in found}
        return sorted(values)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain, deterministic (sorted-key) dict of every series."""
        return {
            "counters": {
                _series_name(name, labels): metric.value
                for (name, labels), metric in sorted(self._counters.items())
            },
            "gauges": {
                _series_name(name, labels): metric.value
                for (name, labels), metric in sorted(self._gauges.items())
            },
            "histograms": {
                _series_name(name, labels): metric.as_dict()
                for (name, labels), metric in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _fold_stream(registry: MetricsRegistry, prefix: str, node_id: str,
                 events) -> None:
    if isinstance(events, EventRecorder) and events.consistent():
        # The recorder already folded this stream at append time; emit
        # its aggregates straight into the counters.  Same numbers as
        # the per-event loop below (series identity is name + labels;
        # snapshot order is sorted), just without re-walking the stream.
        for direction, count in events.direction_counts.items():
            registry.counter(f"{prefix}_messages", node=node_id,
                             direction=direction).inc(count)
        for phase, nbytes in events.phase_bytes.items():
            registry.counter(f"{prefix}_bytes", node=node_id,
                             phase=phase).inc(nbytes)
        for part, nbytes in events.part_totals.items():
            registry.counter(f"{prefix}_part_bytes", node=node_id,
                             part=part).inc(nbytes)
        for outcome, count in events.outcome_counts.items():
            registry.counter(f"{prefix}_outcomes", node=node_id,
                             outcome=outcome).inc(count)
        for outcome, nbytes in events.outcome_bytes.items():
            registry.counter(f"{prefix}_outcome_bytes", node=node_id,
                             outcome=outcome).inc(nbytes)
        return
    for event in events:
        registry.counter(f"{prefix}_messages", node=node_id,
                         direction=event.direction).inc()
        registry.counter(f"{prefix}_bytes", node=node_id,
                         phase=event.phase).inc(event.wire_bytes)
        for part, nbytes in event.parts.items():
            registry.counter(f"{prefix}_part_bytes", node=node_id,
                             part=part).inc(nbytes)
        if event.outcome:
            registry.counter(f"{prefix}_outcomes", node=node_id,
                             outcome=event.outcome).inc()
            registry.counter(f"{prefix}_outcome_bytes", node=node_id,
                             outcome=event.outcome).inc(event.wire_bytes)


def collect_run_metrics(nodes, tracer=None,
                        registry: Optional[MetricsRegistry] = None
                        ) -> MetricsRegistry:
    """Fold a finished simulation into a metrics registry.

    ``nodes`` are :class:`~repro.net.node.Node` objects after
    ``simulator.run()``; ``tracer`` (optional) contributes exchange
    latency histograms from its assembled spans.  Byte counters fold
    the same per-relay telemetry streams ``CostBreakdown.from_events``
    consumes, so totals agree by construction (an invariant
    :func:`repro.obs.report.check_metrics_match_costs` asserts).
    """
    registry = registry or MetricsRegistry()
    for node in nodes:
        node_id = node.node_id
        for events in node.relay_telemetry.values():
            _fold_stream(registry, "relay", node_id, events)
        for state in node._sync_sessions.values():
            _fold_stream(registry, "sync", node_id, state.events)
        registry.counter("relay_timeouts", node=node_id).inc(
            node.relay_timeouts)
        registry.counter("relay_retries", node=node_id).inc(
            node.relay_retries)
        registry.counter("relay_failures", node=node_id).inc(
            node.relay_failures)
        registry.gauge("mempool_size", node=node_id).set(len(node.mempool))
        registry.gauge("blocks_held", node=node_id).set(len(node.blocks))
        registry.gauge("peer_bytes_sent", node=node_id).set(
            node.total_bytes_sent())
    decoded = registry.sum("relay_outcomes", outcome="decoded")
    resolved = decoded + registry.sum("relay_outcomes", outcome="fallback") \
        + registry.sum("relay_outcomes", outcome="failed")
    registry.gauge("decode_success_rate").set(
        decoded / resolved if resolved else 1.0)
    if tracer is not None:
        for span in tracer.spans():
            if span.status == "open":
                continue
            registry.histogram("exchange_seconds", kind=span.kind).observe(
                span.end - span.start)
    return registry
