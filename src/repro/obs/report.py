"""Machine-readable run reports with accounting invariants.

A :class:`RunReport` is what a simulation run leaves behind for CI: a
named list of checked :class:`Invariant` results plus a metrics
snapshot, serialized to JSON (``results/run_report.json`` from
``scripts/smoke_net.py``).  The point is that CI catches *accounting
drift*, not just crashes: a refactor that silently double-charges
retry bytes or diverges the simulator from the loopback accounting
fails the report check even though every exchange still completes.

The invariants this module knows how to check:

* **loopback/simulator byte conservation** -- a simulated relay's
  telemetry folds to the exact :class:`CostBreakdown` the loopback
  session produces for the same scenario
  (:func:`check_cost_parity`);
* **retry bytes are a subset of total bytes** -- every
  ``outcome="retry"`` event re-charges a byte decomposition that some
  earlier send of the same command in the same stream actually carried
  (:func:`check_stream_invariants`);
* **metrics equal the fold** -- the metrics registry's byte counters
  sum to ``CostBreakdown.from_events`` over the same streams, part by
  part (:func:`check_metrics_match_costs`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional

from repro.core.sizing import CostBreakdown
from repro.core.telemetry import total_wire_bytes
from repro.obs.metrics import MetricsRegistry

#: Telemetry phases, re-exported for table rendering order.
from repro.core.telemetry import PHASES


@dataclass
class Invariant:
    """One named pass/fail check with a human-readable detail."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class RunReport:
    """Accumulates invariants and metrics for one run."""

    name: str
    invariants: List[Invariant] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    context: dict = field(default_factory=dict)

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        """Record one check; returns ``ok`` so callers can branch."""
        self.invariants.append(Invariant(name, bool(ok), detail))
        return bool(ok)

    def extend(self, invariants: Iterable[Invariant]) -> None:
        self.invariants.extend(invariants)

    def add_metrics(self, registry: MetricsRegistry) -> None:
        self.metrics = registry.snapshot()

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    @property
    def failed(self) -> List[Invariant]:
        return [inv for inv in self.invariants if not inv.ok]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "invariants": [inv.as_dict() for inv in self.invariants],
            "context": self.context,
            "metrics": self.metrics,
        }

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=1,
                                   sort_keys=True) + "\n")
        return path


# ---------------------------------------------------------------------------
# Invariant checkers
# ---------------------------------------------------------------------------

def check_cost_parity(name: str, expected: CostBreakdown,
                      actual: CostBreakdown) -> Invariant:
    """Byte conservation: two accountings of one exchange must agree."""
    expected_dict, actual_dict = expected.as_dict(), actual.as_dict()
    if expected_dict == actual_dict:
        return Invariant(name, True,
                         f"{expected.total(include_txs=True)} bytes, "
                         "part-for-part")
    diffs = {part: (expected_dict[part], actual_dict[part])
             for part in expected_dict
             if expected_dict[part] != actual_dict[part]}
    return Invariant(name, False, f"mismatched parts: {diffs}")


def _retry_invariant(events) -> Optional[str]:
    """None if retries are honest; else a description of the drift.

    A retry re-emits an earlier request verbatim, so its byte
    decomposition must match some preceding *sent* event of the same
    command -- and retry bytes can never exceed the stream total.
    """
    seen_sends = []
    retry_bytes = 0
    for event in events:
        if event.outcome == "retry":
            retry_bytes += event.wire_bytes
            matches = any(prev.command == event.command
                          and dict(prev.parts) == dict(event.parts)
                          for prev in seen_sends)
            if not matches:
                return (f"retry of {event.command!r} charges "
                        f"{dict(event.parts)} which no earlier send of "
                        "that command carried")
        if event.direction == "sent":
            seen_sends.append(event)
    total = total_wire_bytes(events, include_txs=True)
    if retry_bytes > total:
        return f"retry bytes {retry_bytes} exceed stream total {total}"
    return None


def check_stream_invariants(streams: dict,
                            prefix: str = "relay") -> List[Invariant]:
    """Per-stream accounting checks over ``{key: [MessageEvent]}``.

    * every part name folds into :class:`CostBreakdown` (unknown part
      names mean a producer drifted from the schema);
    * retry events re-charge bytes an earlier send actually carried,
      and retry bytes stay within the stream total.
    """
    invariants = []
    part_errors, retry_errors = [], []
    for key, events in streams.items():
        label = key.hex()[:12] if isinstance(key, bytes) else str(key)
        try:
            CostBreakdown.from_events(events)
        except Exception as exc:  # unknown part / negative bytes
            part_errors.append(f"{label}: {exc}")
        drift = _retry_invariant(events)
        if drift is not None:
            retry_errors.append(f"{label}: {drift}")
    invariants.append(Invariant(
        f"{prefix}_parts_fold_to_costbreakdown", not part_errors,
        "; ".join(part_errors) or f"{len(streams)} streams"))
    invariants.append(Invariant(
        f"{prefix}_retry_bytes_within_total", not retry_errors,
        "; ".join(retry_errors) or f"{len(streams)} streams"))
    return invariants


def check_metrics_match_costs(registry: MetricsRegistry,
                              streams: dict,
                              prefix: str = "relay") -> Invariant:
    """The registry's byte counters equal the CostBreakdown fold.

    Compares part-by-part: ``{prefix}_part_bytes{part=X}`` summed over
    nodes must equal field ``X`` of ``CostBreakdown.from_events`` over
    the concatenation of ``streams``, and the phase-bucketed
    ``{prefix}_bytes`` total must equal ``total(include_txs=True)``.
    """
    merged = CostBreakdown()
    for events in streams.values():
        merged = merged.merge(CostBreakdown.from_events(events))
    mismatches = []
    for part, expected in merged.as_dict().items():
        measured = registry.sum(f"{prefix}_part_bytes", part=part)
        if measured != expected:
            mismatches.append(f"{part}: metrics={measured} "
                              f"costbreakdown={expected}")
    grand_expected = merged.total(include_txs=True)
    grand_measured = registry.sum(f"{prefix}_bytes")
    if grand_measured != grand_expected:
        mismatches.append(f"total: metrics={grand_measured} "
                          f"costbreakdown={grand_expected}")
    return Invariant(
        f"{prefix}_metrics_match_costbreakdown", not mismatches,
        "; ".join(mismatches) or f"{grand_expected} bytes, part-for-part")


# ---------------------------------------------------------------------------
# Table rendering (the `python -m repro report` output)
# ---------------------------------------------------------------------------

def _format_row(cells, widths) -> str:
    return "  ".join(str(cell).rjust(width)
                     for cell, width in zip(cells, widths))


def render_byte_table(registry: MetricsRegistry,
                      prefix: str = "relay") -> str:
    """Per-node bytes by phase, plus a totals row.

    Every cell is a counter sum from the registry, so the grand total
    is exactly what :func:`check_metrics_match_costs` compares against
    ``CostBreakdown.from_events``.
    """
    nodes = registry.label_values(f"{prefix}_bytes", "node")
    header = ["node"] + list(PHASES) + ["total"]
    rows = [header]
    for node in nodes:
        cells = [int(registry.sum(f"{prefix}_bytes", node=node,
                                  phase=phase)) for phase in PHASES]
        rows.append([node] + cells + [sum(cells)])
    totals = [int(registry.sum(f"{prefix}_bytes", phase=phase))
              for phase in PHASES]
    rows.append(["total"] + totals + [sum(totals)])
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(header))]
    lines = [_format_row(rows[0], widths),
             _format_row(["-" * w for w in widths], widths)]
    lines += [_format_row(row, widths) for row in rows[1:]]
    return "\n".join(lines)


def render_outcome_table(registry: MetricsRegistry,
                         prefix: str = "relay") -> str:
    """Per-node exchange outcomes (count and bytes per outcome)."""
    nodes = registry.label_values(f"{prefix}_outcomes", "node")
    outcomes = registry.label_values(f"{prefix}_outcomes", "outcome")
    if not outcomes:
        return "(no resolved exchanges)"
    header = ["node"] + [f"{o}(n/B)" for o in outcomes]
    rows = [header]
    for node in nodes:
        cells = []
        for outcome in outcomes:
            count = int(registry.sum(f"{prefix}_outcomes", node=node,
                                     outcome=outcome))
            nbytes = int(registry.sum(f"{prefix}_outcome_bytes", node=node,
                                      outcome=outcome))
            cells.append(f"{count}/{nbytes}")
        rows.append([node] + cells)
    totals = []
    for outcome in outcomes:
        count = int(registry.sum(f"{prefix}_outcomes", outcome=outcome))
        nbytes = int(registry.sum(f"{prefix}_outcome_bytes",
                                  outcome=outcome))
        totals.append(f"{count}/{nbytes}")
    rows.append(["total"] + totals)
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(header))]
    lines = [_format_row(rows[0], widths),
             _format_row(["-" * w for w in widths], widths)]
    lines += [_format_row(row, widths) for row in rows[1:]]
    return "\n".join(lines)
