"""Observability over the relay event stream: traces, metrics, reports.

The relay engines already emit a structured
:class:`~repro.core.telemetry.MessageEvent` per message; this package
layers the three consumers a production deployment needs on top of
that stream without touching protocol logic:

* :mod:`repro.obs.trace` -- a :class:`Tracer` that timestamps events
  with the simulator clock and assembles per-exchange spans (child
  spans per phase), exportable as JSONL or a human-readable timeline;
* :mod:`repro.obs.metrics` -- a dependency-free counter / gauge /
  histogram :class:`MetricsRegistry` aggregated per node and
  simulator-wide, plus :func:`collect_run_metrics`, the canonical fold
  from a finished run into metric series;
* :mod:`repro.obs.report` -- :class:`RunReport` and the accounting
  invariants CI asserts (loopback/simulator byte conservation, honest
  retry charging, metrics == ``CostBreakdown.from_events``).

Attaching observability never perturbs a run: tracing is an observer
on telemetry-list appends and metrics are collected after the fact, so
a traced simulation is byte- and clock-identical to an untraced one.

See ``docs/OBSERVABILITY.md`` for a walkthrough.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.obs.report import (
    Invariant,
    RunReport,
    check_cost_parity,
    check_metrics_match_costs,
    check_stream_invariants,
    render_byte_table,
    render_outcome_table,
)
from repro.obs.scenario import (
    AGGREGATE_NODE_THRESHOLD,
    BlockRecord,
    ObservedRun,
    PropagationRun,
    run_block_relay_scenario,
    run_propagation_scenario,
)
from repro.obs.trace import (
    PhaseSpan,
    Span,
    TraceMark,
    TraceRecord,
    TracedStream,
    Tracer,
    WallClock,
    assemble_spans,
    format_key,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_run_metrics",
    "Invariant",
    "RunReport",
    "check_cost_parity",
    "check_metrics_match_costs",
    "check_stream_invariants",
    "render_byte_table",
    "render_outcome_table",
    "AGGREGATE_NODE_THRESHOLD",
    "BlockRecord",
    "ObservedRun",
    "PropagationRun",
    "run_block_relay_scenario",
    "run_propagation_scenario",
    "PhaseSpan",
    "Span",
    "TraceMark",
    "TraceRecord",
    "TracedStream",
    "Tracer",
    "WallClock",
    "assemble_spans",
    "format_key",
]
