"""Per-exchange tracing over the relay telemetry stream.

A :class:`Tracer` timestamps every :class:`~repro.core.telemetry.MessageEvent`
with the simulator clock as it is recorded and groups them -- together
with recovery *marks* (escalate / failover / abandon / done) -- into
per-exchange :class:`Span` objects: one span per block relay or mempool
sync round at one node, with child :class:`PhaseSpan` entries per
protocol phase.  Spans export as JSONL (one span per line, sorted keys)
and as a human-readable timeline.

The tracer is a pure observer.  It never schedules events, never
consumes link randomness, and records through
:class:`TracedStream` -- an ``EventRecorder`` subclass the nodes use
*in place of* the plain telemetry streams, so every consumer of them
(``CostBreakdown.from_events``, the experiment drivers, the retention
caps) is oblivious to it.  A traced run is therefore byte- and
clock-identical to an untraced one (pinned by ``tests/test_obs.py``).

Typical use::

    sim = Simulator()
    nodes = [Node(f"n{i}", sim) for i in range(20)]
    tracer = Tracer(sim).attach(*nodes)
    ...  # wire topology, mine, sim.run()
    print(tracer.timeline())
    Path("trace.jsonl").write_text(tracer.to_jsonl())
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.telemetry import EventRecorder, MessageEvent

#: Exchange kinds the node layer emits (manual streams may add more).
SPAN_KINDS = ("relay", "serve", "sync", "sync-serve")

#: Span statuses, in derivation precedence order.  Serving-side spans
#: ("serve", "sync-serve") are stateless request/response streams with
#: no completion of their own; they report "served".
SPAN_STATUSES = ("done", "failed", "abandoned", "served", "open")


def format_key(key) -> str:
    """Render an exchange key (Merkle root, sync nonce) for display."""
    if isinstance(key, (bytes, bytearray)):
        return bytes(key).hex()[:12]
    return str(key)


@dataclass(frozen=True)
class TraceRecord:
    """One telemetry event, stamped with the simulator clock."""

    t: float
    seq: int   # tracer-wide monotonic index; total order for equal t
    node: str
    kind: str
    key: str
    event: MessageEvent


@dataclass(frozen=True)
class TraceMark:
    """A point annotation on an exchange (recovery step, completion)."""

    t: float
    seq: int
    node: str
    kind: str
    key: str
    name: str
    detail: Tuple[Tuple[str, str], ...] = ()

    def as_dict(self) -> dict:
        return {"t": self.t, "name": self.name, "detail": dict(self.detail)}


class TracedStream(EventRecorder):
    """A telemetry stream that also reports appends to its tracer.

    Engines and the recovery subsystem only ever ``append`` to their
    telemetry lists, so that is the one traced operation; everything
    else (iteration, folding, pruning) behaves like the
    :class:`~repro.core.telemetry.EventRecorder` the untraced nodes
    use, keeping traced and untraced runs on the same fast folds.
    """

    __slots__ = ("tracer", "node", "kind", "key")

    def __init__(self, tracer: "Tracer", node: str, kind: str, key: str):
        super().__init__()
        self.tracer = tracer
        self.node = node
        self.kind = kind
        self.key = key

    def append(self, event: MessageEvent) -> None:
        super().append(event)
        self.tracer._record(self.node, self.kind, self.key, event)


@dataclass
class PhaseSpan:
    """Child span: one protocol phase within an exchange."""

    phase: str
    start: float
    end: float
    messages: int = 0
    bytes: int = 0
    outcomes: List[str] = None

    def as_dict(self) -> dict:
        return {"phase": self.phase, "start": self.start, "end": self.end,
                "messages": self.messages, "bytes": self.bytes,
                "outcomes": list(self.outcomes or [])}


@dataclass
class Span:
    """One exchange (block relay or sync round) observed at one node."""

    node: str
    kind: str
    key: str
    start: float
    end: float
    status: str
    messages: int
    bytes: int
    timeouts: int
    retries: int
    phases: List[PhaseSpan]
    marks: List[TraceMark]
    records: List[TraceRecord]

    def as_dict(self, include_events: bool = True) -> dict:
        out = {
            "node": self.node, "kind": self.kind, "key": self.key,
            "start": self.start, "end": self.end, "status": self.status,
            "messages": self.messages, "bytes": self.bytes,
            "timeouts": self.timeouts, "retries": self.retries,
            "phases": [p.as_dict() for p in self.phases],
            "marks": [m.as_dict() for m in self.marks],
        }
        if include_events:
            out["events"] = [dict(t=r.t, **r.event.as_dict())
                             for r in self.records]
        return out


def _derive_status(marks: List[TraceMark], records: List[TraceRecord]) -> str:
    names = {mark.name for mark in marks}
    for mark_name, status in (("done", "done"), ("failed", "failed"),
                              ("abandon", "abandoned")):
        if mark_name in names:
            return status
    # No marks (manual streams, loopback replays): derive from the last
    # phase-resolving outcome in the event stream.
    for record in reversed(records):
        outcome = record.event.outcome
        if outcome in ("done", "decoded"):
            return "done"
        if outcome == "failed":
            return "failed"
    if records and all(r.event.role == "sender" for r in records):
        return "served"
    return "open"


def assemble_spans(records, marks=()) -> List[Span]:
    """Group timestamped records (and marks) into per-exchange spans.

    Standalone entry point so a *recorded* stream -- e.g. trace records
    loaded back from JSONL, or events stamped by a test harness -- can
    be assembled without a live tracer.
    """
    groups: Dict[tuple, Tuple[list, list]] = {}
    for record in records:
        groups.setdefault((record.node, record.kind, record.key),
                          ([], []))[0].append(record)
    for mark in marks:
        group = groups.get((mark.node, mark.kind, mark.key))
        if group is not None:
            group[1].append(mark)
    spans = []
    for (node, kind, key), (recs, span_marks) in groups.items():
        recs = sorted(recs, key=lambda r: r.seq)
        span_marks = sorted(span_marks, key=lambda m: m.seq)
        end = recs[-1].t
        if span_marks:
            end = max(end, span_marks[-1].t)
        phases: Dict[str, PhaseSpan] = {}
        timeouts = retries = 0
        for record in recs:
            event = record.event
            phase = phases.get(event.phase)
            if phase is None:
                phase = phases[event.phase] = PhaseSpan(
                    phase=event.phase, start=record.t, end=record.t,
                    outcomes=[])
            phase.end = max(phase.end, record.t)
            phase.messages += 1
            phase.bytes += event.wire_bytes
            if event.outcome:
                phase.outcomes.append(event.outcome)
            timeouts += event.outcome == "timeout"
            retries += event.outcome == "retry"
        spans.append(Span(
            node=node, kind=kind, key=key,
            start=recs[0].t, end=end,
            status=_derive_status(span_marks, recs),
            messages=len(recs),
            bytes=sum(r.event.wire_bytes for r in recs),
            timeouts=timeouts, retries=retries,
            phases=sorted(phases.values(), key=lambda p: p.start),
            marks=span_marks, records=recs))
    spans.sort(key=lambda s: (s.start, s.records[0].seq))
    return spans


class WallClock:
    """A ``.now`` clock over real time, for tracing socket runs.

    :class:`Tracer` only ever reads its clock's ``now`` attribute, so
    any object exposing one works.  The simulator provides virtual
    time; this is the wall-time twin the asyncio peer stack
    (:mod:`repro.net.peer`) passes when tracing a relay over a real
    connection: monotonic seconds since the clock was created, so span
    timestamps start near zero just like a simulation's.
    """

    __slots__ = ("_origin",)

    def __init__(self):
        self._origin = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin


class Tracer:
    """Collects timestamped telemetry and assembles exchange spans."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.records: List[TraceRecord] = []
        self.marks: List[TraceMark] = []
        self._seq = itertools.count()

    def attach(self, *nodes) -> "Tracer":
        """Point ``nodes`` at this tracer; returns self for chaining."""
        for node in nodes:
            node.tracer = self
        return self

    def stream(self, node_id: str, kind: str, key) -> TracedStream:
        """A fresh telemetry list whose appends are timestamped here."""
        return TracedStream(self, node_id, kind, format_key(key))

    def _record(self, node: str, kind: str, key: str,
                event: MessageEvent) -> None:
        self.records.append(TraceRecord(
            t=self.simulator.now, seq=next(self._seq),
            node=node, kind=kind, key=key, event=event))

    def mark(self, node_id: str, kind: str, key, name: str,
             **detail) -> None:
        """Annotate an exchange with a recovery/completion step."""
        self.marks.append(TraceMark(
            t=self.simulator.now, seq=next(self._seq), node=node_id,
            kind=kind, key=format_key(key), name=name,
            detail=tuple(sorted((str(k), str(v))
                                for k, v in detail.items()))))

    # -- assembly and export ---------------------------------------------

    def spans(self, kind: Optional[str] = None) -> List[Span]:
        spans = assemble_spans(self.records, self.marks)
        if kind is not None:
            spans = [span for span in spans if span.kind == kind]
        return spans

    def to_jsonl(self, include_events: bool = True,
                 kind: Optional[str] = None) -> str:
        """One JSON object per span, deterministic key order."""
        lines = [json.dumps(span.as_dict(include_events), sort_keys=True)
                 for span in self.spans(kind)]
        return "\n".join(lines) + ("\n" if lines else "")

    def timeline(self, events: bool = True, kind: Optional[str] = None,
                 limit: Optional[int] = None) -> str:
        """Human-readable span timeline, one exchange per block.

        ``events=False`` collapses each span to its summary line;
        ``limit`` keeps only the first N spans (chronological order).
        """
        lines = []
        spans = self.spans(kind)
        shown = spans if limit is None else spans[:limit]
        for span in shown:
            extras = ""
            if span.timeouts or span.retries:
                extras = (f", {span.timeouts} timeouts,"
                          f" {span.retries} retries")
            phase_names = " ".join(p.phase for p in span.phases)
            lines.append(
                f"[{span.start:10.4f} → {span.end:10.4f}] {span.node:<5} "
                f"{span.kind:<10} {span.key:<12} {span.status:<9} "
                f"{span.messages:>3} msgs {span.bytes:>9,} B  "
                f"[{phase_names}]{extras}")
            if not events:
                continue
            entries = [(r.seq, r) for r in span.records] \
                + [(m.seq, m) for m in span.marks]
            for _, entry in sorted(entries):
                if isinstance(entry, TraceMark):
                    detail = " ".join(f"{k}={v}" for k, v in entry.detail)
                    lines.append(f"    {entry.t:10.4f}  ** {entry.name}"
                                 + (f" ({detail})" if detail else ""))
                    continue
                event = entry.event
                arrow = "->" if event.direction == "sent" else "<-"
                outcome = f"  {event.outcome}" if event.outcome else ""
                lines.append(
                    f"    {entry.t:10.4f}  {arrow} {event.command:<22}"
                    f" {event.phase:<5} {event.wire_bytes:>9,} B{outcome}")
        if limit is not None and len(spans) > limit:
            lines.append(f"... {len(spans) - limit} more spans")
        return "\n".join(lines)
