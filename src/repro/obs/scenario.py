"""Canned observed simulation runs shared by the CLI and smoke tests.

``python -m repro trace`` / ``report`` and the smoke test's chaos stage
all need the same thing: a reproducible multi-node lossy run with a
:class:`~repro.obs.trace.Tracer` attached and the per-node telemetry
retained for folding.  This module is that one scenario builder, so the
timeline a user reads and the invariants CI checks come from identical
runs.

:func:`run_propagation_scenario` is the scale counterpart: many blocks
mined at intervals over sustained transaction ingest across hundreds to
thousands of nodes, reporting propagation-delay percentiles and a
fork-rate proxy through the metrics registry (the regime of the paper's
Figures 14-18, which a single-block 20-node run cannot show).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.chain.block import Block
from repro.chain.scenarios import make_block_scenario
from repro.chain.transaction import TransactionGenerator
from repro.errors import ParameterError
from repro.net import (
    CycleStats,
    GeoLinkModel,
    Node,
    RelayProtocol,
    Simulator,
    connect_random_regular,
    connect_scale_free,
)
from repro.obs.metrics import MetricsRegistry, collect_run_metrics
from repro.obs.trace import Tracer

#: Node count at or above which :func:`run_propagation_scenario`
#: switches relay telemetry to aggregate-only recording
#: (:class:`~repro.core.telemetry.AggregateRecorder`): totals stay
#: exact, per-event lists are not retained, memory stays bounded.
AGGREGATE_NODE_THRESHOLD = 64

#: Histogram bounds (seconds) for block propagation delay at scale.
PROPAGATION_BUCKETS = (0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 1.0, 1.5,
                       2.5, 4.0, 6.0, 10.0, 20.0, 60.0)


@dataclass
class ObservedRun:
    """A finished simulation plus everything observability needs."""

    simulator: Simulator
    nodes: List[Node]
    tracer: Optional[Tracer]
    block: object
    root: bytes

    @property
    def covered(self) -> int:
        """Nodes holding the block at the end of the run."""
        return sum(1 for node in self.nodes if self.root in node.blocks)

    def relay_streams(self) -> dict:
        """Every per-relay telemetry stream, keyed by (node_id, root)."""
        return {(node.node_id, root): events
                for node in self.nodes
                for root, events in node.relay_telemetry.items()}


def run_block_relay_scenario(nodes: int = 20, degree: int = 4,
                             block_size: int = 200, extra: int = 200,
                             loss: float = 0.05, seed: int = 2024,
                             latency: float = 0.05,
                             bandwidth: float = 1_000_000.0,
                             protocol: RelayProtocol = RelayProtocol.GRAPHENE,
                             trace: bool = True,
                             until: Optional[float] = 120.0,
                             sync_rounds: int = 0) -> ObservedRun:
    """Propagate one block across a lossy random-regular topology.

    The default parameters reproduce the smoke test's chaos scenario
    (20 Graphene nodes, degree 4, 5% loss per link) so the recovery
    ladder is genuinely exercised and traces show timeouts, retries
    and failovers.  ``sync_rounds`` additionally runs that many
    post-relay mempool syncs between the first node pairs, so sync
    spans appear in the trace too.  Everything is seeded: the same
    arguments always produce the same run, traced or not.
    """
    simulator = Simulator()
    peers = [Node(f"n{i:02d}", simulator, protocol=protocol)
             for i in range(nodes)]
    connect_random_regular(peers, degree=degree, latency=latency,
                           bandwidth=bandwidth, rng=random.Random(seed),
                           loss_rate=loss)
    tracer = Tracer(simulator).attach(*peers) if trace else None
    scenario = make_block_scenario(n=block_size, extra=extra, fraction=1.0,
                                   seed=seed % 997)
    for node in peers[1:]:
        node.mempool.add_many(scenario.receiver_mempool.transactions())
    peers[0].mine_block(scenario.block)
    simulator.run(until=until)
    for i in range(sync_rounds):
        initiator = peers[(2 * i + 1) % len(peers)]
        responder = next(iter(initiator.peers))
        initiator.initiate_mempool_sync(responder)
        simulator.run(until=simulator.now + 60.0)
    return ObservedRun(simulator=simulator, nodes=peers, tracer=tracer,
                       block=scenario.block,
                       root=scenario.block.header.merkle_root)


@dataclass
class BlockRecord:
    """One mined block of a propagation run."""

    height: int
    root: bytes
    miner: str        #: node_id of the miner
    mined_at: float   #: simulator clock at mine time
    #: True when the miner lacked the previous block at mine time --
    #: the fork/stale-rate proxy (it would have extended a stale tip).
    fork: bool


@dataclass
class PropagationRun:
    """A finished multi-block propagation run plus its statistics."""

    simulator: Simulator
    nodes: List[Node]
    records: List[BlockRecord]
    registry: MetricsRegistry
    cycles: List[CycleStats]
    params: dict
    _delays: Optional[List[float]] = field(default=None, repr=False)

    @property
    def delays(self) -> List[float]:
        """Sorted per-(block, node) propagation delays, miners excluded."""
        if self._delays is None:
            delays = []
            for record in self.records:
                root, mined_at, miner = (record.root, record.mined_at,
                                         record.miner)
                for node in self.nodes:
                    if node.node_id == miner:
                        continue
                    arrived = node.block_arrival.get(root)
                    if arrived is not None:
                        delays.append(arrived - mined_at)
            delays.sort()
            self._delays = delays
        return self._delays

    def delay_quantile(self, q: float) -> float:
        """Exact propagation-delay quantile over all deliveries."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        delays = self.delays
        if not delays:
            return 0.0
        return delays[min(len(delays) - 1, int(q * len(delays)))]

    @property
    def coverage(self) -> float:
        """Fraction of (block, non-miner node) deliveries that landed."""
        expected = len(self.records) * (len(self.nodes) - 1)
        return len(self.delays) / expected if expected else 1.0

    @property
    def forks(self) -> int:
        return sum(1 for record in self.records if record.fork)

    @property
    def fork_rate(self) -> float:
        """Fraction of non-genesis blocks mined on a stale tip."""
        eligible = len(self.records) - 1
        return self.forks / eligible if eligible > 0 else 0.0


def run_propagation_scenario(
        nodes: int = 1000, degree: int = 8, blocks: int = 200,
        block_txns: int = 24, interval: float = 2.0,
        topology: str = "scale_free", loss: float = 0.0, seed: int = 2026,
        latency: float = 0.05, bandwidth: float = 1_000_000.0,
        protocol: RelayProtocol = RelayProtocol.GRAPHENE,
        link_model: Optional[GeoLinkModel] = None,
        aggregate_threshold: int = AGGREGATE_NODE_THRESHOLD,
        drain: float = 30.0, max_events_per_cycle: int = 5_000_000,
        on_cycle: Optional[Callable[[CycleStats], None]] = None
) -> PropagationRun:
    """Relay ``blocks`` blocks over sustained tx ingest at scale.

    Every ``interval`` seconds a seeded miner assembles the freshest
    transaction batch into a block and announces it; relay then races
    the next block.  Transaction ingest is *direct* (each batch lands
    in every mempool at mine time -- the perfect-gossip regime, like
    :func:`~repro.net.mining.run_mining_experiment`): at 1000 nodes,
    simulating per-transaction gossip would cost ~35x more events than
    the block relays under study, without changing what Figures 14-18
    measure.

    The fork proxy: a block is counted as a fork when its miner had
    not yet received the previous block at mine time (it would have
    extended a stale tip).  Slower relay protocols therefore show
    higher fork rates, the paper's section 2.2 motivation.

    At or above ``aggregate_threshold`` nodes, relay telemetry is
    recorded aggregate-only (exact totals, no per-event lists) so
    memory stays bounded; below it, full per-message streams are kept
    as in every small scenario.

    Results fold into ``registry``: the ``net_propagation_seconds``
    histogram, ``net_blocks_mined`` / ``net_forks`` counters,
    ``net_fork_rate`` / ``net_block_coverage`` gauges, plus the
    standard per-protocol byte counters of
    :func:`~repro.obs.metrics.collect_run_metrics`.
    """
    if nodes < 2:
        raise ParameterError(f"need at least 2 nodes, got {nodes}")
    if blocks < 1:
        raise ParameterError(f"need at least 1 block, got {blocks}")
    if interval <= 0:
        raise ParameterError(f"interval must be > 0, got {interval}")
    if topology not in ("scale_free", "random_regular"):
        raise ParameterError(
            f"topology must be 'scale_free' or 'random_regular', "
            f"got {topology!r}")

    simulator = Simulator()
    mode = "aggregate" if nodes >= aggregate_threshold else "full"
    peers = [Node(f"n{i:04d}", simulator, protocol=protocol,
                  telemetry_mode=mode) for i in range(nodes)]
    rng = random.Random(seed)
    if topology == "scale_free":
        model = link_model or GeoLinkModel(loss_rate=loss)
        connect_scale_free(peers, m=max(1, degree // 2), rng=rng,
                           link_model=model)
    else:
        connect_random_regular(peers, degree=degree, latency=latency,
                               bandwidth=bandwidth, rng=rng,
                               loss_rate=loss)

    gen = TransactionGenerator(seed=seed)
    miner_rng = random.Random(seed ^ 0x9E3779B9)
    records: List[BlockRecord] = []

    def mine(height: int) -> None:
        batch = gen.make_batch(block_txns)
        for node in peers:
            node.mempool.add_many(batch)
        miner = peers[miner_rng.randrange(nodes)]
        fork = bool(records) and records[-1].root not in miner.blocks
        prev = records[-1].root if records else bytes(32)
        block = Block.assemble(batch, prev_hash=prev, timestamp=height)
        records.append(BlockRecord(
            height=height, root=block.header.merkle_root,
            miner=miner.node_id, mined_at=simulator.now, fork=fork))
        miner.mine_block(block)

    for height in range(blocks):
        simulator.schedule_at(height * interval,
                              lambda h=height: mine(h))

    cycles: List[CycleStats] = []

    def note_cycle(stats: CycleStats) -> None:
        cycles.append(stats)
        if on_cycle is not None:
            on_cycle(stats)

    total_cycles = blocks + max(0, int(drain / interval)) + 1
    simulator.run_cycles(cycle=interval, cycles=total_cycles,
                         max_events_per_cycle=max_events_per_cycle,
                         on_cycle=note_cycle)

    registry = collect_run_metrics(peers)
    run = PropagationRun(
        simulator=simulator, nodes=peers, records=records,
        registry=registry, cycles=cycles,
        params={"nodes": nodes, "degree": degree, "blocks": blocks,
                "block_txns": block_txns, "interval": interval,
                "topology": topology, "loss": loss, "seed": seed,
                "protocol": protocol.value, "telemetry_mode": mode})
    histogram = registry.histogram("net_propagation_seconds",
                                   buckets=PROPAGATION_BUCKETS)
    for delay in run.delays:
        histogram.observe(delay)
    registry.counter("net_blocks_mined").inc(len(records))
    registry.counter("net_forks").inc(run.forks)
    registry.gauge("net_fork_rate").set(run.fork_rate)
    registry.gauge("net_block_coverage").set(run.coverage)
    return run
