"""Canned observed simulation runs shared by the CLI and smoke tests.

``python -m repro trace`` / ``report`` and the smoke test's chaos stage
all need the same thing: a reproducible multi-node lossy run with a
:class:`~repro.obs.trace.Tracer` attached and the per-node telemetry
retained for folding.  This module is that one scenario builder, so the
timeline a user reads and the invariants CI checks come from identical
runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.chain.scenarios import make_block_scenario
from repro.net import Node, RelayProtocol, Simulator, connect_random_regular
from repro.obs.trace import Tracer


@dataclass
class ObservedRun:
    """A finished simulation plus everything observability needs."""

    simulator: Simulator
    nodes: List[Node]
    tracer: Optional[Tracer]
    block: object
    root: bytes

    @property
    def covered(self) -> int:
        """Nodes holding the block at the end of the run."""
        return sum(1 for node in self.nodes if self.root in node.blocks)

    def relay_streams(self) -> dict:
        """Every per-relay telemetry stream, keyed by (node_id, root)."""
        return {(node.node_id, root): events
                for node in self.nodes
                for root, events in node.relay_telemetry.items()}


def run_block_relay_scenario(nodes: int = 20, degree: int = 4,
                             block_size: int = 200, extra: int = 200,
                             loss: float = 0.05, seed: int = 2024,
                             latency: float = 0.05,
                             bandwidth: float = 1_000_000.0,
                             protocol: RelayProtocol = RelayProtocol.GRAPHENE,
                             trace: bool = True,
                             until: Optional[float] = 120.0,
                             sync_rounds: int = 0) -> ObservedRun:
    """Propagate one block across a lossy random-regular topology.

    The default parameters reproduce the smoke test's chaos scenario
    (20 Graphene nodes, degree 4, 5% loss per link) so the recovery
    ladder is genuinely exercised and traces show timeouts, retries
    and failovers.  ``sync_rounds`` additionally runs that many
    post-relay mempool syncs between the first node pairs, so sync
    spans appear in the trace too.  Everything is seeded: the same
    arguments always produce the same run, traced or not.
    """
    simulator = Simulator()
    peers = [Node(f"n{i:02d}", simulator, protocol=protocol)
             for i in range(nodes)]
    connect_random_regular(peers, degree=degree, latency=latency,
                           bandwidth=bandwidth, rng=random.Random(seed),
                           loss_rate=loss)
    tracer = Tracer(simulator).attach(*peers) if trace else None
    scenario = make_block_scenario(n=block_size, extra=extra, fraction=1.0,
                                   seed=seed % 997)
    for node in peers[1:]:
        node.mempool.add_many(scenario.receiver_mempool.transactions())
    peers[0].mine_block(scenario.block)
    simulator.run(until=until)
    for i in range(sync_rounds):
        initiator = peers[(2 * i + 1) % len(peers)]
        responder = next(iter(initiator.peers))
        initiator.initiate_mempool_sync(responder)
        simulator.run(until=simulator.now + 60.0)
    return ObservedRun(simulator=simulator, nodes=peers, tracer=tracer,
                       block=scenario.block,
                       root=scenario.block.header.merkle_root)
