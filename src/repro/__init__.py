"""Graphene: efficient interactive set reconciliation for blockchains.

A from-scratch Python reproduction of Ozisik et al., SIGCOMM 2019:
the Graphene block-propagation protocols (1 and 2), the probabilistic
data structures they combine (Bloom filters, IBLTs), the IBLT
parameter-search algorithm, ping-pong decoding, every baseline the
paper compares against, and a benchmark harness regenerating every
figure of the evaluation.

Quickstart::

    from repro import BlockRelaySession, make_block_scenario

    scenario = make_block_scenario(n=2000, extra=2000, fraction=1.0)
    outcome = BlockRelaySession().relay(scenario.block,
                                        scenario.receiver_mempool)
    print(outcome.success, outcome.total_bytes)
"""

from repro.chain import (
    Block,
    BlockHeader,
    Mempool,
    Transaction,
    TransactionGenerator,
    make_block_scenario,
    make_sync_scenario,
)
from repro.core import (
    BETA_DEFAULT,
    BlockRelaySession,
    GrapheneConfig,
    RelayOutcome,
    synchronize_mempools,
)
from repro.errors import (
    DecodeFailure,
    MalformedIBLTError,
    MerkleValidationError,
    ParameterError,
    ProtocolFailure,
    ReproError,
)
from repro.pds import IBLT, BloomFilter, default_param_table, pingpong_decode

__version__ = "1.0.0"

__all__ = [
    "Block",
    "BlockHeader",
    "Mempool",
    "Transaction",
    "TransactionGenerator",
    "make_block_scenario",
    "make_sync_scenario",
    "BETA_DEFAULT",
    "BlockRelaySession",
    "GrapheneConfig",
    "RelayOutcome",
    "synchronize_mempools",
    "DecodeFailure",
    "MalformedIBLTError",
    "MerkleValidationError",
    "ParameterError",
    "ProtocolFailure",
    "ReproError",
    "IBLT",
    "BloomFilter",
    "default_param_table",
    "pingpong_decode",
    "__version__",
]
