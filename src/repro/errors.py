"""Exception hierarchy for the Graphene reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause.
Protocol-level failures (a Graphene block that fails to decode, a Merkle
root mismatch) are ordinary, *expected* outcomes of a probabilistic
protocol; they are modelled as exceptions so that the session layer can
fall back from Protocol 1 to Protocol 2 exactly the way the paper
describes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A data structure or protocol was configured with invalid parameters."""


class DecodeFailure(ReproError):
    """An IBLT (or a pair of IBLTs) could not be fully decoded.

    Attributes
    ----------
    recovered_local:
        Items recovered that were present only on the local side before
        the peeling stalled.
    recovered_remote:
        Items recovered that were present only on the remote side.
    """

    def __init__(self, message: str = "IBLT decode failure",
                 recovered_local=None, recovered_remote=None):
        super().__init__(message)
        self.recovered_local = frozenset(recovered_local or ())
        self.recovered_remote = frozenset(recovered_remote or ())


class MalformedIBLTError(ReproError):
    """A peer sent an IBLT whose peeling never terminates (see paper 6.1).

    Raised when the decode loop observes the same item decoded twice,
    which is the mitigation the paper prescribes for adversarially
    malformed IBLTs.
    """


class SimulationBudgetError(ReproError):
    """A simulator run exhausted its per-call event budget.

    Raised (under ``on_budget="raise"``) instead of silently stopping
    mid-run; the event queue is left intact so the caller can inspect
    pending work or resume with a fresh budget.
    """


class MerkleValidationError(ReproError):
    """The decoded transaction set does not hash to the header's Merkle root."""


class ProtocolFailure(ReproError):
    """A Graphene protocol round failed and cannot be retried further."""


class MissingTransactionsError(ProtocolFailure):
    """The receiver is missing block transactions Protocol 1 cannot repair.

    Protocol 1 assumes the receiver's mempool is a superset of the block;
    when that assumption is violated the session escalates to Protocol 2.
    """
