"""Attack simulations from paper section 6.1.

* :mod:`~repro.security.malformed_iblt` -- the endless-decode-loop IBLT
  and the halt-on-double-decode mitigation.
* :mod:`~repro.security.collision_attack` -- manufactured short-ID
  collisions: always fatal to XThin / Compact Blocks, survived by
  Graphene except with probability ``f_S * f_R``.
"""

from repro.security.malformed_iblt import make_malformed_iblt
from repro.security.collision_attack import (
    CollisionAttackResult,
    find_short_id_collision,
    run_collision_attack,
)

__all__ = [
    "make_malformed_iblt",
    "CollisionAttackResult",
    "find_short_id_collision",
    "run_collision_attack",
]
