"""Malformed IBLTs (paper 6.1, "Malformed IBLTs").

    "To create a malformed IBLT, the attacker incorrectly inserts an
    item into only k - 1 cells.  When the item is peeled off, one cell
    in the IBLT will contain the item with a count of -1.  When that
    entry is peeled, k - 1 cells will contain the item with a count of
    1; and the loop continues.  The attack is thwarted if the
    implementation halts decoding when an item is decoded twice."

:func:`make_malformed_iblt` builds exactly that object so tests and
benches can verify :meth:`repro.pds.iblt.IBLT.decode` raises
:class:`~repro.errors.MalformedIBLTError` instead of spinning forever.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ParameterError
from repro.pds.iblt import IBLT


def make_malformed_iblt(cells: int = 60, k: int = 4, seed: int = 0,
                        poison_key: int = 0xDEADBEEF,
                        honest_keys: Optional[Iterable[int]] = None) -> IBLT:
    """Return an IBLT where ``poison_key`` was inserted into only k-1 cells.

    ``honest_keys`` are inserted normally first, so the malformed entry
    hides inside otherwise plausible content.
    """
    if k < 3:
        raise ParameterError(f"attack needs k >= 3, got {k}")
    iblt = IBLT(cells, k=k, seed=seed)
    if honest_keys:
        iblt.update(honest_keys)
    key = poison_key & 0xFFFFFFFFFFFFFFFF
    indices = iblt.hasher.partitioned_indices(key, iblt.cells)
    for idx in indices[:-1]:  # skip the last cell: the malformation
        iblt.xor_cell(idx, key, +1)
    iblt.count += 1
    return iblt
