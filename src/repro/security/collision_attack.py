"""Manufactured short-ID collisions (paper 6.1).

The worst case: the block contains ``t1``; the receiver possesses ``t2``
whose ID collides with ``t1`` on the truncated 8 bytes, and neither peer
has seen the other transaction.  XThin and Compact Blocks match on short
IDs alone, so they *always* reconstruct the wrong transaction and fail
their Merkle check.  Graphene inserts **full 32-byte IDs** into both
Bloom filters, so the attack only succeeds if ``t2`` falsely passes S
*and* ``t1`` falsely passes R -- probability ``f_S * f_R``.

Brute-forcing a real 8-byte collision costs ~2^32 hash calls, so the
simulator *constructs* colliding transaction IDs directly (the
adversary's search is assumed done) and, for Graphene, measures the two
filter events against real Bloom filters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.compact_blocks import CompactBlocksRelay
from repro.baselines.xthin import XThinRelay
from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction, TransactionGenerator
from repro.core.params import GrapheneConfig, optimize_a
from repro.errors import ParameterError
from repro.pds.bloom import BloomFilter
from repro.utils.hashing import sha256


def find_short_id_collision(nbytes: int = 2,
                            max_attempts: int = 1 << 22,
                            seed: int = 0) -> tuple[bytes, bytes]:
    """Birthday-search two txids sharing their first ``nbytes`` bytes.

    Feasible in-process for small ``nbytes`` (tests use 2-3); a real
    adversary spends ~2^(4*nbytes) work offline for 8-byte IDs.
    """
    if nbytes < 1 or nbytes > 8:
        raise ParameterError(f"nbytes must be in [1, 8], got {nbytes}")
    rng = random.Random(seed)
    seen: dict = {}
    for _ in range(max_attempts):
        txid = sha256(rng.getrandbits(64).to_bytes(8, "little"))
        prefix = txid[:nbytes]
        if prefix in seen and seen[prefix] != txid:
            return seen[prefix], txid
        seen[prefix] = txid
    raise ParameterError(
        f"no collision within {max_attempts} attempts for {nbytes} bytes")


def craft_colliding_pair(seed: int = 0) -> tuple[Transaction, Transaction]:
    """Construct two distinct transactions sharing an 8-byte short ID."""
    rng = random.Random(seed)
    prefix = rng.getrandbits(64).to_bytes(8, "little")
    t1 = Transaction(txid=prefix + sha256(b"a" + prefix)[:24])
    t2 = Transaction(txid=prefix + sha256(b"b" + prefix)[:24])
    return t1, t2


@dataclass
class CollisionAttackResult:
    """Per-protocol outcome of one collision-attack trial."""

    xthin_failed: bool
    compact_blocks_failed: bool
    compact_blocks_siphash_failed: bool
    graphene_failed: bool
    t2_passed_s: bool
    t1_passed_r: bool
    fs: float
    fr: float

    @property
    def graphene_failure_probability(self) -> float:
        """The analytic failure rate the paper states: ``f_S * f_R``."""
        return self.fs * self.fr


def run_collision_attack(n: int = 200, extra: int = 200, seed: int = 0,
                         config: GrapheneConfig | None = None) -> CollisionAttackResult:
    """Stage the 6.1 worst case and observe each protocol.

    Builds a block containing ``t1`` and a receiver mempool containing
    ``t2`` (plus honest traffic), runs XThin and Compact Blocks for
    real, and evaluates Graphene's two filter events with real Bloom
    filters at the FPRs the protocols would choose.
    """
    config = config or GrapheneConfig()
    gen = TransactionGenerator(seed=seed)
    t1, t2 = craft_colliding_pair(seed=seed)

    honest = gen.make_batch(n - 1)
    block = Block.assemble(honest + [t1])
    receiver = Mempool(honest)          # receiver has the rest of the block
    receiver.add_many(gen.make_batch(extra))
    receiver.add(t2)                    # ...and the colliding transaction

    xthin = XThinRelay().relay(block, receiver)
    cb = CompactBlocksRelay(use_siphash=False).relay(block, receiver)
    cb_sip = CompactBlocksRelay(use_siphash=True).relay(block, receiver)

    # Graphene: S carries full IDs at f_S = a/(m-n); R carries full IDs
    # at f_R = b/(n - x*).  The attack needs both filters to err.
    m = len(receiver)
    plan_s = optimize_a(n, m, config)
    bloom_s = BloomFilter.from_fpr(n, plan_s.fpr, seed=seed ^ 0x51)
    for tx in block.txs:
        bloom_s.insert(tx.txid)
    t2_passed_s = t2.txid in bloom_s

    fr = min(1.0, max(config.special_case_fpr, plan_s.fpr))
    bloom_r = BloomFilter.from_fpr(max(1, n), fr, seed=seed ^ 0x52)
    for tx in receiver:
        if tx.txid in bloom_s:
            bloom_r.insert(tx.txid)
    t1_passed_r = t1.txid in bloom_r

    return CollisionAttackResult(
        xthin_failed=not xthin.success,
        compact_blocks_failed=not cb.success,
        compact_blocks_siphash_failed=not cb_sip.success,
        graphene_failed=t2_passed_s and t1_passed_r,
        t2_passed_s=t2_passed_s,
        t1_passed_r=t1_passed_r,
        fs=plan_s.fpr, fr=fr)
