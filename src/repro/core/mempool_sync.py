"""Mempool synchronization with Graphene (paper 3.2.1).

Two peers reconcile entire mempools so both end with the union.  The
sender (by convention the peer with the *smaller* mempool -- "the
protocol is more efficient if the peer with the smaller mempool acts as
the sender since S will be smaller") places his whole mempool in S and
I.  The receiver:

* passes her mempool through S; negatives join ``H``, the set of
  transactions the sender provably lacks;
* decodes ``I (-) I'`` -- recovered remote keys are her transactions
  that *falsely* passed S (they join ``H`` too), recovered local keys
  are sender transactions she must fetch;
* on decode failure, falls back to Protocol 2, which in this regime
  (m ~ n) takes the special-case path with the fixed ``f_R`` and the
  third Bloom filter F (paper 3.3.2).

At the end both sides exchange the transactions the other is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chain.mempool import Mempool
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import (
    build_protocol2_request,
    finish_protocol2,
    respond_protocol2,
)
from repro.core.sizing import (
    CostBreakdown,
    getdata_bytes,
    inv_bytes,
    short_id_request_bytes,
)


@dataclass
class MempoolSyncResult:
    """Outcome of one mempool synchronization."""

    success: bool
    protocol_used: int
    roundtrips: float
    cost: CostBreakdown = field(default_factory=CostBreakdown)
    #: Transactions the receiver obtained from the sender.
    receiver_gained: int = 0
    #: Transactions the sender obtained from the receiver (the set H).
    sender_gained: int = 0
    synchronized: bool = False

    @property
    def total_bytes(self) -> int:
        return self.cost.total()


def synchronize_mempools(sender: Mempool, receiver: Mempool,
                         config: Optional[GrapheneConfig] = None,
                         transfer_missing: bool = True) -> MempoolSyncResult:
    """Synchronize two mempools; both end up holding the union.

    ``transfer_missing=False`` skips actually moving transactions (and
    charging their bytes), which matches the encoding-size accounting of
    Fig. 18 while still exercising the full reconciliation logic.
    """
    config = config or GrapheneConfig()
    sender_txs = sender.transactions()
    m = len(receiver)
    cost = CostBreakdown(inv=inv_bytes(), getdata=getdata_bytes(m))

    payload = build_protocol1(sender_txs, m, config)
    cost.bloom_s = payload.bloom_bytes
    cost.iblt_i = payload.iblt_bytes
    cost.counts = payload.wire_size() - payload.bloom_bytes - payload.iblt_bytes

    p1 = receive_protocol1(payload, receiver, config, validate_block=None)

    sender_ids = {tx.txid for tx in sender_txs}
    # H starts as the receiver transactions that failed S outright.
    h_set = {tx.txid: tx for tx in receiver
             if tx.txid not in p1.candidates}

    if p1.decode_complete:
        result = MempoolSyncResult(success=True, protocol_used=1,
                                   roundtrips=1.5, cost=cost)
        # False passes through S (remote keys) also belong in H.
        reconciled_ids = {tx.txid for tx in p1.reconciled}
        for txid, tx in p1.candidates.items():
            if txid not in reconciled_ids:
                h_set[txid] = tx
        missing_ids = p1.missing_short_ids
    else:
        request, state = build_protocol2_request(p1, payload, m, config)
        cost.bloom_r = request.bloom_bytes
        cost.counts += request.wire_size() - request.bloom_bytes
        response = respond_protocol2(request, sender_txs, m, config)
        cost.iblt_j = response.iblt_bytes
        cost.bloom_f = response.bloom_f_bytes
        if transfer_missing:
            cost.pushed_tx_bytes = response.txs_bytes
        p2 = finish_protocol2(response, state, receiver, config,
                              validate_block=None)
        result = MempoolSyncResult(success=p2.decode_complete,
                                   protocol_used=2, roundtrips=2.5, cost=cost)
        if not p2.decode_complete:
            return result
        recovered_ids = set(p2.recovered)
        for tx in receiver:
            if tx.txid not in recovered_ids and tx.txid not in sender_ids:
                h_set[tx.txid] = tx
        missing_ids = p2.missing_short_ids
        if transfer_missing:
            # The pushed set T (inside p2.recovered) is new to the receiver.
            result.receiver_gained += receiver.add_many(p2.recovered.values())

    # Receiver fetches sender transactions she lacks, by short ID.
    if missing_ids:
        cost.extra_getdata = short_id_request_bytes(
            len(missing_ids), config.short_id_bytes)
        result.roundtrips += 1.0
    fetched = []
    wanted = set(missing_ids)
    if wanted:
        width = config.short_id_bytes
        fetched = [tx for tx in sender_txs if tx.short_id(width) in wanted]
    if transfer_missing:
        cost.fetched_tx_bytes += sum(tx.size for tx in fetched)
        receiver.add_many(fetched)
        # Receiver pushes H (transactions the sender lacks).
        h_txs = [tx for tx in h_set.values() if tx.txid not in sender_ids]
        cost.fetched_tx_bytes += sum(tx.size for tx in h_txs)
        sender.add_many(h_txs)
        result.sender_gained = len(h_txs)
        result.receiver_gained += len(fetched)
        result.synchronized = (
            {tx.txid for tx in sender} == {tx.txid for tx in receiver})
    return result
