"""Mempool synchronization with Graphene (paper 3.2.1).

Two peers reconcile entire mempools so both end with the union.  The
sender (by convention the peer with the *smaller* mempool -- "the
protocol is more efficient if the peer with the smaller mempool acts as
the sender since S will be smaller") places his whole mempool in S and
I.  The receiver:

* passes her mempool through S; negatives join ``H``, the set of
  transactions the sender provably lacks;
* decodes ``I (-) I'`` -- recovered remote keys are her transactions
  that *falsely* passed S (they join ``H`` too), recovered local keys
  are sender transactions she must fetch;
* on decode failure, falls back to Protocol 2, which in this regime
  (m ~ n) takes the special-case path with the fixed ``f_R`` and the
  third Bloom filter F (paper 3.3.2).

At the end both sides exchange the transactions the other is missing.

The exchange itself is the relay engines of :mod:`repro.core.engine`
run in ``mode="mempool"`` over a loopback transport -- the same state
machines block relay and the network simulator use -- with this driver
only moving transactions and folding the telemetry stream into a
:class:`CostBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chain.mempool import Mempool
from repro.core.engine import (
    ActionKind,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
)
from repro.core.params import GrapheneConfig
from repro.core.sizing import CostBreakdown
from repro.core.telemetry import MessageEvent
from repro.net.transport import LoopbackTransport


@dataclass
class MempoolSyncResult:
    """Outcome of one mempool synchronization."""

    success: bool
    protocol_used: int
    roundtrips: float
    cost: CostBreakdown = field(default_factory=CostBreakdown)
    #: Transactions the receiver obtained from the sender.
    receiver_gained: int = 0
    #: Transactions the sender obtained from the receiver (the set H).
    sender_gained: int = 0
    synchronized: bool = False
    #: Per-message telemetry stream the cost breakdown was folded from.
    events: list = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.cost.total()


def synchronize_mempools(sender: Mempool, receiver: Mempool,
                         config: Optional[GrapheneConfig] = None,
                         transfer_missing: bool = True) -> MempoolSyncResult:
    """Synchronize two mempools; both end up holding the union.

    ``transfer_missing=False`` skips actually moving transactions (and
    charging their bytes), which matches the encoding-size accounting of
    Fig. 18 while still exercising the full reconciliation logic.
    """
    config = config or GrapheneConfig()
    sender_txs = sender.transactions()

    tx_engine = GrapheneSenderEngine(txs=sender_txs, config=config)
    rx_engine = GrapheneReceiverEngine(receiver, config, mode="mempool")
    final = LoopbackTransport(tx_engine, rx_engine).run()

    events = rx_engine.telemetry
    cost = CostBreakdown.from_events(events)
    result = MempoolSyncResult(
        success=final.kind is ActionKind.DONE,
        protocol_used=rx_engine.protocol_used,
        roundtrips=rx_engine.roundtrips,
        cost=cost, events=events)
    if not result.success:
        return result

    if not transfer_missing:
        # Fig. 18 accounting: reconciliation-structure bytes only.
        cost.pushed_tx_bytes = 0
        cost.fetched_tx_bytes = 0
        return result

    # The reconciled view holds everything recovered from the sender's
    # side (fetched repairs included); anything new joins the receiver.
    reconciled = rx_engine.reconciled
    sender_ids = {tx.txid for tx in sender_txs}
    result.receiver_gained = receiver.add_many(reconciled.values())

    # Receiver pushes H: her transactions the sender provably lacks --
    # failed S outright, or recovered as remote keys (false passes).
    h_txs = [tx for tx in receiver
             if tx.txid not in reconciled and tx.txid not in sender_ids]
    cost.fetched_tx_bytes += sum(tx.size for tx in h_txs)
    events.append(MessageEvent(
        command="sync_push", direction="sent", role="receiver",
        phase="push", roundtrip=int(rx_engine.roundtrips),
        parts={"fetched_tx_bytes": sum(tx.size for tx in h_txs)},
        outcome="done"))
    result.sender_gained = sender.add_many(h_txs)
    result.synchronized = (
        {tx.txid for tx in sender} == {tx.txid for tx in receiver})
    return result
