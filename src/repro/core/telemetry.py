"""Structured per-message telemetry for the relay engines.

Every message an engine sends or receives is described by one
:class:`MessageEvent`: the wire command, the direction, the protocol
phase, the roundtrip it belongs to, and a byte decomposition keyed by
:class:`~repro.core.sizing.CostBreakdown` field names.  One event
stream therefore serves every consumer at once:

* ``CostBreakdown.from_events`` folds a stream into the paper's
  cost accounting (Figs. 14, 17, 18);
* the network simulator charges ``wire_bytes`` to per-peer stats and
  link transmission time, so loopback and simulated relays agree on
  bytes by construction;
* experiment drivers read ``outcome`` per event instead of re-deriving
  decode results.

The byte numbers are the *analytic* sizes the paper accounts for
(``wire_size()`` / ``serialized_size()``), not ``len(blob)`` of the
codec output: the simulation encodes transactions as fixed 41-byte
metadata records while the size model charges each transaction's
declared ``tx.size``, and the paper's accounting includes the message
envelope only where the protocol description does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ParameterError

DIRECTIONS = ("sent", "received")
ROLES = ("receiver", "sender")

#: Protocol phases in exchange order (``inv`` and ``push`` bracket the
#: numbered-protocol phases; ``push`` only occurs in mempool sync and
#: ``p3`` only in rateless exchanges, which replace ``p1``/``p2``).
PHASES = ("inv", "p1", "p2", "p3", "fetch", "push")

#: Outcomes an event may resolve with.  "" marks a plain transfer; the
#: decode outcomes ("decoded", "fallback", "fetch", "done", "failed",
#: plus "continue" for a Protocol 3 batch that needs more symbols)
#: are set by the engines on phase-resolving messages; "timeout" (the
#: awaited response never arrived, zero bytes) and "retry" (the request
#: was retransmitted and its bytes charged again) come from the relay
#: recovery subsystem (:mod:`repro.net.recovery`).
OUTCOMES = ("", "decoded", "fallback", "fetch", "continue", "done",
            "failed", "timeout", "retry")


@dataclass(frozen=True, slots=True)
class MessageEvent:
    """One message observed by an engine endpoint.

    ``slots=True`` keeps the per-message footprint flat (no instance
    ``__dict__``), and ``wire_bytes`` is computed once at construction
    instead of summing ``parts`` on every consumer read -- relays emit
    thousands of these, so both matter on the hot path.
    """

    command: str
    direction: str  # "sent" | "received", relative to `role`
    role: str       # "receiver" | "sender": which engine recorded it
    phase: str      # see PHASES
    roundtrip: int  # 0 = inv, 1 = getdata/P1, 2 = P2, 3 = fetch
    #: Byte decomposition, keyed by CostBreakdown field names.
    parts: Mapping[str, int] = field(default_factory=dict)
    #: Outcome, set on the messages that resolve a phase ("decoded",
    #: "fallback", "fetch", "done", "failed") or mark a recovery step
    #: ("timeout", "retry"); see :data:`OUTCOMES`.
    outcome: str = ""
    #: Total bytes this message is accounted at on the wire.  Derived
    #: from ``parts`` in ``__post_init__``; any value passed in is
    #: overwritten, so it can never disagree with the decomposition.
    wire_bytes: int = 0

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ParameterError(f"bad direction {self.direction!r}")
        if self.role not in ROLES:
            raise ParameterError(f"bad role {self.role!r}")
        if self.phase not in PHASES:
            raise ParameterError(f"bad phase {self.phase!r}")
        if self.outcome not in OUTCOMES:
            raise ParameterError(f"bad outcome {self.outcome!r}")
        total = 0
        for name, nbytes in self.parts.items():
            if nbytes < 0:
                raise ParameterError(
                    f"negative byte count for part {name!r}: {nbytes}")
            total += nbytes
        object.__setattr__(self, "wire_bytes", total)

    def as_dict(self) -> dict:
        """A plain-JSON view (trace/JSONL export, ``repro.obs``)."""
        return {
            "command": self.command,
            "direction": self.direction,
            "role": self.role,
            "phase": self.phase,
            "roundtrip": self.roundtrip,
            "outcome": self.outcome,
            "parts": dict(self.parts),
            "bytes": self.wire_bytes,
        }


class EventRecorder(list):
    """An event stream that folds aggregates as events are appended.

    The engines, nodes and recovery ladder only ever ``append`` to
    their telemetry streams, while every consumer
    (``CostBreakdown.from_events``, the ``repro.obs`` metrics fold,
    :func:`total_wire_bytes`) re-walks the whole stream per query.
    This subclass keeps the running aggregates those consumers need --
    byte totals per part, message counts per direction, bytes per
    phase, counts and bytes per outcome -- updated in O(parts) at
    append time, so the queries become dict reads instead of per-event
    loops over freshly allocated dicts.

    Everything else behaves like the plain list the rest of the
    package expects.  If a stream is ever mutated through any other
    list operation the aggregates go stale; :meth:`consistent` detects
    that (appends are counted) and consumers then fall back to their
    per-event reference loops, so the fast path can never return
    different numbers than the slow one.
    """

    __slots__ = ("_folded", "part_totals", "direction_counts",
                 "phase_bytes", "outcome_counts", "outcome_bytes")

    def __init__(self):
        super().__init__()
        self._folded = 0
        self.part_totals: dict = {}
        self.direction_counts: dict = {}
        self.phase_bytes: dict = {}
        self.outcome_counts: dict = {}
        self.outcome_bytes: dict = {}

    def append(self, event: MessageEvent) -> None:
        super().append(event)
        self._fold(event)

    def _fold(self, event: MessageEvent) -> None:
        self._folded += 1
        totals = self.part_totals
        for name, nbytes in event.parts.items():
            totals[name] = totals.get(name, 0) + nbytes
        counts = self.direction_counts
        counts[event.direction] = counts.get(event.direction, 0) + 1
        phases = self.phase_bytes
        phases[event.phase] = phases.get(event.phase, 0) + event.wire_bytes
        if event.outcome:
            outcomes = self.outcome_counts
            outcomes[event.outcome] = outcomes.get(event.outcome, 0) + 1
            obytes = self.outcome_bytes
            obytes[event.outcome] = \
                obytes.get(event.outcome, 0) + event.wire_bytes

    def consistent(self) -> bool:
        """True while every element arrived through :meth:`append`."""
        return self._folded == len(self)


class AggregateRecorder(EventRecorder):
    """An event stream that keeps only the running aggregates.

    At network scale, retaining one :class:`MessageEvent` per message is
    O(messages) memory per node; above the scenario layer's node-count
    threshold each relay stream is one of these instead.  ``append``
    folds the event into the same aggregates :class:`EventRecorder`
    maintains and discards the event itself, so every aggregate
    consumer (``CostBreakdown.from_events``, the obs metrics fold,
    :func:`total_wire_bytes`) sees identical numbers while per-event
    walks see an empty list.

    ``consistent()`` stays True by definition -- the aggregates *are*
    the stream -- which is what routes consumers onto their fast paths
    rather than the (empty) per-event reference loops.
    """

    __slots__ = ()

    def append(self, event: MessageEvent) -> None:
        self._fold(event)

    def consistent(self) -> bool:
        return True


def total_wire_bytes(events, include_txs: bool = False) -> int:
    """Sum of event wire bytes, with the paper's default accounting.

    Transaction payloads (``pushed_tx_bytes`` / ``fetched_tx_bytes``
    parts) are excluded unless ``include_txs`` -- the same convention as
    :meth:`~repro.core.sizing.CostBreakdown.total`.
    """
    tx_parts = ("pushed_tx_bytes", "fetched_tx_bytes")
    if isinstance(events, EventRecorder) and events.consistent():
        return sum(nbytes for name, nbytes in events.part_totals.items()
                   if include_txs or name not in tx_parts)
    total = 0
    for event in events:
        for name, nbytes in event.parts.items():
            if include_txs or name not in tx_parts:
                total += nbytes
    return total
