"""Graphene Protocol 1 (paper 3.1, Figs. 2 and 4).

The sender answers a ``getdata`` (which carries the receiver's mempool
count ``m``) with a Bloom filter **S** of the block's ``n`` transaction
IDs at FPR ``f_S = a / (m - n)`` and an IBLT **I** of the block's short
IDs provisioned for ``a*`` items (Theorem 1).  The receiver passes her
mempool through S, forming the candidate set ``Z``; builds ``I'`` from
``Z``; subtracts ``I (-) I'``; removes the recovered false positives
from ``Z``; and validates the Merkle root.

The functions here also serve mempool synchronization (paper 3.2.1) by
treating the sender's whole mempool as the "block": pass
``validate_block=None`` and the Merkle check is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.transaction import ShortIdIndex, Transaction
from repro.core.params import FilterIBLTPlan, GrapheneConfig, optimize_a
from repro.errors import ParameterError
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT
from repro.utils.serialization import compact_size_len

#: Seed offsets keeping the hash families of S/I and R/J independent,
#: which ping-pong decoding requires (paper 4.2).
SEED_S = 0x5150
SEED_I = 0x1B17
SEED_J = 0x2B27


@dataclass(frozen=True)
class Protocol1Payload:
    """Step 3 message: Bloom filter S, IBLT I, and bookkeeping counts.

    ``prefilled`` carries transactions the sender knows the receiver
    cannot have (no inv ever exchanged -- e.g. the coinbase); the paper
    notes these "could be sent at Step 3 in order to reduce the number
    of transactions in I (-) I'".
    """

    n: int
    bloom_s: BloomFilter
    iblt_i: IBLT
    recover: int  # a*, what I was provisioned for
    plan: FilterIBLTPlan
    prefilled: tuple = ()

    def wire_size(self) -> int:
        """Bytes on the wire: S + I + counts + any prefilled txns."""
        return (self.bloom_s.serialized_size() + self.iblt_i.serialized_size()
                + compact_size_len(self.n) + compact_size_len(self.recover)
                + compact_size_len(len(self.prefilled))
                + sum(tx.size for tx in self.prefilled))

    @property
    def bloom_bytes(self) -> int:
        return self.bloom_s.serialized_size()

    @property
    def iblt_bytes(self) -> int:
        return self.iblt_i.serialized_size()


@dataclass
class Protocol1Result:
    """Receiver-side outcome of Protocol 1.

    On success ``txs`` holds the canonically ordered block transactions.
    On failure the fields preserve everything Protocol 2 needs: the
    candidate set ``Z``, the observed count ``z``, the subtracted IBLT
    (for ping-pong decoding later) and the index mapping short IDs back
    to transactions.
    """

    success: bool
    txs: Optional[list] = None
    candidates: dict = field(default_factory=dict)  # txid -> Transaction
    z: int = 0
    iblt_diff: Optional[IBLT] = None
    decode_complete: bool = False
    merkle_ok: bool = False
    missing_short_ids: frozenset = frozenset()
    #: Candidate transactions surviving false-positive removal (only
    #: meaningful when decode_complete; used by mempool synchronization).
    reconciled: list = field(default_factory=list)


def build_protocol1(txs: Sequence[Transaction], receiver_mempool_count: int,
                    config: Optional[GrapheneConfig] = None,
                    plan: Optional[FilterIBLTPlan] = None,
                    prefill: Optional[Sequence[Transaction]] = None,
                    auto_prefill_coinbase: bool = True) -> Protocol1Payload:
    """Sender side: construct S and I for a block (or a whole mempool).

    ``plan`` lets callers (and ablation benches) override the optimizer.
    ``prefill`` transactions ride along in full (step-3 note); coinbase
    transactions are prefilled automatically since no receiver can hold
    them (disable with ``auto_prefill_coinbase=False``).
    """
    config = config or GrapheneConfig()
    n = len(txs)
    prefilled = list(prefill) if prefill is not None else []
    if auto_prefill_coinbase:
        chosen = {tx.txid for tx in prefilled}
        prefilled.extend(tx for tx in txs
                         if tx.is_coinbase and tx.txid not in chosen)
    if plan is None:
        plan = optimize_a(n, receiver_mempool_count, config)
    bloom = BloomFilter.from_fpr(n, plan.fpr, seed=config.seed ^ SEED_S)
    iblt = IBLT(plan.iblt.cells, k=plan.iblt.k, seed=config.seed ^ SEED_I,
                cell_bytes=config.cell_bytes)
    bloom.update(tx.txid for tx in txs)
    iblt.update(tx.short_id(config.short_id_bytes) for tx in txs)
    return Protocol1Payload(n=n, bloom_s=bloom, iblt_i=iblt,
                            recover=plan.recover, plan=plan,
                            prefilled=tuple(prefilled))


def receive_protocol1(payload: Protocol1Payload, mempool: Mempool,
                      config: Optional[GrapheneConfig] = None,
                      validate_block: Optional[Block] = None) -> Protocol1Result:
    """Receiver side: filter the mempool through S, reconcile with I.

    ``validate_block`` supplies the header whose Merkle root certifies
    the decode; pass None for mempool synchronization, where success is
    defined by IBLT decode alone.
    """
    config = config or GrapheneConfig()
    if payload.n < 0:
        raise ParameterError(f"payload.n must be non-negative: {payload.n}")

    index = ShortIdIndex(nbytes=config.short_id_bytes)
    candidates: dict = {}
    iblt_prime = IBLT(payload.iblt_i.cells, k=payload.iblt_i.k,
                      seed=payload.iblt_i.seed,
                      cell_bytes=payload.iblt_i.cell_bytes)
    # Prefilled transactions (e.g. the coinbase) are in the block by
    # construction -- no Bloom test needed.
    for tx in payload.prefilled:
        if tx.txid not in candidates:
            candidates[tx.txid] = tx
    # One batch sweep of the mempool through S; survivors join the
    # candidate set Z.
    pool = [tx for tx in mempool if tx.txid not in candidates]
    for tx, hit in zip(pool, payload.bloom_s.contains_many(
            [tx.txid for tx in pool])):
        if hit:
            candidates[tx.txid] = tx
    # One short-id computation per candidate, shared by the index, the
    # receiver IBLT and the false-positive strip below.
    width = config.short_id_bytes
    cand_txs = list(candidates.values())
    cand_sids = [tx.short_id(width) for tx in cand_txs]
    index.bulk_add(cand_txs, cand_sids)
    iblt_prime.update(cand_sids)

    diff = payload.iblt_i.subtract(iblt_prime)
    decode = diff.decode()
    result = Protocol1Result(success=False, candidates=candidates,
                             z=len(candidates), iblt_diff=diff,
                             decode_complete=decode.complete)
    if not decode.complete:
        return result

    # decode.local: short IDs in the block but not the candidate set --
    # transactions the receiver is missing.  Protocol 1 cannot repair
    # those; escalate.  decode.remote: false positives to strip from Z.
    remote = decode.remote
    surviving = [tx for tx, sid in zip(cand_txs, cand_sids)
                 if sid not in remote]
    # Consistency: |block| must equal surviving candidates plus the
    # missing transactions the decode claims.  An IBLT that is all-zero
    # after the subtract (e.g. a replay of the receiver's own I') peels
    # "complete" with an empty difference; when the expected difference
    # is nonempty that is a silently wrong set, so report a decode
    # failure instead.  (Short-id collisions can also trip this; they
    # break Protocol 1 regardless, and in block mode the Merkle check
    # is the backstop.)
    if payload.n != len(surviving) + len(decode.local):
        result.decode_complete = False
        return result
    result.reconciled = surviving
    if decode.local:
        result.missing_short_ids = decode.local
        return result
    if validate_block is not None:
        ordered = validate_block.validated_order(surviving)
        if ordered is None:
            return result
        result.merkle_ok = True
        result.txs = ordered
    else:
        result.txs = sorted(surviving, key=lambda tx: tx.txid)
    result.success = True
    return result
