"""Theorems 1-3: beta-assurance bounds on Bloom filter false positives.

Graphene's data structures are tuned for *expected* behaviour, but the
variance of Bloom filter false positives would sink the decode rate if
ignored.  The paper derives three Chernoff-style bounds (Appendix A)
that convert an assurance level ``beta`` into safe parameters:

* Theorem 1: ``a*`` -- an upper bound (w.p. beta) on the false positives
  through filter S when the receiver holds the whole block; it sizes
  IBLT I.
* Theorem 2: ``x*`` -- a lower bound (w.p. beta) on the number of true
  positives hidden inside the observed count ``z``; it sets filter R's
  FPR.
* Theorem 3: ``y*`` -- an upper bound (w.p. beta) on the false positives
  hidden inside ``z``; together with ``b`` it sizes IBLT J.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError
from repro.utils.stats import chernoff_delta, chernoff_poisson_tail

#: The assurance level used throughout the paper's evaluation: 239/240.
BETA_DEFAULT = 239.0 / 240.0


def _check_beta(beta: float) -> None:
    if not 0.0 < beta < 1.0:
        raise ParameterError(f"beta must be in (0, 1), got {beta}")


def a_star(a: float, beta: float = BETA_DEFAULT) -> float:
    """Theorem 1: bound the false positives through S with beta-assurance.

    ``a`` is the *expected* number of false positives,
    ``(m - n) * f_S``.  Returns ``a* = (1 + delta) a`` such that the
    realized count exceeds ``a*`` with probability at most ``1 - beta``.
    """
    _check_beta(beta)
    if a <= 0:
        raise ParameterError(f"a must be positive, got {a}")
    return (1.0 + chernoff_delta(a, beta)) * a


def x_star(z: int, m: int, fpr: float, beta: float = BETA_DEFAULT,
           n: int | None = None) -> int:
    """Theorem 2: lower-bound the true positives in ``z`` with beta-assurance.

    ``z`` mempool transactions passed through filter S (FPR ``fpr``) out
    of a mempool of ``m``.  Returns the largest ``x*`` such that
    ``Pr[x <= x*] <= 1 - beta`` under the Chernoff bound -- i.e.
    ``x* <= x`` with probability at least ``beta``.

    ``n`` (the block size) optionally caps the search, since the count of
    true positives can never exceed the block size.
    """
    _check_beta(beta)
    if m < 0 or z < 0 or z > m:
        raise ParameterError(f"need 0 <= z <= m, got z={z}, m={m}")
    if not 0.0 < fpr <= 1.0:
        raise ParameterError(f"fpr must be in (0, 1], got {fpr}")
    limit = z if n is None else min(z, n)
    budget = 1.0 - beta
    cumulative = 0.0
    best = 0
    for k in range(0, limit + 1):
        mu = (m - k) * fpr
        y_needed = z - k  # false positives required if only k are true
        if mu <= 0.0:
            term = 1.0 if y_needed <= 0 else 0.0
        elif y_needed <= mu:
            # Chernoff upper tail is vacuous at or below the mean.
            term = 1.0
        else:
            delta_k = y_needed / mu - 1.0
            term = chernoff_poisson_tail(mu, delta_k)
        cumulative += term
        if cumulative <= budget:
            best = k
        else:
            break
    return best


def y_star(z: int, m: int, fpr: float, beta: float = BETA_DEFAULT,
           xstar: int | None = None, n: int | None = None) -> int:
    """Theorem 3: upper-bound the false positives in ``z`` with beta-assurance.

    Returns ``y* = (1 + delta) (m - x*) fpr``, rounded up.  ``x*`` is
    computed with Theorem 2 unless supplied by the caller (receivers
    compute both from the same observation).
    """
    _check_beta(beta)
    if xstar is None:
        xstar = x_star(z, m, fpr, beta=beta, n=n)
    mu = (m - xstar) * fpr
    if mu <= 0.0:
        return 0
    delta = chernoff_delta(mu, beta)
    return math.ceil((1.0 + delta) * mu)


def theorem2_tail(z: int, m: int, fpr: float, k: int) -> float:
    """The Theorem 2 bound ``Pr[x <= k; z, m, f_S]`` (for validation tests)."""
    if k < 0:
        return 0.0
    total = 0.0
    for i in range(0, k + 1):
        mu = (m - i) * fpr
        y_needed = z - i
        if mu <= 0.0:
            total += 1.0 if y_needed <= 0 else 0.0
        elif y_needed <= mu:
            total += 1.0
        else:
            total += chernoff_poisson_tail(mu, y_needed / mu - 1.0)
    return min(1.0, total)
