"""Graphene Protocol 2 / Graphene Extended (paper 3.2, Figs. 3, 5, 6).

Runs when Protocol 1 fails -- the receiver's mempool did not contain the
whole block.  One extra roundtrip:

1. The receiver, knowing only the positive count ``z = x + y``, derives
   ``x*`` (Theorem 2) and ``y*`` (Theorem 3) with beta-assurance, builds
   Bloom filter **R** over the candidate set at
   ``f_R = b / (n - x*)`` and sends ``R, y*, b``.
2. The sender pushes the block transactions that miss R verbatim (set
   ``T``) and an IBLT **J** of the block's short IDs provisioned for
   ``b + y*`` items.
3. The receiver reconciles ``J (-) J'`` where ``J'`` covers ``Z + T``,
   strips false positives, learns the short IDs of any still-missing
   transactions, and validates the Merkle root.

The ``m ~ n`` special case (paper 3.3.2): when the receiver's numbers
degenerate (``z ~ m``, ``y* ~ m``, ``f_R ~ 1``) she pins ``f_R`` to 0.1
and the *sender* runs Theorems 2/3 in reverse over R, additionally
sending a third Bloom filter **F** so the receiver can discard candidate
transactions that are not in the block.  This path is the workhorse of
mempool synchronization (Fig. 18).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.transaction import ShortIdIndex, Transaction
from repro.core.bounds import x_star, y_star
from repro.core.params import FilterIBLTPlan, GrapheneConfig, optimize_b
from repro.core.protocol1 import Protocol1Payload, Protocol1Result, SEED_J
from repro.errors import ParameterError
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT
from repro.pds.pingpong import pingpong_decode
from repro.utils.serialization import compact_size_len

#: Receiver-side trigger for the m ~ n special case: both z/m and y*/z
#: above this ratio mean filter S carried essentially no information.
_SPECIAL_Z_TRIGGER = 0.9


@dataclass(frozen=True)
class Protocol2Request:
    """Receiver -> sender: Bloom filter R plus the derived bounds."""

    bloom_r: BloomFilter
    b: int
    ystar: int
    z: int
    xstar: int
    special_case: bool
    plan: Optional[FilterIBLTPlan]

    def wire_size(self) -> int:
        return (self.bloom_r.serialized_size() + compact_size_len(self.b)
                + compact_size_len(self.ystar) + 1)  # +1 special-case flag

    @property
    def bloom_bytes(self) -> int:
        return self.bloom_r.serialized_size()


@dataclass
class Protocol2ReceiverState:
    """Everything the receiver must remember between steps 2 and 5."""

    candidates: dict  # txid -> Transaction (the set Z)
    iblt_p1_diff: Optional[IBLT]
    payload_n: int
    fpr_s: float
    xstar: int
    ystar: int
    special_case: bool


@dataclass(frozen=True)
class Protocol2Response:
    """Sender -> receiver: missing transactions T, IBLT J, optional F."""

    missing_txs: tuple
    iblt_j: IBLT
    bloom_f: Optional[BloomFilter]
    recover: int

    def wire_size(self) -> int:
        return (self.txs_bytes + self.iblt_bytes + self.bloom_f_bytes
                + compact_size_len(len(self.missing_txs)))

    @property
    def txs_bytes(self) -> int:
        return sum(tx.size for tx in self.missing_txs)

    @property
    def iblt_bytes(self) -> int:
        return self.iblt_j.serialized_size()

    @property
    def bloom_f_bytes(self) -> int:
        return self.bloom_f.serialized_size() if self.bloom_f else 0


@dataclass
class Protocol2Result:
    """Receiver-side outcome of Protocol 2."""

    success: bool
    txs: Optional[list] = None
    decode_complete: bool = False
    #: Whether J (-) J' decoded on its own, before any ping-pong help
    #: (the "without" series of Fig. 16).
    decode_complete_solo: bool = False
    used_pingpong: bool = False
    merkle_ok: bool = False
    #: Short IDs of block transactions the receiver still lacks (R's
    #: false positives); the session fetches these with a final getdata.
    missing_short_ids: frozenset = frozenset()
    #: Transactions recovered so far (candidates minus false positives
    #: plus pushed T), keyed by txid.
    recovered: dict = field(default_factory=dict)


def build_protocol2_request(
        p1_result: Protocol1Result, payload: Protocol1Payload, m: int,
        config: Optional[GrapheneConfig] = None,
) -> tuple[Protocol2Request, Protocol2ReceiverState]:
    """Receiver: derive x*, y*, b and build Bloom filter R (steps 1-2)."""
    config = config or GrapheneConfig()
    if m < 0:
        raise ParameterError(f"m must be non-negative, got {m}")
    z = p1_result.z
    n = payload.n
    fpr_s = payload.plan.fpr if payload.plan else 1.0

    if fpr_s >= 1.0:
        # Degenerate S passed everything; z carries no information.
        xstar = 0
        ystar = z
    else:
        xstar = x_star(z, m, fpr_s, beta=config.beta, n=n)
        ystar = y_star(z, m, fpr_s, beta=config.beta, xstar=xstar, n=n)
    missing_bound = max(0, n - xstar)

    plan = optimize_b(z, missing_bound, ystar, config)
    # The m ~ n degeneracy (paper 3.3.2): S carried no information, so
    # z ~ m, x* ~ 0 and y* ~ z -- IBLT J would be sized to the whole
    # mempool.  Pin f_R instead and let the sender bound R's mistakes.
    special = missing_bound == 0 or (
        z >= _SPECIAL_Z_TRIGGER * max(1, m)
        and ystar >= _SPECIAL_Z_TRIGGER * max(1, z))

    if special:
        fpr_r = config.special_case_fpr
        bloom = BloomFilter.from_fpr(max(1, z), fpr_r, seed=config.seed ^ 0xF00D)
        b = max(1, math.ceil(fpr_r * max(1, missing_bound)))
        request = Protocol2Request(bloom_r=bloom, b=b, ystar=ystar, z=z,
                                   xstar=xstar, special_case=True, plan=None)
    else:
        bloom = BloomFilter.from_fpr(max(1, z), plan.fpr,
                                     seed=config.seed ^ 0xF00D)
        request = Protocol2Request(bloom_r=bloom, b=plan.a, ystar=ystar, z=z,
                                   xstar=xstar, special_case=False, plan=plan)
    bloom.update(p1_result.candidates)
    state = Protocol2ReceiverState(
        candidates=dict(p1_result.candidates),
        iblt_p1_diff=p1_result.iblt_diff, payload_n=n, fpr_s=fpr_s,
        xstar=xstar, ystar=ystar, special_case=request.special_case)
    return request, state


def respond_protocol2(request: Protocol2Request, txs: Sequence[Transaction],
                      receiver_mempool_count: int,
                      config: Optional[GrapheneConfig] = None) -> Protocol2Response:
    """Sender: push transactions missing R, build IBLT J (steps 3-4)."""
    config = config or GrapheneConfig()
    n = len(txs)
    in_r: list = []
    missing: list = []
    hits = request.bloom_r.contains_many(tx.txid for tx in txs)
    for tx, hit in zip(txs, hits):
        (in_r if hit else missing).append(tx)

    table = config.table()
    bloom_f: Optional[BloomFilter] = None
    if request.special_case:
        # Reverse roles (paper 3.3.2): the sender bounds R's false
        # positives among its own block, substituting block size for
        # mempool size and f_R for the FPR.  f_R is the protocol's
        # fixed special-case constant, known to both sides -- it is
        # not on the wire, so a decoded request cannot carry it.
        fpr_r = config.special_case_fpr
        z_s = len(in_r)
        xstar_s = x_star(z_s, n, fpr_r, beta=config.beta) if fpr_r < 1.0 else 0
        ystar_s = y_star(z_s, n, fpr_r, beta=config.beta, xstar=xstar_s) \
            if fpr_r < 1.0 else z_s
        f_bound = max(0, receiver_mempool_count - xstar_s)
        plan_f = optimize_b(z_s, f_bound, ystar_s, config)
        bloom_f = BloomFilter.from_fpr(max(1, z_s), plan_f.fpr,
                                       seed=config.seed ^ 0xFEED)
        bloom_f.update(tx.txid for tx in in_r)
        recover = plan_f.a + ystar_s
    else:
        recover = request.b + request.ystar

    params = table.params_for(max(1, recover))
    iblt = IBLT(params.cells, k=params.k, seed=config.seed ^ SEED_J,
                cell_bytes=config.cell_bytes)
    iblt.update(tx.short_id(config.short_id_bytes) for tx in txs)
    return Protocol2Response(missing_txs=tuple(missing), iblt_j=iblt,
                             bloom_f=bloom_f, recover=max(1, recover))


def finish_protocol2(response: Protocol2Response,
                     state: Protocol2ReceiverState, mempool: Mempool,
                     config: Optional[GrapheneConfig] = None,
                     validate_block: Optional[Block] = None) -> Protocol2Result:
    """Receiver: reconcile J (-) J', strip mistakes, validate (step 5)."""
    config = config or GrapheneConfig()
    candidates = dict(state.candidates)
    if response.bloom_f is not None:
        # Special case: F tells the receiver which candidates the sender
        # believes are in the block; the rest are discarded up front.
        hits = response.bloom_f.contains_many(candidates)
        candidates = {txid: tx for (txid, tx), hit
                      in zip(candidates.items(), hits) if hit}
    dropped_by_f = {txid: tx for txid, tx in state.candidates.items()
                    if txid not in candidates}
    for tx in response.missing_txs:
        candidates[tx.txid] = tx

    index = ShortIdIndex(nbytes=config.short_id_bytes)
    jprime = IBLT(response.iblt_j.cells, k=response.iblt_j.k,
                  seed=response.iblt_j.seed,
                  cell_bytes=response.iblt_j.cell_bytes)
    for tx in candidates.values():
        index.add(tx)
    jprime.update(tx.short_id(config.short_id_bytes)
                  for tx in candidates.values())

    diff = response.iblt_j.subtract(jprime)
    decode = diff.decode()
    decode_solo = decode.complete
    used_pingpong = False
    if not decode.complete and state.iblt_p1_diff is not None \
            and not state.special_case:
        # Ping-pong (paper 4.2): align the Protocol 1 difference with
        # J's by peeling the known T transactions out of it first --
        # they sit in I (block side) but were absent from Z.
        aligned = state.iblt_p1_diff.copy()
        for tx in response.missing_txs:
            aligned.peel(tx.short_id(config.short_id_bytes), +1)
        decode = pingpong_decode(diff, aligned)
        used_pingpong = True

    result = Protocol2Result(success=False, decode_complete=decode.complete,
                             decode_complete_solo=decode_solo,
                             used_pingpong=used_pingpong)
    if not decode.complete:
        return result

    # remote keys: candidates not in the block (false positives through
    # S, or through F in the special case) -- strip them.
    surviving = {
        txid: tx for txid, tx in candidates.items()
        if tx.short_id(config.short_id_bytes) not in decode.remote
    }
    # local keys: block transactions absent from the candidate set.
    # Some may be resurrectable locally (dropped by F wrongly, or in the
    # mempool but failed S); the remainder need a final getdata.  One
    # short-id map per pool replaces the old per-key linear rescans.
    still_missing = set()
    if decode.local:
        dropped_short: dict = {}
        for cand in dropped_by_f.values():
            dropped_short.setdefault(cand.short_id(config.short_id_bytes),
                                     cand)
        pool_short: dict = {}
        for cand in mempool:
            pool_short.setdefault(cand.short_id(config.short_id_bytes), cand)
        for key in decode.local:
            tx = dropped_short.get(key) or pool_short.get(key)
            if tx is None:
                still_missing.add(key)
            else:
                surviving[tx.txid] = tx

    result.recovered = surviving
    if still_missing:
        result.missing_short_ids = frozenset(still_missing)
        return result

    txs = list(surviving.values())
    if validate_block is not None:
        ordered = validate_block.validated_order(txs)
        if ordered is None:
            return result
        result.merkle_ok = True
        result.txs = ordered
    else:
        result.txs = sorted(txs, key=lambda tx: tx.txid)
    result.success = True
    return result
