"""Wire-cost accounting shared by the protocols and baselines.

Every experiment in the paper reports bytes on the wire.  To keep those
numbers honest, each protocol message in this package computes its own
serialized size, and a :class:`CostBreakdown` aggregates them per part
so Fig. 17's by-message-type decomposition falls straight out.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ParameterError
from repro.utils.serialization import compact_size_len

#: One inventory entry: 4-byte type + 32-byte hash (Bitcoin `inv`).
INV_ENTRY_BYTES = 36

#: Message envelope overhead (command + length + checksum), Bitcoin layout.
MSG_HEADER_BYTES = 24


def inv_bytes(entries: int = 1) -> int:
    """Size of an inv message announcing ``entries`` objects."""
    return MSG_HEADER_BYTES + compact_size_len(entries) + INV_ENTRY_BYTES * entries


def getdata_bytes(mempool_count: int = 0) -> int:
    """Size of the Graphene getdata: one entry plus the mempool count."""
    return (MSG_HEADER_BYTES + compact_size_len(1) + INV_ENTRY_BYTES
            + compact_size_len(mempool_count))


def short_id_request_bytes(count: int, id_bytes: int = 8) -> int:
    """A follow-up request for ``count`` transactions by short ID."""
    if count == 0:
        return 0
    return MSG_HEADER_BYTES + compact_size_len(count) + id_bytes * count


def p3_request_bytes() -> int:
    """A Protocol 3 symbol continuation request: start u32 + count u16."""
    return MSG_HEADER_BYTES + 6


@dataclass
class CostBreakdown:
    """Bytes transferred during one relay, split by message part.

    ``total()`` matches the paper's default accounting (transaction
    payloads excluded, as in Figs. 14, 17 and 18);
    ``total(include_txs=True)`` adds the pushed/fetched transactions for
    end-to-end comparisons like Fig. 13's full-block baseline.
    """

    inv: int = 0
    getdata: int = 0
    bloom_s: int = 0
    iblt_i: int = 0
    counts: int = 0  # the n / a* / y* / b integers riding along
    bloom_r: int = 0
    iblt_j: int = 0
    bloom_f: int = 0
    riblt: int = 0   # Protocol 3 coded-symbol stream (batches + headers)
    extra_getdata: int = 0
    ordering: int = 0
    pushed_tx_bytes: int = 0   # T, Protocol 2 step 3
    fetched_tx_bytes: int = 0  # final short-id getdata repairs

    def total(self, include_txs: bool = False) -> int:
        base = (self.inv + self.getdata + self.bloom_s + self.iblt_i
                + self.counts + self.bloom_r + self.iblt_j + self.bloom_f
                + self.riblt + self.extra_getdata + self.ordering)
        if include_txs:
            base += self.pushed_tx_bytes + self.fetched_tx_bytes
        return base

    def graphene_core(self) -> int:
        """Just the probabilistic structures: S + I + R + J + F (+ the
        Protocol 3 symbol stream, which plays I's role)."""
        return (self.bloom_s + self.iblt_i + self.bloom_r + self.iblt_j
                + self.bloom_f + self.riblt)

    def merge(self, other: "CostBreakdown") -> "CostBreakdown":
        """Element-wise sum (for aggregating over many relays)."""
        merged = CostBreakdown()
        for spec in fields(CostBreakdown):
            setattr(merged, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))
        return merged

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name)
                for spec in fields(CostBreakdown)}

    @classmethod
    def from_events(cls, events) -> "CostBreakdown":
        """Fold a telemetry event stream into one cost breakdown.

        Each :class:`~repro.core.telemetry.MessageEvent` carries its
        byte decomposition keyed by the field names of this class, so
        the engines' event stream *is* the cost accounting.

        An :class:`~repro.core.telemetry.EventRecorder` stream already
        holds the per-part totals, so it folds in O(parts); any other
        iterable (or a recorder mutated behind its aggregates, or one
        carrying an unknown part name) takes the per-event reference
        loop, whose error message names the offending event.
        """
        from repro.core.telemetry import EventRecorder

        valid = {spec.name for spec in fields(cls)}
        if (isinstance(events, EventRecorder) and events.consistent()
                and set(events.part_totals) <= valid):
            cost = cls()
            for name, nbytes in events.part_totals.items():
                setattr(cost, name, nbytes)
            return cost
        cost = cls()
        for event in events:
            for name, nbytes in event.parts.items():
                if name not in valid:
                    raise ParameterError(
                        f"unknown cost part {name!r} in event "
                        f"{event.command!r}")
                setattr(cost, name, getattr(cost, name) + nbytes)
        return cost
