"""Graphene Protocol 3: rateless IBLT reconciliation, no size estimate.

Protocols 1 and 2 stake the exchange on a difference estimate: the
IBLT is provisioned for ``a*`` (or ``b + y*``) items up front, and a
wrong estimate means a failed decode and a fallback round.  Protocol 3
replaces the fixed IBLT with a :mod:`rateless <repro.pds.riblt>`
coded-symbol stream (Yang et al., PAPERS.md): the sender still sends
Bloom filter S (sized by the same Eq. 3 optimization -- false
positives cost symbols just as they cost IBLT cells), but instead of
an IBLT it streams coded symbols until the receiver's peeling decoder
terminates.  There is no estimate to get wrong and therefore no
decode-failure fallback branch: an undecoded stream simply asks for
more symbols.

Message flow::

    receiver                                sender
      getdata(m, proto=3)          ---->      opening: n + prefilled
                                                + S + first batch
      [peel...]  not decoded yet
      p3_request(start, count)     ---->      symbols [start, start+count)
      [peel...]  decoded
      getdata_shortids(missing)    ---->      block_txs   (if any missing)

The first batch is provisioned like Protocol 1's IBLT -- ``~1.35 a*``
symbols for the Theorem-1 bound ``a*`` on Bloom false positives -- so
the no-missing-transactions case usually decodes in a single round
trip, byte-competitive with Protocol 1.  Follow-up batches grow
geometrically, bounding the worst case at a constant factor of the
true difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.core.params import FilterIBLTPlan, GrapheneConfig, optimize_a
from repro.errors import ParameterError
from repro.pds.bloom import BloomFilter
from repro.pds.riblt import RIBLTDecoder, RIBLTEncoder, symbol_stream_bytes
from repro.utils.serialization import compact_size_len

#: Seed offset keeping the symbol stream's hash family independent of
#: the S/I/J families (see protocol1.SEED_S et al.).
SEED_R = 0x3137

#: Symbols provisioned per expected difference item: the rateless
#: decode threshold is ~1.35d for large d (Yang et al. section 3).
OVERHEAD = 1.35

#: Floor on any batch -- tiny batches waste round trips on headers.
MIN_BATCH = 4

#: Each continuation batch grows the stream by this factor, bounding
#: total symbols at ~1.5x the count the decode actually needed.
GROWTH = 0.5

#: Hard ceiling on the stream, as a multiple of the union bound
#: ``n + z``: an honest exchange decodes within ~2(n + z) symbols even
#: with nothing shared, so a stream this long is malformed.
STREAM_CAP_FACTOR = 8


def sender_stream_cap(key_count: int) -> int:
    """How far a sender will extend its stream for one block.

    An honest receiver's candidate set Z is the Bloom-filtered mempool
    (roughly ``n`` plus a handful of false positives), so its
    :data:`STREAM_CAP_FACTOR`-bounded stream stays well under this; a
    hostile ``start`` near u32-max must not balloon the sender's
    columnar prefix, so out-of-cap windows are refused.
    """
    return max(1 << 16, 32 * key_count)


def first_batch_size(recover: int) -> int:
    """Symbols in the opening payload, from the Theorem-1 FP bound."""
    return max(MIN_BATCH, math.ceil(OVERHEAD * max(1, recover)))


def next_batch_size(streamed: int) -> int:
    """Symbols to request after ``streamed`` symbols did not decode."""
    return max(MIN_BATCH, math.ceil(streamed * GROWTH))


@dataclass(frozen=True)
class SymbolBatch:
    """A contiguous window ``[start, start + len)`` of coded symbols."""

    start: int
    counts: Sequence[int]
    key_sums: Sequence[int]
    check_sums: Sequence[int]

    def __post_init__(self):
        if not (len(self.counts) == len(self.key_sums)
                == len(self.check_sums)):
            raise ParameterError("symbol batch columns disagree in length")
        if self.start < 0:
            raise ParameterError(f"batch start must be >= 0: {self.start}")

    def __len__(self) -> int:
        return len(self.counts)

    def wire_size(self) -> int:
        return symbol_stream_bytes(len(self.counts))


@dataclass(frozen=True)
class Protocol3Payload:
    """Opening message: counts, prefilled txns, Bloom S, first symbols."""

    n: int
    bloom_s: BloomFilter
    symbols: SymbolBatch
    recover: int  # a*, what the first batch was provisioned against
    plan: FilterIBLTPlan
    prefilled: tuple = ()

    def wire_size(self) -> int:
        return (self.bloom_s.serialized_size() + self.symbols.wire_size()
                + compact_size_len(self.n) + compact_size_len(self.recover)
                + compact_size_len(len(self.prefilled))
                + sum(tx.size for tx in self.prefilled))

    @property
    def bloom_bytes(self) -> int:
        return self.bloom_s.serialized_size()

    @property
    def riblt_bytes(self) -> int:
        return self.symbols.wire_size()


@dataclass
class Protocol3ReceiverState:
    """Receiver-side state across the symbol-stream round trips."""

    decoder: RIBLTDecoder
    candidates: dict                 # txid -> Transaction (set Z)
    cand_txs: list
    cand_sids: list
    n: int
    cap: int                         # hard bound on total symbols

    @property
    def symbols(self) -> int:
        return self.decoder.size


@dataclass
class Protocol3Result:
    """Outcome of finishing a decoded Protocol 3 exchange."""

    success: bool
    txs: Optional[list] = None
    decode_complete: bool = False
    merkle_ok: bool = False
    missing_short_ids: frozenset = frozenset()
    #: Candidates surviving false-positive removal.
    reconciled: list = field(default_factory=list)


def make_encoder(txs, config: GrapheneConfig) -> RIBLTEncoder:
    """The sender's symbol stream over a transaction list's short IDs.

    A pure function of ``(txs, config)``: any window of the stream can
    be re-served byte-identically to any peer at any time.
    """
    width = config.short_id_bytes
    return RIBLTEncoder((tx.short_id(width) for tx in txs),
                        seed=config.seed ^ SEED_R)


def build_protocol3(txs, receiver_mempool_count: int,
                    config: Optional[GrapheneConfig] = None,
                    plan: Optional[FilterIBLTPlan] = None,
                    prefill=None, auto_prefill_coinbase: bool = True,
                    encoder: Optional[RIBLTEncoder] = None,
                    ) -> tuple[Protocol3Payload, RIBLTEncoder]:
    """Sender side: Bloom S plus the opening symbol batch.

    S reuses Protocol 1's discrete S+I optimization -- a false positive
    costs ~``OVERHEAD`` symbols just as it costs IBLT cells, so the
    same trade-off point applies.  ``encoder`` lets a serving engine
    share one symbol stream across peers and continuation requests.
    """
    config = config or GrapheneConfig()
    n = len(txs)
    prefilled = list(prefill) if prefill is not None else []
    if auto_prefill_coinbase:
        chosen = {tx.txid for tx in prefilled}
        prefilled.extend(tx for tx in txs
                         if tx.is_coinbase and tx.txid not in chosen)
    if plan is None:
        plan = optimize_a(n, receiver_mempool_count, config)
    from repro.core.protocol1 import SEED_S
    bloom = BloomFilter.from_fpr(n, plan.fpr, seed=config.seed ^ SEED_S)
    bloom.update(tx.txid for tx in txs)
    if encoder is None:
        encoder = make_encoder(txs, config)
    count = first_batch_size(plan.recover)
    counts, key_sums, check_sums = encoder.window(0, count)
    batch = SymbolBatch(start=0, counts=counts, key_sums=key_sums,
                        check_sums=check_sums)
    payload = Protocol3Payload(n=n, bloom_s=bloom, symbols=batch,
                               recover=plan.recover, plan=plan,
                               prefilled=tuple(prefilled))
    return payload, encoder


def begin_protocol3(payload: Protocol3Payload, mempool: Mempool,
                    config: Optional[GrapheneConfig] = None,
                    ) -> Protocol3ReceiverState:
    """Receiver side: form Z through S, then ingest the first batch.

    Identical candidate-set construction to Protocol 1; the decoder is
    seeded with the candidates' short IDs and fed the opening symbols.
    May raise :class:`~repro.errors.MalformedIBLTError` if the opening
    batch itself peels inconsistently.
    """
    config = config or GrapheneConfig()
    if payload.n < 0:
        raise ParameterError(f"payload.n must be non-negative: {payload.n}")
    candidates: dict = {}
    for tx in payload.prefilled:
        if tx.txid not in candidates:
            candidates[tx.txid] = tx
    pool = [tx for tx in mempool if tx.txid not in candidates]
    for tx, hit in zip(pool, payload.bloom_s.contains_many(
            [tx.txid for tx in pool])):
        if hit:
            candidates[tx.txid] = tx
    width = config.short_id_bytes
    cand_txs = list(candidates.values())
    cand_sids = [tx.short_id(width) for tx in cand_txs]
    decoder = RIBLTDecoder(cand_sids, seed=config.seed ^ SEED_R)
    cap = STREAM_CAP_FACTOR * max(16, payload.n + len(cand_txs))
    state = Protocol3ReceiverState(decoder=decoder, candidates=candidates,
                                   cand_txs=cand_txs, cand_sids=cand_sids,
                                   n=payload.n, cap=cap)
    ingest_symbols(state, payload.symbols)
    return state


def ingest_symbols(state: Protocol3ReceiverState,
                   batch: SymbolBatch) -> bool:
    """Feed one wire batch to the decoder; returns decode completion.

    The stream is strictly sequential: a batch whose ``start`` is not
    the next expected symbol is a framing violation (retransmissions
    re-serve the identical window, so an honest sender never
    desynchronizes).
    """
    if batch.start != state.decoder.size:
        raise ParameterError(
            f"symbol batch starts at {batch.start}, expected "
            f"{state.decoder.size}")
    if batch.start + len(batch) > state.cap:
        raise ParameterError(
            f"symbol stream exceeds cap of {state.cap} symbols")
    return state.decoder.add_symbols(batch.counts, batch.key_sums,
                                     batch.check_sums)


def finish_protocol3(state: Protocol3ReceiverState,
                     config: Optional[GrapheneConfig] = None,
                     validate_block: Optional[Block] = None,
                     ) -> Protocol3Result:
    """Turn a complete decode into the reconciled transaction set.

    ``decoder.local`` holds short IDs only the sender has (missing
    transactions, fetched afterwards); ``decoder.remote`` holds Bloom
    false positives to strip from Z.  A decode whose arithmetic does
    not reconcile with the announced block size ``n`` is reported as
    ``decode_complete=False`` -- the stream was malformed (e.g. an
    all-zero replay of the receiver's own symbols) and the caller
    should fail cleanly rather than accept a silently wrong set.
    """
    decoder = state.decoder
    result = Protocol3Result(success=False,
                             decode_complete=decoder.complete)
    if not decoder.complete:
        return result
    remote = decoder.remote
    surviving = [tx for tx, sid in zip(state.cand_txs, state.cand_sids)
                 if sid not in remote]
    # Consistency: |block| must equal surviving candidates plus the
    # missing transactions the decode claims.  (Short-id collisions
    # can break this; they also break Protocol 1, and the Merkle check
    # is the backstop in block mode.)
    if state.n != len(surviving) + len(decoder.local):
        result.decode_complete = False
        return result
    result.reconciled = surviving
    if decoder.local:
        result.missing_short_ids = frozenset(decoder.local)
        return result
    if validate_block is not None:
        ordered = validate_block.validated_order(surviving)
        if ordered is None:
            return result
        result.merkle_ok = True
        result.txs = ordered
    else:
        result.txs = sorted(surviving, key=lambda tx: tx.txid)
    result.success = True
    return result
