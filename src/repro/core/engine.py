"""Message-driven Graphene engines: the single canonical relay flow.

These sender/receiver state machines are the *only* implementation of
the Graphene control flow (paper Figs. 2-3: Protocol 1 -> Protocol 2
fallback -> ping-pong -> short-id fetch).  Every other layer is a thin
driver over them:

* :class:`~repro.core.session.BlockRelaySession` runs the pair over an
  in-memory :class:`~repro.net.transport.LoopbackTransport`;
* :class:`~repro.net.node.Node` routes wire messages to engines through
  the :data:`SENDER_STEPS` / :data:`RECEIVER_STEPS` tables and ships
  actions over simulated links;
* mempool synchronization (paper 3.2.1) is the same engines in
  ``mode="mempool"``: the sender treats its whole mempool as the block,
  the receiver skips Merkle validation, and a Protocol 1 decode that
  leaves missing short IDs fetches them instead of escalating.

Every step consumes an encoded byte string off the wire and returns an
:class:`EngineAction` -- the next message to send (with its
:class:`~repro.core.telemetry.MessageEvent` byte accounting attached),
completion, or failure.  The receiver engine records events for *both*
directions of the exchange, so its telemetry list is the canonical
per-relay stream that :meth:`CostBreakdown.from_events
<repro.core.sizing.CostBreakdown.from_events>` folds into the paper's
cost accounting.

Message flow (paper Figs. 2-3)::

    receiver                          sender
    GrapheneReceiverEngine            GrapheneSenderEngine(block)
      start() -> getdata(m)   ---->     on_getdata(m) -> P1 payload
      on_p1_payload(blob)     <----
        -> DONE(txs)  or  P2 request
                              ---->     on_p2_request(blob) -> response
      on_p2_response(blob)    <----
        -> DONE(txs)  or  short-id getdata
                              ---->     on_shortid_request(blob) -> txs
      on_tx_list(blob)        <----
        -> DONE(txs)  or  FAILED
"""

from __future__ import annotations

import enum
import logging
import struct
from dataclasses import dataclass
from typing import Optional

from repro.chain.block import Block, BlockHeader
from repro.chain.mempool import Mempool
from repro.codec import (
    decode_block_header,
    decode_protocol1_payload,
    decode_protocol2_request,
    decode_protocol2_response,
    decode_protocol3_payload,
    decode_protocol3_request,
    decode_symbol_batch,
    decode_tx_list,
    encode_protocol1_payload,
    encode_protocol2_request,
    encode_protocol2_response,
    encode_protocol3_payload,
    encode_protocol3_request,
    encode_symbol_batch,
    encode_tx_list,
)
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import (
    Protocol2ReceiverState,
    build_protocol2_request,
    finish_protocol2,
    respond_protocol2,
)
from repro.core.protocol3 import (
    Protocol3ReceiverState,
    begin_protocol3,
    build_protocol3,
    finish_protocol3,
    ingest_symbols,
    make_encoder,
    next_batch_size,
)
from repro.core.sizing import (
    getdata_bytes,
    inv_bytes,
    p3_request_bytes,
    short_id_request_bytes,
)
from repro.core.telemetry import EventRecorder, MessageEvent
from repro.errors import MalformedIBLTError, ParameterError, ProtocolFailure


logger = logging.getLogger(__name__)

#: Wire command -> receiver engine step (what a node's inbox does).
RECEIVER_STEPS = {
    "graphene_block": "on_p1_payload",
    "graphene_p2_response": "on_p2_response",
    "graphene_p3_block": "on_p3_payload",
    "graphene_p3_symbols": "on_p3_symbols",
    "block_txs": "on_tx_list",
}

#: Wire command -> sender engine step.
SENDER_STEPS = {
    "getdata": "on_getdata",
    "graphene_p2_request": "on_p2_request",
    "graphene_p3_request": "on_p3_request",
    "getdata_shortids": "on_shortid_request",
}

#: Marker byte appended to the getdata payload when the receiver wants
#: the rateless exchange; a bare 4-byte getdata means Protocol 1.
P3_GETDATA_MARKER = 3


class ReceiverPhase(enum.Enum):
    """Where the receiver stands in the exchange."""

    IDLE = "idle"
    WAIT_P1 = "wait_p1"
    WAIT_P2 = "wait_p2"
    WAIT_P3 = "wait_p3"
    WAIT_P3_SYMBOLS = "wait_p3_symbols"
    WAIT_TXS = "wait_txs"
    DONE = "done"
    FAILED = "failed"


#: Response command each in-flight receiver phase is waiting for.
_AWAITED_BY_PHASE = {
    ReceiverPhase.WAIT_P1: "graphene_block",
    ReceiverPhase.WAIT_P2: "graphene_p2_response",
    ReceiverPhase.WAIT_P3: "graphene_p3_block",
    ReceiverPhase.WAIT_P3_SYMBOLS: "graphene_p3_symbols",
    ReceiverPhase.WAIT_TXS: "block_txs",
}


class ActionKind(enum.Enum):
    """What the caller should do with an engine step's result."""

    SEND = "send"      # transmit `message` (with `command`) to the peer
    DONE = "done"      # block complete; `txs` holds the ordered list
    FAILED = "failed"  # give up (a real client refetches the full block)


@dataclass(frozen=True)
class EngineAction:
    """One step's outcome: a message to send, completion, or failure."""

    kind: ActionKind
    command: str = ""
    message: bytes = b""
    txs: Optional[list] = None
    #: On DONE: the reconstructed block under the *received* header, so
    #: chain linkage (prev_hash, nonce) survives the relay.
    block: Optional[Block] = None
    #: On SEND: the telemetry record for this message; its ``parts``
    #: carry the analytic byte accounting the transports charge.
    event: Optional[MessageEvent] = None


#: Historical name, kept for callers that predate sender actions.
ReceiverAction = EngineAction


def _p1_parts(payload) -> dict:
    return {"bloom_s": payload.bloom_bytes,
            "iblt_i": payload.iblt_bytes,
            "counts": (payload.wire_size() - payload.bloom_bytes
                       - payload.iblt_bytes)}


def _p2_request_parts(request) -> dict:
    return {"bloom_r": request.bloom_bytes,
            "counts": request.wire_size() - request.bloom_bytes}


def _p2_response_parts(response) -> dict:
    return {"iblt_j": response.iblt_bytes,
            "bloom_f": response.bloom_f_bytes,
            "pushed_tx_bytes": response.txs_bytes,
            "counts": (response.wire_size() - response.iblt_bytes
                       - response.bloom_f_bytes - response.txs_bytes)}


def _p3_parts(payload) -> dict:
    return {"bloom_s": payload.bloom_bytes,
            "riblt": payload.riblt_bytes,
            "counts": (payload.wire_size() - payload.bloom_bytes
                       - payload.riblt_bytes)}


class GrapheneSenderEngine:
    """Serves one block (or a whole mempool) to any number of peers.

    Pass ``block`` for block relay; pass ``txs`` (a transaction list,
    typically a mempool snapshot) for mempool synchronization, where
    there is no header to prefix and no coinbase to prefill.

    ``telemetry`` collects a :class:`MessageEvent` per served message;
    pass a shared (or traced, see :mod:`repro.obs.trace`) list to
    observe the serving side of an exchange externally.
    """

    def __init__(self, block: Optional[Block] = None,
                 config: Optional[GrapheneConfig] = None,
                 txs: Optional[list] = None,
                 telemetry: Optional[list] = None):
        if (block is None) == (txs is None):
            raise ParameterError(
                "exactly one of block= or txs= must be provided")
        self.block = block
        self.txs = list(block.txs) if block is not None else list(txs)
        self.mempool_mode = block is None
        self.config = config or GrapheneConfig()
        self.telemetry = telemetry if telemetry is not None \
            else EventRecorder()
        #: Wire command -> bound step method, resolved once instead of
        #: a ``getattr`` per message (see :meth:`handle`).
        self._steps = {command: getattr(self, step)
                       for command, step in SENDER_STEPS.items()}
        #: Served P1 payloads keyed by the requester's mempool count m:
        #: ``build_protocol1`` is deterministic in (txs, m, config), and
        #: a sender fans the same block out to many peers whose counts
        #: repeat.  Bounded; oldest half evicted at the cap.
        self._p1_cache: dict = {}
        #: Protocol 3 twins: served openings keyed by m, plus the one
        #: shared symbol stream -- it depends only on (txs, seed), so
        #: every peer and every continuation reads the same prefix.
        self._p3_cache: dict = {}
        self._p3_encoder = None

    def _emit(self, command: str, message: bytes, phase: str,
              roundtrip: int, parts: dict) -> EngineAction:
        event = MessageEvent(command=command, direction="sent",
                             role="sender", phase=phase,
                             roundtrip=roundtrip, parts=parts)
        self.telemetry.append(event)
        return EngineAction(ActionKind.SEND, command, message, event=event)

    #: Bound on the per-engine served-payload cache.
    P1_CACHE_CAP = 64

    def on_getdata(self, message: bytes) -> EngineAction:
        """Handle a getdata carrying the receiver's mempool count.

        A fifth byte equal to :data:`P3_GETDATA_MARKER` selects the
        rateless exchange; the bare 4-byte form is Protocol 1.
        """
        if len(message) < 4:
            raise ParameterError("getdata too short")
        (m,) = struct.unpack_from("<I", message, 0)
        if len(message) >= 5 and message[4] == P3_GETDATA_MARKER:
            return self._serve_p3_opening(m)
        cached = self._p1_cache.get(m)
        if cached is None:
            payload = build_protocol1(
                self.txs, m, self.config,
                auto_prefill_coinbase=not self.mempool_mode)
            blob = encode_protocol1_payload(payload)
            if not self.mempool_mode:
                blob = self.block.header.serialize() + blob
            if len(self._p1_cache) >= self.P1_CACHE_CAP:
                for stale in list(self._p1_cache)[:self.P1_CACHE_CAP // 2]:
                    del self._p1_cache[stale]
            cached = self._p1_cache[m] = (blob, _p1_parts(payload))
        blob, parts = cached
        return self._emit("graphene_block", blob, "p1", 1, dict(parts))

    def _symbol_stream(self):
        """The sender's one shared rateless symbol stream, built lazily."""
        if self._p3_encoder is None:
            self._p3_encoder = make_encoder(self.txs, self.config)
        return self._p3_encoder

    def _serve_p3_opening(self, m: int) -> EngineAction:
        """Serve the Protocol 3 opening: S plus the first symbol batch."""
        cached = self._p3_cache.get(m)
        if cached is None:
            payload, _ = build_protocol3(
                self.txs, m, self.config,
                auto_prefill_coinbase=not self.mempool_mode,
                encoder=self._symbol_stream())
            blob = encode_protocol3_payload(payload)
            if not self.mempool_mode:
                blob = self.block.header.serialize() + blob
            if len(self._p3_cache) >= self.P1_CACHE_CAP:
                for stale in list(self._p3_cache)[:self.P1_CACHE_CAP // 2]:
                    del self._p3_cache[stale]
            cached = self._p3_cache[m] = (blob, _p3_parts(payload))
        blob, parts = cached
        return self._emit("graphene_p3_block", blob, "p3", 1, dict(parts))

    def on_p3_request(self, message: bytes) -> EngineAction:
        """Serve a continuation window of coded symbols.

        The stream is a pure function of the block, so any window can
        be served to any peer at any time -- including verbatim
        retransmissions after a receiver-side timeout.
        """
        from repro.core.protocol3 import SymbolBatch, sender_stream_cap

        start, count, _ = decode_protocol3_request(message)
        stream = self._symbol_stream()
        if start + count > sender_stream_cap(stream.key_count):
            raise ParameterError(
                f"symbol window [{start}, {start + count}) beyond the "
                f"serving cap for {stream.key_count} keys")
        counts, key_sums, check_sums = stream.window(start, count)
        batch = SymbolBatch(start=start, counts=counts, key_sums=key_sums,
                            check_sums=check_sums)
        return self._emit("graphene_p3_symbols", encode_symbol_batch(batch),
                          "p3", 2, {"riblt": batch.wire_size()})

    def on_p2_request(self, message: bytes) -> EngineAction:
        """Handle a Protocol 2 request (R, y*, b)."""
        if len(message) < 4:
            raise ParameterError("p2 request too short")
        (m,) = struct.unpack_from("<I", message, 0)
        request, _ = decode_protocol2_request(message, 4)
        response = respond_protocol2(request, self.txs, m, self.config)
        return self._emit("graphene_p2_response",
                          encode_protocol2_response(response), "p2", 2,
                          _p2_response_parts(response))

    def on_shortid_request(self, message: bytes) -> EngineAction:
        """Serve transactions requested by short ID."""
        width = self.config.short_id_bytes
        if len(message) % width:
            raise ParameterError(
                f"short-id request of {len(message)} bytes is not a "
                f"multiple of short_id_bytes={width}")
        wanted = {
            int.from_bytes(message[i:i + width], "little")
            for i in range(0, len(message), width)
        }
        txs = [tx for tx in self.txs if tx.short_id(width) in wanted]
        return self._emit("block_txs", encode_tx_list(txs), "fetch", 3,
                          {"fetched_tx_bytes": sum(tx.size for tx in txs)})

    def handle(self, command: str, message) -> EngineAction:
        """Dispatch on the wire command via :data:`SENDER_STEPS`.

        Inbound ``bytes`` are wrapped in a :class:`memoryview` so the
        decode stack reads the receive buffer in place (zero-copy).
        """
        step = self._steps.get(command)
        if step is None:
            raise ParameterError(f"sender cannot handle {command!r}")
        return step(memoryview(message) if type(message) is bytes
                    else message)


class GrapheneReceiverEngine:
    """Reassembles one block (or mempool view), message by message.

    ``mode="block"`` (default) validates against the Merkle root of the
    received header and escalates any Protocol 1 shortfall to
    Protocol 2.  ``mode="mempool"`` runs paper 3.2.1: no header, no
    Merkle check, and a complete Protocol 1 decode with missing short
    IDs fetches them directly.

    ``telemetry`` collects a :class:`MessageEvent` per message in both
    directions; pass a shared list to aggregate streams externally.
    """

    def __init__(self, mempool: Mempool,
                 config: Optional[GrapheneConfig] = None,
                 mode: str = "block",
                 telemetry: Optional[list] = None):
        if mode not in ("block", "mempool"):
            raise ParameterError(f"unknown engine mode {mode!r}")
        self.mempool = mempool
        self.config = config or GrapheneConfig()
        if self.config.protocol not in (1, 3):
            raise ParameterError(
                f"unknown protocol {self.config.protocol}; expected 1 "
                "(classic, P2 fallback) or 3 (rateless)")
        self.mode = mode
        self.telemetry = telemetry if telemetry is not None \
            else EventRecorder()
        self._steps = {command: getattr(self, step)
                       for command, step in RECEIVER_STEPS.items()}
        self.phase = ReceiverPhase.IDLE
        self.header: Optional[BlockHeader] = None
        self._p2_state: Optional[Protocol2ReceiverState] = None
        self._p3_state: Optional[Protocol3ReceiverState] = None
        #: Last outbound request, kept so a recovery driver can re-emit
        #: it verbatim after a timeout (see :meth:`reemit_last_request`).
        self._last_send: Optional[EngineAction] = None
        #: Transactions recovered so far, keyed by txid; on DONE this is
        #: the reconciled view drivers adopt (mempool sync's union).
        self.reconciled: dict = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        # Exchange summary, valid once the engine reaches DONE/FAILED.
        self.roundtrips = 0.0
        self.protocol_used = 1
        self.p1_success = False
        self.p1_decode_failed = False
        self.p2_used_pingpong = False
        self.p2_decode_solo = False
        self.p2_decode_complete = False
        self.fetched_count = 0
        self.missing_short_ids: frozenset = frozenset()
        #: Coded symbols streamed so far (Protocol 3 exchanges only).
        self.p3_symbols = 0

    # ------------------------------------------------------------------

    def _record(self, command: str, direction: str, phase: str,
                roundtrip: int, parts: dict,
                outcome: str = "") -> MessageEvent:
        event = MessageEvent(command=command, direction=direction,
                             role="receiver", phase=phase,
                             roundtrip=roundtrip, parts=parts,
                             outcome=outcome)
        self.telemetry.append(event)
        return event

    def start(self) -> EngineAction:
        """Begin: emit the getdata with our mempool count.

        ``config.protocol == 3`` opens the rateless exchange instead:
        the same getdata command (so inv routing, recovery and peer
        plumbing are untouched) with the marker byte appended.
        """
        if self.phase is not ReceiverPhase.IDLE:
            raise ProtocolFailure(f"cannot start from phase {self.phase}")
        rateless = self.config.protocol == 3
        self.phase = ReceiverPhase.WAIT_P3 if rateless \
            else ReceiverPhase.WAIT_P1
        self.roundtrips = 1.5
        m = len(self.mempool)
        if self.mode == "block":
            # The inv that triggered this exchange, so the stream covers
            # the whole relay the way the paper's accounting does.
            self._record("inv", "received", "inv", 0, {"inv": inv_bytes()})
        if rateless:
            self.protocol_used = 3
            message = struct.pack("<IB", m, P3_GETDATA_MARKER)
            phase, extra = "p3", 1  # +1 for the marker byte
        else:
            message = struct.pack("<I", m)
            phase, extra = "p1", 0
        self.bytes_sent += len(message)
        event = self._record("getdata", "sent", phase, 1,
                             {"getdata": getdata_bytes(m) + extra})
        action = EngineAction(ActionKind.SEND, "getdata", message,
                              event=event)
        self._last_send = action
        return action

    def _fail(self) -> EngineAction:
        logger.info("graphene receiver failed in phase %s; caller should "
                    "fall back to a full block", self.phase)
        self.phase = ReceiverPhase.FAILED
        return EngineAction(ActionKind.FAILED)

    def _complete(self, txs: list) -> EngineAction:
        self.phase = ReceiverPhase.DONE
        block = Block(header=self.header, txs=tuple(txs)) \
            if self.header is not None else None
        return EngineAction(ActionKind.DONE, txs=txs, block=block)

    def _probe(self) -> Optional[Block]:
        """Validation target: a header-only block (block mode only)."""
        if self.mode != "block":
            return None
        return Block(header=self.header, txs=())

    def _request_short_ids(self, missing) -> EngineAction:
        self.missing_short_ids = frozenset(missing)
        self.phase = ReceiverPhase.WAIT_TXS
        self.roundtrips += 1.0
        width = self.config.short_id_bytes
        out = b"".join(sid.to_bytes(width, "little")
                       for sid in sorted(missing))
        self.bytes_sent += len(out)
        event = self._record(
            "getdata_shortids", "sent", "fetch", int(self.roundtrips),
            {"extra_getdata": short_id_request_bytes(len(missing), width)})
        action = EngineAction(ActionKind.SEND, "getdata_shortids", out,
                              event=event)
        self._last_send = action
        return action

    def on_p1_payload(self, message: bytes) -> EngineAction:
        """Process [header +] S + I; decode, fetch, or escalate."""
        if self.phase is not ReceiverPhase.WAIT_P1:
            raise ProtocolFailure(f"unexpected P1 payload in {self.phase}")
        self.bytes_received += len(message)
        offset = 0
        if self.mode == "block":
            self.header = decode_block_header(message)
            offset = 80
        payload, _ = decode_protocol1_payload(message, offset)
        result = receive_protocol1(payload, self.mempool, self.config,
                                   validate_block=self._probe())
        parts = _p1_parts(payload)
        self.p1_decode_failed = not result.decode_complete

        if self.mode == "mempool" and result.decode_complete:
            # Mempool sync never escalates a *complete* decode: missing
            # short IDs are simply sender transactions to fetch.
            self._record("graphene_block", "received", "p1", 1, parts,
                         outcome="decoded")
            self.p1_success = True
            self.reconciled = {tx.txid: tx for tx in result.reconciled}
            if result.missing_short_ids:
                return self._request_short_ids(result.missing_short_ids)
            return self._complete(result.txs)

        if result.success:
            self._record("graphene_block", "received", "p1", 1, parts,
                         outcome="decoded")
            self.p1_success = True
            self.reconciled = {tx.txid: tx for tx in result.reconciled}
            return self._complete(result.txs)

        self._record("graphene_block", "received", "p1", 1, parts,
                     outcome="fallback")
        self.protocol_used = 2
        self.roundtrips = 2.5
        request, state = build_protocol2_request(
            result, payload, len(self.mempool), self.config)
        self._p2_state = state
        self.phase = ReceiverPhase.WAIT_P2
        out = (struct.pack("<I", len(self.mempool))
               + encode_protocol2_request(request))
        self.bytes_sent += len(out)
        event = self._record("graphene_p2_request", "sent", "p2", 2,
                             _p2_request_parts(request))
        action = EngineAction(ActionKind.SEND, "graphene_p2_request", out,
                              event=event)
        self._last_send = action
        return action

    def on_p2_response(self, message: bytes) -> EngineAction:
        """Process T + J (+ F); finish, fetch leftovers, or fail."""
        if self.phase is not ReceiverPhase.WAIT_P2:
            raise ProtocolFailure(f"unexpected P2 response in {self.phase}")
        self.bytes_received += len(message)
        response, _ = decode_protocol2_response(message)
        result = finish_protocol2(response, self._p2_state, self.mempool,
                                  self.config, validate_block=self._probe())
        self.p2_used_pingpong = result.used_pingpong
        self.p2_decode_solo = result.decode_complete_solo
        self.p2_decode_complete = result.decode_complete
        parts = _p2_response_parts(response)
        if result.success:
            self._record("graphene_p2_response", "received", "p2", 2,
                         parts, outcome="decoded")
            self.reconciled = dict(result.recovered)
            return self._complete(result.txs)
        if not result.decode_complete:
            self._record("graphene_p2_response", "received", "p2", 2,
                         parts, outcome="failed")
            return self._fail()
        if result.missing_short_ids:
            self._record("graphene_p2_response", "received", "p2", 2,
                         parts, outcome="fetch")
            self.reconciled = dict(result.recovered)
            return self._request_short_ids(result.missing_short_ids)
        self._record("graphene_p2_response", "received", "p2", 2,
                     parts, outcome="failed")
        return self._fail()

    # ------------------------------------------------------------------
    # Protocol 3: the rateless symbol stream
    # ------------------------------------------------------------------

    def on_p3_payload(self, message: bytes) -> EngineAction:
        """Process [header +] S + first symbols; decode or ask for more."""
        if self.phase is not ReceiverPhase.WAIT_P3:
            raise ProtocolFailure(f"unexpected P3 payload in {self.phase}")
        self.bytes_received += len(message)
        offset = 0
        if self.mode == "block":
            self.header = decode_block_header(message)
            offset = 80
        payload, _ = decode_protocol3_payload(message, offset)
        parts = _p3_parts(payload)
        try:
            self._p3_state = begin_protocol3(payload, self.mempool,
                                             self.config)
        except MalformedIBLTError:
            self._record("graphene_p3_block", "received", "p3", 1, parts,
                         outcome="failed")
            return self._fail()
        self.p3_symbols = self._p3_state.symbols
        if self._p3_state.decoder.complete:
            return self._finish_p3("graphene_p3_block", parts, 1)
        self._record("graphene_p3_block", "received", "p3", 1, parts,
                     outcome="continue")
        return self._request_more_symbols()

    def on_p3_symbols(self, message: bytes) -> EngineAction:
        """Process a continuation batch; decode, ask again, or give up."""
        if self.phase is not ReceiverPhase.WAIT_P3_SYMBOLS:
            raise ProtocolFailure(f"unexpected P3 symbols in {self.phase}")
        self.bytes_received += len(message)
        batch, _ = decode_symbol_batch(message)
        parts = {"riblt": batch.wire_size()}
        roundtrip = int(self.roundtrips)
        state = self._p3_state
        try:
            complete = ingest_symbols(state, batch)
        except MalformedIBLTError:
            # A key peeled twice: the stream is malformed (replayed or
            # corrupted).  Fail cleanly; the recovery ladder treats it
            # like any other dead exchange.
            self._record("graphene_p3_symbols", "received", "p3",
                         roundtrip, parts, outcome="failed")
            return self._fail()
        self.p3_symbols = state.symbols
        if complete:
            return self._finish_p3("graphene_p3_symbols", parts, roundtrip)
        if state.symbols >= state.cap:
            # The stream has run far past any honest decode point.
            self._record("graphene_p3_symbols", "received", "p3",
                         roundtrip, parts, outcome="failed")
            return self._fail()
        self._record("graphene_p3_symbols", "received", "p3", roundtrip,
                     parts, outcome="continue")
        return self._request_more_symbols()

    def _request_more_symbols(self) -> EngineAction:
        state = self._p3_state
        start = state.symbols
        count = min(next_batch_size(start), state.cap - start, 0xFFFF)
        self.phase = ReceiverPhase.WAIT_P3_SYMBOLS
        self.roundtrips += 1.0
        message = encode_protocol3_request(start, count)
        self.bytes_sent += len(message)
        event = self._record("graphene_p3_request", "sent", "p3",
                             int(self.roundtrips),
                             {"getdata": p3_request_bytes()})
        action = EngineAction(ActionKind.SEND, "graphene_p3_request",
                              message, event=event)
        self._last_send = action
        return action

    def _finish_p3(self, command: str, parts: dict,
                   roundtrip: int) -> EngineAction:
        """Turn a complete rateless decode into DONE / fetch / FAILED."""
        result = finish_protocol3(self._p3_state, self.config,
                                  validate_block=self._probe())
        if not result.decode_complete:
            # The peel zeroed out but the arithmetic does not reconcile
            # with n -- a malformed (e.g. replayed) stream.
            self._record(command, "received", "p3", roundtrip, parts,
                         outcome="failed")
            return self._fail()
        if result.missing_short_ids:
            self._record(command, "received", "p3", roundtrip, parts,
                         outcome="fetch")
            self.reconciled = {tx.txid: tx for tx in result.reconciled}
            return self._request_short_ids(result.missing_short_ids)
        if result.success:
            self._record(command, "received", "p3", roundtrip, parts,
                         outcome="decoded")
            self.reconciled = {tx.txid: tx for tx in result.reconciled}
            return self._complete(result.txs)
        self._record(command, "received", "p3", roundtrip, parts,
                     outcome="failed")
        return self._fail()

    def on_tx_list(self, message: bytes) -> EngineAction:
        """Process the final repair transactions; validate in block mode."""
        if self.phase is not ReceiverPhase.WAIT_TXS:
            raise ProtocolFailure(f"unexpected tx list in {self.phase}")
        self.bytes_received += len(message)
        txs, _ = decode_tx_list(message)
        self.fetched_count = len(txs)
        parts = {"fetched_tx_bytes": sum(tx.size for tx in txs)}
        roundtrip = int(self.roundtrips)
        for tx in txs:
            self.reconciled[tx.txid] = tx
        if self.mode == "mempool":
            self._record("block_txs", "received", "fetch", roundtrip,
                         parts, outcome="done")
            return self._complete(sorted(self.reconciled.values(),
                                         key=lambda tx: tx.txid))
        probe = self._probe()
        ordered = probe.validated_order(list(self.reconciled.values()))
        if ordered is not None:
            self._record("block_txs", "received", "fetch", roundtrip,
                         parts, outcome="done")
            return self._complete(ordered)
        self._record("block_txs", "received", "fetch", roundtrip,
                     parts, outcome="failed")
        return self._fail()

    def handle(self, command: str, message) -> EngineAction:
        """Dispatch on the wire command via :data:`RECEIVER_STEPS`.

        Inbound ``bytes`` are wrapped in a :class:`memoryview` so the
        decode stack reads the receive buffer in place (zero-copy).
        """
        step = self._steps.get(command)
        if step is None:
            raise ParameterError(f"receiver cannot handle {command!r}")
        return step(memoryview(message) if type(message) is bytes
                    else message)

    # ------------------------------------------------------------------
    # Recovery hooks (timeout/retry drivers, see repro.net.recovery)
    # ------------------------------------------------------------------

    def accepts(self, command: str) -> bool:
        """Whether ``command`` is the response this phase awaits.

        Lossy links plus retransmission mean late duplicates can arrive
        after the exchange has moved on; drivers use this to drop them
        instead of tripping the phase discipline.
        """
        return _AWAITED_BY_PHASE.get(self.phase) == command

    def note_timeout(self) -> None:
        """Record that the response to the last request timed out.

        Emits a zero-byte telemetry event (``outcome="timeout"``) so
        the stall is visible in the canonical event stream without
        charging any wire bytes.
        """
        prev = self._last_send
        if prev is None or prev.event is None:
            return
        self._record(prev.command, "sent", prev.event.phase,
                     prev.event.roundtrip, {}, outcome="timeout")

    def reemit_last_request(self) -> EngineAction:
        """Re-issue the last outbound request verbatim after a timeout.

        The retransmission gets its own telemetry event with the same
        byte decomposition and ``outcome="retry"``, so cost accounting
        charges the resent bytes honestly.
        """
        prev = self._last_send
        if prev is None or prev.event is None:
            raise ProtocolFailure("no request in flight to re-emit")
        event = self._record(prev.command, "sent", prev.event.phase,
                             prev.event.roundtrip, dict(prev.event.parts),
                             outcome="retry")
        self.bytes_sent += len(prev.message)
        action = EngineAction(ActionKind.SEND, prev.command, prev.message,
                              event=event)
        self._last_send = action
        return action


def _parse_header(blob: bytes) -> BlockHeader:
    """Back-compat alias for :func:`repro.codec.decode_block_header`."""
    if len(blob) != 80:
        raise ParameterError(f"header must be 80 bytes, got {len(blob)}")
    return decode_block_header(blob)
