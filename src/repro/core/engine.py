"""Message-driven Graphene engines: explicit sender/receiver state machines.

:class:`~repro.core.session.BlockRelaySession` computes a whole relay in
one call, which is ideal for Monte-Carlo benchmarks.  Deployed clients
instead react to *messages*.  These engines expose that shape: every
step consumes an encoded byte string off the wire and returns the next
encoded byte string to send (or the finished block), with all state
kept inside the engine.  The network simulator's nodes drive them to
run genuine multi-message Graphene over latency/bandwidth links.

Message flow (paper Figs. 2-3)::

    receiver                          sender
    GrapheneReceiverEngine            GrapheneSenderEngine(block)
      start() -> getdata(m)   ---->     on_getdata(m) -> P1 payload
      on_p1_payload(blob)     <----
        -> DONE(txs)  or  P2 request
                              ---->     on_p2_request(blob) -> response
      on_p2_response(blob)    <----
        -> DONE(txs)  or  short-id getdata
                              ---->     on_shortid_request(blob) -> txs
      on_tx_list(blob)        <----
        -> DONE(txs)  or  FAILED
"""

from __future__ import annotations

import enum
import logging
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.block import Block, BlockHeader
from repro.chain.mempool import Mempool
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import (
    Protocol2ReceiverState,
    build_protocol2_request,
    finish_protocol2,
    respond_protocol2,
)
from repro.errors import ParameterError, ProtocolFailure
from repro.codec import (
    decode_protocol1_payload,
    decode_protocol2_request,
    decode_protocol2_response,
    decode_tx_list,
    encode_protocol1_payload,
    encode_protocol2_request,
    encode_protocol2_response,
    encode_tx_list,
)


logger = logging.getLogger(__name__)


class ReceiverPhase(enum.Enum):
    """Where the receiver stands in the exchange."""

    IDLE = "idle"
    WAIT_P1 = "wait_p1"
    WAIT_P2 = "wait_p2"
    WAIT_TXS = "wait_txs"
    DONE = "done"
    FAILED = "failed"


class ActionKind(enum.Enum):
    """What the caller should do with an engine step's result."""

    SEND = "send"      # transmit `message` (with `command`) to the peer
    DONE = "done"      # block complete; `txs` holds the ordered list
    FAILED = "failed"  # give up (a real client refetches the full block)


@dataclass(frozen=True)
class ReceiverAction:
    """One step's outcome: a message to send, completion, or failure."""

    kind: ActionKind
    command: str = ""
    message: bytes = b""
    txs: Optional[list] = None
    #: On DONE: the reconstructed block under the *received* header, so
    #: chain linkage (prev_hash, nonce) survives the relay.
    block: Optional[Block] = None


@dataclass
class GrapheneSenderEngine:
    """Serves one block to any number of peers, message by message."""

    block: Block
    config: GrapheneConfig = field(default_factory=GrapheneConfig)

    def on_getdata(self, message: bytes) -> bytes:
        """Handle a getdata carrying the receiver's mempool count."""
        if len(message) < 4:
            raise ParameterError("getdata too short")
        (m,) = struct.unpack_from("<I", message, 0)
        payload = build_protocol1(self.block.txs, m, self.config)
        return (self.block.header.serialize()
                + encode_protocol1_payload(payload))

    def on_p2_request(self, message: bytes) -> bytes:
        """Handle a Protocol 2 request (R, y*, b)."""
        if len(message) < 4:
            raise ParameterError("p2 request too short")
        (m,) = struct.unpack_from("<I", message, 0)
        request, _ = decode_protocol2_request(message, 4)
        response = respond_protocol2(request, self.block.txs, m, self.config)
        return encode_protocol2_response(response)

    def on_shortid_request(self, message: bytes) -> bytes:
        """Serve transactions requested by 8-byte short ID."""
        width = self.config.short_id_bytes
        wanted = {
            int.from_bytes(message[i:i + width], "little")
            for i in range(0, len(message) - width + 1, width)
        }
        txs = [tx for tx in self.block.txs
               if tx.short_id(width) in wanted]
        return encode_tx_list(txs)


class GrapheneReceiverEngine:
    """Reassembles one block from a peer, message by message."""

    def __init__(self, mempool: Mempool,
                 config: Optional[GrapheneConfig] = None):
        self.mempool = mempool
        self.config = config or GrapheneConfig()
        self.phase = ReceiverPhase.IDLE
        self.header: Optional[BlockHeader] = None
        self.block_for_validation: Optional[Block] = None
        self._p2_state: Optional[Protocol2ReceiverState] = None
        self._recovered: dict = {}
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------

    def start(self) -> ReceiverAction:
        """Begin: emit the getdata with our mempool count."""
        if self.phase is not ReceiverPhase.IDLE:
            raise ProtocolFailure(f"cannot start from phase {self.phase}")
        self.phase = ReceiverPhase.WAIT_P1
        message = struct.pack("<I", len(self.mempool))
        self.bytes_sent += len(message)
        return ReceiverAction(ActionKind.SEND, "getdata", message)

    def _fail(self) -> ReceiverAction:
        logger.info("graphene receiver failed in phase %s; caller should "
                    "fall back to a full block", self.phase)
        self.phase = ReceiverPhase.FAILED
        return ReceiverAction(ActionKind.FAILED)

    def _complete(self, txs: list) -> ReceiverAction:
        self.phase = ReceiverPhase.DONE
        block = Block(header=self.header, txs=tuple(txs)) \
            if self.header is not None else None
        return ReceiverAction(ActionKind.DONE, txs=txs, block=block)

    def on_p1_payload(self, message: bytes) -> ReceiverAction:
        """Process header + S + I; decode or escalate to Protocol 2."""
        if self.phase is not ReceiverPhase.WAIT_P1:
            raise ProtocolFailure(f"unexpected P1 payload in {self.phase}")
        self.bytes_received += len(message)
        header_blob, offset = message[:80], 80
        self.header = _parse_header(header_blob)
        payload, _ = decode_protocol1_payload(message, offset)
        # Validation target: a header-only block; candidate sets are
        # checked against its Merkle root.
        probe = Block(header=self.header, txs=())
        result = receive_protocol1(payload, self.mempool, self.config,
                                   validate_block=probe)
        if result.success:
            return self._complete(result.txs)
        request, state = build_protocol2_request(
            result, payload, len(self.mempool), self.config)
        self._p2_state = state
        self.phase = ReceiverPhase.WAIT_P2
        out = (struct.pack("<I", len(self.mempool))
               + encode_protocol2_request(request))
        self.bytes_sent += len(out)
        return ReceiverAction(ActionKind.SEND, "graphene_p2_request", out)

    def on_p2_response(self, message: bytes) -> ReceiverAction:
        """Process T + J (+ F); finish, fetch leftovers, or fail."""
        if self.phase is not ReceiverPhase.WAIT_P2:
            raise ProtocolFailure(f"unexpected P2 response in {self.phase}")
        self.bytes_received += len(message)
        response, _ = decode_protocol2_response(message)
        probe = Block(header=self.header, txs=())
        result = finish_protocol2(response, self._p2_state, self.mempool,
                                  self.config, validate_block=probe)
        if result.success:
            return self._complete(result.txs)
        if not result.decode_complete:
            return self._fail()
        if result.missing_short_ids:
            self._recovered = dict(result.recovered)
            self.phase = ReceiverPhase.WAIT_TXS
            width = self.config.short_id_bytes
            out = b"".join(sid.to_bytes(width, "little")
                           for sid in sorted(result.missing_short_ids))
            self.bytes_sent += len(out)
            return ReceiverAction(ActionKind.SEND, "getdata_shortids", out)
        return self._fail()

    def on_tx_list(self, message: bytes) -> ReceiverAction:
        """Process the final repair transactions and validate."""
        if self.phase is not ReceiverPhase.WAIT_TXS:
            raise ProtocolFailure(f"unexpected tx list in {self.phase}")
        self.bytes_received += len(message)
        txs, _ = decode_tx_list(message)
        candidate = dict(self._recovered)
        for tx in txs:
            candidate[tx.txid] = tx
        probe = Block(header=self.header, txs=())
        ordered = list(candidate.values())
        if probe.validate_candidate(ordered):
            return self._complete(probe.require_valid(ordered))
        return self._fail()

    def handle(self, command: str, message: bytes) -> ReceiverAction:
        """Dispatch on the wire command (what a node's inbox does)."""
        handlers = {
            "graphene_block": self.on_p1_payload,
            "graphene_p2_response": self.on_p2_response,
            "block_txs": self.on_tx_list,
        }
        if command not in handlers:
            raise ParameterError(f"receiver cannot handle {command!r}")
        return handlers[command](message)


def _parse_header(blob: bytes) -> BlockHeader:
    if len(blob) != 80:
        raise ParameterError(f"header must be 80 bytes, got {len(blob)}")
    version = int.from_bytes(blob[0:4], "little")
    prev_hash = blob[4:36]
    merkle_root = blob[36:68]
    timestamp, bits, nonce = struct.unpack_from("<III", blob, 68)
    return BlockHeader(version=version, prev_hash=prev_hash,
                       merkle_root=merkle_root, timestamp=timestamp,
                       bits=bits, nonce=nonce)
