"""End-to-end Graphene block relay: Protocol 1 with Protocol 2 fallback.

This is the orchestration a deployed client performs (paper Figs. 2-3):

1. ``inv`` -> ``getdata (m)`` -> Protocol 1 payload (S, I).
2. If the receiver decodes and the Merkle root checks out, done --
   one and a half roundtrips, the common case in deployment (46 failures
   in 15,647 blocks on Bitcoin Cash).
3. Otherwise the receiver starts Protocol 2 (R, y*, b), the sender
   responds (T, J, maybe F), ping-pong decoding merges both IBLTs, and
   any still-missing transactions are fetched by short ID in a final
   getdata before Merkle validation.

Every message's bytes are recorded in a :class:`CostBreakdown`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.ordering import ordering_info_bytes
from repro.core.params import GrapheneConfig
from repro.core.protocol1 import build_protocol1, receive_protocol1
from repro.core.protocol2 import (
    build_protocol2_request,
    finish_protocol2,
    respond_protocol2,
)
from repro.core.sizing import (
    CostBreakdown,
    getdata_bytes,
    inv_bytes,
    short_id_request_bytes,
)
from repro.errors import ProtocolFailure

logger = logging.getLogger(__name__)


@dataclass
class RelayOutcome:
    """Result of relaying one block to one receiver."""

    success: bool
    protocol_used: int  # 1 or 2 (2 implies 1 failed first)
    roundtrips: float
    cost: CostBreakdown = field(default_factory=CostBreakdown)
    txs: Optional[list] = None
    p1_decode_failed: bool = False
    p2_used_pingpong: bool = False
    fetched_count: int = 0

    @property
    def total_bytes(self) -> int:
        return self.cost.total()


class BlockRelaySession:
    """Relays blocks from a sender to a receiver, collecting costs.

    Parameters
    ----------
    config:
        Graphene parameters; defaults match the paper (beta = 239/240,
        8-byte short IDs, 12-byte IBLT cells).
    include_ordering_cost:
        Charge ``log2(n!)`` bits of transaction-ordering information, as
        the paper's Ethereum experiment does (section 6.2).  Off by
        default, matching CTOR chains like Bitcoin Cash.
    """

    def __init__(self, config: Optional[GrapheneConfig] = None,
                 include_ordering_cost: bool = False):
        self.config = config or GrapheneConfig()
        self.include_ordering_cost = include_ordering_cost

    def relay(self, block: Block, receiver_mempool: Mempool,
              strict: bool = False) -> RelayOutcome:
        """Relay ``block`` to a receiver holding ``receiver_mempool``.

        ``strict`` raises :class:`ProtocolFailure` when even Protocol 2
        cannot complete; otherwise a failed outcome is returned (a real
        client would fall back to a full-block request).
        """
        config = self.config
        m = len(receiver_mempool)
        cost = CostBreakdown(inv=inv_bytes(), getdata=getdata_bytes(m))

        payload = build_protocol1(block.txs, m, config)
        cost.bloom_s = payload.bloom_bytes
        cost.iblt_i = payload.iblt_bytes
        cost.counts = payload.wire_size() - payload.bloom_bytes - payload.iblt_bytes
        if self.include_ordering_cost:
            cost.ordering = ordering_info_bytes(block.n)

        p1 = receive_protocol1(payload, receiver_mempool, config,
                               validate_block=block)
        if not p1.success:
            logger.debug(
                "protocol 1 failed for block of %d txns (m=%d, "
                "decode_complete=%s); escalating to protocol 2",
                block.n, m, p1.decode_complete)
        if p1.success:
            return RelayOutcome(success=True, protocol_used=1,
                                roundtrips=1.5, cost=cost, txs=p1.txs)

        # --- Protocol 2 ---------------------------------------------------
        request, state = build_protocol2_request(p1, payload, m, config)
        cost.bloom_r = request.bloom_bytes
        cost.counts += request.wire_size() - request.bloom_bytes

        response = respond_protocol2(request, block.txs, m, config)
        cost.iblt_j = response.iblt_bytes
        cost.bloom_f = response.bloom_f_bytes
        cost.pushed_tx_bytes = response.txs_bytes

        p2 = finish_protocol2(response, state, receiver_mempool, config,
                              validate_block=block)
        outcome = RelayOutcome(success=False, protocol_used=2,
                               roundtrips=2.5, cost=cost,
                               p1_decode_failed=not p1.decode_complete,
                               p2_used_pingpong=p2.used_pingpong)

        if p2.missing_short_ids:
            # Final repair: request the b-ish transactions that slipped
            # through R by short ID and re-validate.
            fetched = self._fetch_by_short_id(block, p2.missing_short_ids)
            cost.extra_getdata = short_id_request_bytes(
                len(p2.missing_short_ids), config.short_id_bytes)
            cost.fetched_tx_bytes = sum(tx.size for tx in fetched)
            outcome.roundtrips += 1.0
            outcome.fetched_count = len(fetched)
            candidate = dict(p2.recovered)
            for tx in fetched:
                candidate[tx.txid] = tx
            txs = list(candidate.values())
            if block.validate_candidate(txs):
                outcome.success = True
                outcome.txs = block.require_valid(txs)
        elif p2.success:
            outcome.success = True
            outcome.txs = p2.txs

        if not outcome.success:
            logger.warning("graphene relay failed: block of %d txns, m=%d",
                           block.n, m)
        if not outcome.success and strict:
            raise ProtocolFailure(
                f"Graphene failed for block of {block.n} txs "
                f"(m={m}); a real client would request the full block")
        return outcome

    def _fetch_by_short_id(self, block: Block, short_ids) -> list:
        wanted = set(short_ids)
        width = self.config.short_id_bytes
        out = []
        for tx in block.txs:
            sid = tx.short_id(width)
            if sid in wanted:
                out.append(tx)
                wanted.discard(sid)
                if not wanted:
                    break
        return out
