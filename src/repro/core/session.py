"""End-to-end Graphene block relay: Protocol 1 with Protocol 2 fallback.

This is the orchestration a deployed client performs (paper Figs. 2-3):

1. ``inv`` -> ``getdata (m)`` -> Protocol 1 payload (S, I).
2. If the receiver decodes and the Merkle root checks out, done --
   one and a half roundtrips, the common case in deployment (46 failures
   in 15,647 blocks on Bitcoin Cash).
3. Otherwise the receiver starts Protocol 2 (R, y*, b), the sender
   responds (T, J, maybe F), ping-pong decoding merges both IBLTs, and
   any still-missing transactions are fetched by short ID in a final
   getdata before Merkle validation.

The flow itself lives in :mod:`repro.core.engine`; this session runs
the sender/receiver engine pair over an in-memory
:class:`~repro.net.transport.LoopbackTransport` and folds the engines'
telemetry event stream into a :class:`CostBreakdown` -- the same stream
the network simulator charges, so loopback and simulated relays agree
on bytes by construction.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.ordering import ordering_info_bytes
from repro.core.engine import (
    ActionKind,
    GrapheneReceiverEngine,
    GrapheneSenderEngine,
)
from repro.core.params import GrapheneConfig
from repro.core.sizing import CostBreakdown
from repro.errors import ProtocolFailure
from repro.net.transport import LoopbackTransport

logger = logging.getLogger(__name__)


@dataclass
class RelayOutcome:
    """Result of relaying one block to one receiver."""

    success: bool
    protocol_used: int  # 1 or 2 (2 implies 1 failed first)
    roundtrips: float
    cost: CostBreakdown = field(default_factory=CostBreakdown)
    txs: Optional[list] = None
    p1_decode_failed: bool = False
    p2_used_pingpong: bool = False
    fetched_count: int = 0
    #: Per-message telemetry stream the cost breakdown was folded from.
    events: list = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.cost.total()


class BlockRelaySession:
    """Relays blocks from a sender to a receiver, collecting costs.

    Parameters
    ----------
    config:
        Graphene parameters; defaults match the paper (beta = 239/240,
        8-byte short IDs, 12-byte IBLT cells).
    include_ordering_cost:
        Charge ``log2(n!)`` bits of transaction-ordering information, as
        the paper's Ethereum experiment does (section 6.2).  Off by
        default, matching CTOR chains like Bitcoin Cash.
    """

    def __init__(self, config: Optional[GrapheneConfig] = None,
                 include_ordering_cost: bool = False):
        self.config = config or GrapheneConfig()
        self.include_ordering_cost = include_ordering_cost

    def relay(self, block: Block, receiver_mempool: Mempool,
              strict: bool = False) -> RelayOutcome:
        """Relay ``block`` to a receiver holding ``receiver_mempool``.

        ``strict`` raises :class:`ProtocolFailure` when even Protocol 2
        cannot complete; otherwise a failed outcome is returned (a real
        client would fall back to a full-block request).
        """
        sender = GrapheneSenderEngine(block, self.config)
        receiver = GrapheneReceiverEngine(receiver_mempool, self.config)
        final = LoopbackTransport(sender, receiver).run()

        cost = CostBreakdown.from_events(receiver.telemetry)
        if self.include_ordering_cost:
            cost.ordering = ordering_info_bytes(block.n)

        success = final.kind is ActionKind.DONE
        if not success:
            logger.warning("graphene relay failed: block of %d txns, m=%d",
                           block.n, len(receiver_mempool))
            if strict:
                raise ProtocolFailure(
                    f"Graphene failed for block of {block.n} txs "
                    f"(m={len(receiver_mempool)}); a real client would "
                    "request the full block")
        return RelayOutcome(
            success=success,
            protocol_used=receiver.protocol_used,
            roundtrips=receiver.roundtrips,
            cost=cost,
            txs=final.txs if success else None,
            p1_decode_failed=receiver.p1_decode_failed,
            p2_used_pingpong=receiver.p2_used_pingpong,
            fetched_count=receiver.fetched_count,
            events=list(receiver.telemetry))
