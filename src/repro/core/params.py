"""Optimal sizing of Graphene's Bloom filter / IBLT pairs (paper 3.3).

Graphene sends the least data when the *sum* of a Bloom filter and the
IBLT that repairs its false positives is minimal.  The paper gives the
continuous optimum ``a = n / (8 r tau ln^2 2)`` (Eq. 3) and notes that
below ``a ~ 100`` the ceiling functions inside real implementations make
the continuous answer up to 20% off, so "implementations that desire
strictly optimal performance" should search the discrete space.  We do
both: candidates from the closed form plus an exhaustive sweep of the
small-``a`` region and a geometric grid above it, all evaluated with the
true byte-accurate cost function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.bounds import BETA_DEFAULT, a_star
from repro.errors import ParameterError
from repro.pds.bloom import bloom_size_bytes
from repro.pds.iblt import DEFAULT_CELL_BYTES, IBLT_HEADER_BYTES
from repro.pds.param_table import (
    DEFAULT_DENOM,
    IBLTParamTable,
    IBLTParams,
    default_param_table,
)

#: Wire overhead of a serialized Bloom filter (see BloomFilter.serialized_size).
BLOOM_HEADER_BYTES = 9

#: Below this candidate value the continuous Eq. 3/5 optimum is unreliable
#: and the space is swept exhaustively (paper 3.3.1).
EXHAUSTIVE_LIMIT = 150


@dataclass(frozen=True)
class GrapheneConfig:
    """Knobs shared by every Graphene exchange.

    Attributes
    ----------
    beta:
        Assurance level for Theorems 1-3 (paper default 239/240).
    cell_bytes:
        Serialized IBLT cell width ``r``.
    decode_denom:
        The IBLT parameter table targets a decode failure rate of
        ``1/decode_denom``.
    short_id_bytes:
        Width of the short transaction IDs stored in IBLTs.
    special_case_fpr:
        The fixed ``f_R`` used in the ``m ~ n`` special case (paper
        3.3.2 sets 0.1 and reports 0.001-0.2 all work).
    protocol:
        Which Graphene exchange the engines run: 1 is the classic
        Protocol 1 with Protocol 2 fallback; 3 is the rateless-IBLT
        stream (:mod:`repro.core.protocol3`), which needs no
        difference estimate and has no fallback branch.
    """

    beta: float = BETA_DEFAULT
    cell_bytes: int = DEFAULT_CELL_BYTES
    decode_denom: int = DEFAULT_DENOM
    short_id_bytes: int = 8
    special_case_fpr: float = 0.1
    seed: int = 0
    protocol: int = 1

    def table(self) -> IBLTParamTable:
        return default_param_table(self.decode_denom)

    def iblt_bytes(self, params: IBLTParams) -> int:
        return IBLT_HEADER_BYTES + params.cells * self.cell_bytes


@dataclass(frozen=True)
class FilterIBLTPlan:
    """A chosen (Bloom filter, IBLT) pair and its cost breakdown.

    ``a`` plays the role of the expected false positive count through the
    filter (called ``a`` for S+I in Protocol 1 and ``b`` for R+J in
    Protocol 2); ``recover`` is the item count the IBLT is provisioned
    for (``a*`` or ``b + y*``).
    """

    a: int
    fpr: float
    recover: int
    iblt: IBLTParams
    bloom_bytes: int
    iblt_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.bloom_bytes + self.iblt_bytes


def _iblt_cost(recover: int, table: IBLTParamTable,
               config: GrapheneConfig) -> tuple[IBLTParams, int]:
    params = table.params_for(max(1, recover))
    return params, config.iblt_bytes(params)


def _bloom_cost(items: int, fpr: float) -> int:
    if fpr >= 1.0:
        return 0  # degenerate filter: nothing on the wire
    return bloom_size_bytes(items, fpr) + BLOOM_HEADER_BYTES


def _candidate_values(closed_form: int, upper: int) -> list[int]:
    """Candidate integers: exhaustive small region + geometric grid + hint."""
    candidates = set(range(1, min(upper, EXHAUSTIVE_LIMIT) + 1))
    value = EXHAUSTIVE_LIMIT
    while value < upper:
        value = int(math.ceil(value * 1.15))
        candidates.add(min(value, upper))
    candidates.add(upper)
    for offset in (-2, -1, 0, 1, 2):
        hint = closed_form + offset
        if 1 <= hint <= upper:
            candidates.add(hint)
    return sorted(candidates)


def closed_form_a(n: int, tau: float, cell_bytes: int) -> int:
    """Eq. 3 / Eq. 5: ``a = n / (8 r tau ln^2 2)`` with delta = 0."""
    if tau <= 0 or cell_bytes <= 0:
        raise ParameterError("tau and cell_bytes must be positive")
    ln2sq = math.log(2.0) ** 2
    return max(1, round(n / (8.0 * cell_bytes * tau * ln2sq)))


#: Memoized Protocol 1 plans keyed ``(n, m, config)``.  The sweep over
#: candidate ``a`` values re-runs for every relay of the same block to
#: a similarly-sized mempool; plans are frozen, so sharing the result
#: is safe.  Bounded: oldest half evicted at the cap.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_CAP = 4096


def optimize_a(n: int, m: int, config: Optional[GrapheneConfig] = None) -> FilterIBLTPlan:
    """Choose ``a`` minimizing the total size of Bloom filter S and IBLT I.

    ``n`` transactions are inserted into S (full IDs); the IBLT must
    recover ``a* = (1 + delta) a`` items with beta-assurance (Theorem 1).
    Covers the paper's edge cases: ``m == n`` degenerates to an FPR-1
    (absent) filter plus a minimal IBLT, and the full sweep includes
    ``a = m - n``, the IBLT-only end of the spectrum.
    """
    config = config or GrapheneConfig()
    if n < 0 or m < 0:
        raise ParameterError(f"n and m must be non-negative: {n}, {m}")
    key = (n, m, config)
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    plan = _optimize_a_uncached(n, m, config)
    if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
        for stale in list(_PLAN_CACHE)[:_PLAN_CACHE_CAP // 2]:
            del _PLAN_CACHE[stale]
    _PLAN_CACHE[key] = plan
    return plan


def _optimize_a_uncached(n: int, m: int,
                         config: GrapheneConfig) -> FilterIBLTPlan:
    table = config.table()
    excess = m - n
    if n == 0:
        params, cost = _iblt_cost(1, table, config)
        return FilterIBLTPlan(a=0, fpr=1.0, recover=1, iblt=params,
                              bloom_bytes=0, iblt_bytes=cost)
    if excess <= 0:
        # Receiver claims no extra transactions: no false positives are
        # possible, the Bloom filter degenerates to FPR 1 (zero bytes) and
        # a small IBLT guards against the receiver actually missing txns.
        params, cost = _iblt_cost(1, table, config)
        return FilterIBLTPlan(a=0, fpr=1.0, recover=1, iblt=params,
                              bloom_bytes=0, iblt_bytes=cost)

    hint = closed_form_a(n, table.tau_for(max(1, min(excess, n) // 2)),
                         config.cell_bytes)
    best: Optional[FilterIBLTPlan] = None
    for a in _candidate_values(hint, excess):
        fpr = min(1.0, a / excess)
        recover = math.ceil(a_star(a, config.beta))
        params, iblt_cost = _iblt_cost(recover, table, config)
        plan = FilterIBLTPlan(a=a, fpr=fpr, recover=recover, iblt=params,
                              bloom_bytes=_bloom_cost(n, fpr),
                              iblt_bytes=iblt_cost)
        if best is None or plan.total_bytes < best.total_bytes:
            best = plan
    return best


def optimize_b(z: int, missing_bound: int, ystar: int,
               config: Optional[GrapheneConfig] = None) -> FilterIBLTPlan:
    """Choose ``b`` minimizing the total size of Bloom filter R and IBLT J.

    ``z`` candidate transactions are inserted into R with FPR
    ``f_R = b / missing_bound`` where ``missing_bound = n - x*`` upper
    bounds (w.p. beta) how many block transactions the receiver is
    missing.  IBLT J must recover ``b + y*`` items (paper 3.3.2).
    """
    config = config or GrapheneConfig()
    if z < 0 or ystar < 0:
        raise ParameterError(f"z and ystar must be non-negative: {z}, {ystar}")
    table = config.table()
    if missing_bound <= 0:
        # Nothing provably missing; R degenerates, J still repairs y*.
        recover = max(1, ystar)
        params, cost = _iblt_cost(recover, table, config)
        return FilterIBLTPlan(a=0, fpr=1.0, recover=recover, iblt=params,
                              bloom_bytes=0, iblt_bytes=cost)

    hint = closed_form_a(z, table.tau_for(max(1, ystar + 1)),
                         config.cell_bytes) if z else 1
    best: Optional[FilterIBLTPlan] = None
    for b in _candidate_values(hint, missing_bound):
        fpr = min(1.0, b / missing_bound)
        recover = b + ystar
        params, iblt_cost = _iblt_cost(recover, table, config)
        plan = FilterIBLTPlan(a=b, fpr=fpr, recover=recover, iblt=params,
                              bloom_bytes=_bloom_cost(z, fpr),
                              iblt_bytes=iblt_cost)
        if best is None or plan.total_bytes < best.total_bytes:
            best = plan
    return best
