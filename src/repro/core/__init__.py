"""The Graphene protocols (the paper's primary contribution).

Layout mirrors section 3 of the paper:

* :mod:`repro.core.bounds` -- Theorems 1-3: the Chernoff-bound
  derivations of ``a*``, ``x*`` and ``y*`` that make the probabilistic
  data structures succeed with beta-assurance.
* :mod:`repro.core.params` -- the size optimizations for ``a`` (Eqs. 2-3)
  and ``b`` (Eqs. 4-5), including the exact discrete search the paper
  prescribes when the optimum falls below 100.
* :mod:`repro.core.protocol1` -- Protocol 1 (Bloom filter S + IBLT I).
* :mod:`repro.core.protocol2` -- Protocol 2 / Graphene Extended
  (Bloom filter R + IBLT J, missing-transaction repair, the m ~ n
  special case with filter F).
* :mod:`repro.core.mempool_sync` -- mempool synchronization (3.2.1).
* :mod:`repro.core.session` -- end-to-end relay: Protocol 1 with
  fallback to Protocol 2 and ping-pong decoding, plus Merkle validation.
"""

from repro.core.bounds import BETA_DEFAULT, a_star, x_star, y_star
from repro.core.params import (
    GrapheneConfig,
    optimize_a,
    optimize_b,
)
from repro.core.protocol1 import (
    Protocol1Payload,
    Protocol1Result,
    build_protocol1,
    receive_protocol1,
)
from repro.core.protocol2 import (
    Protocol2Request,
    Protocol2Response,
    build_protocol2_request,
    respond_protocol2,
    finish_protocol2,
)
from repro.core.session import BlockRelaySession, RelayOutcome
from repro.core.mempool_sync import MempoolSyncResult, synchronize_mempools

__all__ = [
    "BETA_DEFAULT",
    "a_star",
    "x_star",
    "y_star",
    "GrapheneConfig",
    "optimize_a",
    "optimize_b",
    "Protocol1Payload",
    "Protocol1Result",
    "build_protocol1",
    "receive_protocol1",
    "Protocol2Request",
    "Protocol2Response",
    "build_protocol2_request",
    "respond_protocol2",
    "finish_protocol2",
    "BlockRelaySession",
    "RelayOutcome",
    "MempoolSyncResult",
    "synchronize_mempools",
]
