"""Shared low-level utilities: hashing, wire encoding, statistics."""

from repro.utils.hashing import (
    DerivedHasher,
    sha256,
    short_id,
    split_digest,
)
from repro.utils.siphash import siphash24
from repro.utils.serialization import (
    compact_size,
    compact_size_len,
    read_compact_size,
)
from repro.utils.stats import (
    chernoff_delta,
    wilson_interval,
)

__all__ = [
    "DerivedHasher",
    "sha256",
    "short_id",
    "split_digest",
    "siphash24",
    "compact_size",
    "compact_size_len",
    "read_compact_size",
    "chernoff_delta",
    "wilson_interval",
]
