"""Hashing helpers used by every probabilistic data structure in the package.

Two idioms from the paper live here:

* **Hash splitting** (paper 6.3): transaction IDs are already the output of
  a cryptographic hash, so instead of rehashing an item ``k`` times for a
  Bloom filter, we slice the 32-byte digest into ``k`` independent pieces.
  :func:`split_digest` implements the slicing and falls back to cheap
  derived hashing when ``k`` pieces do not fit.

* **Derived hashing** (Kirsch & Mitzenmacher): ``h_i(x) = h1(x) + i*h2(x)``
  gives an arbitrary number of independent-enough hash functions from two
  base values.  :class:`DerivedHasher` packages this with a seed so that
  sibling IBLTs can use independent hash families (required by ping-pong
  decoding, paper 4.2).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterator

try:  # optional vector backend for the batch entry points
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always ships numpy
    _np = None

_U64 = 0xFFFFFFFFFFFFFFFF

_PACK_Q = struct.Struct("<Q").pack
_UNPACK_QQQQ = struct.Struct("<QQQQ").unpack
_UNPACK_QQ_FROM = struct.Struct("<QQ").unpack_from


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def short_id(txid: bytes, nbytes: int = 8) -> int:
    """Truncate a full transaction ID to an ``nbytes``-byte integer.

    The paper's IBLT stores only the first 8 bytes of each transaction ID
    (Protocol 1, step 3 note); Compact Blocks uses 6, XThin uses 8.
    """
    if not 1 <= nbytes <= len(txid):
        raise ValueError(f"nbytes must be in [1, {len(txid)}], got {nbytes}")
    return int.from_bytes(txid[:nbytes], "little")


def split_digest(digest: bytes, k: int, modulus: int) -> Iterator[int]:
    """Yield ``k`` hash values in ``[0, modulus)`` by slicing ``digest``.

    Implements the hash-splitting optimization of paper section 6.3: the
    32-byte digest is broken into 4-byte words, each word serving as one
    hash value.  When more than ``len(digest) // 4`` values are requested,
    the remainder are produced with derived hashing seeded from the first
    two words, preserving the "no extra cryptographic hashing" property.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    nwords = len(digest) // 4
    words = struct.unpack(f"<{nwords}I", digest[: 4 * nwords])
    direct = min(k, nwords)
    for i in range(direct):
        yield words[i] % modulus
    if k > nwords:
        h1, h2 = words[0], words[1] | 1
        for i in range(nwords, k):
            yield ((h1 + i * h2) & _U64) % modulus


class DerivedHasher:
    """A family of ``k`` hash functions over 64-bit keys.

    Uses the Kirsch-Mitzenmacher construction ``h_i(x) = h1 + i*h2`` where
    ``h1`` and ``h2`` are halves of a seeded SHA-256 of the key.  Each
    instance is deterministic given ``(seed, k)``; different seeds give
    (statistically) independent families, which is what ping-pong decoding
    requires of the two IBLTs.

    Each instance keeps a bounded hash-word cache (key -> the ``k`` 64-bit
    words plus the checksum base), so a key digested once is free on every
    later insert/peel/probe against any structure sharing the hasher.  The
    protocols sweep the same mempool against S, I, I', J and J' in one
    session; :meth:`shared` hands all structures of one ``(k, seed)``
    family the same instance so they also share the cache.
    """

    __slots__ = ("seed", "k", "_prefix", "_cache", "_cache_cap",
                 "_mid_base", "_mid_words", "_blob_words", "_unpack_blob",
                 "_batch_cache")

    #: Bound on whole-batch blob memos (see :meth:`batch_entries`).
    BATCH_CACHE_CAP = 32

    #: Bound on cached keys per family; at ~100 B/entry this caps the
    #: cache near 13 MB.  Eviction drops the oldest half (insertion
    #: order), an O(1)-amortized approximation of LRU.
    CACHE_CAP = 1 << 17

    #: Registry of shared per-family instances (see :meth:`shared`).
    _shared: dict = {}

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self._prefix = struct.pack("<Q", seed & _U64)
        self._cache: dict[int, bytes] = {}
        self._cache_cap = self.CACHE_CAP
        self._batch_cache: dict[tuple, bytes] = {}
        # SHA-256 midstates with the seed prefix (and, for the index
        # words, the counter) already absorbed; a cache miss copies these
        # and feeds only the 8-byte key instead of rebuilding the message.
        self._mid_base = hashlib.sha256(self._prefix)
        self._mid_words = hashlib.sha256(self._prefix + b"\x00\x00\x00\x00")
        # Cached blob layout: ceil(k/4) word digests then 16 bytes of the
        # base digest -- a flat byte view both entry() and the numpy
        # batch path can slice without re-hashing.
        self._blob_words = 4 * ((k + 3) // 4)
        self._unpack_blob = struct.Struct(f"<{self._blob_words + 2}Q").unpack

    @classmethod
    def shared(cls, k: int, seed: int = 0) -> "DerivedHasher":
        """Return the process-wide hasher for the ``(k, seed)`` family.

        Sibling structures (an IBLT ``I`` and its receiver-built ``I'``,
        or a subtracted difference) share one hash family by protocol
        design; sharing the instance means each txid is digested once per
        family per process instead of once per structure.
        """
        hasher = cls._shared.get((k, seed))
        if hasher is None:
            # Bound the registry: decode-rate experiments spin up
            # thousands of one-shot families.  Evicting only forgets the
            # shared cache for that family; live structures keep their
            # hasher reference and stay correct.
            if len(cls._shared) >= 256:
                for stale in list(cls._shared)[:128]:
                    del cls._shared[stale]
            hasher = cls._shared[(k, seed)] = cls(k, seed)
        return hasher

    def entry(self, key: int) -> tuple:
        """Return ``(words, checksum_base)`` for ``key``, cached.

        ``words`` is the tuple of ``k`` 64-bit hash words driving index
        selection; ``checksum_base`` is the unmasked IBLT checksum value
        (mask to taste with ``& ((1 << bits) - 1)``).  Two SHA-256
        invocations on a miss, zero on a hit.
        """
        key &= _U64
        blob = self._cache.get(key)
        if blob is None:
            blob = self._make_blob(key)
        vals = self._unpack_blob(blob)
        # base_pair() forces h2 odd, but bit 0 is shifted out by >> 7, so
        # the raw word gives the identical checksum base.
        return vals[:self.k], vals[-2] ^ (vals[-1] >> 7)

    def _make_blob(self, key: int) -> bytes:
        """Digest ``key`` into the cached blob (word digests + base pair)."""
        packed = _PACK_Q(key)
        if self.k <= 4:
            # One digest covers up to four index words; slicing matches
            # _words(key, k) exactly (counter 0, first k of four words).
            h = self._mid_words.copy()
            h.update(packed)
            words_blob = h.digest()
        else:
            parts = []
            for counter in range((self.k + 3) // 4):
                parts.append(hashlib.sha256(
                    self._prefix + struct.pack("<I", counter)
                    + packed).digest())
            words_blob = b"".join(parts)
        h = self._mid_base.copy()
        h.update(packed)
        blob = words_blob + h.digest()[:16]
        cache = self._cache
        if len(cache) >= self._cache_cap:
            for stale in list(cache)[:self._cache_cap // 2]:
                del cache[stale]
        cache[key] = blob
        return blob

    def batch_entries(self, keys):
        """Vectorized :meth:`entry` over a key list (numpy backend).

        Returns ``(words, csums)`` -- a ``(len(keys), k)`` uint64 array of
        index words and a ``(len(keys),)`` uint64 array of unmasked
        checksum bases -- or ``None`` when numpy is unavailable (callers
        fall back to per-key :meth:`entry`).  Keys must already be masked
        to 64 bits.  Misses are digested and cached exactly like
        :meth:`entry` misses.
        """
        if _np is None:
            return None
        # Whole-batch memo: a relay rebuilds I' from the identical key
        # list on every hop, so the concatenated blob repeats verbatim;
        # the tuple key is exact (no hashing shortcuts).
        tkey = tuple(keys)
        batch_cache = self._batch_cache
        blob = batch_cache.get(tkey)
        if blob is None:
            get = self._cache.get
            make = self._make_blob
            blob = b"".join([get(key) or make(key) for key in keys])
            if len(batch_cache) >= self.BATCH_CACHE_CAP:
                for stale in list(batch_cache)[:self.BATCH_CACHE_CAP // 2]:
                    del batch_cache[stale]
            batch_cache[tkey] = blob
        arr = _np.frombuffer(blob, dtype="<u8")
        arr = arr.reshape(len(keys), self._blob_words + 2)
        csums = arr[:, -2] ^ (arr[:, -1] >> _np.uint64(7))
        return arr[:, :self.k], csums

    def base_pair(self, key: int) -> tuple[int, int]:
        """Return the ``(h1, h2)`` base values for ``key``."""
        digest = hashlib.sha256(self._prefix + struct.pack("<Q", key & _U64)).digest()
        h1, h2 = struct.unpack("<QQ", digest[:16])
        return h1, h2 | 1

    def _words(self, key: int, need: int) -> list[int]:
        """Return ``need`` independent 64-bit hash words for ``key``.

        Each SHA-256 invocation yields four words; a counter extends the
        stream for large ``k``.  Independence across positions matters
        for IBLTs: deriving position ``i`` as ``h1 + i*h2`` (fine for
        Bloom filters) would make every edge an arithmetic progression,
        shrinking the effective edge space quadratically and creating
        spurious 2-cores via birthday collisions.
        """
        words: list[int] = []
        counter = 0
        packed_key = struct.pack("<Q", key & _U64)
        while len(words) < need:
            digest = hashlib.sha256(
                self._prefix + struct.pack("<I", counter) + packed_key).digest()
            words.extend(struct.unpack("<QQQQ", digest))
            counter += 1
        return words[:need]

    def indices(self, key: int, modulus: int) -> list[int]:
        """Return ``k`` independent indices in ``[0, modulus)`` for ``key``."""
        return [w % modulus for w in self.entry(key)[0]]

    def partitioned_indices(self, key: int, cells: int) -> list[int]:
        """Return one index per partition for an IBLT with ``cells`` cells.

        The IBLT's cell array is split into ``k`` contiguous partitions of
        ``cells // k`` cells each and hash function ``i`` covers only
        partition ``i`` (paper 2.1), mirroring the k-partite hypergraph of
        section 4.1.
        """
        if cells % self.k != 0:
            raise ValueError(
                f"cell count {cells} not divisible by k={self.k}")
        width = cells // self.k
        return [
            i * width + (w % width)
            for i, w in enumerate(self.entry(key)[0])
        ]

    def checksum(self, key: int, bits: int = 16) -> int:
        """Return a ``bits``-bit checksum of ``key`` for IBLT cells."""
        return self.entry(key)[1] & ((1 << bits) - 1)

    def __repr__(self) -> str:
        return f"DerivedHasher(k={self.k}, seed={self.seed})"
