"""Hashing helpers used by every probabilistic data structure in the package.

Two idioms from the paper live here:

* **Hash splitting** (paper 6.3): transaction IDs are already the output of
  a cryptographic hash, so instead of rehashing an item ``k`` times for a
  Bloom filter, we slice the 32-byte digest into ``k`` independent pieces.
  :func:`split_digest` implements the slicing and falls back to cheap
  derived hashing when ``k`` pieces do not fit.

* **Derived hashing** (Kirsch & Mitzenmacher): ``h_i(x) = h1(x) + i*h2(x)``
  gives an arbitrary number of independent-enough hash functions from two
  base values.  :class:`DerivedHasher` packages this with a seed so that
  sibling IBLTs can use independent hash families (required by ping-pong
  decoding, paper 4.2).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterator

_U64 = 0xFFFFFFFFFFFFFFFF


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def short_id(txid: bytes, nbytes: int = 8) -> int:
    """Truncate a full transaction ID to an ``nbytes``-byte integer.

    The paper's IBLT stores only the first 8 bytes of each transaction ID
    (Protocol 1, step 3 note); Compact Blocks uses 6, XThin uses 8.
    """
    if not 1 <= nbytes <= len(txid):
        raise ValueError(f"nbytes must be in [1, {len(txid)}], got {nbytes}")
    return int.from_bytes(txid[:nbytes], "little")


def split_digest(digest: bytes, k: int, modulus: int) -> Iterator[int]:
    """Yield ``k`` hash values in ``[0, modulus)`` by slicing ``digest``.

    Implements the hash-splitting optimization of paper section 6.3: the
    32-byte digest is broken into 4-byte words, each word serving as one
    hash value.  When more than ``len(digest) // 4`` values are requested,
    the remainder are produced with derived hashing seeded from the first
    two words, preserving the "no extra cryptographic hashing" property.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if modulus < 1:
        raise ValueError(f"modulus must be >= 1, got {modulus}")
    nwords = len(digest) // 4
    words = struct.unpack(f"<{nwords}I", digest[: 4 * nwords])
    direct = min(k, nwords)
    for i in range(direct):
        yield words[i] % modulus
    if k > nwords:
        h1, h2 = words[0], words[1] | 1
        for i in range(nwords, k):
            yield ((h1 + i * h2) & _U64) % modulus


class DerivedHasher:
    """A family of ``k`` hash functions over 64-bit keys.

    Uses the Kirsch-Mitzenmacher construction ``h_i(x) = h1 + i*h2`` where
    ``h1`` and ``h2`` are halves of a seeded SHA-256 of the key.  Each
    instance is deterministic given ``(seed, k)``; different seeds give
    (statistically) independent families, which is what ping-pong decoding
    requires of the two IBLTs.
    """

    __slots__ = ("seed", "k", "_prefix")

    def __init__(self, k: int, seed: int = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self._prefix = struct.pack("<Q", seed & _U64)

    def base_pair(self, key: int) -> tuple[int, int]:
        """Return the ``(h1, h2)`` base values for ``key``."""
        digest = hashlib.sha256(self._prefix + struct.pack("<Q", key & _U64)).digest()
        h1, h2 = struct.unpack("<QQ", digest[:16])
        return h1, h2 | 1

    def _words(self, key: int, need: int) -> list[int]:
        """Return ``need`` independent 64-bit hash words for ``key``.

        Each SHA-256 invocation yields four words; a counter extends the
        stream for large ``k``.  Independence across positions matters
        for IBLTs: deriving position ``i`` as ``h1 + i*h2`` (fine for
        Bloom filters) would make every edge an arithmetic progression,
        shrinking the effective edge space quadratically and creating
        spurious 2-cores via birthday collisions.
        """
        words: list[int] = []
        counter = 0
        packed_key = struct.pack("<Q", key & _U64)
        while len(words) < need:
            digest = hashlib.sha256(
                self._prefix + struct.pack("<I", counter) + packed_key).digest()
            words.extend(struct.unpack("<QQQQ", digest))
            counter += 1
        return words[:need]

    def indices(self, key: int, modulus: int) -> list[int]:
        """Return ``k`` independent indices in ``[0, modulus)`` for ``key``."""
        return [w % modulus for w in self._words(key, self.k)]

    def partitioned_indices(self, key: int, cells: int) -> list[int]:
        """Return one index per partition for an IBLT with ``cells`` cells.

        The IBLT's cell array is split into ``k`` contiguous partitions of
        ``cells // k`` cells each and hash function ``i`` covers only
        partition ``i`` (paper 2.1), mirroring the k-partite hypergraph of
        section 4.1.
        """
        if cells % self.k != 0:
            raise ValueError(
                f"cell count {cells} not divisible by k={self.k}")
        width = cells // self.k
        return [
            i * width + (w % width)
            for i, w in enumerate(self._words(key, self.k))
        ]

    def checksum(self, key: int, bits: int = 16) -> int:
        """Return a ``bits``-bit checksum of ``key`` for IBLT cells."""
        h1, h2 = self.base_pair(key)
        return (h1 ^ (h2 >> 7)) & ((1 << bits) - 1)

    def __repr__(self) -> str:
        return f"DerivedHasher(k={self.k}, seed={self.seed})"
