"""Bitcoin-style wire encoding primitives.

Network messages in this package account for their size using the same
CompactSize varint that Bitcoin's p2p protocol uses, so that byte counts
reported by the benchmark harness match what a deployed client would put
on the wire.
"""

from __future__ import annotations

import struct


def compact_size(n: int) -> bytes:
    """Encode ``n`` as a Bitcoin CompactSize unsigned integer."""
    if n < 0:
        raise ValueError(f"CompactSize cannot encode negative value {n}")
    if n < 0xFD:
        return struct.pack("<B", n)
    if n <= 0xFFFF:
        return b"\xfd" + struct.pack("<H", n)
    if n <= 0xFFFFFFFF:
        return b"\xfe" + struct.pack("<I", n)
    if n <= 0xFFFFFFFFFFFFFFFF:
        return b"\xff" + struct.pack("<Q", n)
    raise ValueError(f"CompactSize cannot encode {n} (exceeds 8 bytes)")


def compact_size_len(n: int) -> int:
    """Return the encoded length of ``n`` as a CompactSize, in bytes."""
    if n < 0:
        raise ValueError(f"CompactSize cannot encode negative value {n}")
    if n < 0xFD:
        return 1
    if n <= 0xFFFF:
        return 3
    if n <= 0xFFFFFFFF:
        return 5
    if n <= 0xFFFFFFFFFFFFFFFF:
        return 9
    raise ValueError(f"CompactSize cannot encode {n} (exceeds 8 bytes)")


def read_compact_size(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a CompactSize at ``offset``; return ``(value, new_offset)``."""
    if offset >= len(data):
        raise ValueError("buffer exhausted while reading CompactSize")
    first = data[offset]
    if first < 0xFD:
        return first, offset + 1
    widths = {0xFD: ("<H", 2), 0xFE: ("<I", 4), 0xFF: ("<Q", 8)}
    fmt, width = widths[first]
    end = offset + 1 + width
    if end > len(data):
        raise ValueError("buffer exhausted while reading CompactSize payload")
    (value,) = struct.unpack_from(fmt, data, offset + 1)
    return value, end
