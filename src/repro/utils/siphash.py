"""Pure-Python SipHash-2-4.

The paper (section 6.1) notes that SipHash [Aumasson & Bernstein 2012] is
used by blockchain protocols (BIP-152 Compact Blocks among them) to key
short transaction IDs per-connection, limiting manufactured-collision
attacks to a single peer.  We implement SipHash-2-4 from scratch so the
collision-attack experiments can exercise the real construction.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFFFFFFFFFF


def _rotl(x: int, b: int) -> int:
    return ((x << b) | (x >> (64 - b))) & _MASK


def siphash24(key: bytes, data: bytes) -> int:
    """Return the 64-bit SipHash-2-4 of ``data`` under the 16-byte ``key``."""
    if len(key) != 16:
        raise ValueError(f"SipHash key must be 16 bytes, got {len(key)}")
    k0, k1 = struct.unpack("<QQ", key)
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    def sipround(v0: int, v1: int, v2: int, v3: int):
        v0 = (v0 + v1) & _MASK
        v1 = _rotl(v1, 13) ^ v0
        v0 = _rotl(v0, 32)
        v2 = (v2 + v3) & _MASK
        v3 = _rotl(v3, 16) ^ v2
        v0 = (v0 + v3) & _MASK
        v3 = _rotl(v3, 21) ^ v0
        v2 = (v2 + v1) & _MASK
        v1 = _rotl(v1, 17) ^ v2
        v2 = _rotl(v2, 32)
        return v0, v1, v2, v3

    b = len(data) & 0xFF
    full_blocks = len(data) // 8
    for i in range(full_blocks):
        (m,) = struct.unpack_from("<Q", data, i * 8)
        v3 ^= m
        v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
        v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
        v0 ^= m

    tail = data[full_blocks * 8:]
    m = b << 56
    for i, byte in enumerate(tail):
        m |= byte << (8 * i)
    v3 ^= m
    v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
    v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
    v0 ^= m

    v2 ^= 0xFF
    for _ in range(4):
        v0, v1, v2, v3 = sipround(v0, v1, v2, v3)
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK
