"""Statistical helpers shared by the bounds derivations and Algorithm 1.

Two tools live here:

* :func:`chernoff_delta` solves the paper's Lemma 1 inversion -- given a
  Binomial mean ``mu`` and an assurance level ``beta``, it returns the
  relative overshoot ``delta`` such that ``Pr[A >= (1+delta) mu] <= 1-beta``.
  Theorems 1 and 3 are direct applications.

* :func:`wilson_interval` is the two-sided confidence interval used by
  the ``conf_int`` call in Algorithm 1 (IBLT-Param-Search, Fig. 9).
"""

from __future__ import annotations

import math


def chernoff_delta(mu: float, beta: float) -> float:
    """Return ``delta`` with ``Pr[A >= (1+delta) mu] <= 1 - beta``.

    From Lemma 1 of the paper: for a sum ``A`` of independent Bernoulli
    trials with mean ``mu``, ``Pr[A >= (1+d) mu] <= exp(-d^2 mu / (2+d))``.
    Setting the right side to ``1 - beta`` and solving the quadratic gives
    ``d = (s + sqrt(s^2 + 8s)) / 2`` with ``s = -ln(1-beta)/mu`` (Eq. 7).
    """
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    if mu <= 0.0:
        raise ValueError(f"mu must be positive, got {mu}")
    s = -math.log(1.0 - beta) / mu
    return 0.5 * (s + math.sqrt(s * s + 8.0 * s))


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """Return the Lemma 1 bound ``exp(-delta^2 mu / (2 + delta))``."""
    if mu < 0.0:
        raise ValueError(f"mu must be non-negative, got {mu}")
    if delta < 0.0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if mu == 0.0:
        return 1.0 if delta == 0.0 else 0.0
    return math.exp(-delta * delta * mu / (2.0 + delta))


def chernoff_poisson_tail(mu: float, delta: float) -> float:
    """Return the classic bound ``(e^d / (1+d)^(1+d))^mu`` used by Thm 2."""
    if mu < 0.0:
        raise ValueError(f"mu must be non-negative, got {mu}")
    if delta <= -1.0:
        raise ValueError(f"delta must exceed -1, got {delta}")
    if mu == 0.0:
        return 1.0
    log_bound = mu * (delta - (1.0 + delta) * math.log1p(delta))
    return math.exp(log_bound)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Two-sided Wilson score interval for a Binomial proportion.

    Returns ``(low, high)``.  Used by Algorithm 1 to decide whether an
    observed decode rate is confidently above or below the target.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return 0.0, 1.0
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(
        phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
    return max(0.0, center - half), min(1.0, center + half)


def binomial_sample(rng, n: int, p: float) -> int:
    """Draw a Binomial(n, p) sample from ``rng`` (a ``random.Random``).

    Uses a normal approximation for large ``n*p`` to keep Monte-Carlo
    experiments with mempools of tens of thousands of transactions fast,
    and exact Bernoulli summation otherwise.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    mean = n * p
    var = n * p * (1.0 - p)
    if mean > 50.0 and var > 50.0:
        draw = int(round(rng.gauss(mean, math.sqrt(var))))
        return min(n, max(0, draw))
    return sum(1 for _ in range(n) if rng.random() < p)
