"""Binary wire codecs for every structure Graphene puts on the network.

The rest of the package accounts for sizes analytically; this module
makes those numbers real: Bloom filters, IBLTs, transactions and the
Graphene protocol messages all encode to byte strings and decode back,
and each codec produces exactly the byte counts the size model claims
(``BloomFilter.serialized_size``, ``IBLT.serialized_size``, ...).  The
round-trip property is what a public interoperability spec (the paper's
released BUIP093 network specification) pins down.

Layouts (all little-endian):

* Bloom filter: ``nbits u32 | k u8 | seed u32`` then the bit array --
  9 bytes + ceil(nbits/8), the BIP-37-like header the size model uses.
* IBLT: ``cells u32 | k u8 | seed u32 | cell_bytes u8 | pad u16`` (12
  bytes) then ``cells`` cells of ``count i16 | keySum u64 | checkSum``
  (checkSum width = cell_bytes - 10).
* Transaction: ``txid 32B | size u32 | fee_rate f32 | flags u8`` -- payloads are
  synthetic in this simulation, so a transaction's wire form carries
  its metadata; *size accounting* elsewhere still charges ``tx.size``.

Two execution paths produce these bytes (hot-path round 2):

* a vectorized path serializing the IBLT's flat columnar arrays with
  ``ndarray.tobytes()`` / ``np.frombuffer`` in a handful of numpy ops;
* the original per-cell ``struct`` loops, kept as the byte-identical
  reference and selected via :mod:`repro.fastpath` (``REPRO_FASTPATH=0``
  or :func:`repro.fastpath.set_fastpath`).

Every ``decode_*`` entry point accepts any bytes-like buffer --
``bytes``, ``bytearray`` or ``memoryview`` -- and reads through it
without slicing whole-body copies, so nested decodes (a Protocol 1
payload containing S and I) parse zero-copy off one receive buffer.
"""

from __future__ import annotations

import math
import struct

from repro import fastpath
from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.errors import ParameterError
from repro.pds.bloom import BloomFilter
from repro.pds.iblt import IBLT
from repro.pds.riblt import SYMBOL_BATCH_HEADER_BYTES, SYMBOL_BYTES
from repro.utils.serialization import compact_size, read_compact_size

try:  # optional vector backend (fastpath gates usage)
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always ships numpy
    _np = None

_U32 = 0xFFFFFFFF
_LN2 = math.log(2.0)
_LN2_SQ = _LN2 * _LN2


# ---------------------------------------------------------------------------
# Bloom filter
# ---------------------------------------------------------------------------

def encode_bloom(bloom: BloomFilter) -> bytes:
    """Serialize a Bloom filter; length equals ``serialized_size()``."""
    header = struct.pack("<IBI", bloom.nbits, bloom.k, bloom.seed & _U32)
    return header + bytes(bloom._bits)


def decode_bloom(data: bytes, offset: int = 0) -> tuple[BloomFilter, int]:
    """Parse a Bloom filter; returns ``(filter, new_offset)``.

    The decoded filter answers membership identically to the encoded
    one (inserted-item count is not on the wire and is left at 0; use
    :func:`restore_bloom_load` when a protocol message supplies it).

    The target FPR is likewise not on the wire, but an optimally sized
    filter satisfies ``f = 2^-k``, so that is restored rather than the
    constructor default of 1.0 -- which would make every decoded
    non-degenerate filter claim it matches everything when sizing math
    consults ``target_fpr``.
    """
    if offset + 9 > len(data):
        raise ParameterError("buffer exhausted while reading Bloom header")
    nbits, k, seed = struct.unpack_from("<IBI", data, offset)
    offset += 9
    nbytes = (nbits + 7) // 8
    if offset + nbytes > len(data):
        raise ParameterError("buffer exhausted while reading Bloom bits")
    bloom = BloomFilter(nbits, k, seed=seed)
    bloom._bits[:] = data[offset:offset + nbytes]
    if nbits:
        bloom._target_fpr = 0.5 ** k
    return bloom, offset + nbytes


def restore_bloom_load(bloom: BloomFilter, count: int) -> BloomFilter:
    """Restore a decoded filter's load from a protocol-carried count.

    With the load known, the construction-time target FPR can be
    recovered from the sizing ``nbits = ceil(-n ln f / ln^2 2)``
    (inverted: ``f = exp(-nbits ln^2 2 / n)``), which refines the
    ``2^-k`` estimate :func:`decode_bloom` starts from.

    Degenerate filters are left untouched: inserts into them are
    no-ops (count stays 0 on the loopback side), so restoring a count
    would *create* a wire/loopback divergence rather than heal one.
    """
    if bloom.nbits == 0 or count <= 0:
        return bloom
    bloom.count = count
    bloom._target_fpr = math.exp(-bloom.nbits * _LN2_SQ / count)
    return bloom


# ---------------------------------------------------------------------------
# IBLT
# ---------------------------------------------------------------------------

#: Whole-cell struct codecs for the power-of-two checkSum widths; odd
#: widths fall back to a per-cell ``to_bytes`` path.
_CELL_STRUCTS = {1: struct.Struct("<hQB"), 2: struct.Struct("<hQH"),
                 4: struct.Struct("<hQI"), 8: struct.Struct("<hQQ")}
_COUNT_KEY_STRUCT = struct.Struct("<hQ")


#: Wire width of a full-fidelity cell (count i16 | keySum u64 |
#: checkSum u64) used when ``cell_bytes`` lies outside 12..18: such
#: widths are size-model fictions (the paper's cell-width sweeps assume
#: shorter key sums; the 16-bit checksum cannot shrink below 2 bytes)
#: and cannot carry the logical cell losslessly, so the wire ships
#: whole cells and flags it in the header's pad field.  The analytic
#: ``serialized_size()`` stays the accounting authority.
_FULL_CELL_BYTES = 18
_FULL_CELL_STRUCT = struct.Struct("<hQQ")


#: Bounds of the on-wire ``count i16`` field.
_I16_MIN, _I16_MAX = -0x8000, 0x7FFF


def _encode_cells_py(iblt: IBLT, check_width: int, full: bool) -> bytes:
    """Reference cell serialization: per-cell ``struct`` packing."""
    out = bytearray()
    counts = iblt._counts
    key_sums = iblt._key_sums
    check_sums = iblt._check_sums
    try:
        if full:
            pack_full = _FULL_CELL_STRUCT.pack
            for count, key_sum, check in zip(counts, key_sums, check_sums):
                out += pack_full(count, key_sum, check)
            return bytes(out)
        check_mask = (1 << (8 * check_width)) - 1
        cell_struct = _CELL_STRUCTS.get(check_width)
        if cell_struct is not None:
            pack_cell = cell_struct.pack
            for count, key_sum, check in zip(counts, key_sums, check_sums):
                out += pack_cell(count, key_sum, check & check_mask)
        else:
            pack_ck = _COUNT_KEY_STRUCT.pack
            for count, key_sum, check in zip(counts, key_sums, check_sums):
                out += pack_ck(count, key_sum)
                out += (check & check_mask).to_bytes(check_width, "little")
    except struct.error as exc:
        raise ParameterError(f"cell count overflows i16: {exc}") from exc
    return bytes(out)


def _encode_cells_vector(iblt: IBLT, check_width: int, full: bool) -> bytes:
    """Vectorized cell serialization: columnar arrays -> one byte grid.

    Builds a ``(cells, width)`` uint8 matrix whose columns are the
    little-endian byte views of the three cell fields and ships it with
    one ``tobytes()`` -- byte-identical to :func:`_encode_cells_py`.
    """
    counts = _np.frombuffer(iblt._counts, dtype=_np.int64)
    if counts.size and ((counts < _I16_MIN) | (counts > _I16_MAX)).any():
        raise ParameterError(
            "cell count overflows i16: count outside [-32768, 32767]")
    keys = _np.frombuffer(iblt._key_sums, dtype=_np.uint64)
    checks = _np.frombuffer(iblt._check_sums, dtype=_np.uint64)
    cells = iblt.cells
    width = _FULL_CELL_BYTES if full else iblt.cell_bytes
    out_width = 8 if full else check_width
    if not full and check_width < 8:
        checks = checks & _np.uint64((1 << (8 * check_width)) - 1)
    body = _np.empty((cells, width), dtype=_np.uint8)
    body[:, 0:2] = counts.astype("<i2").view(_np.uint8).reshape(cells, 2)
    body[:, 2:10] = keys.astype("<u8", copy=False) \
        .view(_np.uint8).reshape(cells, 8)
    body[:, 10:10 + out_width] = checks.astype("<u8", copy=False) \
        .view(_np.uint8).reshape(cells, 8)[:, :out_width]
    return body.tobytes()


def encode_iblt(iblt: IBLT) -> bytes:
    """Serialize an IBLT; length equals ``serialized_size()`` for the
    lossless cell widths (``cell_bytes`` 12..18, pad field 0)."""
    check_width = iblt.cell_bytes - 10
    full = check_width < 2 or check_width > 8
    header = struct.pack("<IBIBH", iblt.cells, iblt.k, iblt.seed & _U32,
                         iblt.cell_bytes, _FULL_CELL_BYTES if full else 0)
    if _np is not None and fastpath.fastpath_enabled():
        return header + _encode_cells_vector(iblt, check_width, full)
    return header + _encode_cells_py(iblt, check_width, full)


def _decode_cells_py(iblt: IBLT, data, offset: int, body: int,
                     check_width: int, full: bool) -> None:
    """Reference cell parse: per-cell ``iter_unpack`` into the columns."""
    counts = iblt._counts
    key_sums = iblt._key_sums
    check_sums = iblt._check_sums
    if full:
        for i, (count, key_sum, check) in enumerate(
                _FULL_CELL_STRUCT.iter_unpack(data[offset:offset + body])):
            counts[i] = count
            key_sums[i] = key_sum
            check_sums[i] = check
        return
    cell_struct = _CELL_STRUCTS.get(check_width)
    if cell_struct is not None:
        i = 0
        for count, key_sum, check in cell_struct.iter_unpack(
                data[offset:offset + body]):
            counts[i] = count
            key_sums[i] = key_sum
            check_sums[i] = check
            i += 1
        return
    unpack_ck = _COUNT_KEY_STRUCT.unpack_from
    for i in range(iblt.cells):
        counts[i], key_sums[i] = unpack_ck(data, offset)
        offset += 10
        check_sums[i] = int.from_bytes(
            data[offset:offset + check_width], "little")
        offset += check_width


def _decode_cells_vector(iblt: IBLT, data, offset: int, body: int,
                         check_width: int, full: bool) -> None:
    """Vectorized cell parse: one ``frombuffer`` view, three column fills.

    Reads the wire bytes in place (no body-slice copy, any bytes-like
    buffer) and writes the columnar arrays through writable numpy views.
    """
    width = _FULL_CELL_BYTES if full else iblt.cell_bytes
    out_width = 8 if full else check_width
    grid = _np.frombuffer(data, dtype=_np.uint8, count=body,
                          offset=offset).reshape(iblt.cells, width)
    _np.frombuffer(iblt._counts, dtype=_np.int64)[:] = \
        _np.ascontiguousarray(grid[:, 0:2]).view("<i2").ravel()
    _np.frombuffer(iblt._key_sums, dtype=_np.uint64)[:] = \
        _np.ascontiguousarray(grid[:, 2:10]).view("<u8").ravel()
    padded = _np.zeros((iblt.cells, 8), dtype=_np.uint8)
    padded[:, :out_width] = grid[:, 10:10 + out_width]
    _np.frombuffer(iblt._check_sums, dtype=_np.uint64)[:] = \
        padded.view("<u8").ravel()


def decode_iblt(data, offset: int = 0) -> tuple[IBLT, int]:
    """Parse an IBLT from any bytes-like buffer; ``(iblt, new_offset)``."""
    if offset + 12 > len(data):
        raise ParameterError("buffer exhausted while reading IBLT header")
    cells, k, seed, cell_bytes, pad = struct.unpack_from(
        "<IBIBH", data, offset)
    offset += 12
    # Validate the claimed shape before trusting it: a hostile or
    # corrupted header must not drive reads past the buffer (the IBLT
    # constructor would also silently round cells up to a multiple of
    # k, desynchronizing the cell loop from the wire).
    if pad not in (0, _FULL_CELL_BYTES):
        raise ParameterError(f"unknown IBLT wire-cell marker {pad}")
    if pad == 0 and not 12 <= cell_bytes <= 18:
        raise ParameterError(
            f"IBLT cell_bytes {cell_bytes} outside lossless 12..18")
    if k < 2 or cells < k or cells % k != 0:
        raise ParameterError(
            f"inconsistent IBLT shape: cells={cells}, k={k}")
    # Bound the body against the buffer BEFORE allocating the columns:
    # a hostile 12-byte header may claim ~2^32 cells, and three 8-byte
    # columns for that is a ~100 GB allocation the remaining bytes
    # cannot possibly back.
    body = cells * (_FULL_CELL_BYTES if pad == _FULL_CELL_BYTES
                    else cell_bytes)
    if offset + body > len(data):
        raise ParameterError("buffer exhausted while reading IBLT cells")
    iblt = IBLT(cells, k=k, seed=seed, cell_bytes=cell_bytes)
    iblt._pristine = False  # columns are written below, outside IBLT
    full = pad == _FULL_CELL_BYTES
    check_width = cell_bytes - 10
    if _np is not None and fastpath.fastpath_enabled():
        _decode_cells_vector(iblt, data, offset, body, check_width, full)
    else:
        _decode_cells_py(iblt, data, offset, body, check_width, full)
    return iblt, offset + body


# ---------------------------------------------------------------------------
# Rateless IBLT coded-symbol batches (Protocol 3)
# ---------------------------------------------------------------------------

#: One coded symbol on the wire: ``count i32 | keySum u64 | checkSum u16``.
_SYMBOL_STRUCT = struct.Struct("<iQH")

#: Bounds of the on-wire symbol ``count i32`` field.
_I32_MIN, _I32_MAX = -0x80000000, 0x7FFFFFFF


def _encode_symbols_py(batch) -> bytes:
    """Reference symbol serialization: per-symbol ``struct`` packing."""
    out = bytearray()
    pack_symbol = _SYMBOL_STRUCT.pack
    try:
        for count, key_sum, check in zip(batch.counts, batch.key_sums,
                                         batch.check_sums):
            out += pack_symbol(count, key_sum, check & 0xFFFF)
    except struct.error as exc:
        raise ParameterError(f"symbol count overflows i32: {exc}") from exc
    return bytes(out)


def _encode_symbols_vector(batch) -> bytes:
    """Vectorized symbol serialization, byte-identical to the reference."""
    n = len(batch.counts)
    counts = _np.asarray(batch.counts, dtype=_np.int64)
    if counts.size and ((counts < _I32_MIN) | (counts > _I32_MAX)).any():
        raise ParameterError(
            "symbol count overflows i32: count outside +-2^31")
    keys = _np.asarray(batch.key_sums, dtype=_np.uint64)
    checks = _np.asarray(batch.check_sums, dtype=_np.uint64) \
        & _np.uint64(0xFFFF)
    body = _np.empty((n, SYMBOL_BYTES), dtype=_np.uint8)
    body[:, 0:4] = counts.astype("<i4").view(_np.uint8).reshape(n, 4)
    body[:, 4:12] = keys.astype("<u8", copy=False) \
        .view(_np.uint8).reshape(n, 8)
    body[:, 12:14] = checks.astype("<u8", copy=False) \
        .view(_np.uint8).reshape(n, 8)[:, :2]
    return body.tobytes()


def encode_symbol_batch(batch) -> bytes:
    """Serialize a :class:`~repro.core.protocol3.SymbolBatch`.

    Layout: ``start u32 | count u16`` then ``count`` coded symbols;
    length equals ``batch.wire_size()``.
    """
    n = len(batch.counts)
    if n > 0xFFFF:
        raise ParameterError(f"symbol batch of {n} exceeds u16 framing")
    header = struct.pack("<IH", batch.start & _U32, n)
    if _np is not None and fastpath.fastpath_enabled():
        return header + _encode_symbols_vector(batch)
    return header + _encode_symbols_py(batch)


def decode_symbol_batch(data, offset: int = 0):
    """Parse a symbol batch; returns ``(SymbolBatch, new_offset)``.

    The claimed symbol count is bounded against the buffer before any
    allocation, so a hostile 6-byte header cannot drive reads past the
    receive buffer.
    """
    from array import array

    from repro.core.protocol3 import SymbolBatch

    if offset + SYMBOL_BATCH_HEADER_BYTES > len(data):
        raise ParameterError(
            "buffer exhausted while reading symbol batch header")
    start, n = struct.unpack_from("<IH", data, offset)
    offset += SYMBOL_BATCH_HEADER_BYTES
    body = n * SYMBOL_BYTES
    if offset + body > len(data):
        raise ParameterError(
            "buffer exhausted while reading coded symbols")
    counts = array("q", bytes(8 * n))
    key_sums = array("Q", bytes(8 * n))
    check_sums = array("Q", bytes(8 * n))
    if _np is not None and fastpath.fastpath_enabled():
        grid = _np.frombuffer(data, dtype=_np.uint8, count=body,
                              offset=offset).reshape(n, SYMBOL_BYTES)
        _np.frombuffer(counts, dtype=_np.int64)[:] = \
            _np.ascontiguousarray(grid[:, 0:4]).view("<i4").ravel()
        _np.frombuffer(key_sums, dtype=_np.uint64)[:] = \
            _np.ascontiguousarray(grid[:, 4:12]).view("<u8").ravel()
        padded = _np.zeros((n, 8), dtype=_np.uint8)
        padded[:, :2] = grid[:, 12:14]
        _np.frombuffer(check_sums, dtype=_np.uint64)[:] = \
            padded.view("<u8").ravel()
    else:
        for i, (count, key_sum, check) in enumerate(
                _SYMBOL_STRUCT.iter_unpack(data[offset:offset + body])):
            counts[i] = count
            key_sums[i] = key_sum
            check_sums[i] = check
    return SymbolBatch(start=start, counts=counts, key_sums=key_sums,
                       check_sums=check_sums), offset + body


def encode_protocol3_request(start: int, count: int) -> bytes:
    """Serialize a continuation request for symbols ``[start, start+count)``."""
    if not 0 <= count <= 0xFFFF:
        raise ParameterError(f"symbol request count {count} outside u16")
    return struct.pack("<IH", start & _U32, count)


def decode_protocol3_request(data, offset: int = 0) -> tuple[int, int, int]:
    """Parse a continuation request; returns ``(start, count, new_offset)``."""
    if offset + 6 > len(data):
        raise ParameterError(
            "buffer exhausted while reading symbol request")
    start, count = struct.unpack_from("<IH", data, offset)
    return start, count, offset + 6


# ---------------------------------------------------------------------------
# Block headers
# ---------------------------------------------------------------------------

BLOCK_HEADER_BYTES = 80


def encode_block_header(header: BlockHeader) -> bytes:
    """Serialize a block header (Bitcoin's 80-byte layout)."""
    return header.serialize()


def decode_block_header(blob: bytes, offset: int = 0) -> BlockHeader:
    """Parse the 80-byte header prefixed to a Protocol 1 message."""
    if offset + BLOCK_HEADER_BYTES > len(blob):
        raise ParameterError(
            f"header must be {BLOCK_HEADER_BYTES} bytes, "
            f"got {len(blob) - offset}")
    version = int.from_bytes(blob[offset:offset + 4], "little")
    prev_hash = bytes(blob[offset + 4:offset + 36])
    merkle_root = bytes(blob[offset + 36:offset + 68])
    timestamp, bits, nonce = struct.unpack_from("<III", blob, offset + 68)
    return BlockHeader(version=version, prev_hash=prev_hash,
                       merkle_root=merkle_root, timestamp=timestamp,
                       bits=bits, nonce=nonce)


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

def encode_transaction(tx: Transaction) -> bytes:
    """Serialize a transaction's simulation metadata (41 bytes)."""
    flags = 1 if tx.is_coinbase else 0
    return tx.txid + struct.pack("<IfB", tx.size, tx.fee_rate, flags)


def decode_transaction(data: bytes, offset: int = 0) -> tuple[Transaction, int]:
    """Parse a transaction; returns ``(tx, new_offset)``."""
    if offset + 41 > len(data):
        raise ParameterError("buffer exhausted while reading transaction")
    txid = bytes(data[offset:offset + 32])
    size, fee_rate, flags = struct.unpack_from("<IfB", data, offset + 32)
    return Transaction(txid=txid, size=size, fee_rate=fee_rate,
                       is_coinbase=bool(flags & 1)), offset + 41


def encode_tx_list(txs) -> bytes:
    """CompactSize count followed by each transaction.

    Assembled into one preallocated buffer (41 bytes per transaction
    after the CompactSize head) rather than joining per-tx fragments.
    """
    head = compact_size(len(txs))
    out = bytearray(len(head) + 41 * len(txs))
    out[:len(head)] = head
    pos = len(head)
    pack_meta = struct.pack_into
    for tx in txs:
        out[pos:pos + 32] = tx.txid
        pack_meta("<IfB", out, pos + 32, tx.size, tx.fee_rate,
                  1 if tx.is_coinbase else 0)
        pos += 41
    return bytes(out)


def decode_tx_list(data: bytes, offset: int = 0) -> tuple[list, int]:
    count, offset = read_compact_size(data, offset)
    txs = []
    for _ in range(count):
        tx, offset = decode_transaction(data, offset)
        txs.append(tx)
    return txs, offset


# ---------------------------------------------------------------------------
# Graphene protocol messages
# ---------------------------------------------------------------------------

def encode_protocol1_payload(payload) -> bytes:
    """Serialize a Protocol 1 payload (counts + prefilled txns + S + I)."""
    return (compact_size(payload.n) + compact_size(payload.recover)
            + encode_tx_list(payload.prefilled)
            + encode_bloom(payload.bloom_s) + encode_iblt(payload.iblt_i))


def decode_protocol1_payload(data: bytes, offset: int = 0):
    """Parse a Protocol 1 payload; returns ``(payload, new_offset)``.

    Reconstructs a :class:`~repro.core.protocol1.Protocol1Payload` whose
    receive-side behaviour matches the original: the sender-side sizing
    ``plan`` is not on the wire, so the decoded payload's plan carries
    ``bloom_s.actual_fpr()`` over the restored load, and S's target FPR
    is re-estimated from its wire dimensions and ``n``.
    """
    from repro.core.params import FilterIBLTPlan
    from repro.core.protocol1 import Protocol1Payload
    from repro.pds.param_table import IBLTParams

    n, offset = read_compact_size(data, offset)
    recover, offset = read_compact_size(data, offset)
    prefilled, offset = decode_tx_list(data, offset)
    bloom, offset = decode_bloom(data, offset)
    iblt, offset = decode_iblt(data, offset)
    # S was built over exactly the n block transactions (item count is
    # not on the wire, but n is): restore its load so actual_fpr()
    # reports (1 - e^{-kn/m})^k instead of the empty-filter 0.0, which
    # would make the receiver treat S as degenerate and size IBLT J to
    # the whole candidate set.
    restore_bloom_load(bloom, n)
    fpr = bloom.actual_fpr() if bloom.nbits else 1.0
    plan = FilterIBLTPlan(
        a=0, fpr=fpr if fpr > 0 else 1.0, recover=recover,
        iblt=IBLTParams(cells=iblt.cells, k=iblt.k),
        bloom_bytes=bloom.serialized_size(),
        iblt_bytes=iblt.serialized_size())
    payload = Protocol1Payload(n=n, bloom_s=bloom, iblt_i=iblt,
                               recover=recover, plan=plan,
                               prefilled=tuple(prefilled))
    return payload, offset


def encode_protocol3_payload(payload) -> bytes:
    """Serialize a Protocol 3 opening (counts + prefilled + S + symbols)."""
    return (compact_size(payload.n) + compact_size(payload.recover)
            + encode_tx_list(payload.prefilled)
            + encode_bloom(payload.bloom_s)
            + encode_symbol_batch(payload.symbols))


def decode_protocol3_payload(data: bytes, offset: int = 0):
    """Parse a Protocol 3 opening; returns ``(payload, new_offset)``.

    As with Protocol 1, the sender-side sizing plan is not on the
    wire; the receive side never consults it for Protocol 3 (there is
    no IBLT to size), so the rebuilt plan only restores S's parameters
    for introspection.
    """
    from repro.core.params import FilterIBLTPlan
    from repro.core.protocol3 import Protocol3Payload
    from repro.pds.param_table import IBLTParams

    n, offset = read_compact_size(data, offset)
    recover, offset = read_compact_size(data, offset)
    prefilled, offset = decode_tx_list(data, offset)
    bloom, offset = decode_bloom(data, offset)
    batch, offset = decode_symbol_batch(data, offset)
    restore_bloom_load(bloom, n)
    fpr = bloom.actual_fpr() if bloom.nbits else 1.0
    plan = FilterIBLTPlan(
        a=0, fpr=fpr if fpr > 0 else 1.0, recover=recover,
        iblt=IBLTParams(cells=0, k=4),
        bloom_bytes=bloom.serialized_size(), iblt_bytes=0)
    payload = Protocol3Payload(n=n, bloom_s=bloom, symbols=batch,
                               recover=recover, plan=plan,
                               prefilled=tuple(prefilled))
    return payload, offset


def encode_protocol2_request(request) -> bytes:
    """Serialize a Protocol 2 request (flags + counts + R)."""
    flags = 1 if request.special_case else 0
    return (struct.pack("<B", flags) + compact_size(request.b)
            + compact_size(request.ystar) + compact_size(request.z)
            + compact_size(request.xstar) + encode_bloom(request.bloom_r))


def decode_protocol2_request(data: bytes, offset: int = 0):
    """Parse a Protocol 2 request; returns ``(request, new_offset)``.

    R holds the z candidate txids, and z is on the wire: restore the
    load so the responder's sizing sees R's real ``actual_fpr()``
    rather than an empty filter's 0.0, exactly as it would over
    loopback.
    """
    from repro.core.protocol2 import Protocol2Request

    if offset >= len(data):
        raise ParameterError("buffer exhausted while reading P2 request")
    flags = data[offset]
    offset += 1
    b, offset = read_compact_size(data, offset)
    ystar, offset = read_compact_size(data, offset)
    z, offset = read_compact_size(data, offset)
    xstar, offset = read_compact_size(data, offset)
    bloom, offset = decode_bloom(data, offset)
    bloom = restore_bloom_load(bloom, z)
    request = Protocol2Request(bloom_r=bloom, b=b, ystar=ystar, z=z,
                               xstar=xstar, special_case=bool(flags & 1),
                               plan=None)
    return request, offset


def encode_protocol2_response(response) -> bytes:
    """Serialize a Protocol 2 response (T + J [+ F])."""
    flags = 1 if response.bloom_f is not None else 0
    parts = [struct.pack("<B", flags), compact_size(response.recover),
             encode_tx_list(response.missing_txs),
             encode_iblt(response.iblt_j)]
    if response.bloom_f is not None:
        parts.append(encode_bloom(response.bloom_f))
    return b"".join(parts)


def decode_protocol2_response(data: bytes, offset: int = 0):
    """Parse a Protocol 2 response; returns ``(response, new_offset)``."""
    from repro.core.protocol2 import Protocol2Response

    if offset >= len(data):
        raise ParameterError("buffer exhausted while reading P2 response")
    flags = data[offset]
    offset += 1
    recover, offset = read_compact_size(data, offset)
    txs, offset = decode_tx_list(data, offset)
    iblt, offset = decode_iblt(data, offset)
    bloom_f = None
    if flags & 1:
        bloom_f, offset = decode_bloom(data, offset)
    response = Protocol2Response(missing_txs=tuple(txs), iblt_j=iblt,
                                 bloom_f=bloom_f, recover=recover)
    return response, offset
