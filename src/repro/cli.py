"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the workflows a user reaches for first:

* ``relay``       -- relay one synthetic block, print per-protocol bytes.
* ``sync``        -- synchronize two mempools, print costs.
* ``iblt-params`` -- look up (or search live) optimal IBLT parameters.
* ``experiment``  -- run one figure's experiment driver, print its rows.
* ``attack``      -- run the section 6.1 collision attack summary.
* ``netsim``      -- propagate a block across a simulated network.
* ``net``         -- scaled multi-block propagation (up to 1000+ nodes):
  fork rate and delay percentiles over sustained tx ingest.
* ``trace``       -- netsim with a tracer attached; print the span timeline.
* ``report``      -- netsim with metrics collection; print byte/outcome
  tables and check the accounting invariants.
* ``fuzz``        -- run the differential fuzzing engines; minimize and
  archive any failures as replayable corpus artifacts.
* ``serve``       -- announce and serve one synthetic block over real TCP.
* ``peer``        -- fetch a block from one ``serve`` instance
  (``--port``) or from a whole node group (repeated ``--connect``,
  optional ``--listen``); optionally assert byte parity against the
  loopback relay of the same scenario.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.baselines.compact_blocks import CompactBlocksRelay
from repro.baselines.full_block import FullBlockRelay
from repro.baselines.xthin import XThinRelay
from repro.chain.block import Block
from repro.chain.scenarios import make_block_scenario, make_sync_scenario
from repro.chain.transaction import TransactionGenerator
from repro.core.mempool_sync import synchronize_mempools
from repro.core.params import GrapheneConfig
from repro.core.session import BlockRelaySession


def _cmd_relay(args) -> int:
    scenario = make_block_scenario(n=args.n, extra=args.extra,
                                   fraction=args.fraction, seed=args.seed)
    print(f"block: {scenario.n} txns, receiver mempool: {scenario.m} txns, "
          f"holds {args.fraction:.0%} of block")
    config = GrapheneConfig(protocol=3 if args.p3 else 1)
    outcome = BlockRelaySession(config).relay(scenario.block,
                                              scenario.receiver_mempool)
    print(f"  graphene       {outcome.total_bytes:>9,} B  "
          f"protocol {outcome.protocol_used}  {outcome.roundtrips} RTT  "
          f"success={outcome.success}")
    cb = CompactBlocksRelay().relay(scenario.block,
                                    scenario.receiver_mempool)
    print(f"  compact blocks {cb.total_bytes:>9,} B  {cb.roundtrips} RTT  "
          f"success={cb.success}")
    xthin = XThinRelay().relay(scenario.block, scenario.receiver_mempool)
    print(f"  xthin          {xthin.total_bytes:>9,} B  "
          f"{xthin.roundtrips} RTT  success={xthin.success}")
    full = FullBlockRelay().relay(scenario.block)
    print(f"  full block     {full.total_bytes:>9,} B")
    if args.breakdown:
        print("graphene breakdown:")
        for part, size in outcome.cost.as_dict().items():
            if size:
                print(f"  {part:<16}{size:>9,} B")
    return 0 if outcome.success else 1


def _cmd_sync(args) -> int:
    scenario = make_sync_scenario(n=args.n, fraction_common=args.common,
                                  seed=args.seed)
    result = synchronize_mempools(scenario.sender_mempool,
                                  scenario.receiver_mempool,
                                  GrapheneConfig(protocol=3 if args.p3
                                                 else 1))
    print(f"mempools of {args.n} txns, {args.common:.0%} common")
    print(f"  protocol {result.protocol_used}, {result.roundtrips} RTT, "
          f"{result.total_bytes:,} B encoding")
    print(f"  receiver gained {result.receiver_gained}, sender gained "
          f"{result.sender_gained}, synchronized={result.synchronized}")
    return 0 if result.synchronized else 1


def _cmd_iblt_params(args) -> int:
    if args.search:
        import numpy as np
        from repro.pds.param_search import optimal_parameters
        result = optimal_parameters(args.j, 1.0 - 1.0 / args.denom,
                                    rng=np.random.default_rng(args.seed))
        print(f"search: j={args.j} denom={args.denom} -> k={result.k} "
              f"cells={result.cells} tau={result.tau:.3f}")
    else:
        from repro.pds.param_table import default_param_table
        params = default_param_table(args.denom).params_for(args.j)
        print(f"table: j={args.j} denom={args.denom} -> k={params.k} "
              f"cells={params.cells} tau={params.cells / max(1, args.j):.3f}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.analysis import experiments
    driver = getattr(experiments, f"{args.name}_rows", None)
    if driver is None:
        names = sorted(n[:-5] for n in dir(experiments)
                       if n.endswith("_rows"))
        print(f"unknown experiment {args.name!r}; choose from: "
              f"{', '.join(names)}", file=sys.stderr)
        return 2
    rows = driver() if args.trials is None else driver(trials=args.trials)
    if args.json:
        json.dump(rows, sys.stdout, indent=1, default=str)
        print()
    elif args.plot:
        from repro.analysis.plotting import ascii_plot
        x = args.x or next(k for k, v in rows[0].items()
                           if isinstance(v, (int, float)))
        ys = args.y or [k for k, v in rows[0].items()
                        if isinstance(v, (int, float)) and k != x][:3]
        print(ascii_plot(rows, x=x, ys=ys, logy=args.logy,
                         title=f"{args.name} ({len(rows)} rows)"))
    else:
        for row in rows:
            print("  ".join(f"{k}={v}" for k, v in row.items()))
    return 0


def _cmd_attack(args) -> int:
    from repro.security import run_collision_attack
    tallies = {"xthin": 0, "compact_blocks": 0, "cb_siphash": 0,
               "graphene": 0}
    for seed in range(args.trials):
        result = run_collision_attack(seed=seed)
        tallies["xthin"] += result.xthin_failed
        tallies["compact_blocks"] += result.compact_blocks_failed
        tallies["cb_siphash"] += result.compact_blocks_siphash_failed
        tallies["graphene"] += result.graphene_failed
    for name, count in tallies.items():
        print(f"  {name:<16} failed {count}/{args.trials}")
    return 0


def _cmd_netsim(args) -> int:
    from repro.net import (
        Node,
        RelayProtocol,
        Simulator,
        connect_random_regular,
    )
    protocol = RelayProtocol(args.protocol)
    sim = Simulator()
    nodes = [Node(f"n{i}", sim, protocol=protocol)
             for i in range(args.nodes)]
    connect_random_regular(nodes, degree=args.degree,
                           latency=args.latency,
                           bandwidth=args.bandwidth,
                           rng=random.Random(args.seed))
    gen = TransactionGenerator(seed=args.seed)
    txs = gen.make_batch(args.block_size)
    for node in nodes:
        node.mempool.add_many(txs)
    block = Block.assemble(txs)
    nodes[0].mine_block(block)
    sim.run()
    root = block.header.merkle_root
    covered = sum(1 for node in nodes if root in node.blocks)
    coverage = max(node.block_arrival[root] for node in nodes
                   if root in node.block_arrival)
    traffic = sum(node.total_bytes_sent() for node in nodes)
    print(f"{args.protocol}: {covered}/{args.nodes} nodes in "
          f"{coverage:.3f} s, {traffic:,} bytes total")
    return 0 if covered == args.nodes else 1


def _cmd_net(args) -> int:
    from repro.net import RelayProtocol
    from repro.obs import run_propagation_scenario

    verbose_cycles = args.verbose

    def on_cycle(stats):
        if verbose_cycles:
            print(f"  cycle {stats.cycle:4d}  t={stats.t_end:8.1f}s  "
                  f"events={stats.events:7d}  pending={stats.pending}")

    run = run_propagation_scenario(
        nodes=args.nodes, degree=args.degree, blocks=args.blocks,
        block_txns=args.block_txns, interval=args.interval,
        topology=args.topology, loss=args.loss, seed=args.seed,
        protocol=RelayProtocol(args.protocol),
        on_cycle=on_cycle if verbose_cycles else None)

    sim = run.simulator
    registry = run.registry
    total_bytes = sim.net.total_bytes()
    print(f"{args.protocol} on {args.topology}: {args.nodes} nodes "
          f"(degree ~{args.degree}), {len(run.records)} blocks every "
          f"{args.interval:g}s")
    print(f"  {sim.events_processed:,} events over {sim.now:,.1f}s "
          f"simulated, {total_bytes:,} bytes on the wire")
    print(f"  propagation delay p50/p90/p99: "
          f"{run.delay_quantile(0.5):.3f}/{run.delay_quantile(0.9):.3f}/"
          f"{run.delay_quantile(0.99):.3f} s")
    print(f"  fork rate: {run.fork_rate:.2%} "
          f"({run.forks}/{max(1, len(run.records) - 1)} on a stale tip), "
          f"coverage {run.coverage:.2%}")
    if args.json:
        from pathlib import Path
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "params": run.params,
            "events": sim.events_processed,
            "simulated_seconds": sim.now,
            "wire_bytes": total_bytes,
            "fork_rate": run.fork_rate,
            "coverage": run.coverage,
            "delay_percentiles": {
                "p50": run.delay_quantile(0.5),
                "p90": run.delay_quantile(0.9),
                "p99": run.delay_quantile(0.99)},
            "metrics": registry.snapshot()}, indent=1) + "\n")
        print(f"  wrote {path}")
    return 0 if run.coverage == 1.0 else 1


def _observed_run(args):
    from repro.net import RelayProtocol
    from repro.obs import run_block_relay_scenario
    return run_block_relay_scenario(
        nodes=args.nodes, degree=args.degree, block_size=args.block_size,
        loss=args.loss, seed=args.seed,
        protocol=RelayProtocol(args.protocol), until=args.until,
        sync_rounds=args.sync_rounds)


def _cmd_trace(args) -> int:
    run = _observed_run(args)
    tracer = run.tracer
    print(f"{args.protocol}: {run.covered}/{args.nodes} nodes hold the "
          f"block after {run.simulator.now:.3f}s simulated; "
          f"{len(tracer.spans())} spans")
    print(tracer.timeline(events=not args.summary, kind=args.kind,
                          limit=args.limit))
    if args.jsonl:
        from pathlib import Path
        path = Path(args.jsonl)
        path.parent.mkdir(parents=True, exist_ok=True)
        jsonl = tracer.to_jsonl(kind=args.kind)
        path.write_text(jsonl)
        print(f"wrote {len(jsonl.splitlines())} spans to {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.obs import (
        RunReport,
        check_metrics_match_costs,
        check_stream_invariants,
        collect_run_metrics,
        render_byte_table,
        render_outcome_table,
    )
    run = _observed_run(args)
    registry = collect_run_metrics(run.nodes, tracer=run.tracer)
    streams = run.relay_streams()
    report = RunReport(
        name="cli-report",
        context={"nodes": args.nodes, "degree": args.degree,
                 "loss": args.loss, "seed": args.seed,
                 "protocol": args.protocol,
                 "simulated_seconds": run.simulator.now})
    report.check("block_coverage", run.covered == args.nodes,
                 f"{run.covered}/{args.nodes} nodes hold the block")
    report.extend(check_stream_invariants(streams, prefix="relay"))
    report.invariants.append(
        check_metrics_match_costs(registry, streams, prefix="relay"))
    report.add_metrics(registry)

    print(f"{args.protocol}: {run.covered}/{args.nodes} nodes in "
          f"{run.simulator.now:.3f}s simulated "
          f"({int(registry.sum('relay_timeouts'))} timeouts, "
          f"{int(registry.sum('relay_retries'))} retries, decode success "
          f"rate {registry.sum('decode_success_rate'):.2f})")
    print("\nrelay bytes by phase (per receiving node):")
    print(render_byte_table(registry, prefix="relay"))
    print("\nrelay outcomes (count/bytes):")
    print(render_outcome_table(registry, prefix="relay"))
    if args.sync_rounds:
        print("\nmempool sync bytes by phase (per initiator):")
        print(render_byte_table(registry, prefix="sync"))
    print("\ninvariants:")
    for inv in report.invariants:
        status = "ok  " if inv.ok else "FAIL"
        print(f"  {status} {inv.name}: {inv.detail}")
    if args.json:
        path = report.write(args.json)
        print(f"\nwrote report to {path}")
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from pathlib import Path

    from repro.fuzz import ENGINES, replay_artifact, run_fuzz

    if args.replay:
        failure = replay_artifact(args.replay)
        if failure is None:
            print(f"{args.replay}: replays clean (bug stays fixed)")
            return 0
        print(f"{args.replay}: STILL FAILS\n  {failure}")
        return 1
    engines = None if args.engine == "all" else [args.engine]
    corpus = None if args.no_artifacts else Path(args.corpus)
    stats = run_fuzz(seed=args.seed, cases=args.cases, budget=args.budget,
                     engines=engines, corpus_dir=corpus,
                     max_failures=args.max_failures,
                     log=print if args.verbose else None)
    print(stats.summary())
    for failure in stats.failures:
        print(f"  {failure}")
    for path in stats.artifacts:
        print(f"  artifact: {path}")
    return 0 if stats.ok else 1


#: ``--blackhole`` drops every request command forever: the server
#: handshakes and announces, then never answers -- the deterministic
#: stand-in for a peer that went dark mid-exchange.
_REQUEST_COMMANDS = ("getdata", "graphene_p2_request",
                     "graphene_p3_request", "getdata_shortids",
                     "getdata_block")


def _parse_drops(specs, blackhole: bool) -> dict:
    """``--drop CMD[:N]`` specs (plus ``--blackhole``) -> {command: count}."""
    drops: dict = {}
    if blackhole:
        drops.update({cmd: 10 ** 9 for cmd in _REQUEST_COMMANDS})
    for spec in specs or ():
        command, _, count = spec.partition(":")
        drops[command] = int(count) if count else 1
    return drops


def _cmd_serve(args) -> int:
    import asyncio

    from repro.net.peer import BlockServer

    scenario = make_block_scenario(n=args.n, extra=args.extra,
                                   fraction=args.fraction, seed=args.seed)
    drops = _parse_drops(args.drop, args.blackhole)

    async def run() -> int:
        server = BlockServer(scenario.block,
                             config=GrapheneConfig(
                                 protocol=3 if args.p3 else 1),
                             node_id=args.node_id, drop=drops)
        port = await server.start(args.host, args.port)
        # Parseable by scripts that pass --port 0 and need the real one.
        print(f"listening on {args.host}:{port}", flush=True)
        print(f"serving block {server.root.hex()[:12]} ({scenario.n} txns, "
              f"seed {args.seed})", flush=True)
        if args.once:
            await server.wait_served(1)
        else:
            await asyncio.Event().wait()  # forever; Ctrl-C to stop
        await server.close()
        print(f"served {server.connections_served} connection(s)")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _run_mesh_peer(args, scenario, policy, config=None) -> int:
    """The node-group path of ``repro peer``: every ``--connect`` target
    is dialed into one :class:`~repro.net.peer.PeerManager`, the first
    announced block is fetched under the full recovery ladder (failover
    included), and the traced marks come out in the JSON document."""
    import asyncio

    from repro.net.peer import PeerManager
    from repro.obs import Tracer, WallClock

    tracer = Tracer(WallClock())
    out = sys.stderr if args.json else sys.stdout

    async def run():
        manager = PeerManager(node_id=args.node_id,
                              mempool=scenario.receiver_mempool,
                              config=config, policy=policy,
                              tracer=tracer)
        try:
            if args.listen is not None:
                port = await manager.listen(args.host, args.listen)
                print(f"listening on {args.host}:{port}", file=out,
                      flush=True)
            for target in args.connect:
                host, _, port = target.rpartition(":")
                cid = await manager.connect(host or "127.0.0.1", int(port))
                print(f"connected to {manager.connections[cid].label} "
                      f"at {target}", file=out, flush=True)
            result = await manager.fetch_next(timeout=args.fetch_timeout)
        finally:
            await manager.close()
        return manager, result

    try:
        manager, result = asyncio.run(run())
    except asyncio.TimeoutError:
        print(f"peer: no fetch completed within {args.fetch_timeout}s",
              file=sys.stderr)
        return 1
    print(f"fetched block {result.root.hex()[:12]} via "
          f"{len(result.announcers)} announcer(s) "
          f"{'/'.join(result.announcers)}: success={result.success} "
          f"protocol {result.protocol_used}, {result.total_bytes:,} B "
          f"graphene (+{result.wire_overhead} B frame overhead)", file=out)
    if result.timeouts or result.escalated or result.failovers:
        print(f"  recovery: {result.timeouts} timeouts, {result.retries} "
              f"retries, escalated={result.escalated}, "
              f"failovers={result.failovers}, "
              f"abandoned={result.abandoned}, "
              f"via_fullblock={result.via_fullblock}", file=out)
    for mark in tracer.marks:
        detail = " ".join(f"{k}={v}" for k, v in mark.detail)
        print(f"  mark {mark.name}" + (f" ({detail})" if detail else ""),
              file=out)
    ok = result.success
    if args.check_parity:
        # Failed announcers cost honest retry bytes, so mesh parity is
        # checked on the *surviving path*: the attempt that completed.
        fresh = make_block_scenario(n=args.n, extra=args.extra,
                                    fraction=args.fraction, seed=args.seed)
        loop = BlockRelaySession(config).relay(fresh.block,
                                               fresh.receiver_mempool)
        cost_ok = (json.dumps(result.surviving_cost.as_dict(),
                              sort_keys=True)
                   == json.dumps(loop.cost.as_dict(), sort_keys=True))
        events_ok = ([e.as_dict() for e in result.surviving_events]
                     == [e.as_dict() for e in loop.events])
        print(f"  loopback parity (surviving path): cost "
              f"{'ok' if cost_ok else 'MISMATCH'}, events "
              f"{'ok' if events_ok else 'MISMATCH'} "
              f"({len(result.surviving_events)} events, "
              f"{loop.total_bytes:,} B)", file=out)
        ok = ok and cost_ok and events_ok
    if args.json:
        json.dump({"success": result.success,
                   "protocol_used": result.protocol_used,
                   "roundtrips": result.roundtrips,
                   "total_bytes": result.total_bytes,
                   "wire_overhead": result.wire_overhead,
                   "timeouts": result.timeouts,
                   "retries": result.retries,
                   "escalated": result.escalated,
                   "failovers": result.failovers,
                   "abandoned": result.abandoned,
                   "via_fullblock": result.via_fullblock,
                   "announcers": result.announcers,
                   "invs_seen": manager.invs_seen,
                   "inv_duplicates": manager.inv_duplicates,
                   "frames_shed": manager.frames_shed,
                   "marks": [{"name": m.name, "detail": dict(m.detail)}
                             for m in tracer.marks],
                   "cost": result.cost.as_dict(),
                   "surviving_cost": result.surviving_cost.as_dict(),
                   "events": [e.as_dict() for e in result.events],
                   "surviving_events": [e.as_dict()
                                        for e in result.surviving_events]},
                  sys.stdout, indent=1)
        print()
    return 0 if ok else 1


def _cmd_peer(args) -> int:
    import asyncio

    from repro.net.peer import fetch_block
    from repro.net.recovery import RecoveryPolicy
    from repro.obs import Tracer, WallClock

    if not args.connect and args.port is None:
        print("peer: give --port for one server or --connect HOST:PORT "
              "(repeatable) for a node group", file=sys.stderr)
        return 2
    scenario = make_block_scenario(n=args.n, extra=args.extra,
                                   fraction=args.fraction, seed=args.seed)
    policy = RecoveryPolicy(timeout_base=args.timeout_base,
                            max_retries=args.max_retries)
    config = GrapheneConfig(protocol=3 if args.p3 else 1)
    if args.connect:
        return _run_mesh_peer(args, scenario, policy, config)
    tracer = Tracer(WallClock())
    result = asyncio.run(fetch_block(args.host, args.port,
                                     scenario.receiver_mempool,
                                     config=config, policy=policy,
                                     tracer=tracer))
    # With --json, stdout carries only the JSON document.
    out = sys.stderr if args.json else sys.stdout
    print(f"fetched block {result.root.hex()[:12]} from "
          f"{result.peer.node_id}: success={result.success} "
          f"protocol {result.protocol_used}, {result.roundtrips} RTT, "
          f"{result.total_bytes:,} B graphene "
          f"(+{result.wire_overhead} B frame overhead)", file=out)
    if result.timeouts or result.escalated or result.abandoned:
        print(f"  recovery: {result.timeouts} timeouts, {result.retries} "
              f"retries, escalated={result.escalated}, "
              f"abandoned={result.abandoned}", file=out)
        for m in tracer.marks:
            print(f"    mark {m.name}: {dict(m.detail)}", file=out)
    ok = result.success
    if args.check_parity:
        loop = BlockRelaySession(config).relay(scenario.block,
                                               scenario.receiver_mempool)
        cost_ok = (json.dumps(result.cost.as_dict(), sort_keys=True)
                   == json.dumps(loop.cost.as_dict(), sort_keys=True))
        events_ok = ([e.as_dict() for e in result.events]
                     == [e.as_dict() for e in loop.events])
        print(f"  loopback parity: cost "
              f"{'ok' if cost_ok else 'MISMATCH'}, events "
              f"{'ok' if events_ok else 'MISMATCH'} "
              f"({len(result.events)} events, {loop.total_bytes:,} B)",
              file=out)
        ok = ok and cost_ok and events_ok
    if args.json:
        # Abandoned runs must still tell the whole story: the recovery
        # ladder's marks and the bytes burned before giving up used to
        # be dropped here, leaving success=false documents with no
        # explanation of *how* the fetch died.
        json.dump({"success": result.success,
                   "protocol_used": result.protocol_used,
                   "roundtrips": result.roundtrips,
                   "total_bytes": result.total_bytes,
                   "wire_overhead": result.wire_overhead,
                   "timeouts": result.timeouts,
                   "retries": result.retries,
                   "escalated": result.escalated,
                   "abandoned": result.abandoned,
                   "via_fullblock": result.via_fullblock,
                   "marks": [{"name": m.name, "detail": dict(m.detail)}
                             for m in tracer.marks],
                   "cost": result.cost.as_dict(),
                   "events": [e.as_dict() for e in result.events]},
                  sys.stdout, indent=1)
        print()
    return 0 if ok else 1


def _add_scenario_args(parser) -> None:
    """Shared knobs for the observed-run commands (trace, report)."""
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--degree", type=int, default=4)
    parser.add_argument("--block-size", type=int, default=200)
    parser.add_argument("--loss", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--protocol", default="graphene",
                        choices=[p.value for p in __import__(
                            "repro.net.node", fromlist=["RelayProtocol"]
                        ).RelayProtocol])
    parser.add_argument("--until", type=float, default=120.0)
    parser.add_argument("--sync-rounds", type=int, default=0,
                        help="post-relay mempool syncs to run and observe")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    relay = sub.add_parser("relay", help="relay one synthetic block")
    relay.add_argument("--n", type=int, default=2000)
    relay.add_argument("--extra", type=int, default=2000)
    relay.add_argument("--fraction", type=float, default=1.0)
    relay.add_argument("--seed", type=int, default=0)
    relay.add_argument("--breakdown", action="store_true")
    relay.add_argument("--p3", action="store_true",
                       help="use Protocol 3 (rateless symbol stream) "
                            "instead of Protocol 1 with P2 fallback")
    relay.set_defaults(func=_cmd_relay)

    sync = sub.add_parser("sync", help="synchronize two mempools")
    sync.add_argument("--n", type=int, default=1000)
    sync.add_argument("--common", type=float, default=0.5)
    sync.add_argument("--seed", type=int, default=0)
    sync.add_argument("--p3", action="store_true",
                      help="reconcile with the rateless Protocol 3 "
                           "encoding")
    sync.set_defaults(func=_cmd_sync)

    params = sub.add_parser("iblt-params",
                            help="optimal IBLT parameters for j items")
    params.add_argument("--j", type=int, required=True)
    params.add_argument("--denom", type=int, default=240)
    params.add_argument("--search", action="store_true",
                        help="run Algorithm 1 live instead of the table")
    params.add_argument("--seed", type=int, default=0)
    params.set_defaults(func=_cmd_iblt_params)

    experiment = sub.add_parser("experiment",
                                help="run one figure's experiment driver")
    experiment.add_argument("name", help="e.g. fig14, fig18, sec51")
    experiment.add_argument("--trials", type=int, default=None)
    experiment.add_argument("--json", action="store_true")
    experiment.add_argument("--plot", action="store_true",
                            help="render an ASCII chart of the rows")
    experiment.add_argument("--x", default=None,
                            help="x-axis field for --plot")
    experiment.add_argument("--y", action="append", default=None,
                            help="y series for --plot (repeatable)")
    experiment.add_argument("--logy", action="store_true")
    experiment.set_defaults(func=_cmd_experiment)

    attack = sub.add_parser("attack", help="collision-attack summary")
    attack.add_argument("--trials", type=int, default=20)
    attack.set_defaults(func=_cmd_attack)

    netsim = sub.add_parser("netsim", help="block propagation simulation")
    netsim.add_argument("--nodes", type=int, default=16)
    netsim.add_argument("--degree", type=int, default=4)
    netsim.add_argument("--block-size", type=int, default=500)
    netsim.add_argument("--latency", type=float, default=0.05)
    netsim.add_argument("--bandwidth", type=float, default=1_000_000.0)
    netsim.add_argument("--protocol", default="graphene",
                        choices=[p.value for p in __import__(
                            "repro.net.node", fromlist=["RelayProtocol"]
                        ).RelayProtocol])
    netsim.add_argument("--seed", type=int, default=0)
    netsim.set_defaults(func=_cmd_netsim)

    net = sub.add_parser("net",
                         help="scaled multi-block propagation: fork rate "
                              "and delay percentiles at 100-1000+ nodes")
    net.add_argument("--nodes", type=int, default=1000)
    net.add_argument("--degree", type=int, default=8,
                     help="target mean degree (scale_free uses degree/2 "
                          "attachments per node)")
    net.add_argument("--blocks", type=int, default=200)
    net.add_argument("--block-txns", type=int, default=24)
    net.add_argument("--interval", type=float, default=2.0,
                     help="seconds between blocks")
    net.add_argument("--topology", default="scale_free",
                     choices=["scale_free", "random_regular"])
    net.add_argument("--loss", type=float, default=0.0)
    net.add_argument("--seed", type=int, default=2026)
    net.add_argument("--protocol", default="graphene",
                     choices=[p.value for p in __import__(
                         "repro.net.node", fromlist=["RelayProtocol"]
                     ).RelayProtocol])
    net.add_argument("--verbose", action="store_true",
                     help="print per-cycle progress")
    net.add_argument("--json", default=None, metavar="PATH",
                     help="write a JSON summary (params, percentiles, "
                          "fork rate, metrics snapshot) to PATH")
    net.set_defaults(func=_cmd_net)

    trace = sub.add_parser("trace",
                           help="simulated relay with a span timeline")
    _add_scenario_args(trace)
    trace.add_argument("--kind", default=None,
                       choices=["relay", "serve", "sync", "sync-serve"],
                       help="only show spans of this kind")
    trace.add_argument("--summary", action="store_true",
                       help="one line per span, no per-message detail")
    trace.add_argument("--limit", type=int, default=None,
                       help="show only the first N spans")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also export spans as JSONL to PATH")
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser("report",
                            help="simulated relay with metrics tables "
                                 "and accounting invariants")
    _add_scenario_args(report)
    report.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full run report to PATH")
    report.set_defaults(func=_cmd_report)

    fuzz = sub.add_parser("fuzz",
                          help="differential fuzzing: codec round-trips, "
                               "PDS batch paths, lossy relay scenarios")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; same seed -> same cases")
    fuzz.add_argument("--cases", type=int, default=500,
                      help="case budget for a cost-1 engine")
    fuzz.add_argument("--budget", type=float, default=None,
                      help="wall-clock cap in seconds")
    fuzz.add_argument("--engine", default="all",
                      choices=["all", "codec", "pds", "relay"])
    fuzz.add_argument("--corpus", default="tests/corpus",
                      help="artifact directory for minimized failures")
    fuzz.add_argument("--no-artifacts", action="store_true",
                      help="report failures without writing artifacts")
    fuzz.add_argument("--max-failures", type=int, default=5,
                      help="stop the campaign after this many findings")
    fuzz.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="replay one corpus artifact instead of fuzzing")
    fuzz.add_argument("--verbose", action="store_true")
    fuzz.set_defaults(func=_cmd_fuzz)

    def _add_socket_scenario_args(parser) -> None:
        # Both ends derive the identical scenario from the same seed, so
        # only parameters cross the command line, never transactions.
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument("--n", type=int, default=200)
        parser.add_argument("--extra", type=int, default=200)
        parser.add_argument("--fraction", type=float, default=1.0)
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--p3", action="store_true",
                            help="speak Protocol 3 (rateless symbol "
                                 "stream); both ends must agree")

    serve = sub.add_parser("serve",
                           help="announce and serve one synthetic block "
                                "over real TCP")
    _add_socket_scenario_args(serve)
    serve.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port; the bound port "
                            "is printed as 'listening on HOST:PORT'")
    serve.add_argument("--once", action="store_true",
                       help="exit after serving one connection")
    serve.add_argument("--node-id", default="server",
                       help="identity announced in the version handshake")
    serve.add_argument("--drop", action="append", default=None,
                       metavar="CMD[:N]",
                       help="ignore the first N inbound CMD frames "
                            "(default 1); repeatable")
    serve.add_argument("--blackhole", action="store_true",
                       help="never answer any request: handshake and "
                            "announce, then go dark (forces the "
                            "fetcher's recovery ladder)")
    serve.set_defaults(func=_cmd_serve)

    peer = sub.add_parser("peer",
                          help="fetch a block from a serve instance "
                               "(--port) or a node group (--connect)")
    _add_socket_scenario_args(peer)
    peer.add_argument("--port", type=int, default=None,
                      help="single-connection mode: the one server port")
    peer.add_argument("--connect", action="append", default=None,
                      metavar="HOST:PORT",
                      help="mesh mode: dial this peer (repeatable); "
                           "the ladder can fail over between them")
    peer.add_argument("--listen", type=int, default=None, metavar="PORT",
                      help="mesh mode: also accept inbound peers (and "
                           "re-serve fetched blocks); 0 = ephemeral")
    peer.add_argument("--node-id", default="peer",
                      help="identity announced in the version handshake")
    peer.add_argument("--timeout-base", type=float, default=2.0,
                      help="first-attempt response timeout (seconds)")
    peer.add_argument("--max-retries", type=int, default=3,
                      help="resends per recovery rung before escalating")
    peer.add_argument("--fetch-timeout", type=float, default=120.0,
                      help="mesh mode: overall wall-clock budget for "
                           "the fetch (seconds)")
    peer.add_argument("--check-parity", action="store_true",
                      help="also run the loopback relay of the same "
                           "scenario and require byte-identical cost "
                           "and telemetry (mesh mode compares the "
                           "surviving path)")
    peer.add_argument("--json", action="store_true",
                      help="dump the result (cost, events, marks) "
                           "as JSON")
    peer.set_defaults(func=_cmd_peer)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
