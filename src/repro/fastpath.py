"""Process-wide switch between the vectorized and pure-Python hot paths.

Hot-path round 2 gave the wire codecs numpy-vectorized encode/decode
bodies (``ndarray.tobytes()`` / ``np.frombuffer`` over the columnar
IBLT arrays) while keeping the original per-cell ``struct`` loops as
the reference implementation.  Both paths are byte-identical -- the
golden-vector tests in ``tests/test_codec_fastpath.py`` pin that for
every artifact in ``tests/corpus/`` -- so which one runs is purely an
execution-speed choice:

* default: vectorized wherever numpy is importable;
* ``REPRO_FASTPATH=0`` in the environment forces the pure-Python
  reference paths (useful for debugging and for numpy-free installs);
* :func:`set_fastpath` flips the switch at runtime (parity tests run
  both sides in one process).

The flag gates *implementation selection only*.  Protocol behaviour,
wire bytes and decode results never depend on it.
"""

from __future__ import annotations

import os

try:  # the toolchain ships numpy, but installs without it must degrade
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via set_fastpath(False)
    _np = None

#: Whether the vectorized codec bodies are selected.  Start from the
#: environment; numpy's absence forces the pure paths regardless.
_enabled = (_np is not None
            and os.environ.get("REPRO_FASTPATH", "1") != "0")


def fastpath_enabled() -> bool:
    """True when the vectorized codec paths are active."""
    return _enabled


def set_fastpath(enabled: bool) -> bool:
    """Select (or deselect) the vectorized paths; returns the new state.

    Enabling is refused (returns False) when numpy is unavailable, so
    callers can unconditionally restore a saved state.
    """
    global _enabled
    _enabled = bool(enabled) and _np is not None
    return _enabled
