"""The three differential fuzzing engines.

Each engine turns a small JSON-serializable parameter dict into a fully
deterministic test case and checks a battery of invariants:

* :class:`CodecEngine` -- wire round-trips.  ``encode -> decode ->
  encode`` must be a byte-level fixed point, decoded structures must
  *behave* like their originals (membership answers, IBLT decode
  results, restored loads and FPR estimates, receiver outcomes), and
  mutated/truncated encodings must raise
  :class:`~repro.errors.ReproError` rather than mis-parse, overrun the
  buffer, or crash with a non-protocol exception.
* :class:`PDSEngine` -- the columnar :class:`~repro.pds.iblt.IBLT` and
  :class:`~repro.pds.bloom.BloomFilter` against the frozen references in
  :mod:`repro.pds.reference` and against their own scalar paths
  (``update`` vs repeated ``insert``, ``contains_many`` vs
  ``__contains__``), on both sides of the ``_BATCH_MIN`` threshold and
  with the numpy backend force-disabled.
* :class:`RelayEngine` -- random small lossy topologies with optional
  :class:`~repro.net.simulator.FaultInjector` schedules, asserting
  convergence-or-clean-abandon and every RunReport invariant.

Engines never raise on a *finding*: they return a :class:`FuzzFailure`
describing it.  Unexpected exceptions are allowed to propagate -- the
runner converts them into ``unhandled:`` failures, which is itself a
detection (decoders must fail with protocol errors, not arbitrary
ones).
"""

from __future__ import annotations

import random
import struct
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.codec import (
    decode_bloom,
    decode_iblt,
    decode_protocol1_payload,
    decode_protocol2_request,
    decode_protocol2_response,
    decode_protocol3_payload,
    decode_symbol_batch,
    decode_transaction,
    decode_tx_list,
    encode_bloom,
    encode_iblt,
    encode_protocol1_payload,
    encode_protocol2_request,
    encode_protocol2_response,
    encode_protocol3_payload,
    encode_symbol_batch,
    encode_transaction,
    encode_tx_list,
    restore_bloom_load,
)
from repro.errors import ReproError
from repro.fuzz import gen
from repro.fuzz.gen import rng_from
from repro.net.peer.framing import (
    MAX_PAYLOAD,
    FrameDecoder,
    FrameError,
    encode_frame,
    frame_overhead,
    iter_splits,
)

_DECODERS = (decode_bloom, decode_iblt, decode_transaction, decode_tx_list,
             decode_protocol1_payload, decode_protocol2_request,
             decode_protocol2_response, decode_protocol3_payload,
             decode_symbol_batch)


@dataclass
class FuzzFailure:
    """One confirmed finding: a check that did not hold for ``params``."""

    engine: str
    check: str
    detail: str
    params: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.engine}] {self.check}: {self.detail} {self.params}"


def _halves(value: int, floor: int) -> List[int]:
    """Shrink candidates for one integer: the floor, then halvings."""
    out = []
    if value > floor:
        out.append(floor)
        mid = (value + floor) // 2
        if mid not in (value, floor):
            out.append(mid)
    return out


class Engine:
    """Interface shared by the three engines."""

    name: str = "?"
    #: Relative per-case cost; the runner divides its case budget by it.
    cost: int = 1
    #: ``{param_key: minimum}`` for the generic integer shrinker.
    shrink_floors: dict = {}

    def draw(self, rng: random.Random) -> dict:
        raise NotImplementedError

    def check(self, params: dict) -> Optional[FuzzFailure]:
        raise NotImplementedError

    def shrink_candidates(self, params: dict) -> Iterable[dict]:
        """Yield strictly-simpler variants of ``params`` to retry."""
        for key, floor in self.shrink_floors.items():
            if key not in params or not isinstance(params[key], int):
                continue
            for smaller in _halves(params[key], floor):
                yield {**params, key: smaller}

    def fail(self, check: str, detail: str, params: dict) -> FuzzFailure:
        return FuzzFailure(engine=self.name, check=check, detail=detail,
                           params=dict(params))


@contextmanager
def numpy_disabled():
    """Force the pure-python fallback of the PDS batch entry points."""
    import repro.pds.bloom as bloom_mod
    import repro.pds.iblt as iblt_mod
    import repro.pds.riblt as riblt_mod
    saved = bloom_mod._np, iblt_mod._np, riblt_mod._np
    bloom_mod._np = None
    iblt_mod._np = None
    riblt_mod._np = None
    try:
        yield
    finally:
        bloom_mod._np, iblt_mod._np, riblt_mod._np = saved


# ---------------------------------------------------------------------------
# Engine 1: codec round-trips
# ---------------------------------------------------------------------------

class CodecEngine(Engine):
    """Round-trip, behaviour-parity and hostile-input codec checks."""

    name = "codec"
    cost = 1
    shrink_floors = {"n": 1, "extra": 0, "n_insert": 0, "n_erase": 0,
                     "cells": 1, "k": 2, "n_ops": 1, "n_frames": 1,
                     "payload_max": 0}

    _KINDS = ("bloom", "bloom", "iblt", "iblt", "transaction", "tx_list",
              "p1", "p1", "p2", "p2", "p3", "p3_stream",
              "mutation", "mutation", "mutation", "frame", "frame")
    _MUTATION_BASES = ("bloom", "iblt", "transaction", "p1", "p3",
                       "p2_request", "p2_response")
    #: Frame-level corruption modes ("split" is the invariance check;
    #: the rest must raise FrameError, never mis-parse or stall).
    _FRAME_MODES = ("split", "split", "split", "bad_magic", "bad_length",
                    "bad_checksum", "midframe_eof")
    _FRAME_COMMANDS = ("version", "verack", "inv", "getdata",
                       "graphene_block", "graphene_p2_request",
                       "graphene_p2_response", "graphene_p3_block",
                       "graphene_p3_request", "graphene_p3_symbols",
                       "getdata_shortids", "block_txs", "getdata_block",
                       "block")
    #: Symbol-stream corruption modes for ``p3_stream`` cases.
    _P3_STREAM_MODES = ("truncate_boundary", "bad_header", "midstream_eof")

    def draw(self, rng: random.Random) -> dict:
        kind = rng.choice(self._KINDS)
        params = {"kind": kind, "seed": rng.getrandbits(24)}
        if kind == "bloom":
            params.update(n=rng.randint(0, 400),
                          fpr=round(10.0 ** -rng.uniform(0.1, 3.0), 6),
                          filter_seed=rng.choice([0, rng.getrandbits(16)]))
        elif kind == "iblt":
            params.update(cells=rng.randint(1, 200), k=rng.randint(2, 6),
                          iblt_seed=rng.getrandbits(16),
                          cell_bytes=rng.choice([4, 11, 12, 12, 13, 14,
                                                 16, 18, 20]),
                          n_insert=rng.randint(0, 80),
                          n_erase=rng.randint(0, 6))
        elif kind in ("transaction", "tx_list"):
            params.update(n=rng.randint(0 if kind == "tx_list" else 1, 40))
        elif kind == "p1":
            params.update(n=rng.randint(20, 250),
                          extra=rng.choice([0, rng.randint(0, 250)]),
                          fraction=rng.choice([1.0, 1.0, 0.95, 0.9]))
        elif kind == "p2":
            params.update(n=rng.randint(60, 250),
                          extra=rng.randint(20, 250),
                          fraction=round(rng.uniform(0.55, 0.95), 2))
        elif kind == "p3":
            params.update(n=rng.randint(20, 250),
                          extra=rng.choice([0, rng.randint(0, 250)]),
                          fraction=rng.choice([1.0, 0.9, 0.7, 0.5]))
        elif kind == "p3_stream":
            params.update(n=rng.randint(40, 160),
                          extra=rng.randint(20, 160),
                          fraction=round(rng.uniform(0.5, 0.9), 2),
                          mode=rng.choice(self._P3_STREAM_MODES),
                          cut_seed=rng.getrandbits(16))
        elif kind == "frame":
            params.update(n_frames=rng.randint(1, 6),
                          payload_max=rng.randint(0, 300),
                          mode=rng.choice(self._FRAME_MODES),
                          split_seed=rng.getrandbits(16))
        else:  # mutation
            params.update(base=rng.choice(self._MUTATION_BASES),
                          n=rng.randint(30, 150),
                          extra=rng.randint(0, 150),
                          fraction=rng.choice([1.0, 0.9, 0.8]),
                          n_ops=rng.randint(1, 6),
                          mut_seed=rng.getrandbits(24))
        return params

    def check(self, params: dict) -> Optional[FuzzFailure]:
        return getattr(self, "_check_" + params["kind"])(params)

    # -- structures -----------------------------------------------------

    def _check_bloom(self, params) -> Optional[FuzzFailure]:
        rng = rng_from("bloom", params["seed"])
        bloom, items = gen.make_bloom(rng, params["n"], params["fpr"],
                                      params["filter_seed"])
        blob = encode_bloom(bloom)
        if len(blob) != bloom.serialized_size():
            return self.fail("bloom-size-model",
                             f"wire {len(blob)}B != model "
                             f"{bloom.serialized_size()}B", params)
        decoded, offset = decode_bloom(blob)
        if offset != len(blob):
            return self.fail("bloom-offset", f"{offset} != {len(blob)}",
                             params)
        if encode_bloom(decoded) != blob:
            return self.fail("bloom-fixed-point",
                             "encode(decode(encode)) differs", params)
        probes = items + gen.make_items(rng, 64)
        if ([p in bloom for p in probes]
                != [p in decoded for p in probes]):
            return self.fail("bloom-membership",
                             "decoded filter answers differently", params)
        if not bloom.is_degenerate and decoded.target_fpr >= 1.0:
            return self.fail("bloom-target-fpr",
                             "decoded non-degenerate filter claims "
                             f"target_fpr={decoded.target_fpr}", params)
        restore_bloom_load(decoded, bloom.count)
        if decoded.count != bloom.count:
            return self.fail("bloom-load-restore",
                             f"count {decoded.count} != {bloom.count}",
                             params)
        if decoded.actual_fpr() != bloom.actual_fpr():
            return self.fail("bloom-actual-fpr",
                             f"{decoded.actual_fpr()} != "
                             f"{bloom.actual_fpr()}", params)
        if bloom.count and not bloom.is_degenerate:
            # Sizing inverts to within the ceil() applied to nbits.
            lo, hi = bloom.target_fpr * 0.59, bloom.target_fpr * 1.000001
            if not lo <= decoded.target_fpr <= hi:
                return self.fail("bloom-target-fpr-estimate",
                                 f"{decoded.target_fpr} outside "
                                 f"[{lo}, {hi}]", params)
        return None

    def _check_iblt(self, params) -> Optional[FuzzFailure]:
        rng = rng_from("iblt", params["seed"])
        iblt, _, _ = gen.make_iblt(
            rng, params["cells"], params["k"], params["iblt_seed"],
            params["cell_bytes"], params["n_insert"], params["n_erase"])
        blob = encode_iblt(iblt)
        decoded, offset = decode_iblt(blob)
        if offset != len(blob):
            return self.fail("iblt-offset", f"{offset} != {len(blob)}",
                             params)
        if 12 <= params["cell_bytes"] <= 18 \
                and len(blob) != iblt.serialized_size():
            return self.fail("iblt-size-model",
                             f"wire {len(blob)}B != model "
                             f"{iblt.serialized_size()}B", params)
        if encode_iblt(decoded) != blob:
            return self.fail("iblt-fixed-point",
                             "encode(decode(encode)) differs", params)
        mine, theirs = iblt.decode(), decoded.decode()
        if (mine.complete, mine.local, mine.remote) != \
                (theirs.complete, theirs.local, theirs.remote):
            return self.fail("iblt-decode-parity",
                             "decoded IBLT peels differently", params)
        return None

    def _check_transaction(self, params) -> Optional[FuzzFailure]:
        rng = rng_from("tx", params["seed"])
        txs = gen.make_transactions(rng, params["n"])
        for tx in txs:
            decoded, offset = decode_transaction(encode_transaction(tx))
            if offset != 41:
                return self.fail("tx-offset", f"{offset} != 41", params)
            if decoded != tx:
                return self.fail("tx-roundtrip",
                                 f"decoded {decoded} != original {tx}",
                                 params)
        # Fee-rate ordering must survive the wire: a mempool sorted on
        # decoded transactions must order like its loopback twin.
        decoded = decode_tx_list(encode_tx_list(txs))[0]
        order = lambda ts: [t.txid for t in  # noqa: E731
                            sorted(ts, key=lambda t: (t.fee_rate, t.txid))]
        if order(txs) != order(decoded):
            return self.fail("tx-fee-ordering",
                             "wire round-trip reorders the mempool",
                             params)
        return None

    def _check_tx_list(self, params) -> Optional[FuzzFailure]:
        rng = rng_from("txlist", params["seed"])
        txs = gen.make_transactions(rng, params["n"])
        blob = encode_tx_list(txs)
        decoded, offset = decode_tx_list(blob)
        if offset != len(blob) or list(decoded) != list(txs):
            return self.fail("tx-list-roundtrip",
                             "decoded list differs", params)
        return None

    # -- protocol messages ----------------------------------------------

    def _bloom_parity(self, tag, original, decoded,
                      params) -> Optional[FuzzFailure]:
        """Load, FPR and membership parity for a wire-decoded filter."""
        if decoded.count != original.count:
            return self.fail(f"{tag}-count",
                             f"restored count {decoded.count} != loopback "
                             f"{original.count}", params)
        if decoded.actual_fpr() != original.actual_fpr():
            return self.fail(f"{tag}-actual-fpr",
                             f"{decoded.actual_fpr()} != "
                             f"{original.actual_fpr()}", params)
        if not original.is_degenerate and original.count:
            lo = original.target_fpr * 0.59
            hi = original.target_fpr * 1.000001
            if not lo <= decoded.target_fpr <= hi:
                return self.fail(f"{tag}-target-fpr",
                                 f"{decoded.target_fpr} outside "
                                 f"[{lo}, {hi}]", params)
        return None

    def _check_p1(self, params) -> Optional[FuzzFailure]:
        from repro.core.params import GrapheneConfig
        from repro.core.protocol1 import receive_protocol1

        payload, sc = gen.make_p1(params)
        blob = encode_protocol1_payload(payload)
        decoded, offset = decode_protocol1_payload(blob)
        if offset != len(blob):
            return self.fail("p1-offset", f"{offset} != {len(blob)}", params)
        if encode_protocol1_payload(decoded) != blob:
            return self.fail("p1-fixed-point",
                             "encode(decode(encode)) differs", params)
        if (decoded.n, decoded.recover) != (payload.n, payload.recover):
            return self.fail("p1-counts", "n/recover drift", params)
        if tuple(decoded.prefilled) != tuple(payload.prefilled):
            return self.fail("p1-prefilled", "prefilled txns drift", params)
        failure = self._bloom_parity("p1-bloom-s", payload.bloom_s,
                                     decoded.bloom_s, params)
        if failure is not None:
            return failure
        if encode_iblt(decoded.iblt_i) != encode_iblt(payload.iblt_i):
            return self.fail("p1-iblt", "IBLT I drifts on the wire", params)
        config = GrapheneConfig()
        mine = receive_protocol1(payload, sc.receiver_mempool, config,
                                 validate_block=sc.block)
        theirs = receive_protocol1(decoded, sc.receiver_mempool, config,
                                   validate_block=sc.block)
        if (mine.success, mine.z) != (theirs.success, theirs.z):
            return self.fail("p1-receiver-parity",
                             f"loopback (success={mine.success}, "
                             f"z={mine.z}) vs wire "
                             f"(success={theirs.success}, z={theirs.z})",
                             params)
        return None

    def _check_p2(self, params) -> Optional[FuzzFailure]:
        from repro.core.params import GrapheneConfig
        from repro.core.protocol2 import finish_protocol2, respond_protocol2

        built = gen.make_p2(params)
        if built is None:  # Protocol 1 succeeded; nothing to check.
            return None
        request, response, state, sc = built
        req_blob = encode_protocol2_request(request)
        arrived_req, offset = decode_protocol2_request(req_blob)
        if offset != len(req_blob):
            return self.fail("p2-req-offset", f"{offset} != {len(req_blob)}",
                             params)
        if encode_protocol2_request(arrived_req) != req_blob:
            return self.fail("p2-req-fixed-point",
                             "encode(decode(encode)) differs", params)
        fields = ("b", "ystar", "z", "xstar", "special_case")
        for name in fields:
            if getattr(arrived_req, name) != getattr(request, name):
                return self.fail("p2-req-fields", f"{name} drifts", params)
        failure = self._bloom_parity("p2-bloom-r", request.bloom_r,
                                     arrived_req.bloom_r, params)
        if failure is not None:
            return failure
        # The responder must behave identically whether the request
        # arrived over loopback or the wire.
        config = GrapheneConfig()
        wire_response = respond_protocol2(arrived_req, sc.block.txs, sc.m,
                                          config)
        resp_blob = encode_protocol2_response(response)
        if encode_protocol2_response(wire_response) != resp_blob:
            return self.fail("p2-responder-parity",
                             "wire-decoded request yields a different "
                             "response", params)
        arrived_resp, offset = decode_protocol2_response(resp_blob)
        if offset != len(resp_blob):
            return self.fail("p2-resp-offset",
                             f"{offset} != {len(resp_blob)}", params)
        if encode_protocol2_response(arrived_resp) != resp_blob:
            return self.fail("p2-resp-fixed-point",
                             "encode(decode(encode)) differs", params)
        if tuple(arrived_resp.missing_txs) != tuple(response.missing_txs):
            return self.fail("p2-resp-txs", "pushed T drifts", params)
        mine = finish_protocol2(response, state, sc.receiver_mempool,
                                config, validate_block=sc.block)
        theirs = finish_protocol2(arrived_resp, state, sc.receiver_mempool,
                                  config, validate_block=sc.block)
        if (mine.success, mine.decode_complete) != \
                (theirs.success, theirs.decode_complete):
            return self.fail("p2-finish-parity",
                             f"loopback ({mine.success}, "
                             f"{mine.decode_complete}) vs wire "
                             f"({theirs.success}, {theirs.decode_complete})",
                             params)
        return None

    def _check_p3(self, params) -> Optional[FuzzFailure]:
        from repro.core.params import GrapheneConfig
        from repro.core.protocol3 import (
            SymbolBatch,
            begin_protocol3,
            ingest_symbols,
            next_batch_size,
        )
        from repro.errors import MalformedIBLTError, ParameterError

        payload, encoder, sc = gen.make_p3(params)
        blob = encode_protocol3_payload(payload)
        decoded, offset = decode_protocol3_payload(blob)
        if offset != len(blob):
            return self.fail("p3-offset", f"{offset} != {len(blob)}", params)
        if encode_protocol3_payload(decoded) != blob:
            return self.fail("p3-fixed-point",
                             "encode(decode(encode)) differs", params)
        if (decoded.n, decoded.recover) != (payload.n, payload.recover):
            return self.fail("p3-counts", "n/recover drift", params)
        if tuple(decoded.prefilled) != tuple(payload.prefilled):
            return self.fail("p3-prefilled", "prefilled txns drift", params)
        failure = self._bloom_parity("p3-bloom-s", payload.bloom_s,
                                     decoded.bloom_s, params)
        if failure is not None:
            return failure
        for col in ("counts", "key_sums", "check_sums"):
            if list(getattr(decoded.symbols, col)) \
                    != list(getattr(payload.symbols, col)):
                return self.fail("p3-symbols",
                                 f"opening batch column {col} drifts on "
                                 "the wire", params)
        # Receiver parity: ingesting the wire-decoded opening must leave
        # the decoder in exactly the loopback state.
        config = GrapheneConfig()

        def begin(opening):
            try:
                state = begin_protocol3(opening, sc.receiver_mempool, config)
            except MalformedIBLTError:
                return ("malformed", None, None), None
            return ("ok", state.decoder.complete,
                    len(state.candidates)), state

        mine, state = begin(payload)
        theirs, wire_state = begin(decoded)
        if mine != theirs:
            return self.fail("p3-receiver-parity",
                             f"loopback {mine} vs wire {theirs}", params)
        if state is not None and not state.decoder.complete:
            # One continuation round, exactly as the engines serve it.
            start = state.symbols
            count = min(next_batch_size(start), state.cap - start)
            counts, key_sums, check_sums = encoder.window(start, count)
            batch = SymbolBatch(start=start, counts=counts,
                                key_sums=key_sums, check_sums=check_sums)
            batch_blob = encode_symbol_batch(batch)
            wire_batch, batch_off = decode_symbol_batch(batch_blob)
            if batch_off != len(batch_blob):
                return self.fail("p3-batch-offset",
                                 f"{batch_off} != {len(batch_blob)}", params)
            if encode_symbol_batch(wire_batch) != batch_blob:
                return self.fail("p3-batch-fixed-point",
                                 "encode(decode(encode)) differs", params)
            if ingest_symbols(state, batch) \
                    != ingest_symbols(wire_state, wire_batch):
                return self.fail("p3-ingest-parity",
                                 "wire-decoded batch decodes differently",
                                 params)
        if state is not None:
            # The stream is strictly sequential: a desynchronized start
            # is a framing violation, never a silent resync.
            counts, key_sums, check_sums = encoder.window(
                state.symbols + 1, 4)
            shifted = SymbolBatch(start=state.symbols + 1, counts=counts,
                                  key_sums=key_sums, check_sums=check_sums)
            try:
                ingest_symbols(state, shifted)
            except ParameterError:
                pass
            else:
                return self.fail("p3-desync-accepted",
                                 "batch starting past the stream head "
                                 "ingested without error", params)
        return None

    def _check_p3_stream(self, params) -> Optional[FuzzFailure]:
        import struct as _struct

        from repro.core.protocol3 import SymbolBatch, next_batch_size
        from repro.pds.riblt import SYMBOL_BYTES

        payload, encoder, _ = gen.make_p3(params)
        # A plausible wire stream: the opening batch plus two
        # continuation windows, concatenated back to back.
        batches = [payload.symbols]
        start = len(payload.symbols)
        for _ in range(2):
            count = next_batch_size(start)
            counts, key_sums, check_sums = encoder.window(start, count)
            batches.append(SymbolBatch(start=start, counts=counts,
                                       key_sums=key_sums,
                                       check_sums=check_sums))
            start += count
        blobs = [encode_symbol_batch(b) for b in batches]
        stream = b"".join(blobs)
        boundaries = [0]
        for blob in blobs:
            boundaries.append(boundaries[-1] + len(blob))
        rng = rng_from("p3cut", params["cut_seed"])
        mode = params["mode"]
        if mode == "truncate_boundary":
            # A stream cut at any batch boundary parses into exactly the
            # whole batches before the cut -- the receiver then stalls
            # and the recovery ladder treats it as a timeout.  A
            # boundary cut must never raise or mis-frame.
            for k, cut in enumerate(boundaries):
                prefix, off, parsed = stream[:cut], 0, 0
                while off < len(prefix):
                    batch, off = decode_symbol_batch(prefix, off)
                    if list(batch.counts) != list(batches[parsed].counts):
                        return self.fail(
                            "p3-boundary-reparse",
                            f"batch {parsed} drifts after a cut at {cut}",
                            params)
                    parsed += 1
                if off != cut or parsed != k:
                    return self.fail("p3-boundary-framing",
                                     f"cut at {cut}: consumed {off} bytes, "
                                     f"{parsed} batches", params)
            return None
        if mode == "midstream_eof":
            # A disconnect strictly inside a batch leaves a partial
            # batch at the tail; the decoder must raise rather than
            # return fewer symbols than the header promised.
            k = rng.randrange(len(blobs))
            cut = boundaries[k] + rng.randint(1, len(blobs[k]) - 1)
            try:
                off = 0
                while off < cut:
                    _, off = decode_symbol_batch(stream[:cut], off)
            except ReproError:
                return None
            return self.fail("p3-midstream-eof",
                             f"stream cut at {cut}/{len(stream)} bytes "
                             "parsed without error", params)
        # bad_header: a forged count claiming more symbols than the
        # buffer holds must be bounds-checked before any allocation.
        target = blobs[rng.randrange(len(blobs))]
        for claimed in (len(target) // SYMBOL_BYTES + 1, 0xFFFF):
            forged = target[:4] + _struct.pack("<H", claimed) + target[6:]
            try:
                batch, _ = decode_symbol_batch(forged)
            except ReproError:
                continue
            return self.fail("p3-bad-header",
                             f"header claiming {claimed} symbols in a "
                             f"{len(forged)}B buffer decoded {len(batch)}",
                             params)
        return None

    # -- hostile input --------------------------------------------------

    def _base_blob(self, params) -> bytes:
        """A valid encoding of the mutation target."""
        base = params["base"]
        rng = rng_from("mutbase", params["seed"])
        if base == "bloom":
            bloom, _ = gen.make_bloom(rng, params["n"], 0.02, 7)
            return encode_bloom(bloom)
        if base == "iblt":
            iblt, _, _ = gen.make_iblt(rng, max(4, params["n"] // 2), 4,
                                       11, 12, params["n"], 0)
            return encode_iblt(iblt)
        if base == "transaction":
            return encode_transaction(gen.make_transactions(rng, 1)[0])
        p1_params = {"n": params["n"], "extra": params["extra"],
                     "fraction": params["fraction"], "seed": params["seed"]}
        if base == "p1":
            payload, _ = gen.make_p1(p1_params)
            return encode_protocol1_payload(payload)
        if base == "p3":
            payload, _, _ = gen.make_p3(p1_params)
            return encode_protocol3_payload(payload)
        p1_params["fraction"] = min(p1_params["fraction"], 0.9)
        built = gen.make_p2(p1_params)
        if built is None:
            return b""
        request, response = built[0], built[1]
        if base == "p2_request":
            return encode_protocol2_request(request)
        return encode_protocol2_response(response)

    def _check_mutation(self, params) -> Optional[FuzzFailure]:
        blob = self._base_blob(params)
        if not blob:
            return None
        mut_rng = rng_from("mut", params["mut_seed"])
        mutated = gen.mutate(blob, mut_rng, params["n_ops"])
        for decoder in _DECODERS:
            try:
                result = decoder(mutated)
            except (ReproError, ValueError):
                continue
            offset = result[1] if isinstance(result, tuple) else len(mutated)
            if offset > len(mutated):
                return self.fail("mutation-overrun",
                                 f"{decoder.__name__} consumed {offset} of "
                                 f"{len(mutated)} bytes", params)
        # Every strict prefix of a valid message must be rejected (the
        # codecs consume every byte, so a prefix always exhausts).
        for cut in sorted(mut_rng.sample(range(len(blob)),
                                         min(8, len(blob)))):
            try:
                self._prefix_decoder(params["base"])(blob[:cut])
            except (ReproError, ValueError):
                continue
            return self.fail("truncation-accepted",
                             f"{params['base']} prefix of {cut}/{len(blob)} "
                             "bytes decoded without error", params)
        return None

    # -- frame envelope -------------------------------------------------

    def _check_frame(self, params) -> Optional[FuzzFailure]:
        rng = rng_from("frame", params["seed"])
        frames = []
        for _ in range(params["n_frames"]):
            command = rng.choice(self._FRAME_COMMANDS)
            payload = rng.randbytes(rng.randint(0, params["payload_max"]))
            frames.append((command, payload))
        stream = b"".join(encode_frame(c, p) for c, p in frames)
        mode = params["mode"]
        if mode == "split":
            split_rng = rng_from("split", params["split_seed"])
            sizes = iter(lambda: split_rng.randint(1, 64), None)
            decoder = FrameDecoder()
            collected = []
            try:
                for chunk in iter_splits(stream, sizes):
                    collected.extend(decoder.feed(chunk))
                decoder.eof()
            except FrameError as exc:
                return self.fail("frame-split-invariance",
                                 f"valid stream rejected: {exc}", params)
            if collected != frames:
                return self.fail("frame-split-invariance",
                                 f"split parse yielded {len(collected)} "
                                 f"frames, expected {len(frames)}", params)
            return None
        # Hostile modes: a corruption of the first (or truncation of the
        # last) frame must surface as FrameError, never a mis-parse.
        buf = bytearray(stream)
        cmd_len = buf[4]
        if mode == "bad_magic":
            buf[0] ^= 0xFF
        elif mode == "bad_length":
            struct.pack_into("<I", buf, 5 + cmd_len, MAX_PAYLOAD + 1)
        elif mode == "bad_checksum":
            # The stored checksum was correct, so any bit flip in its
            # field guarantees a mismatch against the intact payload.
            buf[5 + cmd_len + 4] ^= 0x01
        else:  # midframe_eof
            last_len = frame_overhead(frames[-1][0]) + len(frames[-1][1])
            del buf[len(buf) - rng.randint(1, last_len - 1):]
        decoder = FrameDecoder()
        try:
            decoder.feed(bytes(buf))
            decoder.eof()
        except FrameError:
            return None
        return self.fail("frame-" + mode.replace("_", "-"),
                         "corrupted stream accepted without FrameError",
                         params)

    @staticmethod
    def _prefix_decoder(base: str):
        return {"bloom": decode_bloom, "iblt": decode_iblt,
                "transaction": decode_transaction,
                "p1": decode_protocol1_payload,
                "p2_request": decode_protocol2_request,
                "p2_response": decode_protocol2_response,
                "p3": decode_protocol3_payload}[base]

    def shrink_candidates(self, params: dict) -> Iterable[dict]:
        yield from super().shrink_candidates(params)
        if params["kind"] == "mutation":
            for simpler in ("transaction", "bloom", "iblt"):
                if params["base"] != simpler:
                    yield {**params, "base": simpler}
        if params.get("fraction", 1.0) != 1.0 and params["kind"] != "p2":
            yield {**params, "fraction": 1.0}


# ---------------------------------------------------------------------------
# Engine 2: PDS differential
# ---------------------------------------------------------------------------

class PDSEngine(Engine):
    """Columnar PDS vs frozen reference vs its own scalar paths."""

    name = "pds"
    cost = 2
    shrink_floors = {"n_a": 0, "n_b": 0, "n_shared": 0, "cells": 4,
                     "k": 2, "n": 0, "probes": 1, "batch": 1}

    def draw(self, rng: random.Random) -> dict:
        struct = rng.choice(["iblt", "bloom", "riblt"])
        params = {"struct": struct, "seed": rng.getrandbits(24),
                  "numpy": rng.random() < 0.7}
        if struct == "iblt":
            params.update(cells=rng.randint(4, 240), k=rng.randint(2, 6),
                          sseed=rng.getrandbits(16),
                          cell_bytes=rng.randint(12, 18),
                          n_shared=rng.randint(0, 60),
                          n_a=rng.randint(0, 90), n_b=rng.randint(0, 45))
        elif struct == "riblt":
            params.update(sseed=rng.getrandbits(16),
                          n_shared=rng.randint(0, 60),
                          n_a=rng.randint(0, 60), n_b=rng.randint(0, 30),
                          batch=rng.randint(1, 32))
        else:
            params.update(n=rng.randint(0, 120),
                          fpr=round(10.0 ** -rng.uniform(0.3, 3.0), 6),
                          fseed=rng.choice([0, rng.getrandbits(16)]),
                          probes=rng.randint(1, 80),
                          width=rng.choice([32, 32, 32, 20]))
        return params

    def check(self, params: dict) -> Optional[FuzzFailure]:
        checker = {"iblt": self._check_iblt, "bloom": self._check_bloom,
                   "riblt": self._check_riblt}[params["struct"]]
        failure = checker(params)
        if failure is None and not params["numpy"]:
            with numpy_disabled():
                failure = checker(params, tag="nonumpy-")
        return failure

    def _check_riblt(self, params, tag="") -> Optional[FuzzFailure]:
        from repro.errors import MalformedIBLTError
        from repro.pds.riblt import RIBLTEncoder, reconcile

        rng = rng_from("pds-riblt", params["seed"])
        shared = gen.make_keys(rng, params["n_shared"])
        only_a = gen.make_keys(rng, params["n_a"])
        only_b = gen.make_keys(rng, params["n_b"])
        # Dedupe across the three draws so the expected symmetric
        # difference is exact (64-bit collisions are astronomically
        # unlikely but would make the oracle ambiguous).
        seen: set = set()
        shared = [k for k in shared if not (k in seen or seen.add(k))]
        only_a = [k for k in only_a if not (k in seen or seen.add(k))]
        only_b = [k for k in only_b if not (k in seen or seen.add(k))]
        sender, receiver = shared + only_a, shared + only_b
        seed = params["sseed"]

        # Ratelessness: the stream is a pure function of (keys, seed),
        # so any chunking of windows re-serves identical symbols.
        whole = RIBLTEncoder(sender, seed=seed)
        total = 16 + params["batch"]
        reference = whole.window(0, total)
        chunked = RIBLTEncoder(sender, seed=seed)
        pieces = ([], [], [])
        offset = 0
        while offset < total:
            step = min(params["batch"], total - offset)
            for acc, col in zip(pieces, chunked.window(offset, step)):
                acc.extend(col)
            offset += step
        if tuple(map(list, pieces)) != tuple(map(list, reference)):
            return self.fail(tag + "riblt-window-invariance",
                             "chunked windows differ from one straight "
                             "read of the stream", params)

        # Differential decode: the recovered difference must equal the
        # set-algebra oracle exactly, in both directions.
        try:
            decoder, used = reconcile(sender, receiver, seed=seed,
                                      batch=params["batch"])
        except MalformedIBLTError as exc:
            return self.fail(tag + "riblt-no-convergence", str(exc), params)
        if set(decoder.local) != set(only_a):
            return self.fail(tag + "riblt-local-oracle",
                             f"decoded {len(decoder.local)} sender-only "
                             f"keys, expected {len(only_a)}", params)
        if set(decoder.remote) != set(only_b):
            return self.fail(tag + "riblt-remote-oracle",
                             f"decoded {len(decoder.remote)} receiver-only "
                             f"keys, expected {len(only_b)}", params)
        return None

    def _check_iblt(self, params, tag="") -> Optional[FuzzFailure]:
        from repro.pds.iblt import IBLT
        from repro.pds.reference import ReferenceIBLT, encode_reference_iblt

        rng = rng_from("pds-iblt", params["seed"])
        shared = gen.make_keys(rng, params["n_shared"])
        only_a = gen.make_keys(rng, params["n_a"])
        only_b = gen.make_keys(rng, params["n_b"])
        shape = dict(k=params["k"], seed=params["sseed"],
                     cell_bytes=params["cell_bytes"])
        cells = params["cells"]

        batch = IBLT(cells, **shape)
        batch.update(shared + only_a)
        scalar = IBLT(cells, **shape)
        for key in shared + only_a:
            scalar.insert(key)
        for name in ("_counts", "_key_sums", "_check_sums"):
            if getattr(batch, name).tobytes() != \
                    getattr(scalar, name).tobytes():
                return self.fail(tag + "iblt-batch-vs-scalar",
                                 f"column {name} differs between update() "
                                 "and repeated insert()", params)

        ref = ReferenceIBLT(cells, **shape)
        ref.update(shared + only_a)
        if encode_iblt(batch) != encode_reference_iblt(ref):
            return self.fail(tag + "iblt-vs-reference",
                             "wire bytes differ from the frozen seed "
                             "implementation", params)

        other = IBLT(cells, **shape)
        other.update(shared + only_b)
        ref_other = ReferenceIBLT(cells, **shape)
        ref_other.update(shared + only_b)
        diff, ref_diff = batch.subtract(other), ref.subtract(ref_other)
        if encode_iblt(diff) != encode_reference_iblt(ref_diff):
            return self.fail(tag + "iblt-subtract-vs-reference",
                             "subtracted columns differ from reference",
                             params)
        mine, theirs = diff.decode(), ref_diff.decode()
        if (mine.complete, mine.local, mine.remote) != \
                (theirs.complete, theirs.local, theirs.remote):
            return self.fail(tag + "iblt-decode-vs-reference",
                             f"live ({mine.complete}, {len(mine.local)}, "
                             f"{len(mine.remote)}) vs reference "
                             f"({theirs.complete}, {len(theirs.local)}, "
                             f"{len(theirs.remote)})", params)
        return None

    def _check_bloom(self, params, tag="") -> Optional[FuzzFailure]:
        from repro.pds.bloom import BloomFilter
        from repro.pds.reference import (
            ReferenceBloomFilter,
            encode_reference_bloom,
        )

        rng = rng_from("pds-bloom", params["seed"])
        items = gen.make_items(rng, params["n"], width=params["width"])
        probes = items[: params["n"] // 2] + gen.make_items(
            rng, params["probes"], width=params["width"])

        batch = BloomFilter.from_fpr(params["n"], params["fpr"],
                                     seed=params["fseed"])
        batch.update(items)
        scalar = BloomFilter.from_fpr(params["n"], params["fpr"],
                                      seed=params["fseed"])
        for item in items:
            scalar.insert(item)
        if bytes(batch._bits) != bytes(scalar._bits) \
                or batch.count != scalar.count:
            return self.fail(tag + "bloom-batch-vs-scalar",
                             "update() and repeated insert() disagree",
                             params)
        if batch.contains_many(probes) != [p in scalar for p in probes]:
            return self.fail(tag + "bloom-contains-many",
                             "contains_many() differs from __contains__",
                             params)

        ref = ReferenceBloomFilter.from_fpr(params["n"], params["fpr"],
                                            seed=params["fseed"])
        for item in items:
            ref.insert(item)
        if (batch.nbits, batch.k) != (ref.nbits, ref.k):
            return self.fail(tag + "bloom-shape-vs-reference",
                             f"(nbits, k) = ({batch.nbits}, {batch.k}) vs "
                             f"reference ({ref.nbits}, {ref.k})", params)
        if encode_bloom(batch) != encode_reference_bloom(ref):
            return self.fail(tag + "bloom-vs-reference",
                             "wire bytes differ from the frozen seed "
                             "implementation", params)
        if [p in batch for p in probes] != [p in ref for p in probes]:
            return self.fail(tag + "bloom-membership-vs-reference",
                             "membership answers differ from reference",
                             params)
        return None


# ---------------------------------------------------------------------------
# Engine 3: relay scenarios
# ---------------------------------------------------------------------------

#: Commands a fault plan may target (graphene relay path + basics).
FAULT_COMMANDS = ("inv", "getdata", "graphene_block",
                  "graphene_p2_request", "graphene_p2_response",
                  "graphene_p3_block", "graphene_p3_request",
                  "graphene_p3_symbols",
                  "getdata_shortids", "block_txs", "block")


class RelayEngine(Engine):
    """Random lossy topologies through the real node/simulator stack."""

    name = "relay"
    cost = 25
    shrink_floors = {"nodes": 3, "block_size": 4, "extra": 0,
                     "degree": 2}

    def draw(self, rng: random.Random) -> dict:
        nodes = rng.randint(4, 8)
        degree = rng.randint(2, min(3, nodes - 1))
        if nodes * degree % 2:
            degree += 1
        params = {"nodes": nodes, "degree": degree,
                  "block_size": rng.randint(16, 60),
                  "extra": rng.randint(0, 40),
                  "loss": rng.choice([0.0, 0.0, 0.03, 0.08, 0.15]),
                  "protocol": rng.choice([1, 1, 1, 3]),
                  "seed": rng.getrandbits(24), "fault": None}
        if rng.random() < 0.4:
            fault = {"node": rng.randrange(nodes),
                     "peer": rng.getrandbits(8),
                     "drop_nth": sorted(rng.sample(range(8),
                                                   rng.randint(0, 3))),
                     "drop_commands": sorted(
                         rng.sample(FAULT_COMMANDS, rng.randint(0, 2))),
                     "blackhole": ([round(rng.uniform(0.0, 1.0), 3),
                                    round(rng.uniform(1.0, 3.0), 3)]
                                   if rng.random() < 0.3 else None)}
            params["fault"] = fault
        return params

    def shrink_candidates(self, params: dict) -> Iterable[dict]:
        yield from super().shrink_candidates(params)
        if params.get("loss"):
            yield {**params, "loss": 0.0}
        if params.get("fault") is not None:
            yield {**params, "fault": None}
        if params.get("protocol", 1) != 1:
            yield {**params, "protocol": 1}

    def check(self, params: dict) -> Optional[FuzzFailure]:
        import random as _random

        from repro.chain.scenarios import make_block_scenario
        from repro.net import (
            FaultInjector,
            Node,
            RelayProtocol,
            Simulator,
            connect_random_regular,
        )
        from repro.obs import (
            check_metrics_match_costs,
            check_stream_invariants,
            collect_run_metrics,
        )
        from repro.obs.trace import Tracer

        max_events = 500_000
        fault_spec = params.get("fault")
        # One FaultInjector shared across builds (plans are stateful:
        # the message index advances per decision), reset() between
        # them -- the repeated-topology pattern scenario code uses.
        injector = None
        if fault_spec is not None:
            injector = FaultInjector(
                drop_nth=frozenset(fault_spec["drop_nth"]),
                drop_commands=frozenset(fault_spec["drop_commands"]),
                blackhole=(tuple(fault_spec["blackhole"])
                           if fault_spec["blackhole"] else None))

        def build_and_run(trace: bool):
            from repro.core.params import GrapheneConfig

            config = GrapheneConfig(protocol=params.get("protocol", 1))
            simulator = Simulator()
            peers = [Node(f"f{i:02d}", simulator,
                          protocol=RelayProtocol.GRAPHENE, config=config)
                     for i in range(params["nodes"])]
            connect_random_regular(peers, degree=params["degree"],
                                   latency=0.05, bandwidth=1_000_000.0,
                                   rng=_random.Random(params["seed"]),
                                   loss_rate=params["loss"])
            if injector is not None:
                node = peers[fault_spec["node"] % len(peers)]
                neighbours = sorted(node.peers, key=lambda p: p.node_id)
                if neighbours:
                    target = neighbours[
                        fault_spec["peer"] % len(neighbours)]
                    node.inject_fault(target, injector)
            tracer = Tracer(simulator).attach(*peers) if trace else None
            scenario = make_block_scenario(
                n=params["block_size"], extra=params["extra"],
                fraction=1.0, seed=params["seed"] % 997)
            for node in peers[1:]:
                node.mempool.add_many(
                    scenario.receiver_mempool.transactions())
            peers[0].mine_block(scenario.block)
            simulator.run(max_events=max_events)
            return simulator, peers, tracer, scenario

        simulator, peers, tracer, scenario = build_and_run(trace=True)
        if simulator.truncated:
            return self.fail("relay-termination",
                             f"simulation still busy after {max_events} "
                             "events", params)
        root = scenario.block.header.merkle_root
        covered = sum(1 for node in peers if root in node.blocks)
        clean = not params["loss"] and fault_spec is None
        if clean and covered != len(peers):
            return self.fail("relay-lossless-coverage",
                             f"{covered}/{len(peers)} nodes hold the block "
                             "on a lossless run", params)
        for node in peers:
            if root not in node.blocks and root in node._block_recovery:
                return self.fail("relay-dangling-state",
                                 f"{node.node_id} neither holds the block "
                                 "nor abandoned the fetch", params)
        streams = {(node.node_id, r): events for node in peers
                   for r, events in node.relay_telemetry.items()}
        registry = collect_run_metrics(peers, tracer=tracer)
        invariants = check_stream_invariants(streams, prefix="relay")
        invariants.append(
            check_metrics_match_costs(registry, streams, prefix="relay"))
        for inv in invariants:
            if not inv.ok:
                return self.fail("relay-invariant:" + inv.name, inv.detail,
                                 params)
        if injector is not None:
            # Repeated-topology determinism: rebuild the same scenario
            # with the same (reset) fault plan; an identical message
            # stream must reproduce identical drops, clock and coverage.
            first = (covered, injector.dropped, simulator.now,
                     simulator.events_processed)
            injector.reset()
            if injector.dropped or injector._index:
                return self.fail("relay-fault-reset",
                                 "reset() left injector state behind",
                                 params)
            sim2, peers2, _, _ = build_and_run(trace=False)
            covered2 = sum(1 for node in peers2 if root in node.blocks)
            second = (covered2, injector.dropped, sim2.now,
                      sim2.events_processed)
            if first != second:
                return self.fail(
                    "relay-repeat-divergence",
                    f"repeated topology diverged: first "
                    f"(covered, dropped, now, events)={first}, "
                    f"second={second}", params)
        return None


ENGINES = {engine.name: engine
           for engine in (CodecEngine(), PDSEngine(), RelayEngine())}
