"""Deterministic structure-aware differential fuzzing.

Three engines hammer the layers most prone to silent drift:

* ``codec`` -- wire round-trips, behaviour parity of decoded
  structures, hostile-input robustness (mutations and truncations);
* ``pds`` -- columnar Bloom/IBLT batch paths against the frozen
  references and their own scalar paths, with and without numpy;
* ``relay`` -- random lossy topologies with fault injection through
  the real node stack, asserting convergence-or-clean-abandon and the
  RunReport invariants.

``python -m repro fuzz --seed 0 --cases 500`` runs a campaign;
failures are minimized and archived in ``tests/corpus/`` where
``tests/test_fuzz_corpus.py`` replays them forever.  See
``docs/FUZZING.md``.
"""

from repro.fuzz.engines import ENGINES, CodecEngine, FuzzFailure, \
    PDSEngine, RelayEngine
from repro.fuzz.runner import DEFAULT_CORPUS, FuzzStats, load_artifact, \
    replay_artifact, run_fuzz, write_artifact
from repro.fuzz.shrink import shrink

__all__ = [
    "ENGINES",
    "CodecEngine",
    "PDSEngine",
    "RelayEngine",
    "FuzzFailure",
    "FuzzStats",
    "DEFAULT_CORPUS",
    "run_fuzz",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
    "shrink",
]
