"""The fuzz campaign driver: budgets, artifacts, replay.

:func:`run_fuzz` drives the engines in :data:`~repro.fuzz.engines.ENGINES`
under a case budget and a wall-clock budget.  Every case is derived from
``(campaign seed, engine name, case index)`` through the string-seeded
PRNG in :mod:`repro.fuzz.gen`, so a campaign is reproducible from its
seed alone and each engine's stream is independent of the others.

Failures are minimized by :func:`repro.fuzz.shrink.shrink` and written
as JSON **artifacts** -- ``{engine, check, detail, params}`` -- into the
corpus directory (``tests/corpus/`` in this repo).  An artifact replays
with :func:`replay_artifact`, which re-derives the exact failing case
from its parameters; the corpus is replayed as pytest regressions in
``tests/test_fuzz_corpus.py``, so every bug the fuzzer ever caught
stays caught.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.fuzz.engines import ENGINES, Engine, FuzzFailure
from repro.fuzz.gen import rng_from
from repro.fuzz.shrink import shrink

#: Default artifact directory, relative to the repository root.
DEFAULT_CORPUS = Path("tests") / "corpus"


@dataclass
class FuzzStats:
    """Outcome of one campaign."""

    seed: int
    cases_run: int = 0
    elapsed: float = 0.0
    per_engine: dict = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        engines = ", ".join(f"{name}:{count}"
                            for name, count in sorted(self.per_engine.items()))
        verdict = ("ok" if self.ok
                   else f"{len(self.failures)} FAILURE(S)")
        return (f"fuzz seed={self.seed} cases={self.cases_run} "
                f"({engines}) in {self.elapsed:.1f}s -> {verdict}")


def _wrap_check(engine: Engine, params: dict) -> Optional[FuzzFailure]:
    """Run one check; unexpected exceptions become findings too."""
    try:
        return engine.check(params)
    except Exception as exc:  # noqa: BLE001 -- converting to a finding
        return FuzzFailure(engine=engine.name,
                           check=f"unhandled:{type(exc).__name__}",
                           detail=str(exc)[:300], params=dict(params))


def write_artifact(failure: FuzzFailure, corpus_dir: Path,
                   note: str = "") -> Path:
    """Persist one minimized failure as a replayable JSON artifact."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    digest = abs(hash(json.dumps(failure.params, sort_keys=True))) % 10 ** 8
    name = f"{failure.engine}-{failure.check.replace(':', '_')}-{digest:08d}"
    path = corpus_dir / f"{name}.json"
    payload = {"engine": failure.engine, "check": failure.check,
               "detail": failure.detail, "params": failure.params}
    if note:
        payload["note"] = note
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path) -> dict:
    """Read one artifact; raises ValueError on malformed files."""
    payload = json.loads(Path(path).read_text())
    for key in ("engine", "params"):
        if key not in payload:
            raise ValueError(f"artifact {path} missing key {key!r}")
    if payload["engine"] not in ENGINES:
        raise ValueError(f"artifact {path} names unknown engine "
                         f"{payload['engine']!r}")
    return payload


def replay_artifact(path) -> Optional[FuzzFailure]:
    """Re-run one archived case; None means the bug stays fixed."""
    payload = load_artifact(path)
    engine = ENGINES[payload["engine"]]
    return _wrap_check(engine, payload["params"])


def run_fuzz(seed: int = 0, cases: int = 200,
             budget: Optional[float] = None,
             engines: Optional[List[str]] = None,
             corpus_dir: Optional[Path] = DEFAULT_CORPUS,
             max_failures: int = 5,
             log: Optional[Callable[[str], None]] = None) -> FuzzStats:
    """Run a deterministic fuzzing campaign.

    ``cases`` is the budget for a cost-1 engine; an engine with cost
    ``c`` runs ``max(1, cases // c)`` cases so expensive engines (relay
    simulations) do not starve cheap ones (codec round-trips) of wall
    clock.  ``budget`` (seconds) additionally caps the whole campaign.
    ``corpus_dir=None`` disables artifact writing (replay/smoke mode).
    The campaign stops early after ``max_failures`` distinct findings.
    """
    t0 = time.monotonic()
    chosen = engines or sorted(ENGINES)
    unknown = [name for name in chosen if name not in ENGINES]
    if unknown:
        raise ValueError(f"unknown engine(s): {', '.join(unknown)}")
    stats = FuzzStats(seed=seed)
    seen_checks = set()
    for name in chosen:
        engine = ENGINES[name]
        quota = max(1, cases // engine.cost)
        done = 0
        for index in range(quota):
            if budget is not None and time.monotonic() - t0 > budget:
                break
            if len(stats.failures) >= max_failures:
                break
            params = engine.draw(rng_from("draw", seed, name, index))
            failure = _wrap_check(engine, params)
            done += 1
            if failure is None:
                continue
            key = (failure.engine, failure.check)
            if key in seen_checks:
                continue  # one artifact per distinct check
            seen_checks.add(key)
            minimized, _ = shrink(engine, failure,
                                  max_rounds=max(2, 32 // engine.cost))
            stats.failures.append(minimized)
            if log:
                log(f"FAILURE {minimized}")
            if corpus_dir is not None:
                path = write_artifact(minimized, Path(corpus_dir))
                stats.artifacts.append(str(path))
                if log:
                    log(f"  artifact -> {path}")
        stats.per_engine[name] = done
        stats.cases_run += done
        if log:
            log(f"engine {name}: {done}/{quota} cases")
    stats.elapsed = time.monotonic() - t0
    return stats
