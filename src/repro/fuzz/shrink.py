"""Greedy parameter-space minimization for fuzz failures.

When an engine finds a failing case the runner does not archive it
as-is: huge random parameter dicts make terrible regression tests.  The
shrinker walks the engine's own ``shrink_candidates`` proposals --
smaller item counts, dropped faults, zero loss, simpler mutation bases
-- and greedily accepts any candidate that still fails *the same
check*.  Insisting on the same check name keeps the minimized case a
witness of the original bug rather than of whatever other bug small
inputs happen to trip.

Everything is deterministic: candidates are re-checked by re-deriving
the case from its parameters, exactly as replay does.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.fuzz.engines import Engine, FuzzFailure


def _weight(params: dict) -> int:
    """Rough case size: the sum of all integer magnitudes in ``params``.

    Good enough for greedy descent -- every candidate an engine proposes
    shrinks one of these integers or deletes a sub-dict, so a strictly
    smaller weight means a strictly simpler case.
    """
    total = 0
    for value in params.values():
        if isinstance(value, bool):
            total += int(value)
        elif isinstance(value, int):
            total += abs(value)
        elif isinstance(value, float):
            total += int(abs(value) * 100)
        elif isinstance(value, dict):
            total += 1 + _weight(value)
        elif isinstance(value, (list, tuple)):
            total += len(value)
    return total


def shrink(engine: Engine, failure: FuzzFailure,
           max_rounds: int = 64) -> Tuple[FuzzFailure, int]:
    """Minimize ``failure``; returns (smallest failure, rounds used).

    Each round re-runs every candidate the engine proposes for the
    current champion and adopts the smallest one that reproduces the
    same check failure.  Stops when a round produces no improvement or
    ``max_rounds`` is exhausted (engines with expensive cases keep this
    small via their ``cost``).
    """
    best = failure
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        improved: Optional[FuzzFailure] = None
        for candidate in engine.shrink_candidates(best.params):
            if _weight(candidate) >= _weight(best.params):
                continue
            try:
                refound = engine.check(candidate)
            except Exception:   # candidate found a *different* bug;
                continue        # stay on the one we are minimizing
            if refound is not None and refound.check == best.check:
                if improved is None or \
                        _weight(refound.params) < _weight(improved.params):
                    improved = refound
        if improved is None:
            break
        best = improved
    return best, rounds
